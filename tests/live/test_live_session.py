"""The live micro-batch loop: equivalence with the offline path,
monotonic snapshot growth, counter publication, and the sub-day
archive rotation it rides on."""

import pytest

from repro.config import TEST_SYSTEM
from repro.facility import Facility
from repro.ingest.warehouse import Warehouse
from repro.live.runner import LIVE_COUNTER_METRICS, LiveSession
from repro.tacc_stats.archive import HostArchive
from repro.telemetry.metrics import get_registry
from repro.util.timeutil import HOUR

CFG = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=6)
SEED = 7
SEGMENT = 4 * HOUR


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    """One complete live session: (warehouse, batch reports, archive)."""
    archive_dir = str(tmp_path_factory.mktemp("live_arch"))
    warehouse = Warehouse()
    session = LiveSession(Facility(CFG, seed=SEED), archive_dir,
                          warehouse=warehouse, segment_seconds=SEGMENT)
    before = get_registry().counter("live.batches").value
    reports = session.run()
    after = get_registry().counter("live.batches").value
    return warehouse, reports, archive_dir, after - before


@pytest.fixture(scope="module")
def offline(tmp_path_factory):
    """The same facility through the offline one-shot slow path."""
    archive_dir = str(tmp_path_factory.mktemp("offline_arch"))
    warehouse = Warehouse()
    Facility(CFG, seed=SEED).run_with_files(archive_dir,
                                            warehouse=warehouse)
    return warehouse


def _data_rows(w):
    """Every analytics-visible row, ordered (ledger/meta excluded)."""
    w.commit()
    return {
        table: w.connection.execute(
            f"SELECT {cols} FROM {table} ORDER BY {cols}").fetchall()
        for table, cols in [
            ("jobs", "system, jobid, user, account, science_field, app, "
                     "queue, exit_status, submit_time, start_time, "
                     "end_time, nodes, cores, node_hours"),
            ("job_metrics", "system, jobid, metric, value"),
            ("system_series", "system, metric, t, value"),
            ("syslog_events", "system, t, host, jobid, kind, severity"),
        ]
    }


def test_live_warehouse_equals_offline_oneshot(live, offline):
    """The headline equivalence: a horizon streamed as hourly-scale
    micro-batches lands the exact same analytics rows as one offline
    pass — same jobs, metrics, series, and syslog events."""
    rows = _data_rows(live[0])
    assert rows["jobs"]  # non-vacuous
    assert rows == _data_rows(offline)


def test_snapshot_rows_grow_monotonically(live):
    warehouse, reports, _dir, _n = live
    counts = [r.snapshot_rows for r in reports]
    assert counts == sorted(counts)
    assert counts[-1] == warehouse.job_count(CFG.name)


def test_batches_cover_the_horizon_in_order(live):
    _w, reports, _dir, batches = live
    assert batches == len(reports)
    assert [r.batch for r in reports] == list(range(len(reports)))
    assert reports[0].t_start == 0.0
    assert reports[-1].t_end == CFG.horizon
    for prev, cur in zip(reports, reports[1:]):
        assert cur.t_start == prev.t_end
    assert sum(r.jobs_loaded for r in reports) == \
        warehouse_jobs(live[0])


def warehouse_jobs(w):
    return w.job_count(CFG.name)


def test_final_counters_published_once_and_complete(live):
    """After the horizon every job's counters are final: stamped at its
    end time, flagged ended, one row per metric."""
    warehouse, _reports, _dir, _n = live
    samples = warehouse.live_counters(CFG.name)
    assert len(samples) == warehouse.job_count(CFG.name)
    for s in samples:
        assert s["ended"] is True
        assert set(s["counters"]) == set(LIVE_COUNTER_METRICS)
        assert all(v >= 0 for v in s["counters"].values())
    assert warehouse.live_high_water(CFG.name) == \
        max(s["t"] for s in samples)


def test_run_batch_after_done_returns_none(live):
    _w, reports, archive_dir, _n = live
    session = LiveSession(Facility(CFG, seed=SEED),
                          archive_dir + "_fresh",
                          segment_seconds=CFG.horizon)
    assert session.n_segments == 2  # horizon boundary + final tick
    assert session.run_batch() is not None
    assert session.run_batch() is not None
    assert session.done
    assert session.run_batch() is None


def test_report_str_mentions_progress(live):
    line = str(live[1][0])
    assert "[live] batch=0" in line
    assert "snapshot_rows=" in line


def test_session_validation(tmp_path):
    facility = Facility(CFG, seed=SEED)
    with pytest.raises(ValueError, match="segment_seconds"):
        LiveSession(facility, str(tmp_path / "a"), segment_seconds=0)
    with pytest.raises(ValueError, match="segment_seconds"):
        LiveSession(facility, str(tmp_path / "b"),
                    segment_seconds=90.5)
    with pytest.raises(ValueError, match="batch_segments"):
        LiveSession(facility, str(tmp_path / "c"), batch_segments=0)


# -- the rotation layer under it ---------------------------------------------


def test_archive_sidecar_round_trip(live):
    """Reopening a sub-day archive adopts the persisted period; an
    explicit conflicting period is a loud error."""
    _w, _reports, archive_dir, _n = live
    reopened = HostArchive(archive_dir)
    assert reopened.rotate_seconds == SEGMENT
    explicit = HostArchive(archive_dir, rotate_seconds=SEGMENT)
    assert explicit.rotate_seconds == SEGMENT
    with pytest.raises(ValueError, match="rotate_seconds"):
        HostArchive(archive_dir, rotate_seconds=2 * HOUR)


def test_segment_labels_are_sub_day_and_sorted(live):
    """Hourly-scale segments carry colon-free time-of-day labels that
    sort chronologically."""
    _w, _reports, archive_dir, _n = live
    archive = HostArchive(archive_dir)
    host = archive.hostnames()[0]
    labels = [day for _h, day in archive.manifest(hosts=[host])]
    assert len(labels) > 1  # genuinely sub-day rotation
    assert labels == sorted(labels)
    assert all("T" in lab and ":" not in lab for lab in labels)


def test_flush_before_closes_only_completed_segments(tmp_path):
    """A host idle across a rotation boundary still gets its completed
    segment flushed to disk (visible to the manifest) without touching
    the open one."""
    from repro.tacc_stats.schema import SchemaEntry, TypeSchema

    archive = HostArchive(tmp_path / "arch", rotate_seconds=HOUR)

    def write(host, t):
        w = archive.writer(host, t)
        w.register_schema(
            TypeSchema("cpu", (SchemaEntry("user", is_event=True),)))
        w.begin_block(t)
        w.write_row("cpu", "0", [1])

    write("c001", 100.0)       # segment 0
    write("c002", 3700.0)      # segment 1 (already past the boundary)
    assert archive.manifest() == {}  # both still buffered
    assert archive.flush_before(3600.0) == 1
    manifest = archive.manifest()
    assert {h for h, _d in manifest} == {"c001"}
    # c002's open segment is untouched; closing flushes the rest.
    archive.close()
    assert {h for h, _d in archive.manifest()} == {"c001", "c002"}


def test_day_archives_write_no_sidecar(tmp_path):
    """Default day rotation keeps the on-disk layout byte-identical to
    pre-live archives: no archive.json appears."""
    root = tmp_path / "day_arch"
    HostArchive(root)
    assert not (root / "archive.json").exists()
