"""The live-cadence extension of PR5's partition property.

PR5 proved any contiguous *day*-chunk partition of an archive appends
to the same warehouse as a one-shot ingest.  Live mode stresses the
same ledger at sub-day granularity with interleaved snapshot refreshes
and counter upserts — so the property is restated at that cadence: ANY
interleaving of live micro-batches (random per-batch segment counts)
is row-identical to one equivalent nightly ``--append`` that consumes
all the segments at once.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TEST_SYSTEM
from repro.facility import Facility
from repro.ingest.warehouse import Warehouse
from repro.live.runner import LiveSession
from repro.util.timeutil import HOUR

CFG = TEST_SYSTEM.scaled(num_nodes=3, horizon_days=1, n_users=5)
SEED = 13
SEGMENT = 6 * HOUR


def _run_live(archive_dir, batch_sizes=None):
    """A live session over CFG; *batch_sizes* drives how many segments
    each successive micro-batch folds in (None = one big batch)."""
    session = LiveSession(Facility(CFG, seed=SEED), str(archive_dir),
                          segment_seconds=SEGMENT)
    if batch_sizes is None:
        session.batch_segments = session.n_segments
        assert session.run_batch() is not None
    else:
        sizes = iter(batch_sizes)
        while not session.done:
            session.batch_segments = next(sizes, 1)
            assert session.run_batch() is not None
    assert session.done
    return session


def _data_rows(w: Warehouse):
    w.commit()
    return {
        table: w.connection.execute(
            f"SELECT {cols} FROM {table} ORDER BY {cols}").fetchall()
        for table, cols in [
            ("jobs", "system, jobid, user, account, science_field, app, "
                     "queue, exit_status, submit_time, start_time, "
                     "end_time, nodes, cores, node_hours"),
            ("job_metrics", "system, jobid, metric, value"),
            ("system_series", "system, metric, t, value"),
            ("syslog_events", "system, t, host, jobid, kind, severity"),
        ]
    }


@pytest.fixture(scope="module")
def nightly(tmp_path_factory):
    """The reference: every segment consumed by ONE append batch — the
    'equivalent nightly --append over the same segments'."""
    session = _run_live(tmp_path_factory.mktemp("nightly"))
    return _data_rows(session.warehouse), session.n_segments


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_any_micro_batch_interleaving_equals_nightly_append(
        nightly, tmp_path_factory, data):
    reference, n_segments = nightly
    sizes = data.draw(
        st.lists(st.integers(min_value=1, max_value=n_segments),
                 min_size=1, max_size=n_segments),
        label="batch segment counts")
    session = _run_live(tmp_path_factory.mktemp("interleaved"), sizes)
    assert _data_rows(session.warehouse) == reference


def test_single_segment_batches_equal_nightly(nightly,
                                              tmp_path_factory):
    """The densest cadence — one segment per batch — pinned explicitly
    (hypothesis may or may not draw it)."""
    reference, n_segments = nightly
    session = _run_live(tmp_path_factory.mktemp("dense"),
                        [1] * n_segments)
    assert len(session.run()) == 0  # already complete
    assert _data_rows(session.warehouse) == reference
