"""The live consumption surfaces: ``live_top``/``live_watch`` state
methods, their HTTP routes, the snapshot-age gauge, and the cache
bypass semantics."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import TEST_SYSTEM
from repro.facility import Facility
from repro.ingest.warehouse import Warehouse
from repro.live.runner import LiveSession
from repro.service.protocol import ServiceError
from repro.service.server import make_server
from repro.service.state import ServiceState
from repro.telemetry.metrics import get_registry
from repro.util.timeutil import HOUR

CFG = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=6)
SEED = 7
SYSTEM = CFG.name


@pytest.fixture(scope="module")
def feed(tmp_path_factory):
    """A live session run HALFWAY into a file-backed warehouse, so
    tests can advance it mid-flight: (warehouse path, session)."""
    path = str(tmp_path_factory.mktemp("live_svc") / "live.sqlite")
    warehouse = Warehouse(path, threadsafe=True)
    session = LiveSession(
        Facility(CFG, seed=SEED),
        str(tmp_path_factory.mktemp("live_svc_arch")),
        warehouse=warehouse, segment_seconds=2 * HOUR)
    for _ in range(session.n_segments // 2):
        session.run_batch()
    warehouse.commit()
    return path, session


@pytest.fixture()
def state(feed):
    st = ServiceState(feed[0])
    yield st
    st.close()


def test_health_includes_snapshot_age(state):
    body = state.health()
    assert body["status"] == "ok"
    assert body["snapshot_age_seconds"] >= 0.0


def test_snapshot_age_resets_when_the_stamp_moves(feed, state):
    age1 = state.snapshot_age_seconds()
    assert age1 >= 0.0
    # An external live batch commits new rows -> data_version moves ->
    # the next observation restarts the staleness clock.
    path, session = feed
    if not session.done:
        session.run_batch()
        session.warehouse.commit()
    state.refresh()
    assert state.snapshot_age_seconds() <= age1 + 0.5
    assert get_registry().gauge(
        "service.snapshot.age_seconds").value >= 0.0


def test_live_top_baselines_then_rates(feed, state):
    first = state.live_top(SYSTEM, client="t1")
    assert first["system"] == SYSTEM
    assert first["baseline"] is True
    assert first["jobs"] == [] and first["total"] == {}
    assert first["jobs_observed"] > 0

    path, session = feed
    assert not session.done, "fixture must leave batches to run"
    session.run_batch()
    session.warehouse.commit()

    second = state.live_top(SYSTEM, n=3, client="t1")
    assert second["baseline"] is False
    assert 0 < len(second["jobs"]) <= 3
    for job in second["jobs"]:
        assert job["dt"] > 0
        assert all(v >= 0 for v in job["rates"].values())
    # Ranking really is by the requested metric, descending.
    flops = [j["rates"].get("flops_gf", 0.0) for j in second["jobs"]]
    assert flops == sorted(flops, reverse=True)


def test_live_top_engines_are_per_client(feed, state):
    """A new client never inherits another client's window: its first
    poll is always a baseline, whatever 't1' has seen."""
    state.live_top(SYSTEM, client="warm")
    assert state.live_top(SYSTEM, client="cold")["baseline"] is True


def test_live_top_validation(state):
    with pytest.raises(ServiceError, match="unknown system"):
        state.live_top("nope")
    with pytest.raises(ServiceError, match="unknown live metric"):
        state.live_top(SYSTEM, order_by="flops2")
    with pytest.raises(ServiceError, match="n must be"):
        state.live_top(SYSTEM, n=0)


def test_live_watch_bootstrap_and_changed(state):
    boot = state.live_watch(SYSTEM)
    assert boot["changed"] is False
    assert boot["t"] > 0
    # since earlier than the high-water: returns immediately, changed.
    hit = state.live_watch(SYSTEM, since=0.0, timeout=5.0)
    assert hit["changed"] is True and hit["t"] == boot["t"]
    # since at the high-water: blocks until timeout, not changed.
    miss = state.live_watch(SYSTEM, since=boot["t"], timeout=0.2)
    assert miss["changed"] is False
    assert get_registry().gauge("live.watchers").value == 0.0


def test_live_watch_wakes_on_external_commit(feed, state):
    path, session = feed
    assert not session.done, "fixture must leave batches to run"
    before = state.live_watch(SYSTEM)["t"]

    def advance():
        session.run_batch()
        session.warehouse.commit()

    t = threading.Thread(target=advance)
    t.start()
    try:
        woke = state.live_watch(SYSTEM, since=before, timeout=20.0)
    finally:
        t.join()
    assert woke["changed"] is True
    assert woke["t"] > before


# -- over HTTP ---------------------------------------------------------------


@pytest.fixture(scope="module")
def server(feed):
    state = ServiceState(feed[0])
    srv = make_server(state)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    state.close()
    thread.join(timeout=5)


def _get(server, path):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode())


def test_http_live_top_route(server):
    status, body = _get(
        server, f"/api/v1/live/top?system={SYSTEM}&n=2&client=http1")
    assert status == 200
    assert body["system"] == SYSTEM and body["n"] == 2


def test_http_live_watch_route(server):
    status, body = _get(
        server, f"/api/v1/live/watch?system={SYSTEM}&since=0&timeout=5")
    assert status == 200
    assert body["changed"] is True


def test_http_live_param_errors(server):
    with pytest.raises(urllib.error.HTTPError) as e:
        _get(server, f"/api/v1/live/top?system={SYSTEM}&n=zap")
    assert e.value.code == 400
    assert json.loads(e.value.read())["error"]["code"] == "bad_request"
    with pytest.raises(urllib.error.HTTPError) as e:
        _get(server, f"/api/v1/live/top?system={SYSTEM}&metric=nope")
    assert e.value.code == 404


def test_http_metrics_expose_live_and_age(server):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=30) as resp:
        text = resp.read().decode()
    assert "repro_service_snapshot_age_seconds" in text
    assert "repro_live_top_requests" in text
    assert "repro_live_watchers" in text
    assert "repro_service_requests_live" in text


def test_http_health_route_has_age(server):
    status, body = _get(server, "/api/v1/health")
    assert status == 200
    assert body["snapshot_age_seconds"] >= 0.0
