"""Rate-engine math, pinned to hand-computed deltas.

Every expected number here is worked out by hand from the model
``rate = ((cur - prev) mod 2^48) / dt`` — including a counter that
wraps between polls and a job that ends mid-window — and the same
windows are then replayed through the ``repro-top --json`` CLI against
a real warehouse to prove the operator view prints exactly these
values.
"""

import json

import pytest

from repro.live.rates import (
    COUNTER_WRAP_BITS,
    JobRates,
    RateEngine,
    top_jobs,
    total_rates,
)

WRAP = 1 << COUNTER_WRAP_BITS


def _sample(jobid, t, ended=False, **counters):
    return {"jobid": jobid, "user": f"u_{jobid}", "app": "app",
            "t": float(t), "ended": ended, "counters": counters}


# -- two hand-computed windows ----------------------------------------------


def test_first_poll_only_baselines():
    engine = RateEngine()
    assert engine.observe([_sample("j1", 100.0, flops_gf=500)]) == []


def test_two_windows_hand_computed():
    """Three polls, two windows, every rate checked by hand."""
    engine = RateEngine()
    # poll 1 (t=1000): baseline.  flops=100, io=40.
    assert engine.observe(
        [_sample("j1", 1000, flops_gf=100, io_mb=40)]) == []
    # poll 2 (t=1250, dt=250): flops 100->850 = 750/250 = 3.0;
    # io 40->90 = 50/250 = 0.2.
    [r] = engine.observe(
        [_sample("j1", 1250, flops_gf=850, io_mb=90)])
    assert r.t == 1250.0 and r.dt == 250.0
    assert r.rates == {"flops_gf": 3.0, "io_mb": 0.2}
    # poll 3 (t=1350, dt=100): flops 850->1050 = 200/100 = 2.0;
    # io 90->90 = 0.0 — a stalled counter is rate zero, not absent.
    [r] = engine.observe(
        [_sample("j1", 1350, flops_gf=1050, io_mb=90)])
    assert r.dt == 100.0
    assert r.rates == {"flops_gf": 2.0, "io_mb": 0.0}


def test_counter_wrap_mid_window():
    """A counter that rolls over 2^48 still yields the true increment."""
    engine = RateEngine()
    engine.observe([_sample("j1", 0, flops_gf=WRAP - 50)])
    # t=0 -> t=25: counter wrapped to 30; true delta = 50 + 30 = 80,
    # so rate = 80 / 25 = 3.2 — never a huge negative number.
    [r] = engine.observe([_sample("j1", 25, flops_gf=30)])
    assert r.rates == {"flops_gf": 80 / 25}
    assert r.rates["flops_gf"] == pytest.approx(3.2)


def test_job_ending_mid_window_yields_one_final_rate():
    """A job ending between polls gets one partial-window rate (its
    final counters, over prev.t .. end), then ages out."""
    engine = RateEngine()
    engine.observe([_sample("j1", 1000, flops_gf=100),
                    _sample("j2", 1000, flops_gf=10)])
    # j1 ended at t=1100 with final flops=400; the publisher stamps its
    # last sample at the end time.  Window is 100 s, not the 200 s the
    # still-running j2 saw: rate = 300/100 = 3.0.
    out = engine.observe([
        _sample("j1", 1100, ended=True, flops_gf=400),
        _sample("j2", 1200, flops_gf=50),
    ])
    assert [(r.jobid, r.dt, r.ended) for r in out] == [
        ("j1", 100.0, True), ("j2", 200.0, False)]
    assert out[0].rates == {"flops_gf": 3.0}
    assert out[1].rates == {"flops_gf": 0.2}
    # Next poll: j1's sample time no longer advances -> no rate row.
    out = engine.observe([
        _sample("j1", 1100, ended=True, flops_gf=400),
        _sample("j2", 1300, flops_gf=80),
    ])
    assert [r.jobid for r in out] == ["j2"]


def test_vanished_job_is_forgotten():
    engine = RateEngine()
    engine.observe([_sample("j1", 100, flops_gf=5)])
    assert engine.observe([]) == []
    # j1 reappears: it must re-baseline, not difference a stale prev.
    assert engine.observe([_sample("j1", 900, flops_gf=999)]) == []


def test_new_metric_needs_its_own_baseline():
    engine = RateEngine()
    engine.observe([_sample("j1", 100, flops_gf=10)])
    [r] = engine.observe([_sample("j1", 200, flops_gf=20, io_mb=7)])
    assert r.rates == {"flops_gf": 0.1}  # io_mb had no previous value


def test_wrap_bits_validation():
    with pytest.raises(ValueError, match="wrap_bits"):
        RateEngine(wrap_bits=0)


# -- ranking and filtering ---------------------------------------------------


def _rows():
    return [
        JobRates("j1", "alice", "wrf", 100, 10, False,
                 {"flops_gf": 5.0, "io_mb": 9.0}),
        JobRates("j2", "bob", "vasp", 100, 10, False,
                 {"flops_gf": 8.0, "io_mb": 1.0}),
        JobRates("j3", "alice", "vasp", 100, 10, True,
                 {"flops_gf": 8.0}),
    ]


def test_top_jobs_orders_and_breaks_ties_by_jobid():
    top = top_jobs(_rows(), n=2, order_by="flops_gf")
    assert [r.jobid for r in top] == ["j2", "j3"]  # 8.0 tie -> j2 first


def test_top_jobs_other_metric_missing_ranks_zero():
    top = top_jobs(_rows(), n=3, order_by="io_mb")
    assert [r.jobid for r in top] == ["j1", "j2", "j3"]


def test_top_jobs_filters():
    assert [r.jobid for r in top_jobs(_rows(), user="alice")] == \
        ["j3", "j1"]
    assert [r.jobid for r in top_jobs(_rows(), app="vasp",
                                      user="bob")] == ["j2"]
    with pytest.raises(ValueError, match="n must be"):
        top_jobs(_rows(), n=0)


def test_total_rates_sums_per_metric():
    assert total_rates(_rows()) == {"flops_gf": 21.0, "io_mb": 10.0}
    assert total_rates([]) == {}


# -- the CLI prints exactly these numbers ------------------------------------


class _InstantSleep:
    """Stands in for the time module inside repro.cli.top: ``sleep``
    runs the between-polls warehouse mutation instead of waiting."""

    def __init__(self, actions):
        self.actions = list(actions)

    def sleep(self, _seconds):
        if self.actions:
            self.actions.pop(0)()


def test_repro_top_json_matches_hand_computed_deltas(
        tmp_path, monkeypatch, capsys):
    """Three polls of ``repro-top --json``: the printed rates equal the
    hand-computed window deltas, wrap case and mid-window end included."""
    from repro.cli import top as top_cli
    from repro.ingest.warehouse import Warehouse

    path = str(tmp_path / "live.sqlite")
    wh = Warehouse(path)
    # The CLI validates --system against the systems table first.
    wh.add_system("ranger", 4, 16, 32.0, 0.6, 600.0)

    def put(rows):
        wh.record_live_counters("ranger", rows)
        wh.commit()

    # Poll 1 state (t=1000): j1 and j2 baselines.
    put([("j1", "alice", "wrf", 1000.0, 0, "flops_gf", 100),
         ("j1", "alice", "wrf", 1000.0, 0, "net_mpi_mb", WRAP - 50),
         ("j2", "bob", "vasp", 1000.0, 0, "flops_gf", 10)])

    def second_state():
        # t=1250 (dt=250): j1 flops 100->850 (rate 3.0), net wraps to
        # 30 (delta 80, rate 0.32); j2 ended at t=1100 with final
        # flops 40 (dt=100, rate 0.3).
        put([("j1", "alice", "wrf", 1250.0, 0, "flops_gf", 850),
             ("j1", "alice", "wrf", 1250.0, 0, "net_mpi_mb", 30),
             ("j2", "bob", "vasp", 1100.0, 1, "flops_gf", 40)])

    def third_state():
        # t=1350 (dt=100): j1 flops 850->1050 (rate 2.0), net
        # 30->40 (rate 0.1); j2's time no longer advances.
        put([("j1", "alice", "wrf", 1350.0, 0, "flops_gf", 1050),
             ("j1", "alice", "wrf", 1350.0, 0, "net_mpi_mb", 40)])

    monkeypatch.setattr(
        top_cli, "time", _InstantSleep([second_state, third_state]))
    assert top_cli.main(["--warehouse", path, "--system", "ranger",
                         "-r", "3", "--json"]) == 0
    wh.close()

    polls = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()]
    assert len(polls) == 3
    assert polls[0]["baseline"] is True and polls[0]["jobs"] == []

    second = {j["jobid"]: j for j in polls[1]["jobs"]}
    assert second["j1"]["rates"] == {"flops_gf": 3.0,
                                     "net_mpi_mb": 0.32}
    assert second["j1"]["dt"] == 250.0
    assert second["j2"] == {
        "jobid": "j2", "user": "bob", "app": "vasp", "t": 1100.0,
        "dt": 100.0, "ended": True, "rates": {"flops_gf": 0.3}}
    assert polls[1]["total"]["flops_gf"] == pytest.approx(3.3)

    # Third window: only j1 still advances; the ranking is by flops.
    assert [j["jobid"] for j in polls[2]["jobs"]] == ["j1"]
    assert polls[2]["jobs"][0]["rates"] == {"flops_gf": 2.0,
                                            "net_mpi_mb": 0.1}
