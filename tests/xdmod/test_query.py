"""Tests for the job query engine (on the shared fast run)."""

import numpy as np
import pytest



def test_columns_and_len(fast_query):
    assert len(fast_query) > 100
    assert fast_query.column("jobid").shape == (len(fast_query),)
    assert fast_query.node_hours > 0


def test_filter_by_user(fast_query):
    user = fast_query.column("user")[0]
    sub = fast_query.filter(user=user)
    assert 0 < len(sub) < len(fast_query)
    assert (sub.column("user") == user).all()
    # Base query untouched (filters derive new views).
    assert len(fast_query) > len(sub)


def test_filter_tuple_and_chain(fast_query):
    sub = fast_query.filter(app=("namd", "amber"))
    assert set(np.unique(sub.column("app"))) <= {"namd", "amber"}
    sub2 = sub.filter(exit_status="completed")
    assert (sub2.column("exit_status") == "completed").all()
    assert len(sub2) <= len(sub)


def test_filter_unknown_dimension_rejected(fast_query):
    with pytest.raises(ValueError, match="unknown dimension"):
        fast_query.filter(color="red")


def test_filter_range(fast_query):
    big = fast_query.filter_range("nodes", lo=4)
    assert (big.column("nodes") >= 4).all()
    window = fast_query.filter_range("start_time", lo=0.0, hi=86400.0)
    assert (window.column("start_time") <= 86400.0).all()


def test_weighted_mean_matches_manual(fast_query):
    v = fast_query.column("cpu_idle")
    w = fast_query.column("node_hours")
    expected = float(np.sum(v * w) / w.sum())
    assert fast_query.weighted_mean("cpu_idle") == pytest.approx(expected)


def test_weighted_mean_empty_filter_raises(fast_query):
    empty = fast_query.filter(user="nobody-here")
    with pytest.raises(ValueError):
        empty.weighted_mean("cpu_idle")


def test_group_by_partitions_node_hours(fast_query):
    groups = fast_query.group_by("science_field", metrics=("cpu_idle",))
    assert sum(g.node_hours for g in groups) == pytest.approx(
        fast_query.node_hours
    )
    assert sum(g.job_count for g in groups) == len(fast_query)
    # Ordered by node-hours descending.
    hours = [g.node_hours for g in groups]
    assert hours == sorted(hours, reverse=True)
    for g in groups:
        assert 0.0 <= g.mean("cpu_idle") <= 1.0


def test_group_by_matches_filter(fast_query):
    groups = fast_query.group_by("app", metrics=("mem_used",))
    g0 = groups[0]
    sub = fast_query.filter(app=g0.key)
    assert g0.job_count == len(sub)
    assert g0.mean("mem_used") == pytest.approx(
        sub.weighted_mean("mem_used")
    )


def test_top(fast_query):
    top3 = fast_query.top("user", 3)
    assert len(top3) == 3
    groups = fast_query.group_by("user", metrics=())
    assert top3 == [g.key for g in groups[:3]]


def test_group_by_unknown_dimension(fast_query):
    with pytest.raises(ValueError):
        fast_query.group_by("favourite_color")


def test_group_by_over_empty_selection(fast_query):
    """Regression: group-by on an all-False mask must return no groups,
    not crash in the kernel."""
    empty = fast_query.filter(user="nobody-here")
    assert len(empty) == 0
    assert empty.group_by("app", metrics=("cpu_idle",)) == []
    assert empty.group_by(("app", "exit_status"), metrics=()) == []
    assert empty.node_hours == 0.0


def test_filter_short_circuits_when_already_empty(fast_query):
    """Once a view is empty, further filters reuse the mask as-is
    instead of re-materializing code comparisons."""
    empty = fast_query.filter(user="nobody-here")
    chained = empty.filter(app="namd").filter(exit_status="completed")
    assert chained._mask is empty._mask
    assert len(chained) == 0


def test_multi_dimension_group_by_matches_nested_filters(fast_query):
    groups = fast_query.group_by(("app", "exit_status"),
                                 metrics=("cpu_idle",))
    assert sum(g.job_count for g in groups) == len(fast_query)
    hours = [g.node_hours for g in groups]
    assert hours == sorted(hours, reverse=True)
    for g in groups[:5]:
        app, status = g.keys
        assert g.key == f"{app}|{status}"
        sub = fast_query.filter(app=app, exit_status=status)
        assert g.job_count == len(sub)
        assert g.node_hours == pytest.approx(sub.node_hours)
        assert g.mean("cpu_idle") == pytest.approx(
            sub.weighted_mean("cpu_idle"))


def test_single_dim_group_by_keys_tuple(fast_query):
    g = fast_query.group_by("app", metrics=())[0]
    assert g.keys == (g.key,)
