"""Tests for the scheduling-effectiveness analytics."""

import numpy as np
import pytest

from repro.xdmod.scheduling import SchedulingAnalysis


@pytest.fixture(scope="module")
def sched(fast_query):
    return SchedulingAnalysis(fast_query)


def test_overall_stats(sched, fast_query):
    stats = sched.overall()
    assert stats.job_count == len(fast_query)
    assert stats.node_hours == pytest.approx(fast_query.node_hours)
    assert 0 <= stats.median_wait_h <= stats.p90_wait_h
    assert stats.mean_bounded_slowdown >= 1.0


def test_by_queue_partitions(sched, fast_query):
    classes = sched.by_queue()
    assert sum(c.job_count for c in classes) == len(fast_query)
    hours = [c.node_hours for c in classes]
    assert hours == sorted(hours, reverse=True)
    names = {c.key for c in classes}
    assert "normal" in names


def test_by_size_partitions(sched, fast_query):
    classes = sched.by_size()
    assert sum(c.job_count for c in classes) == len(fast_query)
    assert {c.key for c in classes} <= {"serial", "small", "medium",
                                        "large"}


def test_large_jobs_wait_longer(sched):
    """Backfill's known cost: big allocations queue longer than serial
    fill-in work on a saturated machine."""
    assert sched.large_job_penalty() >= 1.0


def test_weighted_quantile_ordering(sched):
    q50 = sched.weighted_wait_quantile(0.5)
    q90 = sched.weighted_wait_quantile(0.9)
    assert 0 <= q50 <= q90


def test_bounded_slowdown_floor():
    """Tiny jobs must not explode the slowdown metric."""
    from repro.xdmod.scheduling import ClassStats
    wait = np.array([3600.0])
    run = np.array([1.0])  # a 1-second job that waited an hour
    stats = ClassStats.from_arrays("t", wait, run, 1.0)
    # With the 600 s floor: (3600+1)/600 ~ 6, not 3601.
    assert stats.mean_bounded_slowdown < 10


def test_empty_rejected(fast_query):
    empty = fast_query.filter(user="nobody")
    with pytest.raises(ValueError):
        SchedulingAnalysis(empty)
