"""Tests for the six stakeholder reports (§4.3)."""

import pytest

from repro.xdmod.reports import (
    AdminReport,
    DeveloperReport,
    FundingAgencyReport,
    ResourceManagerReport,
    SupportStaffReport,
    UserReport,
)


def test_user_report(fast_run, fast_query):
    user = fast_query.top("user", 1)[0]
    report = UserReport(fast_run.warehouse, "ranger")
    data = report.generate(user)
    assert data["job_count"] > 0
    assert 0.0 <= data["completion_rate"] <= 1.0
    text = report.render(user)
    assert user in text
    assert "usage vs facility average" in text


def test_developer_report(fast_run):
    report = DeveloperReport(fast_run.warehouse, "ranger")
    data = report.generate("namd")
    assert data["users"] >= 1
    assert 0.0 <= data["abnormal_rate"] <= 1.0
    text = report.render("namd")
    assert "DEVELOPER REPORT" in text
    assert "namd" in text


def test_support_staff_report_finds_circled_user(fast_run):
    report = SupportStaffReport(fast_run.warehouse, "ranger")
    data = report.generate()
    assert data["worst_user"].idle_fraction > 0.5
    assert data["worst_profile"].values["cpu_idle"] > 2.0
    text = report.render()
    assert "circled user" in text
    assert "O" in text  # overlay mark on the scatter


def test_admin_report_has_persistence_table(fast_run):
    report = AdminReport(fast_run.warehouse, "ranger")
    data = report.generate()
    assert len(data["persistence_table"]) == 5
    text = report.render()
    assert "Persistence (Table 1)" in text
    assert "10min" in text
    assert "R^2" in text


def test_resource_manager_report(fast_run):
    report = ResourceManagerReport(fast_run.warehouse, "ranger")
    data = report.generate()
    assert 0 < data["flops_fraction_of_peak"] < 0.2
    assert data["mem_per_core_by_field"]
    text = report.render()
    assert "Memory per core by parent science" in text
    assert "active nodes" in text


def test_funding_agency_report(fast_run, fast_query):
    report = FundingAgencyReport(fast_run.warehouse, "ranger")
    data = report.generate()
    assert data["total_node_hours"] == pytest.approx(fast_query.node_hours)
    assert 0.5 < data["effective_fraction"] <= 1.0
    text = report.render()
    assert "Resource use by discipline" in text
    shares = [g.node_hours for g in data["by_field"]]
    assert sum(shares) == pytest.approx(data["total_node_hours"])
