"""Tests for application kernels: injection, control charts, and the
detection of an injected software-stack regression."""

import numpy as np
import pytest

from repro import RANGER, Facility
from repro.util.timeutil import DAY
from repro.xdmod.appkernels import (
    DEFAULT_KERNELS,
    KERNEL_USER,
    AppKernelMonitor,
    AppKernelSpec,
    PerfRegression,
    kernel_requests,
    kernel_user_profile,
)

CFG = RANGER.scaled(num_nodes=24, horizon_days=16, n_users=40)
REGRESSION_DAY = 8.0


@pytest.fixture(scope="module")
def kernel_run():
    """A run with the standard kernel battery and a NAMD FLOPS
    regression injected half way through (a bad library after
    maintenance)."""
    regression = PerfRegression(start=REGRESSION_DAY * DAY,
                                flops_factor=0.7,
                                apps=("namd", "gromacs"))
    return Facility(CFG, seed=17, appkernels=DEFAULT_KERNELS,
                    regressions=(regression,)).run(with_syslog=False)


def test_spec_validation():
    with pytest.raises(KeyError):
        AppKernelSpec("x", "not_an_app", nodes=2)
    with pytest.raises(ValueError):
        AppKernelSpec("x", "namd", nodes=0)
    with pytest.raises(ValueError):
        AppKernelSpec("x", "namd", nodes=2, cadence_hours=0)
    with pytest.raises(ValueError):
        PerfRegression(start=0.0, flops_factor=0.0)


def test_kernel_requests_cadence():
    reqs = kernel_requests(DEFAULT_KERNELS, CFG, seed=1)
    assert all(r.user == KERNEL_USER for r in reqs)
    assert all(r.queue == "appkernel" for r in reqs)
    by_kernel = {}
    for r in reqs:
        by_kernel.setdefault(r.account, []).append(r.submit_time)
    for spec in DEFAULT_KERNELS:
        times = by_kernel[spec.account]
        expected = int(CFG.horizon // (spec.cadence_hours * 3600.0))
        assert abs(len(times) - expected) <= 1
        gaps = np.diff(times)
        assert np.allclose(gaps, spec.cadence_hours * 3600.0)


def test_kernel_user_profile_valid():
    u = kernel_user_profile()
    assert u.util_factor == 1.0
    assert "namd" in u.apps


def test_kernels_appear_in_warehouse(kernel_run):
    q = kernel_run.query().filter(user=KERNEL_USER)
    assert len(q) > 20
    monitor = AppKernelMonitor(kernel_run.query())
    assert set(monitor.kernels()) == {k.name for k in DEFAULT_KERNELS}


def test_control_chart_structure(kernel_run):
    monitor = AppKernelMonitor(kernel_run.query())
    chart = monitor.chart("io-bench", "cpu_flops")
    assert chart.values.size >= 10
    assert (np.diff(chart.times) > 0).all()
    assert chart.baseline_sigma > 0
    # io-bench is unaffected by the MD regression: quiet chart.
    assert chart.violation_rate < 0.3


def test_regression_detected_with_onset(kernel_run):
    monitor = AppKernelMonitor(kernel_run.query())
    findings = monitor.detect_regressions()
    assert findings, "the injected FLOPS regression must be detected"
    by_kernel = {f["kernel"]: f for f in findings
                 if f["metric"] == "cpu_flops"}
    assert "namd8" in by_kernel or "md-small" in by_kernel
    hit = by_kernel.get("namd8") or by_kernel["md-small"]
    # Direction and magnitude: ~-30 % FLOPS.
    assert hit["relative_change"] < -0.15
    # Onset localized near the injection time (within 2 days).
    assert abs(hit["onset_time"] - REGRESSION_DAY * DAY) < 2 * DAY
    # The unaffected kernel does not fire on cpu_flops.
    assert "io-bench" not in by_kernel


def test_no_false_positives_without_regression():
    run = Facility(CFG, seed=17, appkernels=DEFAULT_KERNELS).run(
        with_syslog=False)
    monitor = AppKernelMonitor(run.query())
    flops_findings = [f for f in monitor.detect_regressions()
                      if f["metric"] == "cpu_flops"]
    assert flops_findings == []


def test_monitor_validation(kernel_run):
    with pytest.raises(ValueError):
        AppKernelMonitor(kernel_run.query(), baseline_runs=1)
    monitor = AppKernelMonitor(kernel_run.query(), baseline_runs=10**6)
    with pytest.raises(ValueError, match="runs"):
        monitor.chart("namd8", "cpu_flops")
