"""Tests for workload characterization."""

import pytest

from repro.xdmod.characterization import WorkloadCharacterization


@pytest.fixture(scope="module")
def wc(fast_query):
    return WorkloadCharacterization(fast_query)


def test_size_spectrum_partitions(wc, fast_query):
    bins = wc.size_spectrum()
    assert sum(b.job_count for b in bins) == len(fast_query)
    assert sum(b.node_hours for b in bins) == pytest.approx(
        fast_query.node_hours)
    assert sum(b.job_share for b in bins) == pytest.approx(1.0)
    # Serial jobs exist and are a meaningful share of counts.
    assert bins[0].label == "1"
    assert bins[0].job_share > 0.1


def test_runtime_spectrum_partitions(wc, fast_query):
    bins = wc.runtime_spectrum()
    assert sum(b.job_count for b in bins) == len(fast_query)
    labels = [b.label for b in bins]
    assert "2h-8h" in labels


def test_node_hours_skew_to_bigger_jobs(wc):
    """Classic HPC shape: most jobs are small, most node-hours are not."""
    bins = wc.size_spectrum()
    serial = bins[0]
    assert serial.node_hour_share < serial.job_share


def test_queue_mix(wc, fast_query):
    bins = wc.queue_mix()
    assert sum(b.job_count for b in bins) == len(fast_query)
    hours = [b.node_hours for b in bins]
    assert hours == sorted(hours, reverse=True)
    assert any(b.label == "normal" for b in bins)


def test_discipline_contrast(wc):
    rows = wc.discipline_contrast()
    assert rows
    shares = [r["node_hour_share"] for r in rows]
    assert shares == sorted(shares, reverse=True)
    for r in rows:
        assert r["mean_nodes"] >= 1.0
        assert 0.0 <= r["serial_job_fraction"] <= 1.0
        assert r["mean_runtime_h"] > 0


def test_concentration(wc):
    c = wc.concentration()
    assert 0 < c["top_1pct_share"] <= c["top_5pct_share"] \
        <= c["top_10pct_share"] <= 1.0
    assert 0.0 <= c["gini"] <= 1.0
    # The heavy-tailed population: top 10 % of users hold a large share.
    assert c["top_10pct_share"] > 0.3


def test_empty_rejected(fast_query):
    with pytest.raises(ValueError):
        WorkloadCharacterization(fast_query.filter(user="nobody"))
