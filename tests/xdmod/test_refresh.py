"""O(delta) snapshot refresh: atomic-swap delta vs full rebuild.

Proves the acceptance properties of the delta refresh:

* an append-only commit publishes a *replacement* snapshot that
  re-reads only the appended rows (asserted through the
  ``analytics.frame_rows_scanned`` counter — the frame never re-scans
  what it already holds) and shares unchanged frames by reference;
* a reader holding the pre-refresh snapshot keeps one frozen,
  mutually consistent view — the swap is atomic, never a
  half-extended hybrid;
* memo entries whose time window provably cannot see the appended span
  survive the refresh, everything else affected is dropped;
* destructive writes (``mark_destructive``) force a full rebuild.
"""

import numpy as np
import pytest

from repro.ingest.summarize import SUMMARY_METRICS, JobSummary
from repro.ingest.warehouse import Warehouse
from repro.scheduler.job import ExitStatus, JobRecord
from repro.telemetry.metrics import get_registry
from repro.xdmod.query import JobQuery
from repro.xdmod.snapshot import WarehouseSnapshot
from tests.scheduler.test_job import make_request


@pytest.fixture
def wh():
    w = Warehouse()
    for name in ("alpha", "beta"):
        w.add_system(name, num_nodes=16, cores_per_node=16,
                     mem_gb_per_node=32.0, peak_tflops=2.3,
                     sample_interval=600.0)
    return w


def add_job(wh, system, jobid, user="u1", idle=0.1, nodes=2,
            start=0.0, end=3600.0):
    req = make_request(jobid=jobid, user=user, nodes=nodes)
    rec = JobRecord(req, start, end, tuple(range(nodes)),
                    ExitStatus.COMPLETED)
    metrics = {m: 1.0 for m in SUMMARY_METRICS}
    metrics["cpu_idle"] = idle
    wh.add_job(system, rec, 16,
               JobSummary(jobid, metrics, nodes, end - start, 6))


def _scanned():
    return get_registry().counter("analytics.frame_rows_scanned").value


def _refreshes():
    return get_registry().counter("analytics.snapshot_refresh").value


def test_refresh_scans_only_delta(wh):
    for i in range(8):
        add_job(wh, "alpha", str(i), user=f"u{i % 3}")
    wh.commit()
    snap = WarehouseSnapshot.for_warehouse(wh)
    assert snap.frame("alpha").n_rows == 8
    before = _scanned()
    refreshes = _refreshes()
    rebuilds = get_registry().counter("analytics.snapshot_rebuild").value

    add_job(wh, "alpha", "8", user="u9")
    wh.commit()
    snap2 = WarehouseSnapshot.for_warehouse(wh)
    # Delta-refreshed (new handle, not a from-scratch rebuild).
    assert _refreshes() == refreshes + 1
    assert get_registry().counter(
        "analytics.snapshot_rebuild").value == rebuilds
    assert snap2.frame("alpha").n_rows == 9
    delta_rows = _scanned() - before
    # 1 job row + its metric rows; a full reload would re-read all 9
    # jobs plus 9 * len(SUMMARY_METRICS) metric rows.
    assert delta_rows == 1 + len(SUMMARY_METRICS)


def test_refresh_swap_leaves_old_reader_consistent(wh):
    """A reader that resolved the snapshot before an ingest commit
    keeps the pre-refresh view: same row count, same frozen arrays,
    same stamp — the refresh builds a replacement instead of extending
    the old object underneath the reader."""
    for i in range(4):
        add_job(wh, "alpha", str(i))
    add_job(wh, "beta", "b1")
    wh.commit()
    old = WarehouseSnapshot.for_warehouse(wh)
    old_alpha = old.frame("alpha")
    old_beta = old.frame("beta")
    old_stamp = old.stamp
    old_jobids = old_alpha.jobid

    add_job(wh, "alpha", "9", start=90000.0, end=93600.0)
    wh.commit()
    new = WarehouseSnapshot.for_warehouse(wh)

    assert new is not old
    # The old handle is untouched: the reader's whole view stays on
    # the pre-commit generation.
    assert old.stamp == old_stamp
    assert old.frame("alpha") is old_alpha
    assert old_alpha.n_rows == 4
    assert old_alpha.jobid is old_jobids
    # The replacement sees the append; the unchanged system's frame is
    # shared by reference (O(delta), no reload).
    assert new.frame("alpha").n_rows == 5
    assert new.frame("beta") is old_beta


def test_refreshed_frame_equals_cold_rebuild(wh):
    for i in range(6):
        add_job(wh, "alpha", str(i), user=f"u{i % 2}", idle=0.1 * i)
    wh.commit()
    warm = WarehouseSnapshot.for_warehouse(wh)
    warm.frame("alpha")
    add_job(wh, "alpha", "z9", user="u7", idle=0.55,
            start=7200.0, end=10800.0)
    wh.commit()
    warm = WarehouseSnapshot.for_warehouse(wh)
    groups_warm = JobQuery(wh, "alpha").group_by(
        "user", metrics=("cpu_idle",))

    WarehouseSnapshot.invalidate(wh)
    groups_cold = JobQuery(wh, "alpha").group_by(
        "user", metrics=("cpu_idle",))
    assert groups_warm == groups_cold
    cold = WarehouseSnapshot.for_warehouse(wh)
    wf, cf = warm.frame("alpha"), cold.frame("alpha")
    assert np.array_equal(wf.jobid, cf.jobid)
    for dim in wf.uniques:
        assert np.array_equal(wf.decode(dim), cf.decode(dim))
    for col in wf.numeric:
        assert np.allclose(wf.numeric[col], cf.numeric[col],
                           equal_nan=True)


def test_disjoint_time_window_entries_survive_refresh(wh):
    """A memoized result filtered to a time range that cannot contain
    the appended rows is served from cache after the refresh."""
    for i in range(5):
        add_job(wh, "alpha", str(i), start=0.0, end=3600.0)
    wh.commit()
    early = JobQuery(wh, "alpha").filter_range("end_time", hi=4000.0)
    hours = early.node_hours
    snap = WarehouseSnapshot.for_warehouse(wh)

    # Appended job lives entirely after the filter window.
    add_job(wh, "alpha", "9", start=90000.0, end=93600.0)
    wh.commit()
    snap = WarehouseSnapshot.for_warehouse(wh)
    hits = snap.cache_stats["hits"]
    assert JobQuery(wh, "alpha").filter_range(
        "end_time", hi=4000.0).node_hours == hours
    assert snap.cache_stats["hits"] == hits + 1


def test_affected_unbounded_entries_are_dropped(wh):
    for i in range(5):
        add_job(wh, "alpha", str(i), user=f"u{i}")
    add_job(wh, "beta", "b1", user="ub")
    wh.commit()
    q_alpha = JobQuery(wh, "alpha").group_by("user", metrics=())
    q_beta = JobQuery(wh, "beta").group_by("user", metrics=())
    snap = WarehouseSnapshot.for_warehouse(wh)
    entries = snap.cache_stats["entries"]

    add_job(wh, "alpha", "9", user="u9")
    wh.commit()
    snap = WarehouseSnapshot.for_warehouse(wh)
    misses = snap.cache_stats["misses"]
    hits = snap.cache_stats["hits"]
    # alpha changed with no time filter: recomputed.
    assert len(JobQuery(wh, "alpha").group_by("user", metrics=())) == 6
    assert snap.cache_stats["misses"] == misses + 1
    # beta untouched: pure memo hit.
    assert JobQuery(wh, "beta").group_by("user", metrics=()) == q_beta
    assert snap.cache_stats["hits"] == hits + 1
    del q_alpha, entries


def test_destructive_write_forces_rebuild(wh):
    add_job(wh, "alpha", "1")
    wh.commit()
    snap = WarehouseSnapshot.for_warehouse(wh)
    rebuilds = get_registry().counter("analytics.snapshot_rebuild").value

    wh.mark_destructive()
    wh.commit()
    snap2 = WarehouseSnapshot.for_warehouse(wh)
    assert snap2 is not snap
    assert get_registry().counter(
        "analytics.snapshot_rebuild").value == rebuilds + 1


def test_series_epoch_bump_drops_only_that_system(wh):
    wh.add_series("alpha", "load1", np.array([0.0, 600.0]),
                  np.array([1.0, 2.0]))
    wh.add_series("beta", "load1", np.array([0.0, 600.0]),
                  np.array([3.0, 4.0]))
    wh.commit()
    snap = WarehouseSnapshot.for_warehouse(wh)
    a0 = snap.series("alpha", "load1")
    b0 = snap.series("beta", "load1")

    wh.append_series("alpha", "load1", np.array([600.0, 1200.0]),
                     np.array([2.5, 3.5]))
    wh.commit()
    snap2 = WarehouseSnapshot.for_warehouse(wh)
    assert snap2 is not snap  # refresh publishes a replacement
    t, v = snap2.series("alpha", "load1")
    # The tail-overlap point was merged (upsert), the new point appended.
    assert t.tolist() == [0.0, 600.0, 1200.0]
    assert v.tolist() == [1.0, 2.5, 3.5]
    assert snap2.series("beta", "load1") is b0  # untouched system kept
    del a0

# -- cross-process adoption (reread_generation) -----------------------------
#
# The service watches one warehouse file while ingest runs in *other*
# processes; reread_generation() must adopt not just the generation but
# the persisted change-state, so an external series rewrite or
# destructive commit invalidates exactly like an in-process one.


def _file_warehouse(path, *systems):
    w = Warehouse(str(path))
    for name in systems:
        w.add_system(name, num_nodes=16, cores_per_node=16,
                     mem_gb_per_node=32.0, peak_tflops=2.3,
                     sample_interval=600.0)
    return w


def test_change_state_persists_across_open(tmp_path):
    path = tmp_path / "w.sqlite"
    w = _file_warehouse(path, "alpha")
    w.add_series("alpha", "load1", np.array([0.0]), np.array([1.0]))
    w.mark_destructive()
    w.commit()
    destructive, epochs = w._destructive, dict(w._series_epochs)
    w.close()

    reopened = Warehouse(str(path))
    assert reopened._destructive == destructive
    assert reopened._series_epochs == epochs
    reopened.close()


def test_external_series_commit_adopted_via_reread(tmp_path):
    path = tmp_path / "w.sqlite"
    w = _file_warehouse(path, "alpha", "beta")
    w.add_series("alpha", "load1", np.array([0.0, 600.0]),
                 np.array([1.0, 2.0]))
    w.add_series("beta", "load1", np.array([0.0]), np.array([5.0]))
    w.commit()
    w.close()

    reader = Warehouse(str(path))
    snap = WarehouseSnapshot.for_warehouse(reader)
    assert snap.series("alpha", "load1")[1].tolist() == [1.0, 2.0]
    beta_pair = snap.series("beta", "load1")
    snap.cached(("q", "alpha"), lambda: "stale")
    snap.cached(("q", "beta"), lambda: "keep")

    external = Warehouse(str(path))
    external.append_series("alpha", "load1", np.array([600.0]),
                           np.array([9.0]))
    external.commit()
    external.close()

    reader.reread_generation()
    snap2 = WarehouseSnapshot.for_warehouse(reader)
    assert snap2 is not snap
    # The rewritten series is reloaded, not served from the old arrays.
    assert snap2.series("alpha", "load1")[1].tolist() == [1.0, 9.0]
    # Untouched system: shared by reference, memo entry survives.
    assert snap2.series("beta", "load1") is beta_pair
    assert ("q", "beta") in snap2._memo
    # Series-dependent memo entries naming the changed system are gone.
    assert ("q", "alpha") not in snap2._memo
    reader.close()


def test_external_destructive_commit_forces_rebuild(tmp_path):
    path = tmp_path / "w.sqlite"
    w = _file_warehouse(path, "alpha")
    add_job(w, "alpha", "1")
    w.commit()
    w.close()

    reader = Warehouse(str(path))
    snap = WarehouseSnapshot.for_warehouse(reader)
    snap.frame("alpha")
    rebuilds = get_registry().counter("analytics.snapshot_rebuild").value

    external = Warehouse(str(path))
    external.mark_destructive()
    external.commit()
    external.close()

    reader.reread_generation()
    snap2 = WarehouseSnapshot.for_warehouse(reader)
    assert snap2 is not snap
    assert get_registry().counter(
        "analytics.snapshot_rebuild").value == rebuilds + 1
    reader.close()


def test_legacy_external_commit_falls_back_to_rebuild(tmp_path):
    """A commit from code predating the persisted change-state (no
    ``change_state`` meta row) cannot prove it was append-only, so
    adoption must force the conservative full rebuild."""
    import sqlite3

    path = tmp_path / "w.sqlite"
    w = _file_warehouse(path, "alpha")
    add_job(w, "alpha", "1")
    w.commit()
    w.close()

    reader = Warehouse(str(path))
    snap = WarehouseSnapshot.for_warehouse(reader)
    snap.frame("alpha")
    rebuilds = get_registry().counter("analytics.snapshot_rebuild").value

    conn = sqlite3.connect(str(path))
    conn.execute("UPDATE meta SET value = CAST(CAST(value AS INTEGER)"
                 " + 1 AS TEXT) WHERE key='generation'")
    conn.execute("DELETE FROM meta WHERE key='change_state'")
    conn.commit()
    conn.close()

    reader.reread_generation()
    snap2 = WarehouseSnapshot.for_warehouse(reader)
    assert snap2 is not snap
    assert get_registry().counter(
        "analytics.snapshot_rebuild").value == rebuilds + 1
    reader.close()
