"""Tests for normalized usage profiles (Figures 2/3/5 data)."""

import pytest

from repro.ingest.summarize import KEY_METRICS
from repro.xdmod.profiles import UsageProfiler


@pytest.fixture(scope="module")
def profiler(fast_query):
    return UsageProfiler(fast_query)


def test_average_entity_is_unit_octagon(profiler, fast_query):
    """The node-hour-weighted average of profiles over all jobs is 1 per
    metric by construction: check on the whole-facility 'profile'."""
    # Facility-wide profile == all ratios 1.
    for m in KEY_METRICS:
        assert profiler.facility_means[m] > 0


def test_user_profile_shape(profiler, fast_query):
    user = fast_query.top("user", 1)[0]
    p = profiler.profile("user", user)
    assert set(p.values) == set(KEY_METRICS)
    assert p.node_hours > 0
    assert p.job_count > 0
    for m, ratio in p.values.items():
        assert ratio == pytest.approx(
            p.raw[m] / profiler.facility_means[m]
        )


def test_top_profiles_variability(profiler):
    """Figure 2's headline: heavy users have *different* profiles."""
    profiles = profiler.top_profiles("user", 5)
    assert len(profiles) == 5
    idles = [p.values["cpu_idle"] for p in profiles]
    assert max(idles) > 2 * min(idles)


def test_md_codes_comparison(profiler):
    """Figure 3: NAMD and GROMACS idle below AMBER."""
    compare = profiler.compare("app", ("namd", "amber", "gromacs"))
    assert compare["namd"].values["cpu_idle"] < compare["amber"].values["cpu_idle"]
    assert compare["gromacs"].values["cpu_idle"] < compare["amber"].values["cpu_idle"]
    assert compare["namd"].values["cpu_flops"] > compare["amber"].values["cpu_flops"]


def test_unknown_entity_raises(profiler):
    with pytest.raises(ValueError, match="no jobs"):
        profiler.profile("user", "nobody")


def test_dominant_and_anomalous(profiler, fast_query):
    # The pathological heavy user's dominant metric is cpu_idle.
    from repro.xdmod.efficiency import EfficiencyAnalysis
    worst = EfficiencyAnalysis(fast_query).worst_heavy_user()
    p = profiler.profile("user", worst.user)
    assert p.dominant_metric() == "cpu_idle"
    assert "cpu_idle" in p.anomalous(threshold=2.0)
