"""Tests for the trend analysis (§4.3.5)."""

import numpy as np
import pytest

from repro.util.timeutil import DAY
from repro.xdmod.trends import TrendAnalysis


@pytest.fixture(scope="module")
def trends(fast_query):
    # The 20-day fixture: use 2-day buckets to get enough points.
    return TrendAnalysis(fast_query, bucket_seconds=2 * DAY)


def test_buckets_partition_node_hours(trends, fast_query):
    total = trends.total_trend()
    assert total.node_hours.sum() == pytest.approx(fast_query.node_hours)
    assert total.bucket_times.size == trends.n_buckets


def test_group_trends_sum_to_total(trends, fast_query):
    per_field = trends.all_trends("science_field")
    stacked = np.sum([t.node_hours for t in per_field], axis=0)
    np.testing.assert_allclose(stacked, trends.total_trend().node_hours,
                               rtol=1e-9)


def test_trend_matches_filtered_query(trends, fast_query):
    field = fast_query.top("science_field", 1)[0]
    t = trends.trend("science_field", field)
    sub = fast_query.filter(science_field=field)
    assert t.node_hours.sum() == pytest.approx(sub.node_hours)


def test_steady_state_total_is_trendless(trends):
    """A calibrated steady workload has no significant total trend."""
    total = trends.total_trend()
    assert abs(total.relative_growth) < 0.1


def test_forecast_extrapolates_fit(trends):
    total = trends.total_trend()
    n = trends.n_buckets
    expected = float(total.fit.predict([n + 1])[0])
    assert total.forecast(2) == pytest.approx(max(0.0, expected))


def test_min_node_hours_floor(trends, fast_query):
    all_groups = trends.all_trends("user")
    heavy_only = trends.all_trends(
        "user", min_node_hours=0.02 * fast_query.node_hours)
    assert 0 < len(heavy_only) < len(all_groups)


def test_sorted_by_relative_growth(trends):
    results = trends.all_trends("app")
    growth = [t.relative_growth for t in results]
    assert growth == sorted(growth, reverse=True)


def test_validation(fast_query):
    with pytest.raises(ValueError):
        TrendAnalysis(fast_query, bucket_seconds=0)
    with pytest.raises(ValueError):
        TrendAnalysis(fast_query, min_buckets=2)
    with pytest.raises(ValueError, match="buckets"):
        TrendAnalysis(fast_query, bucket_seconds=365 * DAY)
    trends = TrendAnalysis(fast_query, bucket_seconds=2 * DAY)
    with pytest.raises(ValueError, match="unknown dimension"):
        trends.trend("shoe_size", "42")
    with pytest.raises(ValueError, match="no jobs"):
        trends.trend("user", "nobody")


def test_synthetic_growth_detected():
    """A user whose usage grows linearly across every bucket must rank
    as the fastest grower with a significant slope (built in a private
    warehouse so the shared fixture stays immutable)."""
    from repro.ingest.warehouse import Warehouse
    from repro.xdmod.query import JobQuery

    wh = Warehouse()
    wh.add_system("t", 16, 16, 32.0, 2.3, 600.0)
    conn = wh.connection
    n_buckets = 8
    for bucket in range(n_buckets):
        t0 = bucket * 2 * DAY
        # "grower": 1, 2, 3, ... jobs per bucket; "steady": always 3.
        for j in range(1 + bucket):
            conn.execute(
                "INSERT INTO jobs VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                ("t", f"g-{bucket}-{j}", "grower", "TG-GROW",
                 "Physics", "custom_mpi", "normal", t0, t0 + 60,
                 t0 + 3660, 4, 64, "completed", 4.0),
            )
        for j in range(3):
            conn.execute(
                "INSERT INTO jobs VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                ("t", f"s-{bucket}-{j}", "steady", "TG-STDY",
                 "Physics", "custom_mpi", "normal", t0, t0 + 60,
                 t0 + 3660, 4, 64, "completed", 4.0),
            )
    conn.commit()
    trends = TrendAnalysis(JobQuery(wh, "t", metrics=()),
                           bucket_seconds=2 * DAY)
    grower = trends.trend("user", "grower")
    steady = trends.trend("user", "steady")
    assert grower.fit.slope == pytest.approx(4.0)  # +1 job x 4 nh / bucket
    assert grower.significant
    assert not steady.significant
    ranked = trends.all_trends("user")
    assert ranked[0].key == "grower"
    assert grower.forecast(2) > grower.node_hours[-1]
