"""Tests for the persistence analysis (Table 1 / Figure 6)."""

import numpy as np
import pytest

from repro.xdmod.persistence import (
    PERSISTENCE_METRICS,
    PersistenceAnalysis,
    offset_std_ratio,
)


def test_offset_std_ratio_white_noise_is_one():
    rng = np.random.default_rng(0)
    x = rng.normal(size=200_000)
    assert offset_std_ratio(x, 1) == pytest.approx(1.0, abs=0.01)
    assert offset_std_ratio(x, 50) == pytest.approx(1.0, abs=0.01)


def test_offset_std_ratio_ar1_matches_theory():
    """For AR(1): ratio(k) = sqrt(1 - rho^k)."""
    rho = 0.9
    rng = np.random.default_rng(1)
    eps = rng.normal(size=400_000)
    from scipy.signal import lfilter
    x = lfilter([1.0], [1.0, -rho], eps)
    for k in (1, 5, 20):
        assert offset_std_ratio(x, k) == pytest.approx(
            np.sqrt(1 - rho**k), abs=0.02
        )


def test_offset_std_ratio_validation():
    with pytest.raises(ValueError):
        offset_std_ratio(np.ones(100), 1)  # constant
    with pytest.raises(ValueError):
        offset_std_ratio(np.arange(10.0), 0)
    with pytest.raises(ValueError):
        offset_std_ratio(np.arange(5.0), 10)  # too short


@pytest.fixture(scope="module")
def analysis(fast_run):
    return PersistenceAnalysis(fast_run.warehouse, "ranger")


def test_table_covers_papers_five_metrics(analysis):
    rows = {r.metric: r for r in analysis.table()}
    assert set(rows) == set(PERSISTENCE_METRICS)
    for r in rows.values():
        assert len(r.ratios) == len(r.offsets_min)
        assert all(0 < x < 1.6 for x in r.ratios)


def test_ratios_monotone_increasing(analysis):
    """Predictability decays with offset (Table 1's rows all increase;
    we allow small estimator noise at the long-offset end, where the
    paper's own table has cpu_idle at 1.009 after 0.999)."""
    for row in analysis.table():
        for a, b in zip(row.ratios, row.ratios[1:]):
            assert b >= a - 0.05, row.metric


def test_logarithmic_model_fits(analysis):
    """Paper: 'they are all well fit by a logarithmic model' (R² .95+;
    our scaled replica accepts .75+)."""
    for row in analysis.table():
        assert row.fit_r_squared > 0.75, row.metric
        assert row.fit.slope > 0


def test_io_least_predictable(analysis):
    """Paper ordering: io_scratch_write is the least predictable."""
    order = analysis.predictability_order()
    assert order[0] == "io_scratch_write"
    assert order[1] == "net_ib_tx"


def test_combined_fit_matches_paper_band(analysis):
    """Figure 6 (Ranger): slope 0.36(2), intercept −0.17(6), R² 0.87.
    Shape-level check: slope in a band around the paper's, significant."""
    fit = analysis.combined_fit()
    assert 0.2 < fit.slope < 0.5
    assert fit.slope_p < 1e-4
    assert fit.r_squared > 0.6
    assert -0.4 < fit.intercept < 0.2


def test_predictability_horizon_near_job_length(analysis):
    """Paper: 'below 549 minutes we can predict ... above this value
    there is relatively little predictive ability' — the fitted ratio
    reaches 1.0 within a factor of a few of the mean job length."""
    for row in analysis.table():
        horizon = row.predictability_horizon_min()
        assert 100 < horizon < 10000, row.metric


def test_custom_offsets():
    pass  # covered implicitly; placeholder keeps intent documented


def test_missing_series_raises(fast_run):
    with pytest.raises(KeyError):
        PersistenceAnalysis(fast_run.warehouse, "ranger",
                            metrics={"x": "not_a_series"})
