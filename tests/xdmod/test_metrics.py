"""Tests for the metric metadata registry."""

from repro.ingest.summarize import KEY_METRICS, SUMMARY_METRICS
from repro.xdmod.metrics import METRIC_INFO, SERIES_NAMES
from repro.xdmod.persistence import PERSISTENCE_METRICS


def test_every_summary_metric_has_info():
    assert set(METRIC_INFO) == set(SUMMARY_METRICS)
    for info in METRIC_INFO.values():
        assert info.label
        assert info.unit
        assert info.description.endswith(".")


def test_key_metrics_order_matches_paper_radar():
    """§4.2 names them in this order; the radar charts rely on it."""
    assert KEY_METRICS == (
        "cpu_idle", "mem_used", "mem_used_max", "cpu_flops",
        "io_scratch_write", "io_work_write", "net_ib_tx", "net_lnet_tx",
    )


def test_only_idle_is_lower_better():
    lower = [m for m, i in METRIC_INFO.items() if i.lower_is_better]
    assert lower == ["cpu_idle"]


def test_persistence_series_are_registered():
    for series_name in PERSISTENCE_METRICS.values():
        assert series_name in SERIES_NAMES


def test_series_names_documented():
    for name, doc in SERIES_NAMES.items():
        assert doc, name
