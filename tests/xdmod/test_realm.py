"""Tests for the SUPReMM realm's dimension × statistic interface."""

import pytest

from repro.xdmod.realm import Statistic, SupremmRealm


@pytest.fixture(scope="module")
def realm(fast_query):
    return SupremmRealm(fast_query)


def test_catalog_contents(realm):
    assert "user" in realm.dimensions
    assert "science_field" in realm.dimensions
    for stat in ("job_count", "node_hours", "avg_cpu_idle",
                 "wasted_node_hours", "failure_rate", "avg_wait_hours"):
        assert stat in realm.statistics


def test_aggregate_by_field(realm, fast_query):
    rows = realm.aggregate("science_field", "node_hours")
    assert sum(v for _, v in rows) == pytest.approx(fast_query.node_hours)
    # Ordered heaviest-first.
    values = [v for _, v in rows]
    assert values == sorted(values, reverse=True)


def test_aggregate_job_count_total(realm, fast_query):
    rows = realm.aggregate("exit_status", "job_count")
    assert sum(v for _, v in rows) == len(fast_query)


def test_aggregate_with_filters_and_limit(realm):
    rows = realm.aggregate("user", "avg_cpu_idle",
                           filters={"app": "namd"}, limit=3)
    assert len(rows) <= 3
    for _, v in rows:
        assert 0.0 <= v <= 1.0


def test_value_single_aggregate(realm, fast_query):
    assert realm.value("job_count") == len(fast_query)
    assert realm.value("avg_cpu_idle") == pytest.approx(
        fast_query.weighted_mean("cpu_idle")
    )


def test_custom_statistic(realm):
    realm2 = SupremmRealm(realm.query)
    realm2.register_statistic(Statistic(
        "median_nodes", "Median job size", "nodes",
        lambda q: float(__import__("numpy").median(q.column("nodes"))),
    ))
    assert realm2.value("median_nodes") >= 1.0
    with pytest.raises(ValueError, match="already registered"):
        realm2.register_statistic(Statistic("median_nodes", "", "",
                                            lambda q: 0.0))


def test_unknown_names_rejected(realm):
    with pytest.raises(ValueError, match="unknown dimension"):
        realm.aggregate("shoe_size", "job_count")
    with pytest.raises(ValueError, match="unknown statistic"):
        realm.aggregate("user", "vibes")
    with pytest.raises(ValueError, match="unknown statistic"):
        realm.value("vibes")
