"""Tests for the CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro.xdmod.density import metric_density
from repro.xdmod.export import (
    density_chart,
    dump_json,
    groups_chart,
    groups_to_csv,
    profile_chart,
    series_chart,
    to_csv,
)
from repro.xdmod.profiles import UsageProfiler
from repro.xdmod.timeseries import SystemTimeseries


def test_to_csv_roundtrip():
    rows = [{"a": 1, "b": "x,y"}, {"a": 2, "b": "plain"}]
    text = to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed[0]["b"] == "x,y"
    assert [r["a"] for r in parsed] == ["1", "2"]


def test_to_csv_column_selection_and_validation():
    with pytest.raises(ValueError):
        to_csv([])
    text = to_csv([{"a": 1, "b": 2}], columns=["b"])
    assert text.splitlines()[0] == "b"


def test_groups_to_csv(fast_query):
    groups = fast_query.group_by("science_field", metrics=("cpu_idle",))
    text = groups_to_csv(groups, metrics=("cpu_idle",))
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == len(groups)
    assert float(parsed[0]["node_hours"]) >= float(parsed[-1]["node_hours"])


def test_profile_chart_json(fast_query):
    profiler = UsageProfiler(fast_query)
    user = fast_query.top("user", 1)[0]
    chart = profile_chart(profiler.profile("user", user))
    data = json.loads(dump_json(chart))
    assert data["kind"] == "radar"
    assert len(data["axes"]) == len(data["values"]) == 8
    assert data["baseline"] == 1.0
    assert data["meta"]["job_count"] > 0


def test_series_chart_decimation(fast_run):
    ts = SystemTimeseries(fast_run.warehouse, "ranger")
    active = ts.active_nodes()
    chart = series_chart(active, max_points=100)
    assert len(chart["t"]) <= 100
    assert len(chart["t"]) == len(chart["y"])
    assert chart["meta"]["peak"] == active.peak
    # Decimation preserves the mean closely.
    import numpy as np
    assert np.mean(chart["y"]) == pytest.approx(active.mean, rel=0.02)


def test_density_chart(fast_run):
    curve = metric_density(fast_run.query(), "mem_used")
    chart = density_chart(curve)
    assert chart["kind"] == "area"
    assert len(chart["x"]) == len(chart["y"])
    assert json.loads(dump_json(chart))["meta"]["mode"] == curve.mode


def test_groups_chart(fast_query):
    groups = fast_query.group_by("app", metrics=("mem_used",))
    chart = groups_chart(groups[:5], "mem_used", "memory by app")
    assert len(chart["labels"]) == 5
    chart_nh = groups_chart(groups[:5], None, "hours by app")
    assert chart_nh["meta"]["metric"] == "node_hours"
    with pytest.raises(ValueError):
        groups_chart([], None, "empty")
