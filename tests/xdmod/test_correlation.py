"""Tests for metric correlation and independent-set selection (§4.2)."""

import numpy as np
import pytest

from repro.ingest.summarize import KEY_METRICS
from repro.xdmod.correlation import (
    correlation_matrix,
    select_independent,
    strong_pairs,
)


@pytest.fixture(scope="module")
def corr(fast_query):
    return correlation_matrix(fast_query)


def test_matrix_well_formed(corr):
    names, r = corr
    assert r.shape == (len(names), len(names))
    np.testing.assert_allclose(np.diag(r), 1.0)
    np.testing.assert_allclose(r, r.T)


def test_papers_redundant_pairs_found(corr):
    """§4.2: cpu_user anti-correlates with cpu_idle; net_ib_rx correlates
    with net_ib_tx."""
    names, r = corr
    i = {n: k for k, n in enumerate(names)}
    assert r[i["cpu_user"], i["cpu_idle"]] < -0.8
    assert r[i["net_ib_rx"], i["net_ib_tx"]] > 0.8
    assert r[i["net_lnet_rx"], i["net_lnet_tx"]] > 0.5


def test_strong_pairs_sorted(corr):
    names, r = corr
    pairs = strong_pairs(names, r, threshold=0.8)
    assert pairs
    mags = [abs(c) for _, _, c in pairs]
    assert mags == sorted(mags, reverse=True)
    flat = {p for a, b, _ in pairs for p in (a, b)}
    assert "cpu_user" in flat or "cpu_idle" in flat


def test_select_independent_drops_redundant(corr):
    names, r = corr
    kept = select_independent(names, r, threshold=0.8,
                              priority=KEY_METRICS)
    # The paper's key metrics survive as the independent core...
    for m in ("cpu_idle", "mem_used", "cpu_flops", "io_scratch_write",
              "net_ib_tx"):
        assert m in kept
    # ...and their mirrors are dropped.
    assert "cpu_user" not in kept
    assert "net_ib_rx" not in kept


def test_select_independent_pairwise_property(corr):
    names, r = corr
    kept = select_independent(names, r, threshold=0.8)
    idx = {n: k for k, n in enumerate(names)}
    for a in kept:
        for b in kept:
            if a != b:
                assert abs(r[idx[a], idx[b]]) < 0.8


def test_select_independent_validation():
    with pytest.raises(ValueError):
        select_independent(["a"], np.ones((2, 2)))


def test_constant_metric_excluded(fast_query):
    # Simulate by asking for a tiny metric set; none constant here, but
    # the API must reject a single-column request.
    with pytest.raises(ValueError):
        correlation_matrix(fast_query, metrics=("cpu_idle",))
