"""Tests for the wasted-node-hours analysis (Figure 4/5 data)."""

import pytest

from repro.xdmod.efficiency import EfficiencyAnalysis


@pytest.fixture(scope="module")
def eff(fast_query):
    return EfficiencyAnalysis(fast_query)


def test_users_cover_all_node_hours(eff, fast_query):
    total = sum(u.node_hours for u in eff.users)
    assert total == pytest.approx(fast_query.node_hours)
    assert all(0 <= u.idle_fraction <= 1 for u in eff.users)
    assert all(u.wasted_node_hours <= u.node_hours + 1e-9 for u in eff.users)


def test_facility_efficiency_near_config_target(eff):
    """Figure 4 (Ranger): average efficiency ≈ 90 %."""
    assert eff.facility_efficiency == pytest.approx(0.90, abs=0.04)


def test_facility_efficiency_is_weighted_idle_complement(eff, fast_query):
    assert eff.facility_efficiency == pytest.approx(
        1.0 - fast_query.weighted_mean("cpu_idle")
    )


def test_scatter_shapes(eff):
    x, y, names = eff.scatter()
    assert x.shape == y.shape == (len(names),)
    assert (y <= x + 1e-9).all()  # wasted <= total


def test_users_above_line(eff):
    above = eff.users_above_line()
    line_idle = 1.0 - eff.facility_efficiency
    assert all(u.idle_fraction > line_idle for u in above)
    assert 0 < len(above) < len(eff.users)


def test_worst_heavy_user_is_the_planted_pathology(eff):
    """The circled user of Figures 4/5: a heavy consumer wasting most of
    their node-hours (paper: 87-89 % idle)."""
    worst = eff.worst_heavy_user()
    assert worst.idle_fraction > 0.5
    # Genuinely heavy: inside the top quarter by node-hours.
    ranked = [u.user for u in eff.users]
    assert ranked.index(worst.user) < max(1, len(ranked) // 4)
    assert worst.job_count >= 3


def test_wasted_total_consistent(eff, fast_query):
    assert eff.wasted_total() == pytest.approx(
        fast_query.node_hours * fast_query.weighted_mean("cpu_idle"),
        rel=1e-6,
    )
