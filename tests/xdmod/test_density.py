"""Tests for the KDE distribution analyses (Figures 10/12 data)."""

import numpy as np
import pytest

from repro.xdmod.density import metric_density, series_density


def test_flops_distribution_shape(fast_run):
    """Figure 10: the bulk of the FLOPS density sits far below peak."""
    curve = series_density(fast_run.warehouse, "ranger", "flops_tf")
    peak = fast_run.config.peak_tflops
    assert curve.mean < 0.2 * peak
    assert (curve.grid >= 0).all()
    # Density normalizes (over the clipped grid most mass remains).
    total = float(np.trapezoid(curve.density, curve.grid))
    assert total == pytest.approx(1.0, abs=0.1)


def test_memory_distribution_mean_vs_max(fast_run):
    """Figure 12: the mem_used_max curve sits right of mem_used; on
    Ranger even the max stays well under capacity."""
    q = fast_run.query()
    mean_curve = metric_density(q, "mem_used")
    max_curve = metric_density(q, "mem_used_max")
    assert max_curve.mean > mean_curve.mean
    capacity = fast_run.config.node.memory_gb
    assert mean_curve.mean < 0.5 * capacity
    assert max_curve.fraction_above(capacity) < 0.05


def test_node_hour_weighting_changes_curve(fast_run):
    q = fast_run.query()
    weighted = metric_density(q, "cpu_idle", weight_by_node_hours=True)
    unweighted = metric_density(q, "cpu_idle", weight_by_node_hours=False)
    assert weighted.mean != pytest.approx(unweighted.mean, rel=1e-6)


def test_label_defaults(fast_run):
    curve = metric_density(fast_run.query(), "cpu_idle")
    assert curve.label == "cpu_idle"
    curve2 = series_density(fast_run.warehouse, "ranger", "flops_tf",
                            label="Ranger FLOPS")
    assert curve2.label == "Ranger FLOPS"


def test_fraction_above_bounds(fast_run):
    curve = metric_density(fast_run.query(), "mem_used")
    assert curve.fraction_above(curve.grid[-1] + 1) == 0.0
    assert curve.fraction_above(0.0) == pytest.approx(1.0, abs=0.1)
