"""Tests for system-level time series (Figures 7b/7c, 8, 9, 11)."""

import numpy as np
import pytest

from repro.xdmod.timeseries import SystemTimeseries


@pytest.fixture(scope="module")
def ts(fast_run):
    return SystemTimeseries(fast_run.warehouse, "ranger")


def test_active_nodes_figure8(ts, fast_run):
    active = ts.active_nodes()
    n = fast_run.config.num_nodes
    assert active.peak == n
    assert active.mean > 0.8 * n  # mostly up
    assert active.minimum >= 0


def test_flops_figure9(ts, fast_run):
    """Mean system FLOPS is a small fraction of benchmarked peak
    (paper: <20 TF of 579 TF ≈ 3.5 %; we accept 1-15 %)."""
    frac = ts.flops_fraction_of_peak()
    assert 0.01 < frac < 0.15
    flops = ts.flops()
    assert flops.peak < 0.5 * fast_run.config.peak_tflops


def test_memory_figure11(ts, fast_run):
    """Ranger: average memory per node well under capacity; peaks below
    half of the installed 32 GB."""
    frac = ts.memory_fraction_of_capacity()
    assert 0.05 < frac < 0.5
    mem = ts.memory_per_node()
    assert mem.peak < fast_run.config.node.memory_gb


def test_cpu_hours_split_figure7b(ts):
    split = ts.cpu_hours_split()
    assert set(split) == {"user", "sys", "idle"}
    user = split["user"].values
    sys_ = split["sys"].values
    idle = split["idle"].values
    total = user + sys_ + idle
    # iowait/irq are folded into busy time we don't series-ize; the three
    # series must still be a near-partition of CPU time.
    ok = total[(user + idle) > 0]
    assert np.percentile(np.abs(ok - 1.0), 90) < 0.15
    assert user.mean() > idle[idle < 1.0].mean()


def test_lustre_rates_figure7c(ts):
    rates = ts.lustre_rates()
    assert set(rates) == {"scratch", "work", "share"}
    # Scratch dominates (purged, large-quota -> where jobs write).
    assert rates["scratch"].mean > 5 * rates["work"].mean
    assert rates["work"].mean > rates["share"].mean


def test_series_summary_helpers(ts):
    active = ts.active_nodes()
    assert active.time_at_zero_fraction() < 0.1
    with pytest.raises(ValueError):
        active.fraction_of(0.0)


def test_unknown_series_raises(fast_run):
    ts = SystemTimeseries(fast_run.warehouse, "ranger")
    with pytest.raises(KeyError):
        ts._get("nonexistent")
