"""Tests for the per-job drill-down viewer."""

import io

import numpy as np
import pytest

from repro.cluster.hardware import ranger_node
from repro.cluster.node import Node
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import parse_host_text
from repro.util.rng import RngFactory
from repro.workload.applications import get_app
from repro.workload.behavior import JobBehavior
from repro.workload.users import generate_users
from repro.xdmod.jobview import job_timeline


@pytest.fixture(scope="module")
def collected_job():
    users = generate_users(5, RngFactory(4).stream("u"))
    user = next(u for u in users if u.persona == "efficient")
    behavior = JobBehavior(get_app("wrf"), user, ranger_node(), 3,
                           duration=4 * 3600.0, sample_interval=600.0,
                           behavior_seed=21)
    hosts = []
    for slot in range(3):
        node = Node(index=slot, hostname=f"c000-{slot:03d}.t",
                    hardware=ranger_node())
        buf = io.StringIO()
        daemon = TaccStatsDaemon(node, RngFactory(slot).stream("n"),
                                 StatsWriter(buf, node.hostname))
        daemon.begin_job("77", 0.0, behavior, slot)
        for t in range(600, 4 * 3600, 600):
            daemon.sample(float(t))
        daemon.end_job("77", 4 * 3600.0)
        hosts.append(parse_host_text(buf.getvalue()))
    return behavior, hosts


def test_timeline_structure(collected_job):
    _, hosts = collected_job
    tl = job_timeline("77", hosts)
    assert tl.jobid == "77"
    assert len(tl.hostnames) == 3
    assert tl.n_intervals == 24  # begin + 23 ticks + end = 25 samples
    for name, mat in tl.series.items():
        assert mat.shape == (3, tl.n_intervals) or mat.shape[1] == tl.n_intervals
    assert (np.diff(tl.times) > 0).all()


def test_timeline_values_physical(collected_job):
    behavior, hosts = collected_job
    tl = job_timeline("77", hosts)
    user = tl.host_mean("cpu_user_frac")
    idle = tl.host_mean("cpu_idle_frac")
    assert ((user >= 0) & (user <= 1)).all()
    assert ((idle >= 0) & (idle <= 1)).all()
    mem = tl.host_mean("mem_used_gb")
    assert (mem < 32.0).all()
    assert (tl.host_mean("flops_gf") >= 0).all()


def test_timeline_matches_behavior(collected_job):
    """The viewer's mean user fraction tracks the behaviour model."""
    behavior, hosts = collected_job
    tl = job_timeline("77", hosts)
    from repro.workload.applications import RATE_INDEX
    expected = behavior.rates_matrix(24)[:, RATE_INDEX["cpu_user_frac"]]
    observed = tl.host_mean("cpu_user_frac")
    assert np.corrcoef(expected, observed)[0, 1] > 0.9


def test_straggler_detection(collected_job):
    _, hosts = collected_job
    tl = job_timeline("77", hosts)
    host, deviation = tl.straggler("mem_used_gb")
    assert host in tl.hostnames
    # Node 0 (rank 0) carries extra memory by construction.
    assert host.endswith("000.t")
    assert deviation > 0


def test_render(collected_job):
    _, hosts = collected_job
    text = job_timeline("77", hosts).render()
    assert "Job timeline — 77" in text
    assert "flops_gf" in text


def test_validation(collected_job):
    _, hosts = collected_job
    with pytest.raises(ValueError):
        job_timeline("77", [])
    with pytest.raises(ValueError, match="no host stream"):
        job_timeline("unknown-job", hosts)
