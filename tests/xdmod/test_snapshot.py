"""Tests for the columnar warehouse snapshot (frames + encoding)."""

import numpy as np
import pytest

from repro.ingest.summarize import SUMMARY_METRICS
from repro.xdmod.snapshot import DIMENSIONS, WarehouseSnapshot


@pytest.fixture
def snapshot(fast_run):
    return WarehouseSnapshot.for_warehouse(fast_run.warehouse)


def test_frame_matches_job_table(fast_run, snapshot):
    """The bulk-loaded frame must agree column-for-column with the
    per-call job_table path over the fully summarized rows."""
    table = fast_run.warehouse.job_table("ranger")
    frame = snapshot.frame("ranger")
    mask = frame.complete_mask(SUMMARY_METRICS)
    assert mask.sum() == len(table["jobid"])
    assert (frame.jobid[mask] == table["jobid"]).all()
    for dim in DIMENSIONS:
        assert (frame.decode(dim)[mask] == table[dim]).all()
    for col in ("nodes", "node_hours", "start_time") + SUMMARY_METRICS:
        np.testing.assert_allclose(frame.numeric[col][mask], table[col])


def test_dictionary_encoding_roundtrip(snapshot):
    frame = snapshot.frame("ranger")
    for dim in DIMENSIONS:
        codes = frame.codes[dim]
        assert codes.dtype == np.int32
        uniq = frame.uniques[dim]
        assert list(uniq) == sorted(set(uniq))
        # decode(codes) reproduces the raw strings; code_of inverts it.
        decoded = frame.decode(dim)
        assert (uniq[codes] == decoded).all()
        for c, v in enumerate(uniq):
            assert frame.code_of(dim, v) == c
        assert frame.code_of(dim, "no-such-value") == -1


def test_snapshot_reused_until_data_version_moves(fast_run):
    wh = fast_run.warehouse
    s1 = WarehouseSnapshot.for_warehouse(wh)
    assert WarehouseSnapshot.for_warehouse(wh) is s1
    assert s1.stamp == wh.data_version
    WarehouseSnapshot.invalidate(wh)
    s2 = WarehouseSnapshot.for_warehouse(wh)
    assert s2 is not s1
    # Same data version: frames describe the same rows.
    assert s2.frame("ranger").n_rows == s1.frame("ranger").n_rows


def test_snapshot_arrays_are_frozen(snapshot):
    frame = snapshot.frame("ranger")
    with pytest.raises(ValueError):
        frame.numeric["node_hours"][0] = 0.0
    with pytest.raises(ValueError):
        frame.codes["user"][0] = 0
    t, v = snapshot.series("ranger", "flops_tf")
    with pytest.raises(ValueError):
        v[0] = -1.0


def test_series_loaded_once_and_shared(fast_run, snapshot):
    t1, v1 = snapshot.series("ranger", "flops_tf")
    t2, v2 = snapshot.series("ranger", "flops_tf")
    assert t1 is t2 and v1 is v2
    t3, v3 = fast_run.warehouse.series("ranger", "flops_tf")
    np.testing.assert_allclose(v1, v3)


def test_covering_index_present(fast_run):
    names = [r[0] for r in fast_run.warehouse.connection.execute(
        "SELECT name FROM sqlite_master WHERE type='index'")]
    assert "idx_metrics_covering" in names


def test_covering_index_added_to_legacy_file(tmp_path):
    """A pre-engine warehouse file gains the index on reopen."""
    from repro.ingest.warehouse import Warehouse
    path = str(tmp_path / "legacy.sqlite")
    w = Warehouse(path)
    w.add_system("t", 4, 16, 32.0, 0.5, 600.0)
    w.commit()
    w.connection.execute("DROP INDEX idx_metrics_covering")
    w.connection.commit()
    w.close()
    w2 = Warehouse(path)
    names = [r[0] for r in w2.connection.execute(
        "SELECT name FROM sqlite_master WHERE type='index'")]
    assert "idx_metrics_covering" in names
    w2.close()
