"""Tests for the memoized query/report cache on the warehouse snapshot."""

import pytest

from repro.ingest.summarize import SUMMARY_METRICS, JobSummary
from repro.ingest.warehouse import Warehouse
from repro.scheduler.job import ExitStatus, JobRecord
from repro.xdmod.query import JobQuery
from repro.xdmod.snapshot import (
    WarehouseSnapshot,
    cache_enabled,
    set_cache_enabled,
)
from tests.scheduler.test_job import make_request


@pytest.fixture
def wh():
    w = Warehouse()
    for name in ("alpha", "beta"):
        w.add_system(name, num_nodes=16, cores_per_node=16,
                     mem_gb_per_node=32.0, peak_tflops=2.3,
                     sample_interval=600.0)
    return w


def add_job(wh, system, jobid, user="u1", idle=0.1, nodes=2, app="namd"):
    req = make_request(jobid=jobid, user=user, nodes=nodes, app=app)
    rec = JobRecord(req, 0.0, 3600.0, tuple(range(nodes)),
                    ExitStatus.COMPLETED)
    metrics = {m: 1.0 for m in SUMMARY_METRICS}
    metrics["cpu_idle"] = idle
    wh.add_job(system, rec, 16, JobSummary(jobid, metrics, nodes, 3600.0, 6))


def test_warm_results_equal_cold(wh):
    for i in range(8):
        add_job(wh, "alpha", str(i), user=f"u{i % 3}", idle=0.1 * (i % 4))
    wh.commit()
    q = JobQuery(wh, "alpha")
    cold_groups = q.group_by("user", metrics=("cpu_idle",))
    cold_hours = q.node_hours
    snap = WarehouseSnapshot.for_warehouse(wh)
    misses = snap.cache_stats["misses"]
    # Same query again, and via a fresh JobQuery object: all memo hits.
    q2 = JobQuery(wh, "alpha")
    assert q2.group_by("user", metrics=("cpu_idle",)) == cold_groups
    assert q2.node_hours == cold_hours
    stats = snap.cache_stats
    assert stats["misses"] == misses
    assert stats["hits"] >= 2


def test_commit_invalidates_cache(wh):
    """An append moves the data version; the refreshed snapshot must
    drop the affected system's memoized results and serve fresh data
    (the snapshot object itself may survive via delta refresh)."""
    add_job(wh, "alpha", "1", user="u1")
    wh.commit()
    q = JobQuery(wh, "alpha")
    assert len(q.group_by("user", metrics=())) == 1
    old_stamp = WarehouseSnapshot.for_warehouse(wh).stamp

    add_job(wh, "alpha", "2", user="u2")
    wh.commit()
    q2 = JobQuery(wh, "alpha")
    new_snap = WarehouseSnapshot.for_warehouse(wh)
    assert new_snap.stamp != old_stamp
    assert len(q2.group_by("user", metrics=())) == 2


def test_uncommitted_writes_also_refresh(wh):
    """Buffered (not yet committed) rows still move data_version, so
    analytics never see a stale frame."""
    add_job(wh, "alpha", "1")
    wh.commit()
    assert len(JobQuery(wh, "alpha")) == 1
    add_job(wh, "alpha", "2")  # no commit
    assert len(JobQuery(wh, "alpha")) == 2


def test_multi_system_isolation(wh):
    add_job(wh, "alpha", "1", user="ua", idle=0.2)
    add_job(wh, "beta", "1", user="ub", idle=0.6)
    add_job(wh, "beta", "2", user="ub", idle=0.6)
    wh.commit()
    qa = JobQuery(wh, "alpha")
    qb = JobQuery(wh, "beta")
    # Both live on one snapshot, but keys embed the system.
    assert qa._snapshot is qb._snapshot
    ga = qa.group_by("user", metrics=("cpu_idle",))
    gb = qb.group_by("user", metrics=("cpu_idle",))
    assert [g.key for g in ga] == ["ua"]
    assert [g.key for g in gb] == ["ub"]
    assert ga[0].mean("cpu_idle") == pytest.approx(0.2)
    assert gb[0].mean("cpu_idle") == pytest.approx(0.6)
    assert qa.node_hours != qb.node_hours


def test_cache_disable_toggle(wh):
    add_job(wh, "alpha", "1")
    wh.commit()
    assert cache_enabled()
    q = JobQuery(wh, "alpha")
    snap = WarehouseSnapshot.for_warehouse(wh)
    try:
        set_cache_enabled(False)
        assert not cache_enabled()
        before = snap.cache_stats
        r1 = q.group_by("user", metrics=())
        r2 = q.group_by("user", metrics=())
        assert r1 == r2
        after = snap.cache_stats
        # Nothing was stored or served from the memo.
        assert after == before
    finally:
        set_cache_enabled(True)


def test_report_render_memoized(wh):
    from repro.xdmod.reports import FundingAgencyReport
    for i in range(6):
        add_job(wh, "alpha", str(i), user=f"u{i % 2}", idle=0.2)
    wh.commit()
    report = FundingAgencyReport(wh, "alpha")
    text1 = report.render()
    snap = WarehouseSnapshot.for_warehouse(wh)
    hits = snap.cache_stats["hits"]
    # Second render — even from a new report object — is one memo hit.
    assert FundingAgencyReport(wh, "alpha").render() == text1
    assert snap.cache_stats["hits"] > hits
