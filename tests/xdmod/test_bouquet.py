"""Tests for the bouquet-of-machines analysis (§5)."""

import pytest

from repro import LONESTAR4, RANGER, Facility
from repro.ingest.warehouse import Warehouse
from repro.xdmod.bouquet import BouquetAnalysis


@pytest.fixture(scope="module")
def two_system_warehouse():
    wh = Warehouse()
    Facility(RANGER.scaled(num_nodes=32, horizon_days=15, n_users=150),
             seed=4).run(warehouse=wh, with_syslog=False)
    Facility(LONESTAR4.scaled(num_nodes=24, horizon_days=15, n_users=130),
             seed=4).run(warehouse=wh, with_syslog=False)
    return wh


def test_needs_two_systems(fast_run):
    with pytest.raises(ValueError, match="two systems"):
        BouquetAnalysis(fast_run.warehouse)


def test_placements_structure(two_system_warehouse):
    bouquet = BouquetAnalysis(two_system_warehouse)
    placements = bouquet.placements()
    assert placements
    for p in placements:
        assert len(p.per_system) >= 2
        assert p.best_system in p.per_system
        best_eff = p.per_system[p.best_system]["efficiency"]
        for scores in p.per_system.values():
            assert scores["efficiency"] <= best_eff + 1e-12
    savings = [p.savings_node_hours for p in placements]
    assert savings == sorted(savings, reverse=True)


def test_amber_steered_by_efficiency(two_system_warehouse):
    """AMBER's best system is whichever ran it more efficiently — and the
    recommendation must be internally consistent with the scores."""
    bouquet = BouquetAnalysis(two_system_warehouse)
    amber = [p for p in bouquet.placements() if p.app == "amber"]
    if not amber:
        pytest.skip("amber below the per-system job floor in this seed")
    p = amber[0]
    assert p.best_system == max(
        p.per_system, key=lambda s: p.per_system[s]["efficiency"])


def test_total_savings_nonnegative(two_system_warehouse):
    bouquet = BouquetAnalysis(two_system_warehouse)
    assert bouquet.total_savings() >= 0.0


def test_render(two_system_warehouse):
    text = BouquetAnalysis(two_system_warehouse).render()
    assert "BOUQUET ANALYSIS" in text
    assert "steer to" in text
    assert "ranger" in text and "lonestar4" in text
