"""Incremental (ledger-driven) ingest: the O(delta) ETL guarantees.

The headline property, proved with hypothesis: splitting an archive's
day range into ANY sequence of contiguous append batches produces a
warehouse byte-identical to the one-shot ingest — jobs, metrics, series
and syslog rows all equal — including when one batch carries a
quarantined fault.  Plus the supporting contracts: manifest
fingerprinting, ledger validation (mutated/vanished files), deferral
and watermark accounting, and archive-stats resume on reopen.
"""

import io
import shutil
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TEST_SYSTEM
from repro.facility import Facility
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.syslogr.catalog import MessageKind
from repro.syslogr.rationalizer import RationalizedMessage
from repro.tacc_stats.archive import HostArchive
from repro.testing.faults import inject_fault
from repro.util.timeutil import DAY, date_to_day_index

N_DAYS = 3


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A finished 3-day archive plus accounting, Lariat and syslog."""
    cfg = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=N_DAYS, n_users=6)
    archive_dir = str(tmp_path_factory.mktemp("inc_corpus"))
    run = Facility(cfg, seed=11).run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    # Synthetic but realistic syslog: one epilog per job at its end
    # time — spread over the whole horizon, so the append path's
    # watermark window is genuinely exercised.
    syslog = [
        RationalizedMessage(time=r.end_time, host=f"c000-{0:03d}.{cfg.name}",
                            jobid=r.jobid, kind=MessageKind.JOB_EPILOG,
                            text=f"epilog {r.jobid}")
        for r in run.records
    ]
    return cfg, archive_dir, buf.getvalue(), lariat, syslog


def _archive_days(archive_dir):
    """All day strings present in the archive, sorted ascending."""
    archive = HostArchive(archive_dir)
    days = set()
    for host in archive.hostnames():
        for _h, day in archive.manifest(hosts=[host]):
            days.add(day)
    return sorted(days)


def _copy_days(src, dst, days):
    """Copy every host's files for *days* from archive *src* to *dst*."""
    src, dst = Path(src), Path(dst)
    wanted = set(days)
    for hostdir in sorted(p for p in src.iterdir() if p.is_dir()):
        for f in sorted(hostdir.iterdir()):
            day = f.name[:-3] if f.name.endswith(".gz") else f.name
            if day in wanted:
                (dst / hostdir.name).mkdir(parents=True, exist_ok=True)
                shutil.copy2(f, dst / hostdir.name / f.name)


def _ingest(corpus, root, warehouse=None, **kw):
    cfg, _dir, accounting, lariat, syslog = corpus
    w = warehouse if warehouse is not None else Warehouse()
    report = IngestPipeline(w).ingest(
        cfg, accounting_text=accounting, archive=HostArchive(root),
        lariat_records=lariat, syslog=syslog, **kw)
    return w, report


def _data_rows(w):
    """The byte-comparison view: every analytics-visible row, ordered.

    The ledger/meta tables are deliberately excluded — run ids and
    health legitimately differ between one-shot and batched ingests.
    """
    w.commit()
    return {
        table: w.connection.execute(
            f"SELECT {cols} FROM {table} ORDER BY {cols}").fetchall()
        for table, cols in [
            ("jobs", "system, jobid, user, account, science_field, app, "
                     "queue, exit_status, submit_time, start_time, "
                     "end_time, nodes, cores, node_hours"),
            ("job_metrics", "system, jobid, metric, value"),
            ("system_series", "system, metric, t, value"),
            ("syslog_events", "system, t, host, jobid, kind, severity"),
        ]
    }


# -- the headline property ---------------------------------------------------


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_any_day_partition_equals_oneshot(corpus, tmp_path_factory, data):
    """Random contiguous day-chunk partitions: K append batches produce
    a warehouse byte-identical to one-shot ingest of the full archive."""
    days = _archive_days(corpus[1])
    cuts = data.draw(st.sets(st.sampled_from(range(1, len(days))),
                             max_size=len(days) - 1), label="cuts")
    bounds = [0, *sorted(cuts), len(days)]
    chunks = [days[lo:hi] for lo, hi in zip(bounds, bounds[1:])]

    oneshot, _ = _ingest(corpus, corpus[1])

    growing = tmp_path_factory.mktemp("growing")
    w = Warehouse()
    for chunk in chunks:
        _copy_days(corpus[1], growing, chunk)
        _ingest(corpus, growing, warehouse=w, mode="append")
    assert _data_rows(w) == _data_rows(oneshot)


def test_partition_with_quarantined_fault_equals_oneshot(
        corpus, tmp_path_factory):
    """A fatal fault in the first batch: batched repair-mode ingest still
    equals one-shot repair-mode ingest of the same faulted archive."""
    days = _archive_days(corpus[1])
    faulted = tmp_path_factory.mktemp("faulted")
    _copy_days(corpus[1], faulted, days)
    victim = sorted(p for p in Path(faulted).iterdir() if p.is_dir())[1]
    inject_fault(sorted(victim.iterdir())[0], "bit_flip", seed=5)

    oneshot, oneshot_report = _ingest(corpus, faulted,
                                      error_policy="repair")
    assert oneshot_report.health.hosts_degraded  # the fault registered

    growing = tmp_path_factory.mktemp("growing_faulted")
    w = Warehouse()
    for chunk in (days[:1], days[1:]):
        _copy_days(faulted, growing, chunk)
        _, report = _ingest(corpus, growing, warehouse=w, mode="append",
                            error_policy="repair")
    assert _data_rows(w) == _data_rows(oneshot)
    # The faulted host-day is consumed WITH its outcome in the ledger.
    ledger = w.ledger_map(corpus[0].name)
    assert any(e.status == "degraded" for e in ledger.values())


# -- plan accounting ---------------------------------------------------------


def test_windowed_seed_defers_and_append_completes(corpus, tmp_path):
    """through_day windows the ingest; the append run loads exactly the
    deferred remainder and the watermarks advance day by day."""
    w, seed_report = _ingest(corpus, corpus[1], through_day=2)
    assert seed_report.mode == "full"
    assert seed_report.delta is not None
    assert seed_report.delta.jobs_deferred > 0
    assert seed_report.delta.watermark_after == 2 * DAY

    _, append_report = _ingest(corpus, corpus[1], warehouse=w,
                               mode="append")
    assert append_report.mode == "append"
    d = append_report.delta
    assert d.watermark_before == 2 * DAY
    assert d.jobs_deferred == 0
    assert d.files_skipped > 0  # unchanged files were never reopened
    assert seed_report.jobs_loaded + append_report.jobs_loaded == \
        _ingest(corpus, corpus[1])[1].jobs_loaded


def test_append_on_unchanged_archive_is_noop(corpus):
    """Re-appending with nothing new parses nothing and loads nothing."""
    w, _ = _ingest(corpus, corpus[1])
    before = _data_rows(w)
    _, report = _ingest(corpus, corpus[1], warehouse=w, mode="append")
    assert report.jobs_loaded == 0
    assert report.delta.files_new == 0
    assert report.delta.files_lookback == 0
    assert report.syslog_events_loaded == 0
    assert _data_rows(w) == before


def test_mutated_ledgered_file_raises(corpus, tmp_path):
    """Append mode assumes append-only archives: a hash drift on a
    ledgered file is a contract violation, not a silent re-ingest."""
    root = tmp_path / "archive"
    shutil.copytree(corpus[1], root)
    w, _ = _ingest(corpus, root)
    victim = sorted(sorted(
        p for p in root.iterdir() if p.is_dir())[0].iterdir())[0]
    inject_fault(victim, "duplicate_timestamp", seed=3)  # benign but new
    with pytest.raises(ValueError, match="mutated"):
        _ingest(corpus, root, warehouse=w, mode="append")


def test_vanished_ledgered_file_raises(corpus, tmp_path):
    root = tmp_path / "archive"
    shutil.copytree(corpus[1], root)
    w, _ = _ingest(corpus, root)
    victim = sorted(sorted(
        p for p in root.iterdir() if p.is_dir())[0].iterdir())[0]
    victim.unlink()
    with pytest.raises(ValueError, match="vanished"):
        _ingest(corpus, root, warehouse=w, mode="append")


def test_mode_validation(corpus):
    cfg = corpus[0]
    pipe = IngestPipeline(Warehouse())
    with pytest.raises(ValueError, match="mode"):
        pipe.ingest(cfg, "", archive=HostArchive(corpus[1]),
                    mode="sideways")
    with pytest.raises(ValueError, match="archive"):
        pipe.ingest(cfg, "", hosts=[], mode="append")
    with pytest.raises(ValueError, match="through_day"):
        pipe.ingest(cfg, "", archive=HostArchive(corpus[1]),
                    through_day=0)
    with pytest.raises(ValueError, match="full"):
        pipe.ingest(cfg, "", archive=HostArchive(corpus[1]),
                    mode="append", through_day=1)


# -- manifest & fingerprints -------------------------------------------------


def test_manifest_fingerprints_are_stable(corpus):
    """Two manifests of an untouched archive are identical, and the raw
    size of a gz file equals its decompressed length."""
    import gzip

    from repro.tacc_stats.archive import _raw_size

    archive = HostArchive(corpus[1])
    m1, m2 = archive.manifest(), archive.manifest()
    assert m1 == m2
    (host, day), fp = sorted(m1.items())[0]
    path = Path(fp.path)
    assert fp.size == path.stat().st_size
    if path.name.endswith(".gz"):
        # The ISIZE-trailer shortcut equals a real decompression.
        assert _raw_size(path) == len(gzip.decompress(path.read_bytes()))


def test_ledger_row_ranges_partition_the_tables(corpus):
    """Every warehouse row is attributed to exactly one ingest run."""
    w, _ = _ingest(corpus, corpus[1], through_day=2)
    _ingest(corpus, corpus[1], warehouse=w, mode="append")
    runs = w.ingest_runs(corpus[0].name)
    assert [r["mode"] for r in runs] == ["full", "append"]
    for table in ("jobs", "job_metrics", "syslog_events"):
        spans = [tuple(r["row_ranges"][table]) for r in runs]
        # Half-open, contiguous, and covering: 0..max rowid.
        assert spans[0][0] == 0
        assert spans[0][1] == spans[1][0]
        assert spans[1][1] == w._max_rowid(table)


# -- archive stats resume (rotation/close across sessions) -------------------


def test_archive_stats_resume_from_disk(corpus, tmp_path):
    """Reopening an existing archive root resumes ArchiveStats from the
    files on disk instead of starting from zero."""
    src = HostArchive(corpus[1])
    fresh = src.stats
    reopened = HostArchive(corpus[1])
    assert reopened.stats.file_count == fresh.file_count
    assert reopened.stats.host_days == fresh.host_days
    assert reopened.stats.raw_bytes == fresh.raw_bytes
    assert reopened.stats.compressed_bytes == fresh.compressed_bytes
    assert reopened.stats.file_count == sum(
        1 for h in reopened.hostnames() for _ in reopened.host_files(h))


def _write_one_day(archive, t=100.0):
    from repro.tacc_stats.schema import SchemaEntry, TypeSchema

    writer = archive.writer("c001", t)
    writer.register_schema(
        TypeSchema("cpu", (SchemaEntry("user", is_event=True),)))
    writer.begin_block(t)
    writer.write_row("cpu", "0", [1])


def test_rewriting_a_host_day_swaps_not_adds(tmp_path):
    """Writing the same host-day twice (rotation after reopen) replaces
    its tally instead of double-counting it."""
    root = tmp_path / "arch"
    archive = HostArchive(root)
    _write_one_day(archive)
    archive.close()
    first = (archive.stats.file_count, archive.stats.raw_bytes)

    again = HostArchive(root)
    _write_one_day(again)
    again.close()
    assert again.stats.file_count == first[0]
    assert again.stats.host_days == 1
    assert again.stats.raw_bytes == first[1]


def test_day_strings_round_trip(corpus):
    """Archive day strings map to day indices and back consistently."""
    for day in _archive_days(corpus[1]):
        idx = date_to_day_index(day)
        assert idx >= 0
        from repro.util.timeutil import day_index_to_date
        assert day_index_to_date(idx) == day
