"""Tests for the parallel ingest engine and its edge cases.

Covers the corners the fan-out must not change: empty host files
(node down all day), truncated trailing lines under ``allow_truncated``,
multi-wrap 32-bit InfiniBand counters through the chained delta, and the
headline guarantee — the warehouse a pooled ingest produces is
byte-identical to the serial one.
"""

import io

import numpy as np
import pytest

from repro.config import TEST_SYSTEM
from repro.facility import Facility
from repro.ingest.parallel import (
    HostScan,
    effective_workers,
    scan_archive,
    scan_host_data,
)
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.summarize import _chained_delta_rate
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.schema import TypeSchema
from repro.tacc_stats.types import HostData, TimestampBlock

MINIMAL = (
    "$hostname {host}\n"
    "!cpu user,E idle,E\n"
    "100 7\n"
    "cpu 0 10 20\n"
    "700 7\n"
    "cpu 0 310 620\n"
)


def _write_host(root, host, texts):
    """Lay out one archive host directory with one file per text."""
    d = root / host
    d.mkdir(parents=True)
    for i, text in enumerate(texts):
        (d / f"2013-01-{i + 1:02d}").write_text(text)


def test_effective_workers_clamps():
    assert effective_workers(1, 10) == 1
    assert effective_workers(8, 3) <= 3
    assert effective_workers(8, 10, oversubscribe=True) == 8
    # Never above the visible CPUs without oversubscribe.
    import os
    assert effective_workers(64, 64) <= (os.cpu_count() or 1)
    with pytest.raises(ValueError, match="workers"):
        effective_workers(0, 4)


def test_empty_host_files_are_skipped(tmp_path):
    """A day the node was down yields a 0-byte file, not a parse error."""
    _write_host(tmp_path, "h0", ["", MINIMAL.format(host="h0")])
    _write_host(tmp_path, "h1", [""])  # down the whole period
    archive = HostArchive(tmp_path)
    h0 = archive.read_host("h0")
    assert h0.hostname == "h0"
    assert len(h0.blocks) == 2
    h1 = archive.read_host("h1")
    assert h1.hostname == "h1"
    assert h1.blocks == []
    scans = list(scan_archive(archive))
    assert [s.hostname for s in scans] == ["h0", "h1"]
    assert scans[0].partials["7"].n_blocks == 2
    assert scans[1].partials == {} and scans[1].views == ()


def test_truncated_tail_dropped_in_scan(tmp_path):
    """The crash-consistent read drops exactly the unterminated line."""
    good = MINIMAL.format(host="h0")
    _write_host(tmp_path, "h0", [good + "1300 7\ncpu 0 9"])
    archive = HostArchive(tmp_path)
    serial = list(scan_archive(archive, allow_truncated=True))
    pooled = list(scan_archive(archive, workers=2, allow_truncated=True,
                               oversubscribe=True))
    assert serial == pooled
    # The truncated row is gone but its timestamp block survives; the
    # job window still ends at the last complete sample pair.
    assert serial[0].partials["7"].n_blocks == 3


def test_multi_wrap_ib_counters_survive_chaining():
    """A 32-bit counter wrapping once per interval sums correctly."""
    host = HostData(hostname="h0")
    host.schemas["ib"] = TypeSchema.parse_header_line(
        "!ib port_xmit_data,E,W=32")
    step = 3_000_000_000  # wraps a 32-bit register every interval
    value = 0
    for i in range(5):
        b = TimestampBlock(time=600.0 * i, jobids=("1",))
        b.add_row("ib", "mlx4_0", np.array([value % (1 << 32)],
                                           dtype=np.uint64))
        host.blocks.append(b)
        value += step
    rate = _chained_delta_rate(host, host.blocks, "ib",
                               "port_xmit_data", 4.0, 2400.0)
    assert rate == pytest.approx(4 * step * 4.0 / 2400.0)
    # An endpoint-only delta would have been wrong by whole multiples
    # of 2**32: the true total exceeds the register range.
    assert 4 * step > (1 << 32)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A small finished archive plus its accounting and Lariat logs."""
    cfg = TEST_SYSTEM.scaled(num_nodes=6, horizon_days=1, n_users=8)
    archive_dir = str(tmp_path_factory.mktemp("parallel_corpus"))
    run = Facility(cfg, seed=33).run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    return cfg, archive_dir, buf.getvalue(), lariat


def _warehouse_rows(cfg, archive_dir, accounting, lariat, **kw):
    w = Warehouse()
    report = IngestPipeline(w).ingest(
        cfg, accounting_text=accounting, archive=HostArchive(archive_dir),
        lariat_records=lariat, **kw)
    jobs = w._conn.execute("SELECT * FROM jobs ORDER BY jobid").fetchall()
    metrics = w._conn.execute(
        "SELECT * FROM job_metrics ORDER BY jobid, metric").fetchall()
    return report, jobs, metrics


def test_parallel_warehouse_identical_to_serial(corpus):
    """Any worker count and batch size produce byte-identical tables."""
    report, jobs, metrics = _warehouse_rows(*corpus)
    assert report.jobs_loaded == len(jobs) > 0
    for kw in (
        {"workers": 2, "oversubscribe": True},
        {"workers": 3, "oversubscribe": True, "batch_size": 1},
        {"workers": 1, "batch_size": 5},
    ):
        r2, jobs2, metrics2 = _warehouse_rows(*corpus, **kw)
        assert jobs2 == jobs, kw
        assert metrics2 == metrics, kw
        assert r2.jobs_loaded == report.jobs_loaded
        assert len(r2.match.matched) == len(report.match.matched)


def test_scan_matches_in_process_reduction(corpus):
    """scan_archive agrees with scanning pre-parsed hosts one by one."""
    _cfg, archive_dir, _acct, _lar = corpus
    archive = HostArchive(archive_dir)
    streamed = list(scan_archive(archive, allow_truncated=True))
    direct = [
        scan_host_data(archive.read_host(h, allow_truncated=True))
        for h in archive.hostnames()
    ]
    assert streamed == direct
    assert all(isinstance(s, HostScan) for s in streamed)


def test_pipeline_rejects_bad_batch_size(corpus):
    cfg, archive_dir, accounting, lariat = corpus
    with pytest.raises(ValueError, match="batch_size"):
        IngestPipeline(Warehouse()).ingest(
            cfg, accounting_text=accounting,
            archive=HostArchive(archive_dir), batch_size=0)
