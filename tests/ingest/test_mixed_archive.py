"""Mixed text/v2 archives: autodetection, conversion, scan parity.

An archive may hold any mix of plain-text, gzipped and v2 host-day
files — per-file detection means nothing is configured at read time.
These tests pin the contracts the v2 rollout rests on:

* a converted (or partially converted) archive ingests to the same
  analytics rows as the original text archive, serial and parallel;
* ``manifest()`` reports the *source* fingerprint for v2 files, so
  converting an already-ingested archive then appending consumes zero
  files (``files_new == files_lookback == 0``);
* the columnar fast path produces views/partials identical to the
  generic HostData path, and identical quarantine records for corrupt
  v2 files under every error policy;
* the v2 *write* path (``archive_format="v2"``) produces an archive
  whose ingest matches the text run of the same seed.
"""

import io
import shutil
from pathlib import Path

import pytest

from repro.config import TEST_SYSTEM
from repro.errors import ErrorPolicy
from repro.facility import Facility
from repro.ingest.columnar_scan import scan_v2_host
from repro.ingest.parallel import scan_host_data
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive, _file_day
from repro.tacc_stats.columnar import is_v2_path, read_host_day
from repro.tacc_stats.convert import _to_v2_one, convert_archive

N_DAYS = 3


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One small finished text archive plus accounting and Lariat."""
    cfg = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=N_DAYS, n_users=6)
    archive_dir = str(tmp_path_factory.mktemp("mixed_corpus"))
    run = Facility(cfg, seed=11).run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    return cfg, archive_dir, buf.getvalue(), lariat


def _ingest(corpus, archive_dir, warehouse=None, **kw):
    cfg, _, accounting, lariat = corpus
    warehouse = warehouse or Warehouse()
    report = IngestPipeline(warehouse).ingest(
        cfg, accounting_text=accounting, archive=HostArchive(archive_dir),
        lariat_records=lariat, **kw)
    return warehouse, report


def _data_rows(warehouse):
    """Every analytics-visible row, ordered (ledger/meta excluded)."""
    warehouse.commit()
    return {
        table: warehouse.connection.execute(
            f"SELECT {cols} FROM {table} ORDER BY {cols}").fetchall()
        for table, cols in [
            ("jobs", "system, jobid, user, account, science_field, app, "
                     "queue, exit_status, submit_time, start_time, "
                     "end_time, nodes, cores, node_hours"),
            ("job_metrics", "system, jobid, metric, value"),
            ("system_series", "system, metric, t, value"),
        ]
    }


@pytest.fixture(scope="module")
def text_rows(corpus):
    """The reference analytics rows from the all-text archive."""
    w, report = _ingest(corpus, corpus[1])
    rows = _data_rows(w)
    w.close()
    assert report.jobs_loaded > 0
    return rows


def _convert_copy(corpus, tmp_path, to="v2"):
    root = tmp_path / f"as_{to}"
    shutil.copytree(corpus[1], root)
    report = convert_archive(str(root), to=to)
    assert not report.passthrough and not report.drifted
    return str(root)


def test_converted_archive_ingests_identically(corpus, text_rows,
                                               tmp_path):
    v2_dir = _convert_copy(corpus, tmp_path)
    assert all(is_v2_path(p) for p in Path(v2_dir).rglob("*")
               if p.is_file())
    for workers in (1, 2):
        w, _ = _ingest(corpus, v2_dir, workers=workers)
        assert _data_rows(w) == text_rows, f"workers={workers}"
        w.close()


def test_mixed_archive_ingests_identically(corpus, text_rows, tmp_path):
    """Half the files v2, half text — per-file autodetection."""
    mixed = tmp_path / "mixed"
    shutil.copytree(corpus[1], mixed)
    scratch = tmp_path / "scratch"
    shutil.copytree(corpus[1], scratch)
    convert_archive(str(scratch), to="v2")
    # Swap every other host-day for its v2 twin, spanning host
    # boundaries so some hosts end up internally mixed as well.
    victims = sorted(p for p in mixed.rglob("*") if p.is_file())[::2]
    for f in victims:
        day = _file_day(f)
        v2_name = day + ".v2"
        host = f.parent.name
        shutil.copy(scratch / host / v2_name, f.parent / v2_name)
        f.unlink()
    kinds = {p.suffix for p in mixed.rglob("*") if p.is_file()}
    assert ".v2" in kinds and kinds - {".v2"}, "mix must be genuine"
    w, _ = _ingest(corpus, str(mixed))
    assert _data_rows(w) == text_rows
    w.close()


def test_manifest_reports_source_fingerprint(corpus, tmp_path):
    v2_dir = _convert_copy(corpus, tmp_path)
    orig = HostArchive(corpus[1]).manifest()
    conv = HostArchive(v2_dir).manifest()
    assert orig.keys() == conv.keys()
    for key, fp in orig.items():
        assert conv[key].sha256 == fp.sha256, key


def test_convert_then_append_consumes_zero_files(corpus, tmp_path):
    work = tmp_path / "append_archive"
    shutil.copytree(corpus[1], work)
    w, _ = _ingest(corpus, str(work))
    convert_archive(str(work), to="v2")
    rows_before = _data_rows(w)
    _, report = _ingest(corpus, str(work), warehouse=w, mode="append")
    assert report.delta.files_new == 0
    assert report.delta.files_lookback == 0
    assert _data_rows(w) == rows_before
    w.close()


def test_v2_to_text_roundtrip_restores_archive(corpus, tmp_path):
    v2_dir = _convert_copy(corpus, tmp_path)
    back = tmp_path / "back_to_text"
    report = convert_archive(v2_dir, to="text", out_root=str(back))
    assert not report.passthrough and not report.drifted
    orig_files = sorted(p.relative_to(corpus[1])
                        for p in Path(corpus[1]).rglob("*") if p.is_file())
    back_files = sorted(p.relative_to(back)
                        for p in back.rglob("*") if p.is_file())
    assert orig_files == back_files
    for rel in orig_files:
        assert (back / rel).read_bytes() \
            == (Path(corpus[1]) / rel).read_bytes(), rel


def test_columnar_scan_matches_generic_path(corpus, tmp_path):
    v2_dir = _convert_copy(corpus, tmp_path)
    archive = HostArchive(v2_dir)
    for hostname in archive.hostnames():
        fast = scan_v2_host(archive, hostname)
        assert fast is not None
        scan, records, status = fast
        assert records == () and status == "ok"
        generic = scan_host_data(
            archive.read_host_checked(hostname, policy="repair").data)
        assert set(scan.views) == set(generic.views)
        assert scan.partials == generic.partials


def test_columnar_scan_declines_mixed_host(corpus, tmp_path):
    mixed = tmp_path / "mixed_host"
    shutil.copytree(corpus[1], mixed)
    archive = HostArchive(str(mixed))
    hostname = archive.hostnames()[0]
    host_dir = mixed / hostname
    files = sorted(p for p in host_dir.iterdir())
    # Convert only the first day of this host.
    src = files[0]
    assert _to_v2_one(src, host_dir / (_file_day(src) + ".v2"),
                      verify=True)
    src.unlink()
    archive = HostArchive(str(mixed))
    assert scan_v2_host(archive, hostname) is None


def test_corrupt_v2_quarantine_parity(corpus, tmp_path):
    """Fast path and generic path emit identical quarantine records."""
    v2_dir = _convert_copy(corpus, tmp_path)
    archive = HostArchive(v2_dir)
    hostname = archive.hostnames()[0]
    victim = sorted((Path(v2_dir) / hostname).glob("*.v2"))[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))

    for policy in (ErrorPolicy.QUARANTINE, ErrorPolicy.REPAIR):
        fast = scan_v2_host(archive, hostname, policy=policy)
        assert fast is not None
        scan, records, status = fast
        generic = archive.read_host_checked(hostname, policy=policy)
        assert status == generic.status
        assert records == generic.records
        if policy is ErrorPolicy.QUARANTINE:
            assert scan is None and generic.data is None
        else:
            assert [r.kind for r in records] == ["unreadable_file"]
            gen_scan = scan_host_data(generic.data)
            assert scan.partials == gen_scan.partials

    with pytest.raises(Exception) as err:
        scan_v2_host(archive, hostname, policy=ErrorPolicy.STRICT)
    from repro.tacc_stats.parser import ParseError
    assert isinstance(err.value, ParseError)


def test_v2_write_path_matches_text_run(corpus, text_rows,
                                        tmp_path_factory):
    cfg = corpus[0]
    v2_dir = str(tmp_path_factory.mktemp("v2_write"))
    run = Facility(cfg, seed=11).run_with_files(v2_dir,
                                               archive_format="v2")
    files = [p for p in Path(v2_dir).rglob("*") if p.is_file()]
    assert files and all(is_v2_path(p) for p in files)
    # Every file carries the fingerprint of the text bytes the text
    # writer would have stored, so ledgers stay portable across formats.
    header = read_host_day(files[0]).header
    assert header["source_kind"] in ("gz", "text")
    assert header["source_sha256"]
    w, report = _ingest(corpus, v2_dir)
    assert report.jobs_loaded > 0
    assert _data_rows(w) == text_rows
    w.close()
