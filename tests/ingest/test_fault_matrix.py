"""The fault matrix: every injected corruption × every error policy.

The headline guarantees proved here:

* ``strict`` still fails loudly on every fatal fault kind.
* ``quarantine`` produces a warehouse byte-identical to ingesting only
  the clean hosts, with an :class:`IngestHealth` accounting for every
  quarantined record.
* ``repair`` salvages corrupt hosts as *degraded* instead of dropping
  them.
* Transient worker death and wedged workers are retried with backoff;
  hosts that keep failing get a definitive verdict without taking
  innocent hosts down with them.
* Snapshot/report caches built over a degraded warehouse stay correct.
"""

import functools
import io
import shutil
from pathlib import Path

import pytest

from repro.config import TEST_SYSTEM
from repro.errors import ErrorPolicy, HostScanError, IngestHealth
from repro.facility import Facility
from repro.ingest.parallel import scan_archive
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.parser import ParseError
from repro.testing.faults import (
    BENIGN_KINDS,
    FATAL_KINDS,
    corrupt_archive,
    crashy_scan,
    sleepy_scan,
)
from repro.xdmod.query import JobQuery
from repro.xdmod.snapshot import WarehouseSnapshot


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A small finished archive plus its accounting and Lariat logs."""
    cfg = TEST_SYSTEM.scaled(num_nodes=6, horizon_days=1, n_users=8)
    archive_dir = str(tmp_path_factory.mktemp("fault_corpus"))
    run = Facility(cfg, seed=33).run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    return cfg, archive_dir, buf.getvalue(), lariat


def _corrupted_copy(corpus, tmp_path, hosts):
    """A private copy of the corpus archive with ``{host: kind}`` faults."""
    _cfg, archive_dir, _acct, _lar = corpus
    dst = tmp_path / "archive"
    shutil.copytree(archive_dir, dst)
    injected = corrupt_archive(dst, hosts, seed=77)
    return dst, injected


def _ingest(corpus, archive_root, **kw):
    """Run the pipeline over *archive_root*; return (warehouse, report)."""
    cfg, _dir, accounting, lariat = corpus
    w = Warehouse()
    report = IngestPipeline(w).ingest(
        cfg, accounting_text=accounting, archive=HostArchive(archive_root),
        lariat_records=lariat, **kw)
    return w, report


def _rows(w):
    """The byte-comparison view: all job and metric rows, ordered."""
    jobs = w._conn.execute(
        "SELECT * FROM jobs ORDER BY jobid").fetchall()
    metrics = w._conn.execute(
        "SELECT * FROM job_metrics ORDER BY jobid, metric").fetchall()
    return jobs, metrics


# -- malformed data x policy -------------------------------------------------


@pytest.mark.parametrize("kind", FATAL_KINDS)
def test_strict_still_fails_loudly(corpus, tmp_path, kind):
    """Every fatal fault kind aborts a strict ingest with ParseError."""
    victim = HostArchive(corpus[1]).hostnames()[1]
    root, _ = _corrupted_copy(corpus, tmp_path, {victim: kind})
    with pytest.raises(ParseError):
        _ingest(corpus, root)  # error_policy defaults to strict


@pytest.mark.parametrize("kind", BENIGN_KINDS)
def test_benign_kinds_parse_clean_under_every_policy(corpus, tmp_path, kind):
    """Crash-consistent truncation, empty files and duplicate timestamps
    are tolerated by design — no policy quarantines anything for them."""
    victim = HostArchive(corpus[1]).hostnames()[0]
    root, _ = _corrupted_copy(corpus, tmp_path, {victim: kind})
    for policy in ErrorPolicy:
        w, report = _ingest(corpus, root, error_policy=policy.value)
        assert report.jobs_loaded > 0
        if report.health is not None and policy is not ErrorPolicy.STRICT:
            assert report.health.hosts_dropped == []
            assert report.health.records_quarantined == 0


def test_quarantine_warehouse_byte_identical_to_clean_hosts(
        corpus, tmp_path):
    """THE acceptance guarantee: with k corrupted hosts, the quarantine
    warehouse equals the warehouse from ingesting only the n-k clean
    hosts — byte for byte — and the health accounts for every record."""
    hostnames = HostArchive(corpus[1]).hostnames()
    victims = {hostnames[1]: "bit_flip", hostnames[3]: "missing_schema",
               hostnames[4]: "garbage_lines"}
    root, injected = _corrupted_copy(corpus, tmp_path, victims)

    w_q, report = _ingest(corpus, root, error_policy="quarantine")

    clean_root = tmp_path / "clean"
    shutil.copytree(corpus[1], clean_root)
    for victim in victims:
        shutil.rmtree(clean_root / victim)
    w_c, _ = _ingest(corpus, clean_root)

    assert _rows(w_q) == _rows(w_c)

    health = report.health
    assert sorted(health.hosts_dropped) == sorted(victims)
    assert sorted(health.hosts_ok) == sorted(
        set(hostnames) - set(victims))
    assert health.hosts_degraded == []
    # Every quarantined record carries provenance into a victim's files.
    assert health.records_quarantined >= len(victims)
    for rec in health.quarantined:
        assert rec.hostname in victims
        assert rec.hostname in rec.path
        assert rec.error
    quarantined_hosts = {r.hostname for r in health.quarantined}
    assert quarantined_hosts == set(victims)


def test_quarantine_writes_sidecar_and_warehouse_meta(corpus, tmp_path):
    """The quarantine report is persisted twice: a sidecar next to the
    archive and a JSON blob in the warehouse meta table."""
    victim = HostArchive(corpus[1]).hostnames()[2]
    root, _ = _corrupted_copy(corpus, tmp_path, {victim: "bit_flip"})
    w, report = _ingest(corpus, root, error_policy="quarantine")

    sidecar = IngestHealth.read_sidecar(Path(root) / "quarantine")
    assert sidecar.hosts_dropped == [victim]
    assert [r.to_dict() for r in sidecar.quarantined] == \
        [r.to_dict() for r in report.health.quarantined]
    # The sidecar directory is reserved — never mistaken for a host.
    assert "quarantine" not in HostArchive(root).hostnames()

    stored = w.ingest_health(corpus[0].name)
    assert stored == report.health.to_dict()
    assert IngestHealth.from_dict(stored).hosts_dropped == [victim]


def test_repair_salvages_degraded_host(corpus, tmp_path):
    """bit_flip under repair: the host loads minus exactly the bad row,
    with the skipped record quarantined at its line."""
    victim = HostArchive(corpus[1]).hostnames()[1]
    root, injected = _corrupted_copy(corpus, tmp_path, {victim: "bit_flip"})
    w, report = _ingest(corpus, root, error_policy="repair")

    health = report.health
    assert health.hosts_degraded == [victim]
    assert health.hosts_dropped == []
    assert health.records_quarantined == 1
    rec = health.quarantined[0]
    assert rec.hostname == victim
    assert rec.lineno == injected[0].lineno
    assert rec.kind == "malformed_record"
    # Repair keeps the host's jobs in the warehouse (strict on the clean
    # corpus loads the same job set).
    w_clean, _ = _ingest(corpus, corpus[1])
    assert {r[0] for r in _rows(w)[0]} == {r[0] for r in _rows(w_clean)[0]}


def test_repair_report_str_mentions_health(corpus, tmp_path):
    victim = HostArchive(corpus[1]).hostnames()[1]
    root, _ = _corrupted_copy(corpus, tmp_path, {victim: "bit_flip"})
    _, report = _ingest(corpus, root, error_policy="repair")
    assert "degraded=1" in str(report)


# -- transient worker failure x retry ----------------------------------------


def test_transient_worker_death_is_retried(corpus, tmp_path):
    """A worker OOM-killed once recovers on retry: every host scans ok,
    the retries are accounted, and nothing is quarantined."""
    archive = HostArchive(corpus[1])
    victim = archive.hostnames()[2]
    scan_fn = functools.partial(
        crashy_scan, str(tmp_path), (victim,), 1)
    health = IngestHealth(policy="quarantine")
    scans = list(scan_archive(
        archive, workers=2, allow_truncated=True, oversubscribe=True,
        policy="quarantine", health=health, max_retries=2,
        retry_backoff=0.01, scan_fn=scan_fn))
    assert [s.hostname for s in scans] == archive.hostnames()
    assert sorted(health.hosts_ok) == archive.hostnames()
    assert health.hosts_dropped == []
    assert health.retries.get(victim, 0) >= 1


def test_permanent_crasher_dropped_without_collateral(corpus, tmp_path):
    """A host whose scan always dies is dropped after its retries — and
    only that host: innocents sharing its rounds survive via the
    isolation probe."""
    archive = HostArchive(corpus[1])
    victim = archive.hostnames()[0]
    scan_fn = functools.partial(
        crashy_scan, str(tmp_path), (victim,), -1)
    health = IngestHealth(policy="quarantine")
    scans = list(scan_archive(
        archive, workers=2, allow_truncated=True, oversubscribe=True,
        policy="quarantine", health=health, max_retries=1,
        retry_backoff=0.01, scan_fn=scan_fn))
    survivors = [h for h in archive.hostnames() if h != victim]
    assert [s.hostname for s in scans] == survivors
    assert health.hosts_dropped == [victim]
    assert sorted(health.hosts_ok) == survivors
    rec = health.quarantined[0]
    assert rec.kind == "scan_failure"
    assert "worker died" in rec.error


def test_permanent_crasher_raises_under_strict(corpus, tmp_path):
    archive = HostArchive(corpus[1])
    victim = archive.hostnames()[0]
    scan_fn = functools.partial(
        crashy_scan, str(tmp_path), (victim,), -1)
    with pytest.raises(HostScanError, match=victim):
        list(scan_archive(
            archive, workers=2, allow_truncated=True, oversubscribe=True,
            max_retries=1, retry_backoff=0.01, scan_fn=scan_fn))


def test_wedged_worker_times_out_and_is_dropped(corpus, tmp_path):
    """A worker that hangs past the round deadline is terminated and its
    host dropped (quarantine policy) instead of wedging the ingest."""
    archive = HostArchive(corpus[1])
    victim = archive.hostnames()[1]
    scan_fn = functools.partial(sleepy_scan, (victim,), 60.0)
    health = IngestHealth(policy="quarantine")
    scans = list(scan_archive(
        archive, workers=2, allow_truncated=True, oversubscribe=True,
        policy="quarantine", health=health, max_retries=0,
        retry_backoff=0.01, timeout=2.0, scan_fn=scan_fn))
    assert victim not in [s.hostname for s in scans]
    assert health.hosts_dropped == [victim]
    assert "timeout" in health.quarantined[0].error


# -- analytics over a degraded warehouse -------------------------------------


def test_snapshot_and_report_cache_over_degraded_warehouse(
        corpus, tmp_path):
    """The PR2 analytics layer is oblivious to how the warehouse got its
    rows: snapshots and memoized queries over a quarantine-degraded
    warehouse equal fresh computations, and re-ingest invalidates."""
    victim = HostArchive(corpus[1]).hostnames()[1]
    root, _ = _corrupted_copy(corpus, tmp_path, {victim: "bit_flip"})
    w, report = _ingest(corpus, root, error_policy="quarantine")

    q = JobQuery(w, corpus[0].name)
    cold_groups = q.group_by("user", metrics=("cpu_idle",))
    cold_hours = q.node_hours
    snap = WarehouseSnapshot.for_warehouse(w)
    misses = snap.cache_stats["misses"]

    q2 = JobQuery(w, corpus[0].name)
    assert q2.group_by("user", metrics=("cpu_idle",)) == cold_groups
    assert q2.node_hours == cold_hours
    assert snap.cache_stats["misses"] == misses  # pure memo hits

    # Mutating the warehouse (storing new health) moves the data
    # version; the refreshed snapshot appends nothing (meta-only write)
    # but must still serve correct results.
    stamp = snap.stamp
    w.set_ingest_health(corpus[0].name, report.health)
    w.commit()
    snap2 = WarehouseSnapshot.for_warehouse(w)
    assert snap2.stamp != stamp
    q3 = JobQuery(w, corpus[0].name)
    assert q3.group_by("user", metrics=("cpu_idle",)) == cold_groups
