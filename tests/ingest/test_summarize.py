"""Tests for per-job summarization — both paths."""

import io

import numpy as np
import pytest

from repro.cluster.hardware import ranger_node
from repro.cluster.node import Node
from repro.ingest.summarize import (
    KEY_METRICS,
    SUMMARY_METRICS,
    JobSummary,
    summarize_job_from_hosts,
    summarize_job_from_rates,
)
from repro.scheduler.job import ExitStatus, JobRecord
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import parse_host_text
from repro.util.rng import RngFactory
from repro.workload.applications import get_app
from repro.workload.behavior import JobBehavior
from repro.workload.users import generate_users
from tests.scheduler.test_job import make_request


def test_key_metrics_are_the_papers_eight():
    assert set(KEY_METRICS) == {
        "cpu_idle", "mem_used", "mem_used_max", "cpu_flops",
        "io_scratch_write", "io_work_write", "net_ib_tx", "net_lnet_tx",
    }
    assert set(KEY_METRICS) <= set(SUMMARY_METRICS)


def test_summary_validation():
    with pytest.raises(ValueError, match="unknown metrics"):
        JobSummary("1", {"bogus": 1.0}, 1, 100.0, 2)
    with pytest.raises(ValueError, match="both present and missing"):
        JobSummary("1", {"cpu_idle": 0.1}, 1, 100.0, 2,
                   missing=("cpu_idle",))
    s = JobSummary("1", {"cpu_idle": 0.1}, 4, 3600.0, 6)
    assert s.node_hours == pytest.approx(4.0)
    assert np.isnan(s.get("cpu_flops"))


@pytest.fixture(scope="module")
def collected():
    """One job collected through the real daemon/format/parse path."""
    users = generate_users(5, RngFactory(1).stream("u"))
    user = next(u for u in users if u.persona == "efficient")
    behavior = JobBehavior(get_app("wrf"), user, ranger_node(), 2,
                           duration=6 * 3600.0, sample_interval=600.0,
                           behavior_seed=3)
    hosts = []
    for slot in range(2):
        node = Node(index=slot, hostname=f"c000-{slot:03d}.t",
                    hardware=ranger_node())
        buf = io.StringIO()
        daemon = TaccStatsDaemon(node, RngFactory(slot).stream("n"),
                                 StatsWriter(buf, node.hostname))
        daemon.sample(0.0)
        daemon.begin_job("55", 600.0, behavior, slot)
        for t in range(1200, 6 * 3600, 600):
            daemon.sample(float(t))
        daemon.end_job("55", 600.0 + 6 * 3600.0)
        hosts.append(parse_host_text(buf.getvalue()))
    return behavior, hosts


def test_host_summary_complete(collected):
    _, hosts = collected
    summary = summarize_job_from_hosts("55", hosts)
    assert summary.missing == ()
    assert set(summary.metrics) == set(SUMMARY_METRICS)
    assert summary.n_nodes == 2
    assert 0.0 <= summary.metrics["cpu_idle"] <= 1.0
    assert summary.metrics["mem_used_max"] >= summary.metrics["mem_used"]
    assert summary.metrics["cpu_flops"] > 0


def test_host_summary_matches_fast_path(collected):
    """The two measurement paths agree on the same behaviour."""
    behavior, hosts = collected
    slow = summarize_job_from_hosts("55", hosts)
    req = make_request(jobid="55", nodes=2, app="wrf")
    rec = JobRecord(req, 600.0, 600.0 + 6 * 3600.0, (0, 1),
                    ExitStatus.COMPLETED)
    fast = summarize_job_from_rates(rec, behavior.rates_matrix(36))
    for metric in ("cpu_idle", "mem_used", "cpu_flops",
                   "io_scratch_write", "net_ib_tx", "net_lnet_tx"):
        assert slow.metrics[metric] == pytest.approx(
            fast.metrics[metric], rel=0.25, abs=0.02
        ), metric


def test_missing_pmc_reported(collected):
    _, hosts = collected
    import copy
    broken = [copy.deepcopy(h) for h in hosts]
    for h in broken:
        for b in h.blocks:
            b.rows.pop("amd64_pmc", None)
    summary = summarize_job_from_hosts("55", broken)
    assert "cpu_flops" in summary.missing
    assert "cpu_flops" not in summary.metrics
    assert "cpu_idle" in summary.metrics


def test_degraded_host_does_not_poison_job(collected):
    """One node with dead collectors must not blank the whole job.

    Regression: the summarizer used to pool missing-metric flags across
    hosts, so a single degraded node out of four discarded the values
    the three healthy nodes supplied.
    """
    import copy
    _, hosts = collected
    four = [copy.deepcopy(hosts[i % 2]) for i in range(4)]
    for i, h in enumerate(four):
        h.hostname = f"c{i:03d}-000.t"
    for b in four[0].blocks:  # llite and mem collectors died on one node
        b.rows.pop("llite", None)
        b.rows.pop("mem", None)
    summary = summarize_job_from_hosts("55", four)
    assert summary.n_nodes == 4
    for metric in ("io_scratch_write", "io_work_write",
                   "mem_used", "mem_used_max"):
        assert metric in summary.metrics, metric
        assert metric not in summary.missing
    # The surviving value is the reduction over the three intact hosts.
    intact = summarize_job_from_hosts("55", four[1:])
    assert summary.metrics["io_scratch_write"] == pytest.approx(
        intact.metrics["io_scratch_write"])
    assert summary.metrics["mem_used_max"] == intact.metrics["mem_used_max"]


def test_user_programmed_pmc_skipped(collected):
    _, hosts = collected
    import copy
    broken = [copy.deepcopy(h) for h in hosts]
    for b in broken[0].blocks:
        for vals in b.rows.get("amd64_pmc", {}).values():
            vals[0] = 0x430076  # foreign ctl code
    summary = summarize_job_from_hosts("55", broken)
    assert "cpu_flops" in summary.missing


def test_unknown_job_raises(collected):
    _, hosts = collected
    with pytest.raises(ValueError, match="no usable host windows"):
        summarize_job_from_hosts("999", hosts)
    with pytest.raises(ValueError, match="no host data"):
        summarize_job_from_hosts("55", [])


def test_fast_path_metrics_complete():
    users = generate_users(5, RngFactory(2).stream("u"))
    behavior = JobBehavior(get_app("namd"), users[0], ranger_node(), 4,
                           duration=7200.0, sample_interval=600.0,
                           behavior_seed=9)
    req = make_request(jobid="7", nodes=4)
    rec = JobRecord(req, 0.0, 7200.0, (0, 1, 2, 3), ExitStatus.COMPLETED)
    summary = summarize_job_from_rates(rec, behavior.rates_matrix(12))
    assert set(summary.metrics) == set(SUMMARY_METRICS)
    assert summary.metrics["mem_used_max"] > summary.metrics["mem_used"]


def test_fast_path_validation():
    req = make_request(jobid="7", nodes=4)
    rec = JobRecord(req, 0.0, 7200.0, (0, 1, 2, 3), ExitStatus.COMPLETED)
    with pytest.raises(ValueError):
        summarize_job_from_rates(rec, np.zeros((0, 16)))
