"""Tests for the end-to-end ingest pipeline (on the file_run fixture)."""

import pytest

from repro.config import TEST_SYSTEM


def test_ingest_report_counts(file_run):
    report = file_run.ingest_report
    assert report is not None
    assert report.system == "ranger"
    # Every job longer than the sampling interval matches and loads.
    eligible = [
        r for r in file_run.records
        if r.wall_seconds >= TEST_SYSTEM.sample_interval
    ]
    assert report.jobs_loaded == len(report.match.matched)
    assert report.jobs_loaded >= 0.9 * len(eligible)
    assert report.match.no_stats == []
    assert report.summaries_failed == []


def test_short_jobs_excluded(file_run):
    report = file_run.ingest_report
    short = [
        r for r in file_run.records
        if r.wall_seconds < TEST_SYSTEM.sample_interval
    ]
    assert len(report.match.too_short) == len(short)


def test_warehouse_contents_match_accounting(file_run):
    q = file_run.query()
    # The default query excludes jobs with incomplete summaries (e.g.
    # user-reprogrammed PMCs, ~2 % of jobs); the raw fact table has all.
    assert len(q) <= file_run.ingest_report.jobs_loaded
    assert len(q) >= 0.9 * file_run.ingest_report.jobs_loaded
    table = file_run.warehouse.job_table("ranger", metrics=())
    assert len(table["jobid"]) == file_run.ingest_report.jobs_loaded
    by_id = {r.jobid: r for r in file_run.records}
    for jobid, nodes, user in zip(table["jobid"], table["nodes"],
                                  table["user"]):
        rec = by_id[jobid]
        assert rec.request.nodes == int(nodes)
        assert rec.user == user


def test_summaries_physically_plausible(file_run):
    q = file_run.query()
    idle = q.column("cpu_idle")
    assert ((idle >= 0) & (idle <= 1)).all()
    mem = q.column("mem_used")
    mem_max = q.column("mem_used_max")
    assert (mem <= 32.0).all()
    assert (mem_max + 1e-9 >= mem).all()
    flops = q.column("cpu_flops")
    assert (flops >= 0).all()
    assert (flops < 147.2).all()  # below node peak


def test_syslog_events_loaded(file_run):
    events = file_run.warehouse.syslog_events("ranger")
    assert file_run.ingest_report.syslog_events_loaded == len(events)
    kinds = {e[3] for e in events}
    assert "job_prolog" in kinds


def test_archive_volume_accounted(file_run):
    stats = file_run.archive_stats
    assert stats is not None
    # Two full days per node, plus a sliver file when the midnight-exact
    # horizon sample opens day three (real cron behaviour).
    n = TEST_SYSTEM.num_nodes
    assert 2 * n <= stats.host_days <= 3 * n
    # Paper: ~0.5 MB/node/day raw; our replica should be same order
    # (measured against the two full days).
    per_full_day = stats.raw_bytes / (2 * n)
    assert 0.1e6 < per_full_day < 1.5e6
    assert stats.compression_ratio > 2.0


def test_pipeline_argument_validation(file_run):
    from repro.ingest.pipeline import IngestPipeline
    from repro.ingest.warehouse import Warehouse
    p = IngestPipeline(Warehouse())
    with pytest.raises(ValueError, match="exactly one"):
        p.ingest(TEST_SYSTEM, accounting_text="")
