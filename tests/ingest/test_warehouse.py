"""Tests for the SQLite warehouse."""

import numpy as np
import pytest

from repro.ingest.summarize import SUMMARY_METRICS, JobSummary
from repro.ingest.warehouse import Warehouse
from repro.scheduler.job import ExitStatus, JobRecord
from tests.scheduler.test_job import make_request


@pytest.fixture
def wh():
    w = Warehouse()
    w.add_system("t", num_nodes=16, cores_per_node=16, mem_gb_per_node=32.0,
                 peak_tflops=2.3, sample_interval=600.0)
    return w


def add_job(wh, jobid, user="u1", idle=0.1, nodes=2, app="namd"):
    req = make_request(jobid=jobid, user=user, nodes=nodes, app=app)
    rec = JobRecord(req, 0.0, 3600.0, tuple(range(nodes)),
                    ExitStatus.COMPLETED)
    metrics = {m: 1.0 for m in SUMMARY_METRICS}
    metrics["cpu_idle"] = idle
    wh.add_job("t", rec, 16, JobSummary(jobid, metrics, nodes, 3600.0, 6))


def test_system_info(wh):
    info = wh.system_info("t")
    assert info["num_nodes"] == 16
    assert info["peak_tflops"] == pytest.approx(2.3)
    assert wh.systems() == ["t"]
    with pytest.raises(KeyError):
        wh.system_info("ghost")


def test_job_table_roundtrip(wh):
    add_job(wh, "1", idle=0.25)
    add_job(wh, "2", user="u2", idle=0.5)
    wh.commit()
    assert wh.job_count("t") == 2
    table = wh.job_table("t")
    assert list(table["jobid"]) == ["1", "2"]
    np.testing.assert_allclose(table["cpu_idle"], [0.25, 0.5])
    assert table["node_hours"][0] == pytest.approx(2.0)


def test_job_table_excludes_incomplete_summaries(wh):
    add_job(wh, "1")
    req = make_request(jobid="2")
    rec = JobRecord(req, 0.0, 3600.0, (0, 1, 2, 3), ExitStatus.COMPLETED)
    wh.add_job("t", rec, 16, summary=None)  # summarization failed
    wh.commit()
    table = wh.job_table("t")
    assert list(table["jobid"]) == ["1"]
    # Without metrics requested, both jobs appear.
    table_all = wh.job_table("t", metrics=())
    assert list(table_all["jobid"]) == ["1", "2"]


def test_job_table_rejects_unknown_metric(wh):
    add_job(wh, "1")
    with pytest.raises(ValueError):
        wh.job_table("t", metrics=("evil'; DROP TABLE jobs; --",))


def test_duplicate_job_rejected(wh):
    add_job(wh, "1")
    import sqlite3
    with pytest.raises(sqlite3.IntegrityError):
        add_job(wh, "1")


def test_series_roundtrip(wh):
    t = np.arange(5) * 600.0
    v = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
    wh.add_series("t", "flops_tf", t, v)
    wh.commit()
    t2, v2 = wh.series("t", "flops_tf")
    np.testing.assert_allclose(t2, t)
    np.testing.assert_allclose(v2, v)
    assert wh.series_metrics("t") == ["flops_tf"]
    with pytest.raises(KeyError):
        wh.series("t", "ghost")


def test_series_shape_checked(wh):
    with pytest.raises(ValueError):
        wh.add_series("t", "x", np.arange(3), np.arange(4))


def test_syslog_events(wh):
    wh.add_syslog_event("t", 100.0, "h1", "42", "oom_kill", "err")
    wh.add_syslog_event("t", 200.0, "h1", None, "mce", "crit")
    wh.commit()
    assert len(wh.syslog_events("t")) == 2
    assert len(wh.syslog_events("t", jobid="42")) == 1


def test_app_override(wh):
    req = make_request(jobid="9", app="unknown")
    rec = JobRecord(req, 0.0, 3600.0, (0, 1, 2, 3), ExitStatus.COMPLETED)
    wh.add_job("t", rec, 16, summary=None, app_override="namd")
    wh.commit()
    table = wh.job_table("t", metrics=())
    assert table["app"][0] == "namd"


def test_file_backed_persistence(tmp_path):
    path = str(tmp_path / "wh.sqlite")
    w1 = Warehouse(path)
    w1.add_system("t", 4, 16, 32.0, 0.5, 600.0)
    w1.commit()
    w1.close()
    w2 = Warehouse(path)
    assert w2.systems() == ["t"]


def test_schema_version_stamped(tmp_path):
    from repro.ingest.warehouse import SCHEMA_VERSION
    path = str(tmp_path / "v.sqlite")
    w = Warehouse(path)
    row = w.connection.execute(
        "SELECT value FROM meta WHERE key='schema_version'").fetchone()
    assert int(row[0]) == SCHEMA_VERSION
    w.close()
    # Reopening the same version works.
    Warehouse(path).close()


def test_schema_version_mismatch_rejected(tmp_path):
    path = str(tmp_path / "old.sqlite")
    w = Warehouse(path)
    w.connection.execute(
        "UPDATE meta SET value='0' WHERE key='schema_version'")
    w.commit()
    w.close()
    with pytest.raises(RuntimeError, match="schema version"):
        Warehouse(path)


def _fill(w, n=12):
    w.add_system("t", num_nodes=16, cores_per_node=16, mem_gb_per_node=32.0,
                 peak_tflops=2.3, sample_interval=600.0)
    for i in range(n):
        add_job(w, str(i), user=f"u{i % 3}", idle=0.05 * (i % 5),
                app=("namd", "amber")[i % 2])
    w.add_series("t", "flops_tf", np.arange(4) * 600.0,
                 np.array([1.0, 2.0, 2.0, 1.0]))
    w.add_syslog_event("t", 100.0, "h1", "3", "oom_kill", "err")
    w.commit()


def _dump(w):
    """Logical row dump of every data table, in a deterministic order."""
    out = {}
    for table, order in (
        ("jobs", "system, jobid"),
        ("job_metrics", "system, jobid, metric"),
        ("system_series", "system, metric, t"),
        ("syslog_events", "system, t, host"),
    ):
        out[table] = w.connection.execute(
            f"SELECT * FROM {table} ORDER BY {order}").fetchall()
    return out


def test_fast_writes_identical_results(tmp_path):
    """WAL + synchronous=NORMAL is a pure speed knob: every stored row
    and every query result is identical to the default journal mode."""
    plain = Warehouse(str(tmp_path / "plain.sqlite"))
    fast = Warehouse(str(tmp_path / "fast.sqlite"), fast_writes=True)
    _fill(plain)
    _fill(fast)
    assert _dump(plain) == _dump(fast)
    tp = plain.job_table("t")
    tf = fast.job_table("t")
    assert list(tp) == list(tf)
    for col in tp:
        np.testing.assert_array_equal(tp[col], tf[col])
    assert fast.connection.execute(
        "PRAGMA journal_mode").fetchone()[0] == "wal"
    plain.close()
    fast.close()


def test_generation_bumps_only_on_dirty_commit(wh):
    g0 = wh.generation
    wh.commit()  # nothing pending: a no-op commit
    assert wh.generation == g0
    add_job(wh, "1")
    assert wh.generation == g0  # not yet committed
    wh.commit()
    assert wh.generation == g0 + 1
    wh.commit()
    assert wh.generation == g0 + 1


def test_generation_persists_across_reopen(tmp_path):
    path = str(tmp_path / "gen.sqlite")
    w = Warehouse(path)
    w.add_system("t", 4, 16, 32.0, 0.5, 600.0)
    w.commit()
    g = w.generation
    assert g >= 1
    w.close()
    w2 = Warehouse(path)
    assert w2.generation == g
    w2.close()


def test_buffered_rows_visible_before_commit(wh):
    """Reads flush the write buffers, so a query placed between add_job
    and commit sees every row already added."""
    add_job(wh, "1")
    add_job(wh, "2", user="u2")
    assert wh.job_count("t") == 2  # no commit yet
    table = wh.job_table("t")
    assert list(table["jobid"]) == ["1", "2"]
    assert wh.data_version[1] > 0  # uncommitted writes move the version


def test_duplicate_detected_across_flushes(wh):
    """The eager same-session duplicate check holds even after the
    first copy was flushed to SQLite by an intervening read."""
    import sqlite3
    add_job(wh, "1")
    wh.job_count("t")  # forces a flush
    with pytest.raises(sqlite3.IntegrityError):
        add_job(wh, "1")


def test_pre_versioning_file_rejected(tmp_path):
    import sqlite3
    path = str(tmp_path / "legacy.sqlite")
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE jobs (x)")  # looks initialized, no meta
    conn.commit()
    conn.close()
    with pytest.raises(RuntimeError, match="schema version 0"):
        Warehouse(path)
