"""Tests for accounting↔stats matching."""

import io


from repro.ingest.matcher import match_jobs
from repro.scheduler.accounting import format_accounting_line, parse_accounting_line
from repro.scheduler.job import ExitStatus, JobRecord
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import parse_host_text
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from tests.scheduler.test_job import make_request

CPU = TypeSchema("cpu", (SchemaEntry("user", is_event=True),))


def entry(jobid="1", nodes=2, start=600, end=4200, submit=0):
    req = make_request(jobid=jobid, nodes=nodes, submit_time=float(submit))
    rec = JobRecord(req, float(start), float(end), tuple(range(nodes)),
                    ExitStatus.COMPLETED)
    return parse_accounting_line(format_accounting_line(rec, 16, "t"))


def host_with_job(hostname, jobid, begin, end, mark=True):
    buf = io.StringIO()
    w = StatsWriter(buf, hostname)
    w.register_schema(CPU)
    w.begin_block(begin, (jobid,))
    if mark:
        w.write_mark("begin", jobid)
    w.write_row("cpu", "0", [1])
    w.begin_block(end, (jobid,))
    if mark:
        w.write_mark("end", jobid)
    w.write_row("cpu", "0", [100])
    return parse_host_text(buf.getvalue())


def test_clean_match():
    hosts = [host_with_job(f"h{i}", "1", 600.0, 4200.0) for i in range(2)]
    report = match_jobs([entry()], hosts)
    assert len(report.matched) == 1
    assert report.matched[0].complete
    assert report.match_rate == 1.0


def test_short_jobs_excluded():
    """Paper §4.1: jobs shorter than the sampling interval are excluded."""
    hosts = [host_with_job("h0", "1", 600.0, 899.0)]
    report = match_jobs([entry(end=899)], hosts, min_seconds=600.0)
    assert report.too_short == ["1"]
    assert report.matched == []


def test_no_stats_reported():
    report = match_jobs([entry()], [])
    assert report.no_stats == ["1"]
    assert report.match_rate == 0.0


def test_window_mismatch_rejected():
    # Stats claim the job ran way outside the accounting window.
    hosts = [host_with_job("h0", "1", 9000.0, 12000.0)]
    report = match_jobs([entry()], hosts)
    assert report.window_mismatch == ["1"]


def test_clock_skew_tolerated():
    hosts = [host_with_job("h0", "1", 600.0 - 30.0, 4200.0 + 30.0)]
    report = match_jobs([entry()], hosts)
    assert len(report.matched) == 1


def test_partial_coverage_flagged():
    hosts = [host_with_job("h0", "1", 600.0, 4200.0)]  # 1 of 2 nodes
    report = match_jobs([entry(nodes=2)], hosts)
    assert len(report.matched) == 1
    assert not report.matched[0].complete
    assert report.partial == ["1"]


def test_lost_marks_recoverable_from_tagged_blocks():
    hosts = [host_with_job("h0", "1", 600.0, 4200.0, mark=False)]
    report = match_jobs([entry()], hosts)
    assert len(report.matched) == 1
