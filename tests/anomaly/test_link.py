"""Tests for anomaly↔failure linkage (the ANCOR direction)."""

import pytest

from repro.anomaly.detect import AnomalyDetector
from repro.anomaly.link import link_anomalies_to_failures


@pytest.fixture(scope="module")
def link(fast_run, fast_query):
    anomalies = AnomalyDetector(fast_query, z_threshold=3.5).detect()
    return link_anomalies_to_failures(fast_run.warehouse, "ranger",
                                      anomalies)


def test_population_partition(link, fast_run):
    total_jobs = fast_run.warehouse.job_count("ranger")
    assert link.anomalous_total + link.normal_total == total_jobs
    assert link.anomalous_with_failures <= link.anomalous_total
    assert link.normal_with_failures <= link.normal_total


def test_anomalies_enriched_for_failures(link):
    """Paper §4.3.1: anomalous resource use patterns are commonly the
    precursors of job failures — the generator builds this causality in,
    and the linkage must recover it."""
    assert link.anomalous_failure_rate > link.normal_failure_rate
    assert link.enrichment > 1.3


def test_linked_structure(link):
    for jobid, (flags, failures) in link.linked.items():
        assert flags
        assert all(f.jobid == jobid for f in flags)


def test_rates_in_bounds(link):
    assert 0.0 <= link.anomalous_failure_rate <= 1.0
    assert 0.0 <= link.normal_failure_rate <= 1.0
