"""Tests for the ANCOR-style diagnosis engine."""

import pytest

from repro.anomaly.ancor import AncorAnalysis


@pytest.fixture(scope="module")
def ancor(fast_run):
    return AncorAnalysis(fast_run.warehouse, "ranger")


def test_association_table_structure(ancor):
    table = ancor.association_table(min_support=2)
    assert table
    lifts = [a.lift for a in table]
    assert lifts == sorted(lifts, reverse=True)
    for a in table:
        assert a.support <= a.anomalous_jobs
        assert 0 < a.base_rate <= 1
        assert a.confidence <= 1.0


def test_causal_generator_structure_recovered(ancor):
    """The syslog generator ties OOM to memory pressure and Lustre
    trouble to scratch writes; the mined lifts must reflect that — the
    point of ANCOR."""
    table = ancor.association_table(min_support=2)
    io_lustre = [a for a in table
                 if a.metric in ("io_scratch_write", "net_lnet_tx")
                 and a.kind in ("lustre_timeout", "lustre_eviction")]
    assert io_lustre, "I/O anomalies must associate with Lustre faults"
    assert max(a.lift for a in io_lustre) > 2.0


def test_diagnose_failed_jobs(ancor):
    diagnoses = ancor.diagnose_failures()
    assert diagnoses
    for d in diagnoses[:10]:
        assert d.exit_status != "completed"
        assert d.failure_events or d.anomalies
        if d.hypotheses:
            scores = [s for _, s in d.hypotheses]
            assert scores == sorted(scores, reverse=True)


def test_diagnosis_explains_lustre_victims(ancor, fast_run):
    """A job with Lustre failure events and a high-I/O anomaly should be
    diagnosed as filesystem overload."""
    hits = [
        d for d in ancor.diagnose_failures()
        if any(k.startswith("lustre") for k in d.failure_events)
        and any(a.metric.startswith("io") and a.robust_z > 0
                for a in d.anomalies)
    ]
    if not hits:
        pytest.skip("no lustre-failed anomalous job in this seed")
    assert any("filesystem overload" in (d.top_hypothesis or "")
               for d in hits)


def test_lead_time_positive(ancor):
    lead = ancor.mean_lead_time()
    assert lead is not None
    # Prologs land at start, fault events mid-run: hours of warning.
    assert lead > 0


def test_diagnose_unknown_job(ancor):
    with pytest.raises(KeyError):
        ancor.diagnose("no-such-job")


def test_diagnosis_without_anomaly_names_external_cause(ancor):
    """Jobs with failure events but no anomaly get the external-cause
    hypothesis rather than an empty diagnosis."""
    candidates = [
        d for d in ancor.diagnose_failures()
        if d.failure_events and not d.anomalies
    ]
    for d in candidates[:5]:
        assert d.hypotheses
        assert "external/hardware" in d.hypotheses[0][0] or d.hypotheses
