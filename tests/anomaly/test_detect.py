"""Tests for per-metric job anomaly detection."""

import numpy as np
import pytest

from repro.anomaly.detect import AnomalyDetector


@pytest.fixture(scope="module")
def detector(fast_query):
    return AnomalyDetector(fast_query, z_threshold=4.0)


def test_flags_are_extreme_for_their_app(detector, fast_query):
    flags = detector.detect()
    assert flags  # a heavy-tailed workload always has outliers
    for a in flags[:20]:
        sub = fast_query.filter(app=a.app)
        v = sub.column(a.metric)
        med = float(np.median(v))
        assert a.baseline_median == pytest.approx(med)
        # The flagged value really is in the tail of its app's values.
        q = (v <= a.value).mean() if a.robust_z > 0 else (v >= a.value).mean()
        # MAD-z >= 4 lands deep in the tail; small per-app samples make
        # the empirical percentile fuzzy (a tight cluster of values gives
        # a tiny MAD, so z >= 4 can sit at the ~85th percentile).
        assert q > 0.8


def test_flags_sorted_by_severity(detector):
    flags = detector.detect()
    zs = [abs(a.robust_z) for a in flags]
    assert zs == sorted(zs, reverse=True)
    assert all(abs(a.robust_z) >= 4.0 for a in flags)


def test_direction_labels(detector):
    flags = detector.detect()
    for a in flags[:10]:
        assert a.direction == ("high" if a.robust_z > 0 else "low")


def test_by_job_groups_multi_metric(detector):
    grouped = detector.by_job()
    sizes = [len(v) for v in grouped.values()]
    assert sizes == sorted(sizes, reverse=True)
    total = sum(sizes)
    assert total == len(detector.detect())


def test_small_apps_skipped(fast_query):
    det = AnomalyDetector(fast_query, min_app_jobs=10**9)
    assert det.detect() == []


def test_threshold_validation(fast_query):
    with pytest.raises(ValueError):
        AnomalyDetector(fast_query, z_threshold=0.0)


def test_higher_threshold_fewer_flags(fast_query):
    loose = AnomalyDetector(fast_query, z_threshold=3.0).detect()
    strict = AnomalyDetector(fast_query, z_threshold=6.0).detect()
    assert len(strict) <= len(loose)
