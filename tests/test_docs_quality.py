"""Documentation-quality gates: every public module, class, and function
in the library carries a docstring, and the README's import claims hold."""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _walk_modules() if not m.__doc__]
    assert missing == []


def test_public_classes_and_functions_documented():
    undocumented = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_top_level_api_surface():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    # The README's advertised imports.
    from repro import Facility, RANGER, LONESTAR4  # noqa: F401
    from repro.xdmod import (  # noqa: F401
        UsageProfiler,
        EfficiencyAnalysis,
        PersistenceAnalysis,
        BouquetAnalysis,
        AppKernelMonitor,
    )
    from repro.anomaly import AncorAnalysis  # noqa: F401


def test_cli_entry_points_resolve():
    import tomllib
    with open("pyproject.toml", "rb") as fh:
        scripts = tomllib.load(fh)["project"]["scripts"]
    assert len(scripts) >= 6
    for target in scripts.values():
        module, func = target.split(":")
        assert callable(getattr(importlib.import_module(module), func))
