"""Tests for the CLI entry points (invoked in-process via main(argv))."""

import pytest

from repro.cli.persistence import main as persistence_main
from repro.cli.report import main as report_main
from repro.cli.simulate import main as simulate_main
from repro.cli.stats_cat import main as stats_cat_main


@pytest.fixture(scope="module")
def warehouse_file(tmp_path_factory, capfd_disabled=None):
    """A warehouse built by the simulate CLI itself (fast path)."""
    path = str(tmp_path_factory.mktemp("cli") / "wh.sqlite")
    rc = simulate_main([
        "--system", "ranger", "--nodes", "24", "--days", "12",
        "--users", "50", "--seed", "9", "--warehouse", path, "--quiet",
    ])
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def archive_run(tmp_path_factory):
    """A warehouse + archive built by the simulate CLI (slow path)."""
    d = tmp_path_factory.mktemp("cli_arch")
    wh = str(d / "wh.sqlite")
    arch = str(d / "archive")
    rc = simulate_main([
        "--system", "ranger", "--nodes", "8", "--days", "1",
        "--users", "10", "--seed", "3", "--warehouse", wh,
        "--archive", arch, "--quiet",
    ])
    assert rc == 0
    return wh, arch


def test_simulate_refuses_duplicate_system(warehouse_file, capsys):
    rc = simulate_main([
        "--system", "ranger", "--warehouse", warehouse_file, "--quiet",
    ])
    assert rc != 0
    assert "already present" in capsys.readouterr().err


def test_report_support(warehouse_file, capsys):
    rc = report_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "support"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SUPPORT STAFF REPORT" in out
    assert "circled user" in out


def test_report_user_needs_target(warehouse_file, capsys):
    rc = report_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "user"])
    assert rc != 0
    assert "needs" in capsys.readouterr().err


def test_report_user_with_target(warehouse_file, capsys):
    from repro.ingest.warehouse import Warehouse
    from repro.xdmod.query import JobQuery
    wh = Warehouse(warehouse_file)
    user = JobQuery(wh, "ranger").top("user", 1)[0]
    wh.close()
    rc = report_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "user", user])
    assert rc == 0
    assert user in capsys.readouterr().out


def test_report_unknown_system(warehouse_file, capsys):
    rc = report_main(["--warehouse", warehouse_file, "--system", "nope",
                      "support"])
    assert rc != 0


def test_report_unknown_user(warehouse_file, capsys):
    rc = report_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "user", "nobody9999"])
    assert rc != 0


def test_persistence_cli(warehouse_file, capsys):
    rc = persistence_main(["--warehouse", warehouse_file,
                           "--system", "ranger"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "combined fit" in out
    assert "io_scratch_write" in out


def test_persistence_bad_offsets(warehouse_file, capsys):
    rc = persistence_main(["--warehouse", warehouse_file,
                           "--system", "ranger", "--offsets", "0,-5"])
    assert rc != 0


def test_stats_cat_header_and_jobs(archive_run, capsys):
    _, arch = archive_run
    from repro.tacc_stats.archive import HostArchive
    archive = HostArchive(arch)
    host = archive.hostnames()[0]
    files = [str(p) for p in archive.host_files(host)]
    rc = stats_cat_main(["--jobs"] + files)
    assert rc == 0
    out = capsys.readouterr().out
    assert "TACC_Stats stream" in out
    assert host in out


def test_stats_cat_series(archive_run, capsys):
    _, arch = archive_run
    from repro.tacc_stats.archive import HostArchive
    archive = HostArchive(arch)
    host = archive.hostnames()[0]
    files = [str(p) for p in archive.host_files(host)]
    rc = stats_cat_main(["--series", "cpu:0:idle"] + files)
    assert rc == 0
    assert "cpu:0:idle" in capsys.readouterr().out


def test_stats_cat_bad_series_spec(archive_run, capsys):
    _, arch = archive_run
    from repro.tacc_stats.archive import HostArchive
    archive = HostArchive(arch)
    files = [str(archive.host_files(archive.hostnames()[0])[0])]
    rc = stats_cat_main(["--series", "nonsense"] + files)
    assert rc != 0


def test_stats_cat_missing_file(capsys):
    rc = stats_cat_main(["/does/not/exist"])
    assert rc != 0


def test_stats_cat_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.txt"
    bad.write_text("this is not a stats file\n")
    rc = stats_cat_main([str(bad)])
    assert rc == 1


def test_diagnose_cli_all(warehouse_file, capsys):
    from repro.cli.diagnose import main as diagnose_main
    rc = diagnose_main(["--warehouse", warehouse_file, "--system",
                        "ranger", "--limit", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Diagnosis" in out or "no diagnosable" in out


def test_diagnose_cli_associations(warehouse_file, capsys):
    from repro.cli.diagnose import main as diagnose_main
    rc = diagnose_main(["--warehouse", warehouse_file, "--system",
                        "ranger", "--associations"])
    assert rc == 0


def test_diagnose_cli_unknown_job(warehouse_file, capsys):
    from repro.cli.diagnose import main as diagnose_main
    rc = diagnose_main(["--warehouse", warehouse_file, "--system",
                        "ranger", "--job", "bogus"])
    assert rc != 0


def test_export_cli_groups_csv(warehouse_file, capsys):
    from repro.cli.export import main as export_main
    rc = export_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "--format", "csv", "groups", "science_field",
                      "--metric", "mem_used"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("group,")
    assert "mem_used" in out


def test_export_cli_profile_json(warehouse_file, capsys):
    import json
    from repro.cli.export import main as export_main
    from repro.ingest.warehouse import Warehouse
    from repro.xdmod.query import JobQuery
    wh = Warehouse(warehouse_file)
    user = JobQuery(wh, "ranger").top("user", 1)[0]
    wh.close()
    rc = export_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "profile", "user", user])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["kind"] == "radar"


def test_export_cli_series_to_file(warehouse_file, tmp_path, capsys):
    import json
    from repro.cli.export import main as export_main
    out_file = tmp_path / "series.json"
    rc = export_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "-o", str(out_file), "series", "flops_tf"])
    assert rc == 0
    data = json.loads(out_file.read_text())
    assert data["kind"] == "line"
    assert len(data["t"]) == len(data["y"]) > 0


def test_export_cli_density_csv(warehouse_file, capsys):
    from repro.cli.export import main as export_main
    rc = export_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "--format", "csv", "density", "mem_used"])
    assert rc == 0
    assert capsys.readouterr().out.startswith("x,density")


def test_export_cli_bad_series(warehouse_file, capsys):
    from repro.cli.export import main as export_main
    rc = export_main(["--warehouse", warehouse_file, "--system", "ranger",
                      "series", "nonexistent"])
    assert rc != 0


def test_stats_cat_timeline(archive_run, capsys):
    """The job-viewer path: feed all hosts' files, ask for one job."""
    wh, arch = archive_run
    from repro.ingest.warehouse import Warehouse
    from repro.tacc_stats.archive import HostArchive
    from repro.xdmod.query import JobQuery
    w = Warehouse(wh)
    q = JobQuery(w, "ranger", metrics=())
    # Pick a job with >= 2 samples (longer than the interval).
    import numpy as np
    durations = q.column("end_time") - q.column("start_time")
    idx = int(np.argmax(durations))
    jobid = str(q.column("jobid")[idx])
    w.close()
    archive = HostArchive(arch)
    files = [str(p) for h in archive.hostnames()
             for p in archive.host_files(h)]
    rc = stats_cat_main(["--timeline", jobid] + files)
    assert rc == 0
    out = capsys.readouterr().out
    assert f"Job timeline — {jobid}" in out
    assert "most deviant host" in out


def test_stats_cat_multi_host_without_timeline_rejected(archive_run,
                                                        capsys):
    _, arch = archive_run
    from repro.tacc_stats.archive import HostArchive
    archive = HostArchive(arch)
    hosts = archive.hostnames()[:2]
    files = [str(archive.host_files(h)[0]) for h in hosts]
    rc = stats_cat_main(files)
    assert rc != 0
    assert "multiple hosts" in capsys.readouterr().err


def test_simulate_policy_and_kernels(tmp_path, capsys):
    path = str(tmp_path / "aware.sqlite")
    rc = simulate_main([
        "--system", "ranger", "--nodes", "12", "--days", "4",
        "--users", "15", "--seed", "2", "--warehouse", path,
        "--policy", "aware", "--appkernels", "--no-syslog", "--quiet",
    ])
    assert rc == 0
    from repro.ingest.warehouse import Warehouse
    from repro.xdmod.query import JobQuery
    wh = Warehouse(path)
    q = JobQuery(wh, "ranger", metrics=())
    import numpy as np
    assert "appkernel" in np.unique(q.column("user"))
    wh.close()


def test_simulate_telemetry_manifest_end_to_end(tmp_path, capsys):
    """--telemetry-out writes a valid manifest that repro-diagnose
    --telemetry renders and repro-report --cache-stats complements."""
    from repro.cli.diagnose import main as diagnose_main
    from repro.telemetry.manifest import RunManifest, validate_manifest

    wh = str(tmp_path / "wh.sqlite")
    manifest_path = str(tmp_path / "manifest.json")
    rc = simulate_main([
        "--system", "lonestar4", "--nodes", "6", "--days", "1",
        "--users", "8", "--seed", "5", "--warehouse", wh,
        "--archive", str(tmp_path / "archive"),
        "--ingest-workers", "2",
        "--telemetry-out", manifest_path,
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "telemetry manifest:" in out

    manifest = RunManifest.read(manifest_path)
    assert validate_manifest(manifest.to_dict()) == []
    assert manifest.systems == ["lonestar4"]
    assert manifest.stages[0].name == "simulate"
    assert manifest.metrics.counters["ingest.jobs_loaded"] > 0
    assert manifest.slowest_hosts
    assert manifest.extra["jobs_simulated"] > 0

    rc = diagnose_main(["--telemetry", manifest_path, "--min-ms", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Run telemetry" in out
    assert "slowest hosts" in out
    assert "ingest.jobs_loaded" in out

    rc = report_main(["--warehouse", wh, "--system", "lonestar4",
                      "support", "--cache-stats"])
    assert rc == 0
    assert "cache:" in capsys.readouterr().out


def test_diagnose_telemetry_rejects_garbage(tmp_path, capsys):
    from repro.cli.diagnose import main as diagnose_main
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    rc = diagnose_main(["--telemetry", str(bad)])
    assert rc != 0
    assert "cannot read telemetry manifest" in capsys.readouterr().err


def test_diagnose_without_warehouse_or_telemetry_dies(capsys):
    from repro.cli.diagnose import main as diagnose_main
    rc = diagnose_main([])
    assert rc != 0
    assert "--warehouse and --system are required" in \
        capsys.readouterr().err


def test_simulate_live_end_to_end(tmp_path, capsys):
    """--live streams the horizon, prints per-batch lines, records the
    live section in the manifest, and repro-top reads the result."""
    from repro.cli.top import main as top_main
    from repro.telemetry.manifest import RunManifest

    wh = str(tmp_path / "live.sqlite")
    manifest_path = str(tmp_path / "live_manifest.json")
    rc = simulate_main([
        "--system", "ranger", "--nodes", "3", "--days", "1",
        "--users", "5", "--seed", "5", "--warehouse", wh,
        "--archive", str(tmp_path / "archive"), "--live",
        "--live-segment-seconds", str(6 * 3600),
        "--telemetry-out", manifest_path,
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[live] batch=0" in out
    assert "live complete" in out

    manifest = RunManifest.read(manifest_path)
    live = manifest.extra["live"]
    assert live["complete"] is True
    assert live["batches"] == len(live["snapshot_rows"])
    assert live["snapshot_rows"] == sorted(live["snapshot_rows"])
    assert manifest.metrics.counters["live.batches"] == live["batches"]

    rc = top_main(["--warehouse", wh, "--system", "ranger", "-r", "1"])
    assert rc == 0
    assert "repro-top — system ranger" in capsys.readouterr().out


def test_simulate_live_flag_validation(tmp_path, capsys):
    wh = str(tmp_path / "wh.sqlite")
    cases = [
        (["--live", "--warehouse", wh], "requires --archive"),
        (["--live", "--warehouse", wh, "--archive",
          str(tmp_path / "a"), "--append"], "incremental ingest"),
        (["--live", "--warehouse", wh, "--archive",
          str(tmp_path / "a"), "--live-segment-seconds", "0"],
         "--live-segment-seconds"),
        (["--live", "--federation", str(tmp_path / "fed")],
         "batch-only"),
    ]
    for argv, needle in cases:
        rc = simulate_main(argv)
        assert rc != 0
        assert needle in capsys.readouterr().err


def test_repro_top_validation(tmp_path, capsys):
    from repro.cli.top import main as top_main

    rc = top_main(["--warehouse", str(tmp_path / "nope.sqlite"),
                   "--system", "ranger", "-n", "0"])
    assert rc != 0
    assert "--count" in capsys.readouterr().err

    from repro.ingest.warehouse import Warehouse
    path = str(tmp_path / "empty.sqlite")
    Warehouse(path).close()
    rc = top_main(["--warehouse", path, "--system", "ranger"])
    assert rc != 0
    assert "unknown system" in capsys.readouterr().err

    rc = top_main(["--url", "http://127.0.0.1:1", "--system", "ranger",
                   "-r", "1"])
    assert rc != 0
    assert "cannot reach" in capsys.readouterr().err


def test_diagnose_telemetry_empty_spans_explicit(tmp_path, capsys):
    """A manifest with no spans gets an explicit line, not silence."""
    from repro.cli.diagnose import main as diagnose_main
    from repro.telemetry.manifest import build_manifest

    manifest = build_manifest(systems=["ranger"])
    manifest.stages = []
    path = manifest.write(str(tmp_path / "empty.json"))
    rc = diagnose_main(["--telemetry", str(path)])
    assert rc == 0
    assert "no spans recorded" in capsys.readouterr().out
