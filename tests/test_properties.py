"""Property-based tests (hypothesis) on the core data structures and
invariants: format round-trips, counter rollover, weighted statistics,
queue/cluster safety, and scheduler conservation laws."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.hardware import ranger_node
from repro.scheduler.accounting import (
    format_accounting_line,
    parse_accounting_line,
)
from repro.scheduler.engine import SchedulerEngine
from repro.scheduler.job import ExitStatus, JobRecord, JobRequest
from repro.scheduler.policies import EasyBackfillPolicy, FCFSPolicy
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import event_delta, parse_host_text
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.util.stats import weighted_mean, weighted_quantile, weighted_std

# ---------------------------------------------------------------------------
# Counter rollover.
# ---------------------------------------------------------------------------


@given(
    start=st.integers(min_value=0, max_value=2**32 - 1),
    increment=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_event_delta_inverts_modular_addition(start, increment):
    """delta(first, (first+inc) % 2^w) == inc for any single-wrap inc."""
    last = (start + increment) % (2**32)
    assert event_delta(start, last, 32) == increment


@given(
    width=st.sampled_from([16, 32, 48, 64]),
    start=st.integers(min_value=0),
    increment=st.integers(min_value=0),
)
def test_event_delta_any_width(width, start, increment):
    mod = 1 << width
    start %= mod
    increment %= mod
    assert event_delta(start, (start + increment) % mod, width) == increment


# ---------------------------------------------------------------------------
# Stats format round-trip.
# ---------------------------------------------------------------------------

_key = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True)
_device = st.from_regex(r"[A-Za-z0-9_.-]{1,8}", fullmatch=True)


@st.composite
def _schema(draw):
    name = draw(st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True))
    n = draw(st.integers(1, 6))
    keys = draw(st.lists(_key, min_size=n, max_size=n, unique=True))
    entries = tuple(
        SchemaEntry(
            k,
            is_event=draw(st.booleans()),
            unit=draw(st.sampled_from([None, "B", "KB", "cs"])),
            width=draw(st.sampled_from([32, 48, 64])),
        )
        for k in keys
    )
    return TypeSchema(name, entries)


@st.composite
def _host_stream(draw):
    schemas = draw(st.lists(_schema(), min_size=1, max_size=3,
                            unique_by=lambda s: s.type_name))
    n_blocks = draw(st.integers(1, 5))
    times = sorted(draw(st.lists(
        st.integers(0, 10**7), min_size=n_blocks, max_size=n_blocks,
        unique=True,
    )))
    blocks = []
    for t in times:
        rows = []
        for schema in schemas:
            devices = draw(st.lists(_device, min_size=1, max_size=3,
                                    unique=True))
            for dev in devices:
                values = draw(st.lists(
                    st.integers(0, 2**31), min_size=schema.n_values,
                    max_size=schema.n_values,
                ))
                rows.append((schema.type_name, dev, values))
        jobids = tuple(draw(st.lists(
            st.from_regex(r"[0-9]{1,7}", fullmatch=True), max_size=2,
            unique=True,
        )))
        blocks.append((float(t), jobids, rows))
    return schemas, blocks


@given(_host_stream())
@settings(max_examples=40, deadline=None)
def test_format_parse_roundtrip(stream):
    schemas, blocks = stream
    buf = io.StringIO()
    w = StatsWriter(buf, "host.prop")
    for s in schemas:
        w.register_schema(s)
    for t, jobids, rows in blocks:
        w.begin_block(t, jobids)
        for type_name, dev, values in rows:
            w.write_row(type_name, dev, values)
    host = parse_host_text(buf.getvalue())
    assert {s.type_name: s for s in schemas} == host.schemas
    assert len(host.blocks) == len(blocks)
    for parsed, (t, jobids, rows) in zip(host.blocks, blocks):
        assert parsed.time == t
        assert parsed.jobids == jobids
        for type_name, dev, values in rows:
            np.testing.assert_array_equal(
                parsed.get(type_name, dev), np.array(values, dtype=np.uint64)
            )


# ---------------------------------------------------------------------------
# Weighted statistics.
# ---------------------------------------------------------------------------

_values = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50
)


@given(_values)
def test_weighted_mean_uniform_equals_numpy(v):
    assert weighted_mean(v) == pytest.approx(np.mean(v), rel=1e-9, abs=1e-9)


@given(_values, st.integers(1, 5))
def test_weighted_mean_matches_repetition(v, k):
    """Integer weights == literal repetition."""
    weights = [(i % k) + 1 for i in range(len(v))]
    repeated = [x for x, w in zip(v, weights) for _ in range(w)]
    assert weighted_mean(v, weights) == pytest.approx(
        np.mean(repeated), rel=1e-9, abs=1e-9
    )
    assert weighted_std(v, weights) == pytest.approx(
        np.std(repeated), rel=1e-9, abs=1e-6
    )


@given(_values)
def test_weighted_quantile_bounded_and_monotone(v):
    q25 = weighted_quantile(v, 0.25)
    q75 = weighted_quantile(v, 0.75)
    assert min(v) <= q25 <= q75 <= max(v)


# ---------------------------------------------------------------------------
# Accounting round-trip.
# ---------------------------------------------------------------------------

_name = st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True)


@given(
    jobid=st.from_regex(r"[0-9]{1,7}", fullmatch=True),
    user=_name,
    nodes=st.integers(1, 4096),
    submit=st.integers(0, 10**6),
    wait=st.integers(0, 10**5),
    wall=st.integers(1, 10**6),
    status=st.sampled_from(list(ExitStatus)),
)
@settings(max_examples=60, deadline=None)
def test_accounting_roundtrip_property(jobid, user, nodes, submit, wait,
                                       wall, status):
    req = JobRequest(
        jobid=jobid, user=user, account="TG-ABC123", science_field="Physics",
        app="namd", queue="normal", submit_time=float(submit), nodes=nodes,
        walltime_req=float(wall) + 1, runtime=float(wall),
    )
    rec = JobRecord(req, float(submit + wait), float(submit + wait + wall),
                    tuple(range(nodes)), status)
    entry = parse_accounting_line(format_accounting_line(rec, 16, "sys"))
    assert entry.job_number == jobid
    assert entry.owner == user
    assert entry.granted_nodes == nodes
    assert entry.exit is status
    assert entry.wall_seconds == wall
    assert entry.wait_seconds == wait


# ---------------------------------------------------------------------------
# Scheduler safety and conservation.
# ---------------------------------------------------------------------------


@st.composite
def _job_stream(draw):
    n = draw(st.integers(1, 25))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(0.0, 5000.0))
        runtime = draw(st.floats(60.0, 50000.0))
        walltime = runtime * draw(st.floats(0.5, 2.0))
        jobs.append(JobRequest(
            jobid=str(i), user=f"u{i % 3}", account="a",
            science_field="Physics", app="namd", queue="normal",
            submit_time=t, nodes=draw(st.integers(1, 8)),
            walltime_req=walltime, runtime=runtime,
            fail_after=draw(st.one_of(st.none(), st.floats(1.0, 40000.0))),
        ))
    return jobs


@given(_job_stream(), st.sampled_from(["fcfs", "easy"]))
@settings(max_examples=30, deadline=None)
def test_scheduler_conservation_properties(jobs, policy_name):
    policy = FCFSPolicy() if policy_name == "fcfs" else EasyBackfillPolicy()
    cluster = Cluster("p", 8, ranger_node())
    result = SchedulerEngine(cluster, policy).run(list(jobs))
    # Every job either ran or was dropped; nothing is lost or duplicated.
    ran = {r.jobid for r in result.records}
    dropped = {r.jobid for r in result.dropped}
    assert ran | dropped == {j.jobid for j in jobs}
    assert not ran & dropped
    # No job starts before submission; durations match outcomes.
    for rec in result.records:
        assert rec.start_time >= rec.request.submit_time
        assert rec.wall_seconds <= rec.request.walltime_req + 1e-6
        if rec.exit_status is ExitStatus.COMPLETED:
            assert rec.wall_seconds == pytest.approx(rec.request.runtime)
    # No overlapping use of any node.
    by_node: dict[int, list[tuple[float, float]]] = {}
    for rec in result.records:
        for node in rec.node_indices:
            by_node.setdefault(node, []).append(
                (rec.start_time, rec.end_time))
    for intervals in by_node.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9
    cluster.check_invariants()


@given(st.lists(st.integers(1, 8), min_size=1, max_size=30))
def test_cluster_allocate_release_property(sizes):
    cluster = Cluster("p", 16, ranger_node())
    held = {}
    for i, n in enumerate(sizes):
        jid = str(i)
        if n <= cluster.free_count:
            held[jid] = cluster.allocate(jid, n)
        if len(held) > 2:
            victim = next(iter(held))
            cluster.release(victim)
            del held[victim]
        cluster.check_invariants()
    assert cluster.free_count == 16 - sum(len(v) for v in held.values())
