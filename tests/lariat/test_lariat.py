"""Tests for Lariat job summaries."""

import io

import pytest

from repro.lariat.logger import LariatLog, parse_lariat_log
from repro.lariat.records import LariatRecord, lariat_record_for
from repro.scheduler.job import ExitStatus, JobRecord
from tests.scheduler.test_job import make_request


def record_for(app="namd", nodes=4):
    req = make_request(app=app, nodes=nodes)
    rec = JobRecord(req, 0.0, 3600.0, tuple(range(nodes)),
                    ExitStatus.COMPLETED)
    return lariat_record_for(rec, cores_per_node=16)


def test_record_synthesis():
    lar = record_for("namd")
    assert lar.jobid == "100"
    assert "namd" in lar.executable
    assert lar.ranks_per_node == 16
    assert lar.num_ranks == 64
    assert "libcharm" in lar.libraries


def test_serial_apps_undersubscribe():
    """The Figure 4/5 pathology is visible in the launch geometry."""
    lar = record_for("serial_farm", nodes=1)
    assert lar.ranks_per_node == 1
    assert lar.num_ranks == 1


def test_json_roundtrip():
    lar = record_for()
    assert LariatRecord.from_json(lar.to_json()) == lar


def test_guess_app_from_executable():
    lar = record_for("gromacs")
    assert lar.guess_app() == "gromacs"


def test_guess_app_from_libraries():
    lar = LariatRecord(
        jobid="1", user="u", executable="/home/u/bin/md_prod.x",
        libraries=("libfftw3", "libcharm", "libmpi"),
        num_ranks=16, ranks_per_node=16, threads_per_rank=1,
        work_dir="/scratch/u/1",
    )
    assert lar.guess_app() == "namd"  # unique library fingerprint


def test_guess_app_unknown_returns_none():
    lar = LariatRecord(
        jobid="1", user="u", executable="/home/u/a.out",
        libraries=("libsecret",), num_ranks=1, ranks_per_node=1,
        threads_per_rank=1, work_dir="/tmp",
    )
    assert lar.guess_app() is None


def test_geometry_validation():
    with pytest.raises(ValueError):
        LariatRecord(jobid="1", user="u", executable="x", libraries=(),
                     num_ranks=0, ranks_per_node=1, threads_per_rank=1,
                     work_dir="/")


def test_log_roundtrip():
    buf = io.StringIO()
    log = LariatLog(buf)
    records = [record_for("namd"), record_for("vasp")]
    for r in records:
        log.write(r)
    assert log.records_written == 2
    parsed = list(parse_lariat_log(buf.getvalue()))
    assert parsed == records


def test_log_rejects_garbage():
    with pytest.raises(ValueError, match="line 1"):
        list(parse_lariat_log("not json\n"))
