"""Tests for the arrival process."""

import numpy as np
import pytest

from repro.util.timeutil import DAY, HOUR
from repro.workload.arrivals import arrival_times


def test_count_and_range():
    rng = np.random.default_rng(0)
    t = arrival_times(500, 10 * DAY, rng)
    assert t.size == 500
    assert (t >= 0).all() and (t < 10 * DAY).all()
    assert (np.diff(t) >= 0).all()


def test_zero_and_validation():
    rng = np.random.default_rng(0)
    assert arrival_times(0, DAY, rng).size == 0
    with pytest.raises(ValueError):
        arrival_times(-1, DAY, rng)
    with pytest.raises(ValueError):
        arrival_times(5, 0.0, rng)


def test_diurnal_cycle_visible():
    rng = np.random.default_rng(1)
    t = arrival_times(30000, 30 * DAY, rng, day_amplitude=0.5,
                      week_amplitude=0.0)
    hours = (t % DAY) // HOUR
    counts = np.bincount(hours.astype(int), minlength=24)
    # Peak afternoon beats pre-dawn trough decisively.
    assert counts[14:17].mean() > 1.5 * counts[2:5].mean()


def test_flat_when_amplitudes_zero():
    rng = np.random.default_rng(2)
    t = arrival_times(50000, 10 * DAY, rng, day_amplitude=0.0,
                      week_amplitude=0.0)
    hours = (t % DAY) // HOUR
    counts = np.bincount(hours.astype(int), minlength=24)
    assert counts.std() / counts.mean() < 0.1


def test_reproducible():
    a = arrival_times(100, DAY, np.random.default_rng(3))
    b = arrival_times(100, DAY, np.random.default_rng(3))
    np.testing.assert_array_equal(a, b)
