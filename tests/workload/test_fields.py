"""Tests for the science-field taxonomy."""

import pytest

from repro.workload.fields import SCIENCE_FIELDS, field_weights


def test_weights_sum_to_one():
    names, weights = field_weights()
    assert sum(weights) == pytest.approx(1.0)
    assert len(names) == len(weights) == len(SCIENCE_FIELDS)


def test_fields_unique_and_nonempty():
    names = [f for f, _ in SCIENCE_FIELDS]
    assert len(set(names)) == len(names)
    assert all(names)
    assert all(w > 0 for _, w in SCIENCE_FIELDS)


def test_dominant_fields_match_tacc_era():
    names, weights = field_weights()
    top = names[int(max(range(len(weights)), key=lambda i: weights[i]))]
    assert top == "Molecular Biosciences"
