"""Tests for per-job behaviour synthesis."""

import numpy as np
import pytest

from repro.cluster.hardware import ranger_node
from repro.util.rng import RngFactory
from repro.workload.applications import RATE_INDEX, get_app
from repro.workload.behavior import DerivedRates, JobBehavior
from repro.workload.users import generate_users


@pytest.fixture(scope="module")
def users():
    return generate_users(30, RngFactory(2).stream("users"))


def behavior(users, app="namd", seed=1, n_nodes=4, duration=600 * 200,
             **kw):
    efficient = next(u for u in users if u.persona == "efficient")
    return JobBehavior(
        app=get_app(app), user=kw.pop("user", efficient),
        node_hw=ranger_node(), n_nodes=n_nodes, duration=duration,
        sample_interval=600.0, behavior_seed=seed, **kw,
    )


def test_rates_matrix_shape_and_positivity(users):
    b = behavior(users)
    r = b.rates_matrix(50)
    assert r.shape == (50, len(RATE_INDEX))
    assert (r >= 0).all()


def test_cpu_fractions_form_valid_split(users):
    b = behavior(users)
    r = b.rates_matrix(200)
    busy = (r[:, RATE_INDEX["cpu_user_frac"]]
            + r[:, RATE_INDEX["cpu_sys_frac"]]
            + r[:, RATE_INDEX["cpu_iowait_frac"]])
    assert (busy <= 1.0 + 1e-9).all()
    idle = DerivedRates.cpu_idle(r)
    assert (idle >= 0).all() and (idle <= 1).all()


def test_mean_idle_tracks_job_idle_base(users):
    """The within-job idle modulation is mean-one: a job's realized mean
    idle matches its own idle gap (no systematic bias from the lognormal
    modulation + clipping)."""
    moderate = next(u for u in users if u.persona == "moderate")
    ratios = []
    for seed in range(40):
        b = behavior(users, user=moderate, seed=seed, duration=600 * 300)
        if b._idle_base < 0.05:
            continue  # floor-clipped jobs are not informative here
        realized = DerivedRates.cpu_idle(b.rates_matrix(300)).mean()
        ratios.append(realized / b._idle_base)
    assert len(ratios) >= 10
    assert np.mean(ratios) == pytest.approx(1.0, abs=0.2)


def test_pathological_user_mostly_idle(users):
    user = next(u for u in users if u.persona == "pathological")
    # Pathological waste shows on untuned codes (custom/serial) — which
    # is what such users actually run (see users.generate_users).
    idles = [
        DerivedRates.cpu_idle(
            behavior(users, user=user, app="custom_mpi",
                     seed=s).rates_matrix(100)
        ).mean()
        for s in range(10)
    ]
    assert np.mean(idles) > 0.6  # ≈ the 87-89 % idle users of Figure 4


def test_tuned_app_absorbs_persona_inefficiency(users):
    """Community codes (tuning > 0) cap how much waste a sloppy persona
    can inject; home-grown codes expose it fully."""
    user = next(u for u in users if u.persona in ("sloppy", "wasteful"))
    idle_tuned = np.mean([
        DerivedRates.cpu_idle(
            behavior(users, user=user, app="namd", seed=s).rates_matrix(60)
        ).mean()
        for s in range(8)
    ])
    idle_raw = np.mean([
        DerivedRates.cpu_idle(
            behavior(users, user=user, app="custom_mpi",
                     seed=s).rates_matrix(60)
        ).mean()
        for s in range(8)
    ])
    assert idle_tuned < idle_raw


def test_util_scale_raises_utilization(users):
    sloppy = next(u for u in users if u.persona in ("sloppy", "moderate"))
    lo = behavior(users, user=sloppy, util_scale=0.8)
    hi = behavior(users, user=sloppy, util_scale=1.25)
    assert (DerivedRates.cpu_idle(hi.rates_matrix(100)).mean()
            < DerivedRates.cpu_idle(lo.rates_matrix(100)).mean())


def test_memory_capped_and_ramps(users):
    b = behavior(users, app="vasp")
    r = b.rates_matrix(100)
    mem = r[:, RATE_INDEX["mem_used_gb"]]
    assert (mem <= 0.99 * 32.0).all()
    # Ramp: first sample well below plateau.
    assert mem[0] < 0.8 * mem[10:].mean()


def test_flops_below_node_peak(users):
    for seed in range(10):
        b = behavior(users, app="milc", seed=seed)
        r = b.rates_matrix(100)
        assert r[:, RATE_INDEX["flops_gf"]].max() < 147.2


def test_node_rates_consistent_with_matrix(users):
    b = behavior(users, n_nodes=3)
    r50 = b.rates_matrix(60)[50]
    per_node = np.array([
        b.node_rates_at(50 * 600.0 + 1.0, slot) for slot in range(3)
    ])
    # Node-average of the per-node I/O rates tracks the matrix value
    # within the static node spread (sigma 0.05, 3 nodes).
    i = RATE_INDEX["io_scratch_write_mb"]
    assert per_node[:, i].mean() == pytest.approx(r50[i], rel=0.2)
    # CPU fractions are identical across nodes (no spread applied).
    assert per_node[0, RATE_INDEX["cpu_user_frac"]] == pytest.approx(
        r50[RATE_INDEX["cpu_user_frac"]]
    )


def test_node0_memory_heavier(users):
    b = behavior(users, n_nodes=4)
    m0 = b.node_rates_at(600.0 * 20, 0)[RATE_INDEX["mem_used_gb"]]
    others = [
        b.node_rates_at(600.0 * 20, s)[RATE_INDEX["mem_used_gb"]]
        for s in (1, 2, 3)
    ]
    assert m0 > np.mean(others)


def test_same_seed_same_behavior(users):
    a = behavior(users, seed=77).rates_matrix(40)
    b = behavior(users, seed=77).rates_matrix(40)
    np.testing.assert_array_equal(a, b)


def test_validation(users):
    with pytest.raises(ValueError):
        behavior(users, duration=0.0)
    with pytest.raises(ValueError):
        behavior(users, n_nodes=0)
    b = behavior(users)
    with pytest.raises(IndexError):
        b.node_rates_at(0.0, 99)
    with pytest.raises(IndexError):
        b.rates_at_step(10**9)


def test_derived_rates_relations(users):
    b = behavior(users, app="wrf")
    r = b.rates_matrix(50)
    lnet_tx = DerivedRates.lnet_tx_mb(r)
    writes = (r[:, RATE_INDEX["io_scratch_write_mb"]]
              + r[:, RATE_INDEX["io_work_write_mb"]]
              + r[:, RATE_INDEX["io_share_write_mb"]])
    assert (lnet_tx >= writes).all()  # overhead + floor
    ib_tx = DerivedRates.ib_tx_mb(r)
    assert (ib_tx >= lnet_tx).all()  # MPI rides on top
