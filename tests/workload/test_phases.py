"""Tests for the within-job phase model."""

import numpy as np
import pytest

from repro.util.rng import RngFactory
from repro.workload.applications import RATE_FIELDS
from repro.workload.phases import (
    FIELD_GROUP,
    GROUPS,
    PhaseModel,
)


def model(seed=0, **kw):
    return PhaseModel(RngFactory(seed).stream("phases"), **kw)


def test_every_field_has_a_group():
    assert set(FIELD_GROUP) == set(RATE_FIELDS)
    assert set(FIELD_GROUP.values()) <= set(GROUPS)


def test_series_mean_one():
    m = model(1)
    for g in GROUPS:
        s = m.group_series(g, 60000)
        assert s.mean() == pytest.approx(1.0, rel=0.12)
        assert (s > 0).all()


def test_builtin_ordering_io_fastest_mem_flops_slowest():
    """The calibration must encode the paper's predictability ranking:
    I/O decorrelates fastest, network next, FLOPS/memory slowest.  Use the
    empirical lag-1 autocorrelation of the log-modulation (the
    variance-weighted e-folding time is misleading for two-component
    mixes, where a low-variance slow component can dominate the tail)."""
    n = 60000

    def lag1(group):
        s = np.log(model(11).group_series(group, n))
        return float(np.corrcoef(s[1:], s[:-1])[0, 1])

    assert lag1("io") < lag1("net")
    assert lag1("net") < lag1("flops")
    assert lag1("net") < lag1("mem")
    tau = {g: PhaseModel.correlation_time_steps(g) for g in GROUPS}
    assert tau["io"] < tau["net"] < tau["mem"]


def test_autocorrelation_reflects_rho():
    m = model(2)
    s_fast = np.log(m.group_series("io", 40000))
    s_slow = np.log(model(2).group_series("mem", 40000))

    def lag1(x):
        return float(np.corrcoef(x[1:], x[:-1])[0, 1])

    assert lag1(s_fast) < lag1(s_slow)
    assert lag1(s_slow) > 0.95


def test_field_matrix_groups_share_series():
    m = model(3)
    mat = m.field_matrix(100)
    assert mat.shape == (100, len(RATE_FIELDS))
    idx = {name: i for i, name in enumerate(RATE_FIELDS)}
    # Same group, identical series.
    np.testing.assert_array_equal(
        mat[:, idx["io_scratch_write_mb"]], mat[:, idx["io_work_read_mb"]]
    )
    # Different groups differ.
    assert not np.allclose(mat[:, idx["mem_used_gb"]],
                           mat[:, idx["flops_gf"]])


def test_step_scale_preserves_physical_correlation_time():
    """Sampling twice as often must not change the process, only the grid.

    Compare lag-2 autocorrelation at half-steps with lag-1 at full steps.
    """
    n = 60000
    ref = np.log(model(4, step_scale=1.0).group_series("net", n))
    half = np.log(model(4, step_scale=0.5).group_series("net", 2 * n))

    def lag_corr(x, k):
        return float(np.corrcoef(x[k:], x[:-k])[0, 1])

    assert lag_corr(half, 2) == pytest.approx(lag_corr(ref, 1), abs=0.03)
    # Stationary variance invariant under resampling.
    assert half.std() == pytest.approx(ref.std(), rel=0.05)


def test_calibration_override_single_tuple_accepted():
    m = model(5, calibration={g: (0.5, 0.1) for g in GROUPS})
    s = m.group_series("io", 1000)
    assert s.shape == (1000,)


def test_validation():
    with pytest.raises(ValueError):
        model(0, calibration={"cpu": (1.5, 0.1)})
    with pytest.raises(ValueError):
        model(0, calibration={"cpu": (0.5, -0.1)})
    with pytest.raises(ValueError):
        model(0, step_scale=0.0)
    with pytest.raises(ValueError):
        model(0).group_series("cpu", 0)


def test_reproducible():
    a = model(9).field_matrix(50)
    b = model(9).field_matrix(50)
    np.testing.assert_array_equal(a, b)
