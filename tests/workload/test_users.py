"""Tests for the user population generator."""

import numpy as np
import pytest

from repro.util.rng import RngFactory
from repro.workload.applications import APP_CATALOG
from repro.workload.users import PERSONAS, UserProfile, generate_users


@pytest.fixture(scope="module")
def users():
    return generate_users(400, RngFactory(5).stream("users"))


def test_population_shape(users):
    assert len(users) == 400
    assert len({u.username for u in users}) == 400
    assert len({u.uid for u in users}) == 400


def test_apps_match_catalog(users):
    for u in users:
        assert u.apps
        for app in u.apps:
            assert app in APP_CATALOG


def test_heavy_tailed_activity(users):
    acts = np.sort([u.activity for u in users])[::-1]
    top5_share = acts[:5].sum() / acts.sum()
    assert top5_share > 0.15  # a few users dominate (Figure 2 regime)


def test_pathological_user_planted(users):
    order = sorted(users, key=lambda u: -u.activity)
    heavy = order[:10]
    assert any(u.persona == "pathological" for u in heavy)
    pathological = [u for u in users if u.persona == "pathological"]
    for u in pathological:
        assert u.util_factor < 0.25  # >= 75 % idle on a busy code


def test_planted_user_other_resources_light():
    """Figure 5: the circled user shows normal-to-light usage elsewhere."""
    users = generate_users(100, RngFactory(9).stream("u"),
                           plant_pathological_rank=5)
    order = sorted(users, key=lambda u: -u.activity)
    planted = order[4]
    assert planted.persona == "pathological"
    assert planted.mem_factor <= 0.8
    assert planted.io_factor <= 0.7


def test_persona_distribution_dominated_by_efficient(users):
    counts = {}
    for u in users:
        counts[u.persona] = counts.get(u.persona, 0) + 1
    assert counts.get("efficient", 0) > counts.get("sloppy", 0)
    assert counts.get("efficient", 0) > 0.4 * len(users)


def test_personas_table_valid():
    total_p = sum(p for _, p in PERSONAS.values())
    assert total_p == pytest.approx(1.0)


def test_pick_app_prefers_first():
    users = generate_users(50, RngFactory(1).stream("u"))
    multi = next(u for u in users if len(u.apps) >= 2)
    rng = np.random.default_rng(0)
    picks = [multi.pick_app(rng).name for _ in range(300)]
    assert picks.count(multi.apps[0]) > picks.count(multi.apps[-1])


def test_validation():
    with pytest.raises(ValueError):
        generate_users(0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        UserProfile("u", 1, "a", "Physics", (), 1.0, "efficient", 1.0,
                    1.0, 1.0, 1.0)


def test_reproducible():
    a = generate_users(20, RngFactory(3).stream("users"))
    b = generate_users(20, RngFactory(3).stream("users"))
    assert a == b
