"""Tests for the calibrated workload generator."""

import numpy as np
import pytest

from repro.config import RANGER
from repro.util.rng import RngFactory
from repro.workload.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    cfg = RANGER.scaled(num_nodes=64, horizon_days=10, n_users=60)
    return cfg, WorkloadGenerator(cfg, RngFactory(13)).generate()


def test_requests_in_submit_order(workload):
    _, wl = workload
    subs = [r.submit_time for r in wl.requests]
    assert subs == sorted(subs)
    assert len({r.jobid for r in wl.requests}) == len(wl.requests)


def test_node_second_target_hit(workload):
    cfg, wl = workload
    target = cfg.target_utilization * cfg.num_nodes * cfg.horizon
    total = sum(r.nodes * r.runtime for r in wl.requests)
    # The trailing corrective rescale (Phase 3) moves the total a little;
    # the scheduler only needs demand ~= capacity, not an exact match.
    assert total == pytest.approx(target, rel=0.10)


def test_weighted_job_length_calibrated(workload):
    cfg, wl = workload
    n = np.array([r.nodes for r in wl.requests], dtype=float)
    t = np.array([r.runtime for r in wl.requests])
    w = n * t
    weighted_mean_min = float(np.sum(w * t) / w.sum()) / 60.0
    assert weighted_mean_min == pytest.approx(cfg.avg_job_minutes, rel=0.05)


def test_job_size_mix_preserved_under_scaling(workload):
    _, wl = workload
    nodes = np.array([r.nodes for r in wl.requests])
    assert nodes.min() == 1
    assert nodes.max() >= 8  # multi-node jobs survive the shrink
    assert (nodes == 1).mean() > 0.2  # serial tail still present


def test_failure_and_timeout_populations(workload):
    _, wl = workload
    n = len(wl.requests)
    failing = sum(1 for r in wl.requests if r.fail_after is not None)
    timing_out = sum(1 for r in wl.requests if r.runtime > r.walltime_req)
    assert 0.01 < failing / n < 0.15
    assert 0.005 < timing_out / n < 0.12


def test_queues_assigned(workload):
    _, wl = workload
    queues = {r.queue for r in wl.requests}
    assert "normal" in queues
    assert queues <= {"normal", "development", "large"}


def test_users_and_fields_consistent(workload):
    _, wl = workload
    for r in wl.requests[:200]:
        user = wl.users[r.user]
        assert r.science_field == user.science_field
        assert r.app in user.apps
        assert r.account == user.account


def test_behavior_seeds_unique(workload):
    _, wl = workload
    seeds = [r.behavior_seed for r in wl.requests]
    assert len(set(seeds)) == len(seeds)


def test_util_scale_in_plausible_band(workload):
    _, wl = workload
    assert 0.4 <= wl.util_scale <= 2.5


def test_reproducible():
    cfg = RANGER.scaled(num_nodes=32, horizon_days=3, n_users=20)
    a = WorkloadGenerator(cfg, RngFactory(5)).generate()
    b = WorkloadGenerator(cfg, RngFactory(5)).generate()
    assert a.requests == b.requests
    assert a.util_scale == b.util_scale


def test_different_systems_draw_independently():
    import dataclasses
    cfg_a = RANGER.scaled(num_nodes=32, horizon_days=3, n_users=20)
    cfg_b = dataclasses.replace(cfg_a, seed_label="other")
    a = WorkloadGenerator(cfg_a, RngFactory(5)).generate()
    b = WorkloadGenerator(cfg_b, RngFactory(5)).generate()
    assert [r.nodes for r in a.requests] != [r.nodes for r in b.requests]
