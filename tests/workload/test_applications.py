"""Tests for the application catalog and rate-vector construction."""

import numpy as np
import pytest

from repro.cluster.hardware import ranger_node
from repro.workload.applications import (
    APP_CATALOG,
    RATE_FIELDS,
    RATE_INDEX,
    get_app,
)


def test_rate_index_consistent():
    assert len(RATE_FIELDS) == len(RATE_INDEX)
    for name, i in RATE_INDEX.items():
        assert RATE_FIELDS[i] == name


def test_catalog_sanity():
    assert len(APP_CATALOG) >= 15
    for app in APP_CATALOG.values():
        assert 0 < app.cpu_user + app.cpu_sys + app.cpu_iowait <= 1
        assert app.nodes_min >= 1
        assert app.weight > 0


def test_get_app():
    assert get_app("namd").display == "NAMD"
    with pytest.raises(KeyError, match="unknown application"):
        get_app("doom")


def test_paper_figure3_orderings():
    """NAMD and GROMACS are more efficient than AMBER; AMBER and GROMACS
    differ across architectures while NAMD does not (paper §4.3.2)."""
    namd, amber, gromacs = (get_app(n) for n in ("namd", "amber", "gromacs"))
    assert namd.cpu_idle < amber.cpu_idle
    assert gromacs.cpu_idle < amber.cpu_idle
    assert namd.flops_frac > amber.flops_frac
    assert namd.flops_multiplier("intel") == namd.flops_multiplier("amd64")
    assert amber.flops_multiplier("intel") != amber.flops_multiplier("amd64")
    assert gromacs.flops_multiplier("intel") != 1.0


def test_high_idle_archetypes_exist():
    """Figures 4/5 need workloads that waste most of the node."""
    idle_heavy = [a for a in APP_CATALOG.values() if a.cpu_idle > 0.5]
    assert len(idle_heavy) >= 2


def test_base_rates_scale_with_hardware():
    app = get_app("namd")
    ranger = app.base_rates(147.2, 32.0, "amd64")
    ls4 = app.base_rates(159.8, 24.0, "intel")
    assert ranger[RATE_INDEX["flops_gf"]] == pytest.approx(0.10 * 147.2)
    assert ranger[RATE_INDEX["mem_used_gb"]] == pytest.approx(0.16 * 32.0)
    assert ls4[RATE_INDEX["mem_used_gb"]] == pytest.approx(0.16 * 24.0)


def test_base_rates_achieved_flops_well_below_peak():
    """Figure 9/10: the real job mix delivers a few percent of peak."""
    node = ranger_node()
    weights = np.array([a.weight for a in APP_CATALOG.values()])
    fracs = np.array([
        a.base_rates(node.peak_gflops, node.memory_gb, "amd64")[
            RATE_INDEX["flops_gf"]
        ] / node.peak_gflops
        for a in APP_CATALOG.values()
    ])
    mix = float(np.sum(weights * fracs) / weights.sum())
    assert 0.01 < mix < 0.12


def test_sample_nodes_respects_bounds():
    rng = np.random.default_rng(0)
    app = get_app("milc")
    for _ in range(200):
        n = app.sample_nodes(rng, scale=0.2, system_max=64)
        assert 1 <= n <= 64


def test_sample_runtime_mean_preserved():
    rng = np.random.default_rng(1)
    app = get_app("namd")
    draws = np.array([app.sample_runtime(rng) for _ in range(4000)])
    assert draws.mean() / 60.0 == pytest.approx(app.runtime_mean_min,
                                                rel=0.1)


def test_memory_mix_stays_under_half_capacity():
    """Figure 12 (Ranger): average memory usage well under 50 %."""
    weights = np.array([a.weight for a in APP_CATALOG.values()])
    mems = np.array([a.mem_frac_mean for a in APP_CATALOG.values()])
    assert float(np.sum(weights * mems) / weights.sum()) < 0.5
