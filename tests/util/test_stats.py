"""Tests for weighted statistics and OLS inference."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.util.stats import (
    coefficient_of_variation,
    fit_line,
    pearson_matrix,
    weighted_mean,
    weighted_quantile,
    weighted_std,
)


def test_weighted_mean_uniform_matches_numpy():
    v = np.array([1.0, 2.0, 5.0, 9.0])
    assert weighted_mean(v) == pytest.approx(v.mean())


def test_weighted_mean_weights():
    assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)


def test_weighted_mean_frequency_semantics():
    # Weights of (2, 1) must equal repeating the first value twice.
    assert weighted_mean([4.0, 7.0], [2.0, 1.0]) == pytest.approx(
        np.mean([4.0, 4.0, 7.0])
    )


def test_weighted_std_frequency_semantics():
    assert weighted_std([4.0, 7.0], [2.0, 1.0]) == pytest.approx(
        np.std([4.0, 4.0, 7.0])
    )


def test_weighted_std_ddof():
    v = [1.0, 2.0, 3.0, 4.0]
    assert weighted_std(v, ddof=1) == pytest.approx(np.std(v, ddof=1))


def test_weighted_mean_validation():
    with pytest.raises(ValueError):
        weighted_mean([])
    with pytest.raises(ValueError):
        weighted_mean([1.0], [-1.0])
    with pytest.raises(ValueError):
        weighted_mean([1.0, 2.0], [0.0, 0.0])
    with pytest.raises(ValueError):
        weighted_mean([1.0, 2.0], [1.0])


def test_weighted_quantile_median():
    v = [1.0, 2.0, 3.0, 4.0, 100.0]
    assert weighted_quantile(v, 0.5) == pytest.approx(3.0)


def test_weighted_quantile_respects_weights():
    # Nearly all the weight on the large value pulls the median up.
    q = weighted_quantile([1.0, 10.0], 0.5, weights=[1.0, 99.0])
    assert q > 9.0


def test_weighted_quantile_bounds():
    with pytest.raises(ValueError):
        weighted_quantile([1.0], 1.5)


def test_coefficient_of_variation():
    v = np.array([2.0, 4.0, 6.0])
    assert coefficient_of_variation(v) == pytest.approx(v.std() / v.mean())
    with pytest.raises(ValueError):
        coefficient_of_variation([-1.0, 1.0])


def test_pearson_matrix_recovers_known_structure():
    rng = np.random.default_rng(0)
    x = rng.normal(size=500)
    names, r = pearson_matrix({"x": x, "neg": -x + rng.normal(0, 0.01, 500),
                               "indep": rng.normal(size=500)})
    i, j, k = names.index("x"), names.index("neg"), names.index("indep")
    assert r[i, i] == pytest.approx(1.0)
    assert r[i, j] < -0.99
    assert abs(r[i, k]) < 0.15


def test_pearson_matrix_rejects_constant_column():
    with pytest.raises(ValueError, match="constant"):
        pearson_matrix({"a": np.ones(10), "b": np.arange(10.0)})


def test_fit_line_matches_scipy_linregress():
    rng = np.random.default_rng(3)
    x = np.linspace(0, 10, 40)
    y = 2.5 * x - 1.0 + rng.normal(0, 0.5, x.size)
    ours = fit_line(x, y)
    ref = sps.linregress(x, y)
    assert ours.slope == pytest.approx(ref.slope)
    assert ours.intercept == pytest.approx(ref.intercept)
    assert ours.r_squared == pytest.approx(ref.rvalue**2)
    assert ours.slope_stderr == pytest.approx(ref.stderr)
    assert ours.slope_p == pytest.approx(ref.pvalue, rel=1e-6)
    assert ours.intercept_stderr == pytest.approx(ref.intercept_stderr)


def test_fit_line_perfect_fit():
    x = np.array([0.0, 1.0, 2.0, 3.0])
    fit = fit_line(x, 3.0 * x + 1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.slope == pytest.approx(3.0)
    assert fit.slope_p == pytest.approx(0.0, abs=1e-12)


def test_fit_line_predict_and_summary():
    fit = fit_line([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
    assert fit.predict([3.0])[0] == pytest.approx(7.0)
    assert "R^2" in fit.summary()


def test_fit_line_validation():
    with pytest.raises(ValueError):
        fit_line([1.0, 2.0], [1.0, 2.0])  # too few points
    with pytest.raises(ValueError):
        fit_line([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])  # constant x
    with pytest.raises(ValueError):
        fit_line([[1.0, 2.0]], [[1.0, 2.0]])  # not 1-D
