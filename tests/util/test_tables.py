"""Tests for ASCII table / key-value rendering."""

import pytest

from repro.util.tables import Column, render_kv, render_table


ROWS = [
    {"name": "namd", "jobs": 120, "idle": 0.0512},
    {"name": "amber", "jobs": 45, "idle": 0.2534},
]


def test_render_table_dict_rows():
    out = render_table(ROWS, ["name", "jobs"])
    lines = out.split("\n")
    assert lines[0].split() == ["name", "jobs"]
    assert "namd" in lines[2]
    assert "120" in lines[2]


def test_render_table_column_formatting():
    out = render_table(ROWS, [Column("name"), Column("idle", fmt=".1%")])
    assert "5.1%" in out
    assert "25.3%" in out


def test_render_table_callable_key_and_fmt():
    cols = [
        Column("app", key=lambda r: r["name"].upper()),
        Column("idle", fmt=lambda v: f"<{v:.2f}>"),
    ]
    out = render_table(ROWS, cols)
    assert "NAMD" in out
    assert "<0.05>" in out


def test_render_table_numeric_right_aligned():
    out = render_table(ROWS, ["name", "jobs"])
    data_lines = out.split("\n")[2:]
    # Numbers right-aligned: shorter number is padded on the left.
    assert data_lines[1].rstrip().endswith("45")
    assert data_lines[0].rstrip().endswith("120")


def test_render_table_object_rows():
    class R:
        name = "x"
        jobs = 3

    out = render_table([R()], ["name", "jobs"])
    assert "x" in out


def test_render_table_none_renders_dash():
    out = render_table([{"a": None}], ["a"])
    assert "-" in out.split("\n")[-1]


def test_render_table_title_and_empty():
    out = render_table([], ["a", "b"], title="EMPTY")
    assert out.startswith("EMPTY")
    assert "a" in out


def test_render_kv():
    out = render_kv({"jobs": 10, "user": "alice"}, title="T")
    lines = out.split("\n")
    assert lines[0] == "T"
    assert any("alice" in l for l in lines)


def test_render_kv_empty_raises():
    with pytest.raises(ValueError):
        render_kv({})
