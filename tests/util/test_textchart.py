"""Tests for terminal chart rendering."""

import numpy as np
import pytest

from repro.util.textchart import (
    bar_chart,
    radar_text,
    scatter_text,
    series_text,
    sparkline,
)


def test_sparkline_monotone():
    s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert len(s) == 8
    assert s[0] == "▁"
    assert s[-1] == "█"


def test_sparkline_flat():
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_sparkline_empty_raises():
    with pytest.raises(ValueError):
        sparkline([])


def test_bar_chart_scales_to_max():
    out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
    lines = out.split("\n")
    assert lines[1].count("█") == 10
    assert lines[0].count("█") == 5


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        bar_chart([], [])


def test_radar_text_baseline_tick():
    out = radar_text({"cpu_idle": 2.0, "mem_used": 0.5})
    lines = out.split("\n")
    assert len(lines) == 2
    # The baseline marker appears (either | on empty or ╋ over a bar).
    assert any(c in out for c in "|╋")
    assert "2.00" in out
    assert "0.50" in out


def test_radar_text_empty_raises():
    with pytest.raises(ValueError):
        radar_text({})


def test_scatter_text_shape_and_marks():
    out = scatter_text([1, 10, 100], [1, 10, 100], width=20, height=5,
                       logx=True, logy=True)
    lines = out.split("\n")
    assert len(lines) == 7  # frame + 5 rows
    assert out.count("*") == 3


def test_scatter_text_overlay():
    out = scatter_text([1.0, 2.0], [1.0, 2.0],
                       overlay={(2.0, 2.0): "O"})
    assert "O" in out


def test_scatter_text_log_drops_nonpositive():
    out = scatter_text([0.0, 1.0, 10.0], [1.0, 1.0, 2.0], logx=True)
    assert out.count("*") == 2


def test_scatter_text_validation():
    with pytest.raises(ValueError):
        scatter_text([], [])
    with pytest.raises(ValueError):
        scatter_text([0.0], [1.0], logx=True)  # nothing plottable


def test_series_text_downsamples():
    t = np.arange(1000.0)
    out = series_text(t, np.sin(t / 50), width=40, label="sig")
    assert out.startswith("sig:")
    assert "mean=" in out


def test_series_text_validation():
    with pytest.raises(ValueError):
        series_text([1.0], [1.0, 2.0])
