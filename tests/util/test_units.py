"""Tests for unit constants and formatting."""

import pytest

from repro.util.units import (
    GB,
    GIGA,
    KB,
    MB,
    MEGA,
    TB,
    TERA,
    format_bytes,
    format_count,
    parse_bytes,
)


def test_binary_constants():
    assert KB == 1024
    assert MB == 1024**2
    assert GB == 1024**3
    assert TB == 1024**4


def test_decimal_constants():
    assert MEGA == 10**6
    assert GIGA == 10**9
    assert TERA == 10**12


def test_format_bytes():
    assert format_bytes(3 * GB) == "3.0 GB"
    assert format_bytes(512) == "512.0 B"
    assert format_bytes(1536, precision=2) == "1.50 KB"
    assert format_bytes(0) == "0.0 B"
    assert format_bytes(-2 * MB) == "-2.0 MB"


def test_format_count():
    assert format_count(2.1e13, unit="F") == "21.0 TF"
    assert format_count(1500) == "1.5 K"
    assert format_count(0.5) == "0.5 "


@pytest.mark.parametrize(
    "text,expected",
    [
        ("24 GB", 24 * GB),
        ("512KB", 512 * KB),
        ("42", 42),
        ("1.5 MB", int(1.5 * MB)),
        ("2 TiB", 2 * TB),
        ("0 B", 0),
    ],
)
def test_parse_bytes(text, expected):
    assert parse_bytes(text) == expected


@pytest.mark.parametrize("bad", ["", "GB", "1.2.3 MB", "twelve KB", "5 XB"])
def test_parse_bytes_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_bytes(bad)


def test_roundtrip_parse_format():
    for n in (0, 1, KB, 3 * GB, 17 * MB):
        assert parse_bytes(format_bytes(n, precision=6)) == n
