"""Tests for simulated-time helpers."""

import math

import pytest

from repro.util.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    aligned_samples,
    diurnal_factor,
    format_duration,
    format_epoch,
    label_to_period_index,
    period_label,
)


def test_constants():
    assert MINUTE == 60
    assert HOUR == 3600
    assert DAY == 86400
    assert WEEK == 7 * DAY


def test_format_epoch_anchor():
    # Anchor is 2011-06-01T00:00:00Z (start of the Ranger study period).
    assert format_epoch(0) == "2011-06-01T00:00:00"
    assert format_epoch(DAY) == "2011-06-02T00:00:00"
    assert format_epoch(30 * DAY) == "2011-07-01T00:00:00"


def test_format_epoch_leap_and_year_boundaries():
    # 214 days after 2011-06-01 is 2012-01-01; 2012 is a leap year.
    assert format_epoch(214 * DAY) == "2012-01-01T00:00:00"
    assert format_epoch((214 + 31 + 28) * DAY) == "2012-02-29T00:00:00"


def test_format_epoch_time_of_day():
    assert format_epoch(HOUR + 23 * MINUTE + 45) == "2011-06-01T01:23:45"


def test_format_duration():
    assert format_duration(50) == "00:00:50"
    assert format_duration(3 * HOUR + 4 * MINUTE + 5) == "03:04:05"
    assert format_duration(2 * DAY + HOUR) == "2+01:00:00"


def test_diurnal_factor_positive_and_periodic():
    for t in range(0, WEEK, 3600):
        f = diurnal_factor(t)
        assert f > 0
        assert math.isclose(f, diurnal_factor(t + WEEK), rel_tol=1e-9)


def test_diurnal_factor_mean_near_one():
    vals = [diurnal_factor(t) for t in range(0, WEEK, 600)]
    assert abs(sum(vals) / len(vals) - 1.0) < 0.02


def test_diurnal_factor_peaks_at_peak_hour():
    peak = diurnal_factor(15 * HOUR, week_amplitude=0.0)
    trough = diurnal_factor(3 * HOUR, week_amplitude=0.0)
    assert peak > trough


def test_diurnal_zero_amplitude_flat():
    assert diurnal_factor(12345.0, 0.0, 0.0) == pytest.approx(1.0)


def test_aligned_samples_basic():
    ticks = aligned_samples(0.0, 1800.0, 600.0)
    assert ticks == [0.0, 600.0, 1200.0, 1800.0]


def test_aligned_samples_unaligned_start_end():
    ticks = aligned_samples(150.0, 1500.0, 600.0)
    # start, aligned interior ticks, end.
    assert ticks == [150.0, 600.0, 1200.0, 1500.0]


def test_aligned_samples_short_window():
    # A window shorter than one interval still yields begin + end.
    assert aligned_samples(100.0, 200.0, 600.0) == [100.0, 200.0]


def test_aligned_samples_zero_length():
    assert aligned_samples(100.0, 100.0, 600.0) == [100.0]


def test_aligned_samples_validation():
    with pytest.raises(ValueError):
        aligned_samples(100.0, 50.0, 600.0)
    with pytest.raises(ValueError):
        aligned_samples(0.0, 100.0, 0.0)


def test_period_label_day_multiples_stay_plain_dates():
    # Day-granular periods keep the historical bare-date labels, so
    # existing archives parse unchanged.
    assert period_label(0) == "2011-06-01"
    assert period_label(1) == "2011-06-02"
    assert period_label(0, period=2 * DAY) == "2011-06-01"
    assert period_label(1, period=2 * DAY) == "2011-06-03"


def test_period_label_sub_day_has_colon_free_time():
    assert period_label(0, period=HOUR) == "2011-06-01T000000"
    assert period_label(5, period=HOUR) == "2011-06-01T050000"
    assert period_label(25, period=HOUR) == "2011-06-02T010000"
    assert period_label(3, period=15 * MINUTE) == "2011-06-01T004500"


def test_period_labels_sort_chronologically():
    labels = [period_label(i, period=4 * HOUR) for i in range(20)]
    assert labels == sorted(labels)


def test_label_round_trips_for_many_periods():
    for period in (15 * MINUTE, HOUR, 4 * HOUR, DAY, 2 * DAY):
        for idx in (0, 1, 5, 37, 400):
            label = period_label(idx, period=period)
            assert label_to_period_index(label, period=period) == idx


def test_label_to_period_index_rejects_garbage():
    with pytest.raises(ValueError):
        label_to_period_index("2011-06-01Tnoon", period=HOUR)
    with pytest.raises(ValueError):
        label_to_period_index("2011-06-01T12", period=HOUR)
    with pytest.raises(ValueError):
        period_label(0, period=0)
    with pytest.raises(ValueError):
        label_to_period_index("2011-06-01", period=-5)
