"""Tests for the Gaussian KDE with Scott's rule."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.util.kde import GaussianKDE, scott_bandwidth


def test_scott_bandwidth_formula():
    rng = np.random.default_rng(0)
    v = rng.normal(size=400)
    assert scott_bandwidth(v) == pytest.approx(
        v.std(ddof=1) * 400 ** (-0.2)
    )


def test_scott_bandwidth_validation():
    with pytest.raises(ValueError):
        scott_bandwidth([1.0])
    with pytest.raises(ValueError):
        scott_bandwidth([2.0, 2.0, 2.0])


def test_kde_matches_scipy_gaussian_kde():
    rng = np.random.default_rng(1)
    v = rng.normal(3.0, 2.0, 300)
    ours = GaussianKDE(v)
    ref = sps.gaussian_kde(v, bw_method="scott")
    grid = np.linspace(-4, 10, 50)
    np.testing.assert_allclose(ours(grid), ref(grid), rtol=1e-6)


def test_kde_integrates_to_one():
    rng = np.random.default_rng(2)
    kde = GaussianKDE(rng.exponential(2.0, 500))
    assert kde.integral() == pytest.approx(1.0, abs=0.01)


def test_kde_mode_of_bimodal():
    rng = np.random.default_rng(3)
    v = np.concatenate([rng.normal(0, 0.3, 200), rng.normal(5, 0.3, 800)])
    assert GaussianKDE(v).mode() == pytest.approx(5.0, abs=0.3)


def test_kde_weights_shift_density():
    v = np.array([0.0] * 50 + [10.0] * 50)
    w = np.array([1.0] * 50 + [9.0] * 50)
    kde = GaussianKDE(v, weights=w)
    assert kde([10.0])[0] > 5 * kde([0.0])[0]


def test_kde_weighted_matches_direct_sum():
    rng = np.random.default_rng(4)
    v = rng.normal(size=200)
    w = rng.uniform(0.1, 2.0, 200)
    h = 0.5
    ours = GaussianKDE(v, weights=w, bandwidth=h)
    grid = np.linspace(-3, 3, 20)
    wn = w / w.sum()
    direct = np.array([
        np.sum(wn * np.exp(-0.5 * ((x - v) / h) ** 2))
        / (h * np.sqrt(2 * np.pi))
        for x in grid
    ])
    np.testing.assert_allclose(ours(grid), direct, rtol=1e-10)


def test_kde_chunked_evaluation_consistent():
    rng = np.random.default_rng(5)
    v = rng.normal(size=100)
    kde = GaussianKDE(v)
    kde._CHUNK_ELEMS = 128  # force many tiny chunks
    grid = np.linspace(-3, 3, 77)
    expected = GaussianKDE(v)(grid)
    np.testing.assert_allclose(kde(grid), expected)


def test_kde_validation():
    with pytest.raises(ValueError):
        GaussianKDE([1.0])
    with pytest.raises(ValueError):
        GaussianKDE([1.0, 2.0], weights=[1.0])
    with pytest.raises(ValueError):
        GaussianKDE([1.0, 2.0], bandwidth=0.0)
    with pytest.raises(ValueError):
        GaussianKDE([1.0, 2.0], weights=[0.0, 0.0])


def test_kde_preserves_grid_shape():
    kde = GaussianKDE([0.0, 1.0, 2.0])
    out = kde(np.zeros((3, 4)))
    assert out.shape == (3, 4)
