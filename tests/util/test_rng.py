"""Tests for the named RNG stream factory."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, stable_hash64


def test_same_seed_same_stream_reproduces():
    a = RngFactory(42).stream("arrivals").integers(0, 1000, 16)
    b = RngFactory(42).stream("arrivals").integers(0, 1000, 16)
    assert (a == b).all()


def test_repeated_stream_call_restarts():
    rf = RngFactory(1)
    a = rf.stream("x").random(4)
    b = rf.stream("x").random(4)
    assert (a == b).all()


def test_different_names_are_independent():
    rf = RngFactory(42)
    a = rf.stream("a").random(32)
    b = rf.stream("b").random(32)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngFactory(1).stream("x").random(8)
    b = RngFactory(2).stream("x").random(8)
    assert not np.allclose(a, b)


def test_child_factory_deterministic_and_distinct():
    rf = RngFactory(5)
    c1 = rf.child("job/1").stream("phases").random(8)
    c1_again = RngFactory(5).child("job/1").stream("phases").random(8)
    c2 = rf.child("job/2").stream("phases").random(8)
    assert (c1 == c1_again).all()
    assert not np.allclose(c1, c2)


def test_stable_hash_is_stable():
    # Regression pin: if this changes, every stored seed changes meaning.
    assert stable_hash64("arrivals") == stable_hash64("arrivals")
    assert stable_hash64("a") != stable_hash64("b")


def test_seed_type_checked():
    with pytest.raises(TypeError):
        RngFactory("not-an-int")  # type: ignore[arg-type]


def test_seed_property():
    assert RngFactory(9).seed == 9
