"""Tests for the wait queue."""

import pytest

from repro.scheduler.queue import WaitQueue
from tests.scheduler.test_job import make_request


def req(jobid, t):
    return make_request(jobid=jobid, submit_time=t)


def test_fifo_order():
    q = WaitQueue()
    for i in range(4):
        q.push(req(str(i), float(i)))
    assert [r.jobid for r in q] == ["0", "1", "2", "3"]
    assert q.head().jobid == "0"
    assert len(q) == 4


def test_remove_skips_tombstones():
    q = WaitQueue()
    for i in range(4):
        q.push(req(str(i), float(i)))
    q.remove("1")
    q.remove("0")
    assert [r.jobid for r in q] == ["2", "3"]
    assert q.head().jobid == "2"
    assert len(q) == 2


def test_double_remove_rejected():
    q = WaitQueue()
    q.push(req("a", 0.0))
    q.remove("a")
    with pytest.raises(KeyError):
        q.remove("a")


def test_out_of_order_push_rejected():
    q = WaitQueue()
    q.push(req("a", 100.0))
    with pytest.raises(ValueError, match="out-of-order"):
        q.push(req("b", 50.0))


def test_empty_queue():
    q = WaitQueue()
    assert not q
    assert q.head() is None
    assert q.as_list() == []


def test_compaction_preserves_contents():
    q = WaitQueue()
    for i in range(300):
        q.push(req(str(i), float(i)))
    for i in range(0, 300, 2):
        q.remove(str(i))  # triggers internal compaction
    assert len(q) == 150
    assert [r.jobid for r in q] == [str(i) for i in range(1, 300, 2)]
    # Still usable after compaction.
    q.push(req("300", 300.0))
    q.remove("1")
    assert q.head().jobid == "3"
