"""Tests for the discrete-event scheduler engine."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.hardware import ranger_node
from repro.cluster.outages import Outage, OutageKind
from repro.scheduler.engine import SchedulerEngine
from repro.scheduler.job import ExitStatus
from repro.scheduler.policies import EasyBackfillPolicy, FCFSPolicy
from tests.scheduler.test_job import make_request


def engine(nodes=8, policy=None):
    cluster = Cluster("test", nodes, ranger_node())
    return SchedulerEngine(cluster, policy or EasyBackfillPolicy())


def test_single_job_lifecycle():
    req = make_request(jobid="1", submit_time=100.0, nodes=4,
                       runtime=1000.0, walltime_req=2000.0)
    result = engine().run([req])
    assert len(result.records) == 1
    rec = result.records[0]
    assert rec.start_time == 100.0
    assert rec.end_time == 1100.0
    assert rec.exit_status is ExitStatus.COMPLETED
    assert len(rec.node_indices) == 4
    assert result.total_node_hours == pytest.approx(4 * 1000 / 3600)


def test_jobs_queue_when_machine_full():
    reqs = [
        make_request(jobid="1", submit_time=0.0, nodes=8, runtime=1000.0,
                     walltime_req=1000.0),
        make_request(jobid="2", submit_time=10.0, nodes=4, runtime=500.0,
                     walltime_req=600.0),
    ]
    result = engine().run(reqs)
    by_id = {r.jobid: r for r in result.records}
    assert by_id["2"].start_time == 1000.0
    assert by_id["2"].wait_time == pytest.approx(990.0)


def test_timeout_kills_at_walltime():
    req = make_request(jobid="1", submit_time=0.0, runtime=5000.0,
                       walltime_req=1000.0)
    result = engine().run([req])
    rec = result.records[0]
    assert rec.wall_seconds == pytest.approx(1000.0)
    assert rec.exit_status is ExitStatus.TIMEOUT


def test_app_failure_recorded():
    req = make_request(jobid="1", submit_time=0.0, runtime=5000.0,
                       walltime_req=9000.0, fail_after=500.0)
    result = engine().run([req])
    rec = result.records[0]
    assert rec.wall_seconds == pytest.approx(500.0)
    assert rec.exit_status is ExitStatus.FAILED


def test_full_outage_fails_running_jobs():
    req = make_request(jobid="1", submit_time=0.0, nodes=4, runtime=5000.0,
                       walltime_req=9000.0)
    outage = Outage(1000.0, 2000.0, OutageKind.UNSCHEDULED)
    result = engine().run([req], outages=[outage])
    rec = result.records[0]
    assert rec.exit_status is ExitStatus.NODE_FAIL
    assert rec.end_time == pytest.approx(1000.0)


def test_partial_outage_spares_other_jobs():
    reqs = [
        make_request(jobid="1", submit_time=0.0, nodes=2, runtime=5000.0,
                     walltime_req=9000.0),
        make_request(jobid="2", submit_time=1.0, nodes=2, runtime=5000.0,
                     walltime_req=9000.0),
    ]
    # Job 1 holds nodes 0-1 (allocation is deterministic low-first).
    outage = Outage(100.0, 200.0, OutageKind.UNSCHEDULED, nodes=(0,))
    result = engine().run(reqs, outages=[outage])
    by_id = {r.jobid: r for r in result.records}
    assert by_id["1"].exit_status is ExitStatus.NODE_FAIL
    assert by_id["2"].exit_status is ExitStatus.COMPLETED


def test_scheduling_resumes_after_outage():
    req = make_request(jobid="1", submit_time=500.0, nodes=8, runtime=100.0,
                       walltime_req=200.0)
    outage = Outage(0.0 + 1.0, 1000.0, OutageKind.SCHEDULED)
    result = engine().run([req], outages=[outage])
    rec = result.records[0]
    assert rec.start_time == pytest.approx(1000.0)
    assert rec.exit_status is ExitStatus.COMPLETED


def test_horizon_drains_running_jobs():
    req = make_request(jobid="1", submit_time=0.0, runtime=5000.0,
                       walltime_req=9000.0)
    result = engine().run([req], horizon=2000.0)
    rec = result.records[0]
    assert rec.exit_status is ExitStatus.CANCELLED
    assert rec.end_time == pytest.approx(2000.0)


def test_horizon_drops_queued_jobs():
    reqs = [
        make_request(jobid="1", submit_time=0.0, nodes=8, runtime=5000.0,
                     walltime_req=9000.0),
        make_request(jobid="2", submit_time=10.0, nodes=8, runtime=100.0,
                     walltime_req=200.0),
    ]
    result = engine().run(reqs, horizon=2000.0)
    assert [r.jobid for r in result.dropped] == ["2"]


def test_active_node_timeline_tracks_outages():
    outage = Outage(1000.0, 2000.0, OutageKind.UNSCHEDULED, nodes=(0, 1, 2))
    result = engine().run([], outages=[outage], horizon=3000.0)
    tl = dict(result.active_node_timeline)
    assert tl[0.0] == 8
    assert tl[1000.0] == 5
    assert tl[2000.0] == 8


def test_utilization_accounting():
    req = make_request(jobid="1", submit_time=0.0, nodes=8, runtime=1000.0,
                       walltime_req=1000.0)
    result = engine().run([req], horizon=2000.0)
    assert result.utilization(8, 2000.0) == pytest.approx(0.5)


def test_fcfs_and_backfill_order_differs_where_expected():
    reqs = [
        make_request(jobid="big", submit_time=0.0, nodes=7, runtime=1000.0,
                     walltime_req=1000.0),
        make_request(jobid="huge", submit_time=1.0, nodes=8, runtime=100.0,
                     walltime_req=100.0),
        make_request(jobid="tiny", submit_time=2.0, nodes=1, runtime=100.0,
                     walltime_req=100.0),
    ]
    fcfs = engine(policy=FCFSPolicy()).run(list(reqs))
    bf = engine(policy=EasyBackfillPolicy()).run(list(reqs))
    fcfs_tiny = next(r for r in fcfs.records if r.jobid == "tiny")
    bf_tiny = next(r for r in bf.records if r.jobid == "tiny")
    # FCFS holds tiny behind huge; EASY lets it run during big.
    assert fcfs_tiny.start_time > 1000.0
    assert bf_tiny.start_time < 1000.0


def test_deterministic_runs():
    reqs = [
        make_request(jobid=str(i), submit_time=float(i * 7), nodes=1 + i % 3,
                     runtime=500.0 + i * 13, walltime_req=2000.0)
        for i in range(30)
    ]
    r1 = engine().run(list(reqs))
    r2 = engine().run(list(reqs))
    assert [(r.jobid, r.start_time, r.node_indices) for r in r1.records] == \
           [(r.jobid, r.start_time, r.node_indices) for r in r2.records]
