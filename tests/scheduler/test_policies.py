"""Tests for FCFS and EASY backfill."""

import pytest

from repro.scheduler.policies import (
    EasyBackfillPolicy,
    FCFSPolicy,
    RunningJob,
)
from repro.scheduler.queue import WaitQueue
from tests.scheduler.test_job import make_request


def queue_of(*reqs):
    q = WaitQueue()
    for r in reqs:
        q.push(r)
    return q


def job(jobid, t, nodes, walltime=3600.0):
    return make_request(jobid=jobid, submit_time=t, nodes=nodes,
                        walltime_req=walltime, runtime=walltime * 0.9)


def test_fcfs_starts_prefix():
    q = queue_of(job("a", 0, 2), job("b", 1, 3), job("c", 2, 1))
    picked = FCFSPolicy().select(q, free_nodes=5, running=[], now=10.0)
    assert [p.jobid for p in picked] == ["a", "b"]


def test_fcfs_blocks_behind_big_head():
    q = queue_of(job("big", 0, 10), job("small", 1, 1))
    picked = FCFSPolicy().select(q, free_nodes=5, running=[], now=10.0)
    assert picked == []


def test_backfill_small_job_jumps_blocked_head():
    # Head needs 10 nodes; 5 free; running job releases 6 at t=1000.
    q = queue_of(job("big", 0, 10, walltime=3600),
                 job("small", 1, 2, walltime=500))
    running = [RunningJob("r", estimated_end=1000.0, nodes=6)]
    picked = EasyBackfillPolicy().select(q, 5, running, now=0.0)
    # small finishes (t=500) before the shadow time (1000): backfills.
    assert [p.jobid for p in picked] == ["small"]


def test_backfill_never_delays_head():
    # Backfill candidate would run past the shadow time and uses nodes
    # the head needs -> must NOT start.
    q = queue_of(job("big", 0, 10, walltime=3600),
                 job("long", 1, 2, walltime=5000))
    running = [RunningJob("r", estimated_end=1000.0, nodes=6)]
    picked = EasyBackfillPolicy().select(q, 5, running, now=0.0)
    # shadow: at t=1000, 5+6=11 free, extra = 11-10 = 1 < 2 nodes.
    assert picked == []


def test_backfill_uses_extra_nodes_for_long_jobs():
    # Same, but extra nodes at shadow time cover the candidate: allowed
    # even though it outlives the shadow time.
    q = queue_of(job("big", 0, 8, walltime=3600),
                 job("long", 1, 2, walltime=50000))
    running = [RunningJob("r", estimated_end=1000.0, nodes=6)]
    picked = EasyBackfillPolicy().select(q, 5, running, now=0.0)
    # at shadow: 11 free, extra = 3 >= 2.
    assert [p.jobid for p in picked] == ["long"]


def test_backfill_fcfs_prefix_first():
    q = queue_of(job("a", 0, 2), job("big", 1, 10), job("s", 2, 1, 100))
    running = [RunningJob("r", estimated_end=500.0, nodes=8)]
    picked = EasyBackfillPolicy().select(q, 5, running, now=0.0)
    assert [p.jobid for p in picked] == ["a", "s"]


def test_backfill_depth_limit():
    jobs = [job("big", 0, 10)] + [
        job(f"s{i}", i + 1, 1, 100) for i in range(5)
    ]
    q = queue_of(*jobs)
    running = [RunningJob("r", estimated_end=1e9, nodes=10)]
    picked = EasyBackfillPolicy(max_backfill_depth=2).select(
        q, 5, running, now=0.0
    )
    assert len(picked) == 2


def test_backfill_head_larger_than_machine_degrades_gracefully():
    q = queue_of(job("huge", 0, 100), job("s", 1, 2, 100))
    picked = EasyBackfillPolicy().select(q, 5, [], now=0.0)
    assert [p.jobid for p in picked] == ["s"]


def test_policies_never_oversubscribe():
    q = queue_of(*[job(str(i), i, 2, 100 + i) for i in range(20)])
    for policy in (FCFSPolicy(), EasyBackfillPolicy()):
        picked = policy.select(q, 7, [], now=0.0)
        assert sum(p.nodes for p in picked) <= 7


def test_depth_validation():
    with pytest.raises(ValueError):
        EasyBackfillPolicy(max_backfill_depth=-1)
