"""Tests for the complement-aware backfill policy (paper §5)."""


from repro.scheduler.policies import RunningJob
from repro.scheduler.queue import WaitQueue
from repro.scheduler.resource_aware import (
    ResourceAwareBackfillPolicy,
    app_load_vector,
)
from tests.scheduler.test_job import make_request


def queue_of(*reqs):
    q = WaitQueue()
    for r in reqs:
        q.push(r)
    return q


def job(jobid, t, nodes, app, walltime=600.0):
    return make_request(jobid=jobid, submit_time=t, nodes=nodes, app=app,
                        walltime_req=walltime, runtime=walltime * 0.9)


def test_app_load_vector_orders_io_apps():
    assert app_load_vector("io_pipeline")[0] > app_load_vector("namd")[0]
    assert app_load_vector("milc")[1] > app_load_vector("io_pipeline")[1]
    # Unknown apps get a neutral default.
    assert (app_load_vector("mystery") > 0).all()


def test_complementary_candidate_preferred():
    """Machine saturated with I/O-heavy work; a blocked head leaves two
    legal backfill candidates — the compute-bound one must start first."""
    policy = ResourceAwareBackfillPolicy()
    running = [RunningJob("r1", estimated_end=5000.0, nodes=6,
                          app="io_pipeline")]
    q = queue_of(
        job("head", 0.0, 8, "namd", walltime=3600.0),   # blocked (needs 8)
        job("io", 1.0, 2, "io_pipeline", walltime=500.0),
        job("cpu", 2.0, 2, "milc", walltime=500.0),
    )
    picked = policy.select(q, free_nodes=2, running=running, now=10.0)
    assert [p.jobid for p in picked] == ["cpu"]


def test_io_candidate_preferred_when_io_free():
    policy = ResourceAwareBackfillPolicy()
    running = [RunningJob("r1", estimated_end=5000.0, nodes=6, app="milc")]
    q = queue_of(
        job("head", 0.0, 8, "namd", walltime=3600.0),
        job("cpu", 1.0, 2, "lammps", walltime=500.0),
        job("io", 2.0, 2, "io_pipeline", walltime=500.0),
    )
    picked = policy.select(q, free_nodes=2, running=running, now=10.0)
    assert [p.jobid for p in picked] == ["io"]


def test_head_fairness_preserved():
    """Reordering must never delay the blocked head: a long candidate
    that would eat the head's reservation still cannot start."""
    policy = ResourceAwareBackfillPolicy()
    q = queue_of(
        job("head", 0.0, 10, "namd", walltime=3600.0),
        job("long_cpu", 1.0, 2, "milc", walltime=50000.0),
    )
    # shadow at t=1000 releases 6 -> 8 total; head needs 10: never fits,
    # so backfill degrades to fits-now; but with a feasible head:
    running2 = [RunningJob("r", estimated_end=1000.0, nodes=8,
                           app="io_pipeline")]
    picked = policy.select(q, free_nodes=2, running=running2, now=0.0)
    # long_cpu outlives shadow and extra = (2+8)-10 = 0 -> rejected even
    # though it is the most complementary candidate.
    assert picked == []


def test_reduces_to_fcfs_prefix_order():
    policy = ResourceAwareBackfillPolicy()
    q = queue_of(job("a", 0.0, 2, "namd"), job("b", 1.0, 2, "milc"))
    picked = policy.select(q, free_nodes=8, running=[], now=5.0)
    assert [p.jobid for p in picked] == ["a", "b"]


def test_engine_integration_conserves_jobs():
    from repro.cluster.cluster import Cluster
    from repro.cluster.hardware import ranger_node
    from repro.scheduler.engine import SchedulerEngine

    reqs = [
        job(str(i), float(i * 13), 1 + i % 3,
            ("io_pipeline", "milc", "namd")[i % 3], walltime=900.0 + i * 7)
        for i in range(60)
    ]
    cluster = Cluster("t", 6, ranger_node())
    result = SchedulerEngine(cluster, ResourceAwareBackfillPolicy()).run(
        list(reqs))
    assert len(result.records) + len(result.dropped) == 60
    cluster.check_invariants()
