"""Tests for the SGE-style accounting log."""

import io

import pytest

from repro.scheduler.accounting import (
    AccountingWriter,
    format_accounting_line,
    parse_accounting,
    parse_accounting_line,
)
from repro.scheduler.job import ExitStatus, JobRecord
from tests.scheduler.test_job import make_request


def record(**kw):
    req = make_request(**kw)
    return JobRecord(request=req, start_time=600.0, end_time=4200.0,
                     node_indices=tuple(range(req.nodes)),
                     exit_status=ExitStatus.COMPLETED)


def test_roundtrip():
    rec = record()
    line = format_accounting_line(rec, cores_per_node=16,
                                  system_name="ranger")
    entry = parse_accounting_line(line)
    assert entry.job_number == "100"
    assert entry.owner == "u1"
    assert entry.account == "TG-X"
    assert entry.science_field == "Physics"
    assert entry.app_tag == "namd"
    assert entry.granted_nodes == 4
    assert entry.slots == 64
    assert entry.start_time == 600
    assert entry.end_time == 4200
    assert entry.wall_seconds == 3600
    assert entry.wait_seconds == 600
    assert entry.node_hours == pytest.approx(4.0)
    assert entry.exit is ExitStatus.COMPLETED


def test_exit_statuses_roundtrip():
    for status in ExitStatus:
        req = make_request()
        rec = JobRecord(req, 0.0, 100.0, (0, 1, 2, 3), status)
        line = format_accounting_line(rec, 16, "ranger")
        assert parse_accounting_line(line).exit is status


def test_separator_in_field_rejected():
    rec = record(account="TG:evil")
    with pytest.raises(ValueError, match="separator"):
        format_accounting_line(rec, 16, "ranger")


def test_parse_rejects_short_lines():
    with pytest.raises(ValueError, match="fields"):
        parse_accounting_line("a:b:c")


def test_parse_rejects_non_numeric():
    line = format_accounting_line(record(), 16, "r")
    parts = line.split(":")
    parts[9] = "noon"
    with pytest.raises(ValueError, match="non-numeric"):
        parse_accounting_line(":".join(parts))


def test_parse_rejects_inconsistent_times():
    line = format_accounting_line(record(), 16, "r")
    parts = line.split(":")
    parts[10] = "5"  # end before start
    with pytest.raises(ValueError, match="inconsistent"):
        parse_accounting_line(":".join(parts))


def test_writer_and_file_parse():
    buf = io.StringIO()
    w = AccountingWriter(buf, cores_per_node=16, system_name="ranger")
    recs = [record(jobid=str(i)) for i in range(5)]
    w.write_all(recs)
    assert w.lines_written == 5
    text = "# comment\n\n" + buf.getvalue()
    entries = list(parse_accounting(text))
    assert [e.job_number for e in entries] == [str(i) for i in range(5)]
