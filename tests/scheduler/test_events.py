"""Tests for the scheduler event log."""

import io

import pytest

from repro.scheduler.events import SchedulerEventLog, parse_event_log
from repro.scheduler.job import ExitStatus, JobRecord
from tests.scheduler.test_job import make_request


def test_write_run_roundtrip():
    recs = []
    for i in range(3):
        req = make_request(jobid=str(i), submit_time=float(i))
        recs.append(JobRecord(req, 100.0 + i, 200.0 + i,
                              tuple(range(req.nodes)),
                              ExitStatus.COMPLETED))
    buf = io.StringIO()
    log = SchedulerEventLog(buf)
    log.write_run(recs)
    events = list(parse_event_log(buf.getvalue()))
    assert len(events) == 9
    # Time-ordered.
    assert all(a.time <= b.time for a, b in zip(events, events[1:]))
    kinds = {e.event for e in events}
    assert kinds == {"job_submit", "job_start", "job_finish"}
    finish = [e for e in events if e.event == "job_finish"][0]
    assert finish.attrs["status"] == "completed"


def test_outage_events():
    buf = io.StringIO()
    log = SchedulerEventLog(buf)
    log.outage(10.0, 20.0, kind="scheduled", nodes=100)
    events = list(parse_event_log(buf.getvalue()))
    assert [e.event for e in events] == ["outage_begin", "outage_end"]
    assert events[0].attrs["nodes"] == "100"


def test_attr_token_safety():
    buf = io.StringIO()
    log = SchedulerEventLog(buf)
    with pytest.raises(ValueError, match="token-safe"):
        log._emit(0.0, "job_submit", "1", note="has space")


def test_parse_rejects_malformed():
    with pytest.raises(ValueError, match="too few"):
        list(parse_event_log("100 job_start"))
    with pytest.raises(ValueError, match="bad timestamp"):
        list(parse_event_log("noon job_start 1"))
    with pytest.raises(ValueError, match="unknown event"):
        list(parse_event_log("100 job_explode 1"))
    with pytest.raises(ValueError, match="bad attribute"):
        list(parse_event_log("100 job_start 1 garbage"))


def test_parse_skips_comments_and_blanks():
    text = "# header\n\n100 job_submit 1 user=u nodes=2 queue=normal\n"
    events = list(parse_event_log(text))
    assert len(events) == 1
    assert events[0].attrs == {"user": "u", "nodes": "2", "queue": "normal"}
