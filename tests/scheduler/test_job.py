"""Tests for job request/record semantics."""

import pytest

from repro.scheduler.job import ExitStatus, JobRecord, JobRequest


def make_request(**kw):
    defaults = dict(
        jobid="100", user="u1", account="TG-X", science_field="Physics",
        app="namd", queue="normal", submit_time=0.0, nodes=4,
        walltime_req=7200.0, runtime=3600.0,
    )
    defaults.update(kw)
    return JobRequest(**defaults)


def test_effective_runtime_natural():
    req = make_request()
    assert req.effective_runtime == 3600.0
    assert req.natural_exit() is ExitStatus.COMPLETED


def test_effective_runtime_timeout():
    req = make_request(runtime=9000.0, walltime_req=7200.0)
    assert req.effective_runtime == 7200.0
    assert req.natural_exit() is ExitStatus.TIMEOUT


def test_effective_runtime_failure():
    req = make_request(fail_after=100.0)
    assert req.effective_runtime == 100.0
    assert req.natural_exit() is ExitStatus.FAILED


def test_failure_after_walltime_is_timeout():
    req = make_request(runtime=9000.0, walltime_req=7200.0, fail_after=8000.0)
    assert req.effective_runtime == 7200.0
    assert req.natural_exit() is ExitStatus.TIMEOUT


def test_request_validation():
    with pytest.raises(ValueError):
        make_request(nodes=0)
    with pytest.raises(ValueError):
        make_request(runtime=0.0)
    with pytest.raises(ValueError):
        make_request(fail_after=0.0)


def test_record_derived_quantities():
    req = make_request()
    rec = JobRecord(request=req, start_time=600.0, end_time=4200.0,
                    node_indices=(0, 1, 2, 3),
                    exit_status=ExitStatus.COMPLETED)
    assert rec.wait_time == 600.0
    assert rec.wall_seconds == 3600.0
    assert rec.node_hours == pytest.approx(4.0)
    assert rec.jobid == "100"
    assert rec.user == "u1"
    assert rec.app == "namd"
    assert rec.science_field == "Physics"


def test_record_validation():
    req = make_request()
    with pytest.raises(ValueError, match="ends before"):
        JobRecord(req, 100.0, 50.0, (0, 1, 2, 3), ExitStatus.COMPLETED)
    with pytest.raises(ValueError, match="nodes granted"):
        JobRecord(req, 0.0, 10.0, (0, 1), ExitStatus.COMPLETED)


def test_accounting_codes_roundtrip():
    for status in ExitStatus:
        failed, exit_code = status.accounting_code
        assert ExitStatus.from_accounting_code(failed, exit_code) is status


def test_unknown_accounting_code_classified():
    assert ExitStatus.from_accounting_code(0, 0) is ExitStatus.COMPLETED
    assert ExitStatus.from_accounting_code(37, 11) is ExitStatus.FAILED
