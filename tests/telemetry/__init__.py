"""Tests for the :mod:`repro.telemetry` subsystem."""
