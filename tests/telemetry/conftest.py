"""Isolation fixtures: every telemetry test gets pristine global state.

The registry, tracer, run id, and enable flag are process-global by
design (that is what makes instrumentation zero-config at call sites),
so tests must not leak observations into each other — or into the rest
of the suite, which runs the instrumented pipeline constantly.
"""

from __future__ import annotations

import pytest

from repro.telemetry.log import set_run_id
from repro.telemetry.metrics import (
    MetricsRegistry,
    set_enabled,
    use_registry,
)
from repro.telemetry.trace import Tracer, use_tracer


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Fresh registry + tracer per test; telemetry re-enabled on exit."""
    with use_registry(MetricsRegistry()) as registry, \
            use_tracer(Tracer()) as tracer:
        yield registry, tracer
    set_enabled(True)
    set_run_id(None)
