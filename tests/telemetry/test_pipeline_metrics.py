"""End-to-end telemetry guarantees over the real ingest pipeline.

Two acceptance criteria from the observability work live here:

* **Determinism** — serial and parallel ingests of the same archive
  produce identical merged metric totals once timing metrics are
  stripped (:meth:`MetricsSnapshot.without_timing`), because every
  deterministic counter is recorded in the per-host worker registry
  and reduced associatively on the coordinator.
* **Agreement with ingest health** — the quarantine/retry counters in
  the telemetry registry match the PR 3 :class:`IngestHealth`
  accounting field for field; one run, two views, zero drift.
"""

import functools
import io
import shutil

import pytest

from repro.config import TEST_SYSTEM
from repro.errors import IngestHealth
from repro.facility import Facility
from repro.ingest.parallel import scan_archive
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive
from repro.telemetry.log import run_scope
from repro.telemetry.manifest import RunManifest, build_manifest
from repro.telemetry.metrics import MetricsRegistry, use_registry
from repro.telemetry.trace import Tracer, use_tracer
from repro.testing.faults import corrupt_archive, crashy_scan


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A small finished archive plus its accounting and Lariat logs."""
    cfg = TEST_SYSTEM.scaled(num_nodes=6, horizon_days=1, n_users=8)
    archive_dir = str(tmp_path_factory.mktemp("telemetry_corpus"))
    run = Facility(cfg, seed=33).run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    return cfg, archive_dir, buf.getvalue(), lariat


def _instrumented_ingest(corpus, archive_root, **kw):
    """Ingest under a private registry; return (snapshot, report)."""
    cfg, _dir, accounting, lariat = corpus
    with use_registry(MetricsRegistry()) as registry, use_tracer(Tracer()):
        report = IngestPipeline(Warehouse()).ingest(
            cfg, accounting_text=accounting,
            archive=HostArchive(archive_root),
            lariat_records=lariat, **kw)
        return registry.snapshot(), report


# -- serial == parallel ------------------------------------------------------


def test_serial_and_parallel_totals_identical_without_timing(corpus):
    """THE determinism guarantee: any worker count, same totals."""
    serial, report1 = _instrumented_ingest(corpus, corpus[1], workers=1)
    fanout, report3 = _instrumented_ingest(corpus, corpus[1], workers=3,
                                           oversubscribe=True)
    assert serial.without_timing().to_dict() == \
        fanout.without_timing().to_dict()
    assert report1.jobs_loaded == report3.jobs_loaded
    # The fan-out shape is reported out of band, not as a metric —
    # keeping it off the registry is what keeps the subset identical.
    assert report1.effective_workers == 1
    assert report3.effective_workers == 3
    assert "ingest.effective_workers" not in serial.gauges


def test_ingest_counters_reflect_the_work_done(corpus):
    snap, report = _instrumented_ingest(corpus, corpus[1], workers=1)
    counters = snap.counters
    n_hosts = len(HostArchive(corpus[1]).hostnames())
    assert counters["ingest.hosts_ok"] == n_hosts
    assert counters["parse.files"] >= n_hosts
    assert counters["parse.bytes"] > 0
    assert counters["parse.blocks"] > 0
    assert counters["ingest.jobs_loaded"] == report.jobs_loaded
    assert counters["warehouse.rows.jobs"] == report.jobs_loaded
    assert counters["warehouse.commits"] >= 1
    # Per-host scan timing shows up as one gauge per host plus the
    # pooled histogram — the manifest's slowest-hosts source.
    hist = snap.histograms["ingest.host_scan.seconds"]
    assert hist.count == n_hosts
    assert len([g for g in snap.gauges
                if g.startswith("ingest.host_scan.")]) == n_hosts


def test_run_manifest_from_real_ingest_validates(corpus, tmp_path):
    cfg, _dir, accounting, lariat = corpus
    with use_registry(MetricsRegistry()), use_tracer(Tracer()), \
            run_scope() as run_id:
        report = IngestPipeline(Warehouse()).ingest(
            cfg, accounting_text=accounting,
            archive=HostArchive(corpus[1]), lariat_records=lariat)
        manifest = build_manifest(systems=[cfg.name],
                                  effective_workers=report.effective_workers)
    # The pipeline joined the ambient run scope instead of minting its
    # own id, so report and manifest name the same run.
    assert manifest.run_id == report.run_id == run_id
    assert [s.name for s in manifest.stages] == ["ingest"]
    child_names = [c.name for c in manifest.stages[0].children]
    assert child_names[:3] == ["ingest.scan", "ingest.match", "ingest.load"]
    assert manifest.slowest_hosts  # per-host gauges made it through
    rebuilt = RunManifest.from_dict(manifest.to_dict())
    assert rebuilt.to_dict() == manifest.to_dict()


# -- degraded runs: counters match IngestHealth ------------------------------


def test_quarantine_counters_match_ingest_health(corpus, tmp_path):
    """Telemetry and IngestHealth are two views of one run: the dropped
    host, quarantined record, and retry counts must agree exactly."""
    hostnames = HostArchive(corpus[1]).hostnames()
    victims = {hostnames[1]: "bit_flip", hostnames[3]: "garbage_lines"}
    root = tmp_path / "archive"
    shutil.copytree(corpus[1], root)
    corrupt_archive(root, victims, seed=77)

    snap, report = _instrumented_ingest(corpus, root,
                                        error_policy="quarantine")
    health = report.health
    counters = snap.counters
    assert counters["ingest.hosts_dropped"] == len(health.hosts_dropped) \
        == len(victims)
    assert counters["ingest.hosts_ok"] == len(health.hosts_ok)
    assert counters["ingest.records_quarantined"] == \
        health.records_quarantined
    assert counters.get("ingest.hosts_degraded", 0) == \
        len(health.hosts_degraded) == 0


def test_repair_counters_match_ingest_health(corpus, tmp_path):
    victim = HostArchive(corpus[1]).hostnames()[1]
    root = tmp_path / "archive"
    shutil.copytree(corpus[1], root)
    corrupt_archive(root, {victim: "bit_flip"}, seed=77)

    snap, report = _instrumented_ingest(corpus, root, error_policy="repair")
    health = report.health
    assert snap.counters["ingest.hosts_degraded"] == \
        len(health.hosts_degraded) == 1
    assert snap.counters["ingest.records_quarantined"] == \
        health.records_quarantined == 1


def test_retry_counter_matches_health_retries(corpus, tmp_path):
    """A transiently crashing worker charges ``ingest.retries`` exactly
    as often as :class:`IngestHealth` records the retry."""
    archive = HostArchive(corpus[1])
    victim = archive.hostnames()[2]
    scan_fn = functools.partial(crashy_scan, str(tmp_path), (victim,), 1)
    health = IngestHealth(policy="quarantine")
    with use_registry(MetricsRegistry()) as registry, use_tracer(Tracer()):
        list(scan_archive(
            archive, workers=2, allow_truncated=True, oversubscribe=True,
            policy="quarantine", health=health, max_retries=2,
            retry_backoff=0.01, scan_fn=scan_fn))
        snap = registry.snapshot()
    assert health.total_retries >= 1
    assert snap.counters["ingest.retries"] == health.total_retries
