"""Tracing spans and structured logging.

Spans must nest correctly, survive exceptions (marked ``error``, the
exception untouched), and feed the ``span.<name>.seconds`` histograms;
the structured logger must emit greppable key=value records carrying
the ambient run id.
"""

import logging

import pytest

from repro.telemetry.log import (
    current_run_id,
    get_logger,
    new_run_id,
    run_scope,
    set_run_id,
)
from repro.telemetry.metrics import get_registry, set_enabled
from repro.telemetry.trace import (
    Span,
    Tracer,
    get_tracer,
    render_span_tree,
    span,
    use_tracer,
)


# -- span trees --------------------------------------------------------------


def test_spans_nest_into_a_tree():
    with span("ingest", system="ranger"):
        with span("ingest.scan"):
            pass
        with span("ingest.load"):
            pass
    roots = get_tracer().roots
    assert [s.name for s in roots] == ["ingest"]
    assert [c.name for c in roots[0].children] == ["ingest.scan",
                                                   "ingest.load"]
    assert roots[0].attrs == {"system": "ranger"}
    assert all(s.status == "ok" for s in roots[0].children)


def test_sequential_roots_stay_separate():
    with span("a"):
        pass
    with span("b"):
        pass
    assert [s.name for s in get_tracer().roots] == ["a", "b"]


def test_span_closes_and_marks_error_when_body_raises():
    with pytest.raises(RuntimeError, match="boom"):
        with span("outer"):
            with span("inner"):
                raise RuntimeError("boom")
    outer = get_tracer().roots[0]
    assert outer.status == "error"
    assert outer.children[0].status == "error"
    assert outer.duration >= outer.children[0].duration >= 0.0
    # The stack unwound: the next span is a fresh root, not a child.
    with span("after"):
        pass
    assert [s.name for s in get_tracer().roots] == ["outer", "after"]


def test_every_span_feeds_a_latency_histogram():
    with span("ingest.parse", host="h0"):
        pass
    with span("ingest.parse", host="h1"):
        pass
    data = get_registry().snapshot().histograms["span.ingest.parse.seconds"]
    assert data.count == 2
    assert data.total >= 0.0


def test_disabled_telemetry_still_builds_the_tree_without_metrics():
    set_enabled(False)
    try:
        with span("quiet"):
            pass
    finally:
        set_enabled(True)
    assert [s.name for s in get_tracer().roots] == ["quiet"]
    assert get_registry().snapshot().histograms == {}


def test_use_tracer_swaps_and_restores():
    outer = get_tracer()
    private = Tracer()
    with use_tracer(private):
        with span("scoped"):
            pass
    assert get_tracer() is outer
    assert [s.name for s in private.roots] == ["scoped"]
    assert outer.roots == []


def test_tracer_reset_clears_roots_and_stack():
    t = get_tracer()
    with span("x"):
        pass
    t.reset()
    assert t.roots == []
    with span("y"):
        pass
    assert [s.name for s in t.roots] == ["y"]


def test_span_round_trips_through_dict():
    with span("root", system="ranger"):
        with span("child"):
            pass
    original = get_tracer().roots[0]
    rebuilt = Span.from_dict(original.to_dict())
    assert rebuilt.name == "root"
    assert rebuilt.attrs == {"system": "ranger"}
    assert rebuilt.duration == original.duration
    assert [c.name for c in rebuilt.children] == ["child"]


def test_render_span_tree_indents_and_elides():
    fast = Span(name="fast", duration=0.0001)
    tree = [Span(name="root", duration=1.0,
                 children=[Span(name="slow", duration=0.5,
                                attrs={"host": "c01"}),
                           fast])]
    full = render_span_tree(tree)
    assert "root" in full and "  slow" in full and "host=c01" in full
    pruned = render_span_tree(tree, min_ms=1.0)
    assert "fast" not in pruned and "slow" in pruned


# -- run ids and structured logs ---------------------------------------------


def test_run_scope_mints_restores_and_nests():
    assert current_run_id() is None
    with run_scope() as outer_id:
        assert current_run_id() == outer_id
        assert len(outer_id) == 12
        with run_scope("fixed") as inner_id:
            assert inner_id == "fixed"
            assert current_run_id() == "fixed"
        assert current_run_id() == outer_id
    assert current_run_id() is None


def test_new_run_ids_are_unique():
    assert new_run_id() != new_run_id()


def test_structured_log_carries_run_stage_event_and_fields(caplog):
    set_run_id("abc123")
    try:
        log = get_logger("ingest.parallel")
        with caplog.at_level(logging.WARNING, logger="repro.ingest.parallel"):
            log.warning("host_retry", host="c001-002", attempt=2)
    finally:
        set_run_id(None)
    assert caplog.records[-1].message == (
        "run=abc123 stage=ingest.parallel event=host_retry "
        "host=c001-002 attempt=2")


def test_structured_log_quotes_values_with_spaces(caplog):
    log = get_logger("t")
    with caplog.at_level(logging.ERROR, logger="repro.t"):
        log.error("fail", reason='worker died with "OOM"')
    msg = caplog.records[-1].message
    assert "run=-" in msg
    assert "reason=\"worker died with 'OOM'\"" in msg


def test_structured_log_skips_formatting_below_level(caplog):
    log = get_logger("t")
    with caplog.at_level(logging.WARNING, logger="repro.t"):
        log.debug("noise", detail="x")
    assert caplog.records == []
