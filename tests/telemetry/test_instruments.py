"""Instrument semantics: counters, gauges, histograms, snapshots.

The load-bearing contract is :class:`MetricsSnapshot.merge` being
associative with :meth:`MetricsSnapshot.empty` as identity — that is
what lets parallel ingest workers ship per-host snapshots that reduce
to the same totals in any order.
"""

import pickle

import pytest

from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    set_enabled,
    telemetry_enabled,
    use_registry,
)


# -- counters / gauges -------------------------------------------------------


def test_counter_accumulates_and_defaults_to_one():
    c = Counter("t.events")
    c.inc()
    c.inc(4)
    c.inc(0.5)
    assert c.value == 5.5


def test_counter_rejects_negative_increment():
    c = Counter("t.events")
    with pytest.raises(ValueError, match="negative"):
        c.inc(-1)
    assert c.value == 0


def test_gauge_is_last_write_wins_and_coerces_float():
    g = Gauge("t.depth")
    g.set(3)
    g.set(7)
    assert g.value == 7.0
    assert isinstance(g.value, float)


# -- histograms --------------------------------------------------------------


def test_histogram_bucket_placement_lower_inclusive():
    """A value equal to a bound lands in the bucket *above* it, and
    anything past the last bound lands in the overflow bucket."""
    h = Histogram("t.lat", bounds=(1.0, 2.0))
    for v in (0.5, 1.0, 1.5, 2.0, 99.0):
        h.observe(v)
    assert h.counts == [1, 2, 2]
    assert h.count == 5
    assert h.total == pytest.approx(104.0)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError, match="sorted"):
        Histogram("t.bad", bounds=(2.0, 1.0))


def test_histogram_data_mean_and_empty():
    h = Histogram("t.lat")
    assert h.data().mean == 0.0
    h.observe(2.0)
    h.observe(4.0)
    assert h.data().mean == pytest.approx(3.0)


def test_histogram_merge_requires_identical_bounds():
    a = Histogram("t.lat", bounds=(1.0,)).data()
    b = Histogram("t.lat", bounds=(2.0,)).data()
    with pytest.raises(ValueError, match="bounds"):
        a.merge(b)


def test_histogram_data_round_trips_through_dict():
    h = Histogram("t.lat", bounds=(0.1, 1.0))
    h.observe(0.05)
    h.observe(5.0)
    data = h.data()
    assert HistogramData.from_dict(data.to_dict()) == data


# -- the kill switch ---------------------------------------------------------


def test_set_enabled_false_makes_all_mutations_noops():
    set_enabled(False)
    try:
        assert not telemetry_enabled()
        c, g = Counter("t.c"), Gauge("t.g")
        h = Histogram("t.h")
        c.inc(10)
        g.set(10)
        h.observe(10)
        assert c.value == 0
        assert g.value == 0.0
        assert h.count == 0
    finally:
        set_enabled(True)
    c.inc(2)
    assert c.value == 2  # reads and re-enabled writes both work


# -- snapshots ---------------------------------------------------------------


def _snap(**counters) -> MetricsSnapshot:
    return MetricsSnapshot(counters=dict(counters))


def test_merge_counters_add_gauges_last_write_wins():
    a = MetricsSnapshot(counters={"n": 1}, gauges={"g": 1.0})
    b = MetricsSnapshot(counters={"n": 2, "m": 5}, gauges={"g": 9.0})
    merged = a.merge(b)
    assert merged.counters == {"n": 3, "m": 5}
    assert merged.gauges == {"g": 9.0}


def test_merge_is_associative_with_empty_identity():
    r1, r2, r3 = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    # Powers of two keep the float sums exactly associative, so the
    # comparison tests the merge algebra rather than rounding noise.
    for i, r in enumerate((r1, r2, r3)):
        r.counter("parse.bytes").inc(100 * (i + 1))
        r.histogram("scan.seconds").observe(0.25 * 2 ** i)
    a, b, c = r1.snapshot(), r2.snapshot(), r3.snapshot()

    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.to_dict() == right.to_dict()

    e = MetricsSnapshot.empty()
    assert e.merge(a).to_dict() == a.to_dict()
    assert a.merge(e).to_dict() == a.to_dict()


def test_merge_histograms_bucket_wise():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.histogram("h", bounds=(1.0,)).observe(0.5)
    r2.histogram("h", bounds=(1.0,)).observe(2.0)
    merged = r1.snapshot().merge(r2.snapshot())
    assert merged.histograms["h"].counts == (1, 1)
    assert merged.histograms["h"].count == 2


def test_without_timing_drops_every_seconds_metric():
    snap = MetricsSnapshot(
        counters={"parse.bytes": 1, "span.x.seconds": 2},
        gauges={"ingest.host_scan.h0.seconds": 0.1, "workers": 2},
        histograms={"scan.seconds": Histogram("scan.seconds").data(),
                    "rows": Histogram("rows").data()},
    )
    bare = snap.without_timing()
    assert set(bare.counters) == {"parse.bytes"}
    assert set(bare.gauges) == {"workers"}
    assert set(bare.histograms) == {"rows"}


def test_snapshot_round_trips_through_dict_and_pickle():
    r = MetricsRegistry()
    r.counter("c").inc(3)
    r.gauge("g").set(1.5)
    r.histogram("h").observe(0.2)
    snap = r.snapshot()
    assert MetricsSnapshot.from_dict(snap.to_dict()) == snap
    assert pickle.loads(pickle.dumps(snap)) == snap


# -- registries --------------------------------------------------------------


def test_registry_returns_same_instrument_per_name():
    r = MetricsRegistry()
    assert r.counter("x") is r.counter("x")
    assert r.gauge("y") is r.gauge("y")
    assert r.histogram("z") is r.histogram("z")


def test_registry_histogram_bounds_fixed_on_first_use():
    r = MetricsRegistry()
    h = r.histogram("h", bounds=(1.0, 2.0))
    assert r.histogram("h", bounds=(9.0,)) is h
    assert h.bounds == (1.0, 2.0)


def test_merge_snapshot_folds_worker_totals_into_registry():
    worker = MetricsRegistry()
    worker.counter("parse.files").inc(4)
    worker.histogram("scan.seconds").observe(0.3)

    coord = MetricsRegistry()
    coord.counter("parse.files").inc(1)
    coord.merge_snapshot(worker.snapshot())
    coord.merge_snapshot(worker.snapshot())

    snap = coord.snapshot()
    assert snap.counters["parse.files"] == 9
    assert snap.histograms["scan.seconds"].count == 2


def test_registry_reset_drops_everything():
    r = MetricsRegistry()
    r.counter("c").inc()
    r.reset()
    assert r.snapshot() == MetricsSnapshot.empty()


def test_use_registry_swaps_and_restores_the_active_one():
    outer = get_registry()
    private = MetricsRegistry()
    with use_registry(private):
        assert get_registry() is private
        get_registry().counter("c").inc()
    assert get_registry() is outer
    assert "c" not in outer.snapshot().counters
    assert private.snapshot().counters["c"] == 1


def test_default_seconds_buckets_are_sorted():
    assert DEFAULT_SECONDS_BUCKETS == tuple(sorted(DEFAULT_SECONDS_BUCKETS))
