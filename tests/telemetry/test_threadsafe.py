"""Concurrency hammer tests: instruments and the snapshot memo never
lose an update under contention.

A bare ``+=`` on a Python attribute is a read-modify-write the GIL is
free to interleave; these tests drive enough threads through the hot
paths that a regression back to unlocked updates fails loudly (dozens
of lost increments), not flakily.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.ingest.summarize import SUMMARY_METRICS, JobSummary
from repro.ingest.warehouse import Warehouse
from repro.scheduler.job import ExitStatus, JobRecord
from repro.telemetry.metrics import get_registry
from repro.xdmod.snapshot import WarehouseSnapshot
from tests.scheduler.test_job import make_request

THREADS = 8
ROUNDS = 2000


def _hammer(worker) -> None:
    """Run *worker* on THREADS threads, all released at one barrier."""
    barrier = threading.Barrier(THREADS)

    def run():
        barrier.wait()
        worker()

    threads = [threading.Thread(target=run) for _ in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)


def test_counter_increments_are_exact():
    counter = get_registry().counter("hammer.counter")
    _hammer(lambda: [counter.inc() for _ in range(ROUNDS)])
    assert counter.value == THREADS * ROUNDS


def test_counter_weighted_increments_are_exact():
    counter = get_registry().counter("hammer.weighted")
    _hammer(lambda: [counter.inc(3) for _ in range(ROUNDS)])
    assert counter.value == 3 * THREADS * ROUNDS


def test_histogram_observations_are_exact():
    hist = get_registry().histogram("hammer.seconds")

    def worker():
        for i in range(ROUNDS):
            hist.observe(0.0001 * (i % 50))

    _hammer(worker)
    data = hist.data()
    assert data.count == THREADS * ROUNDS
    assert sum(data.counts) == data.count


def test_racing_instrument_creation_converges():
    """Two threads racing to create the same counter must converge on
    one object (no lost updates split across duplicates)."""
    registry = get_registry()
    out = []

    def worker():
        c = registry.counter("hammer.create")
        out.append(c)
        for _ in range(ROUNDS):
            c.inc()

    _hammer(worker)
    assert len({id(c) for c in out}) == 1
    assert registry.counter("hammer.create").value == THREADS * ROUNDS


def test_snapshot_taken_during_creation_never_raises():
    """Registry snapshots race instrument creation without tripping
    over a mutating dict."""
    registry = get_registry()
    stop = threading.Event()

    def create():
        i = 0
        while not stop.is_set():
            registry.counter(f"hammer.dyn.{i % 500}").inc()
            i += 1

    creator = threading.Thread(target=create)
    creator.start()
    try:
        for _ in range(300):
            registry.snapshot()  # must not raise RuntimeError
    finally:
        stop.set()
        creator.join(10)


def _tiny_warehouse() -> Warehouse:
    wh = Warehouse()
    wh.add_system("sys", num_nodes=4, cores_per_node=4,
                  mem_gb_per_node=8.0, peak_tflops=1.0,
                  sample_interval=600.0)
    for i in range(4):
        req = make_request(jobid=str(i), user="u", nodes=1)
        rec = JobRecord(req, 0.0, 3600.0, (0,), ExitStatus.COMPLETED)
        wh.add_job("sys", rec, 4,
                   JobSummary(str(i), {m: 1.0 for m in SUMMARY_METRICS},
                              1, 3600.0, 6))
    wh.commit()
    return wh


def test_memo_hit_miss_counters_stay_exact_under_contention():
    """The PR 2 memo under THREADS concurrent callers over a mix of
    shared keys: ``hits + misses`` equals the exact number of
    ``cached()`` calls, the registry counters move in lockstep with
    the snapshot's own counts, and every caller of a key sees the same
    value object."""
    wh = _tiny_warehouse()
    snap = WarehouseSnapshot.for_warehouse(wh)
    registry = get_registry()
    hits0 = registry.counter("analytics.cache_hits").value
    misses0 = registry.counter("analytics.cache_misses").value
    snap_hits0, snap_misses0 = snap.hits, snap.misses

    keys = [("hammer", i) for i in range(10)]
    calls_per_thread = 500
    computed: dict[tuple, list] = {k: [] for k in keys}
    computed_lock = threading.Lock()
    results: list[list] = []

    def worker(seed: int) -> list:
        got = []
        for i in range(calls_per_thread):
            key = keys[(seed + i) % len(keys)]

            def compute(key=key):
                value = object()
                with computed_lock:
                    computed[key].append(value)
                return value

            got.append((key, snap.cached(key, compute)))
        return got

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = [f.result()
                   for f in [pool.submit(worker, s)
                             for s in range(THREADS)]]

    total_calls = THREADS * calls_per_thread
    hits = snap.hits - snap_hits0
    misses = snap.misses - snap_misses0
    # Exactness: every call is exactly one hit or one miss.
    assert hits + misses == total_calls
    # Telemetry counters move in lockstep with the snapshot's counts.
    assert registry.counter("analytics.cache_hits").value - hits0 == hits
    assert (registry.counter("analytics.cache_misses").value
            - misses0 == misses)
    # Each key converged on exactly one stored value; every caller got
    # it (first-store-wins, losers discard their duplicate compute).
    canonical = {k: snap.cached(k, lambda: None) for k in keys}
    for got in results:
        for key, value in got:
            assert value is canonical[key]
    # Misses can exceed len(keys) (concurrent first-misses) but every
    # one corresponds to a real compute invocation.
    assert misses == sum(len(v) for v in computed.values())
    assert misses >= len(keys)
