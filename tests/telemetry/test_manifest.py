"""Run manifests and the Prometheus exporter.

The manifest is the run's single self-describing artifact; it must
round-trip losslessly through JSON, and :func:`validate_manifest` must
reject every malformed shape loudly rather than half-loading.
"""

import json

import pytest

from repro.telemetry.export import to_prometheus
from repro.telemetry.log import run_scope
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    slowest_hosts,
    validate_manifest,
)
from repro.telemetry.metrics import MetricsRegistry, MetricsSnapshot
from repro.telemetry.trace import span


def _full_registry() -> MetricsRegistry:
    """A registry exercising every section of the snapshot."""
    r = MetricsRegistry()
    r.counter("parse.bytes").inc(4096)
    r.gauge("ingest.host_scan.c001.seconds").set(0.25)
    r.gauge("ingest.host_scan.c002.seconds").set(0.75)
    r.histogram("ingest.host_scan.seconds").observe(0.25)
    return r


def _manifest() -> RunManifest:
    with span("simulate", system="ranger"):
        with span("ingest"):
            pass
    return build_manifest(
        systems=["ranger"],
        ingest_health={"policy": "quarantine"},
        effective_workers=4,
        extra={"jobs_simulated": 10},
    )


# -- build_manifest ----------------------------------------------------------


def test_build_manifest_snapshots_ambient_state(fresh_telemetry):
    registry, _tracer = fresh_telemetry
    registry.counter("parse.bytes").inc(7)
    with run_scope("runid0001") as run_id:
        m = _manifest()
    assert m.run_id == run_id
    assert m.systems == ["ranger"]
    assert m.effective_workers == 4
    assert m.metrics.counters["parse.bytes"] == 7
    assert [s.name for s in m.stages] == ["simulate"]
    assert [c.name for c in m.stages[0].children] == ["ingest"]


def test_build_manifest_mints_run_id_outside_any_scope():
    m = build_manifest()
    assert len(m.run_id) == 12


def test_slowest_hosts_sorted_and_capped():
    snap = _full_registry().snapshot()
    assert slowest_hosts(snap) == [("c002", 0.75), ("c001", 0.25)]
    assert slowest_hosts(snap, top=1) == [("c002", 0.75)]


def test_slowest_hosts_ignores_non_host_gauges():
    snap = MetricsSnapshot(gauges={"queue.depth": 3.0,
                                   "ingest.host_scan.h0.seconds": 0.1})
    assert slowest_hosts(snap) == [("h0", 0.1)]


def test_slowest_hosts_ties_break_on_hostname():
    snap = MetricsSnapshot(gauges={"ingest.host_scan.b.seconds": 0.5,
                                   "ingest.host_scan.a.seconds": 0.5})
    assert slowest_hosts(snap) == [("a", 0.5), ("b", 0.5)]


# -- round trips -------------------------------------------------------------


def test_manifest_round_trips_through_dict(fresh_telemetry):
    registry, _tracer = fresh_telemetry
    registry.merge_snapshot(_full_registry().snapshot())
    m = _manifest()
    d = m.to_dict()
    assert validate_manifest(d) == []
    rebuilt = RunManifest.from_dict(d)
    assert rebuilt.to_dict() == d


def test_manifest_round_trips_through_file(tmp_path, fresh_telemetry):
    registry, _tracer = fresh_telemetry
    registry.merge_snapshot(_full_registry().snapshot())
    m = _manifest()
    path = m.write(tmp_path / "out" / "manifest.json")
    assert path.exists()  # parent directories created on demand
    rebuilt = RunManifest.read(path)
    assert rebuilt.to_dict() == m.to_dict()
    # The on-disk form is ordinary sorted JSON, diffable across runs.
    raw = json.loads(path.read_text())
    assert raw["schema_version"] == MANIFEST_SCHEMA_VERSION


# -- validation --------------------------------------------------------------


def _valid_dict() -> dict:
    return _manifest().to_dict()


def test_validate_rejects_non_object():
    assert validate_manifest([1, 2]) == ["manifest must be a JSON object"]


@pytest.mark.parametrize("mutate, needle", [
    (lambda d: d.update(schema_version=99), "schema_version"),
    (lambda d: d.update(run_id=""), "run_id"),
    (lambda d: d.update(systems="ranger"), "systems"),
    (lambda d: d.update(stages={}), "stages"),
    (lambda d: d.update(metrics=[]), "metrics"),
    (lambda d: d.update(effective_workers=0), "effective_workers"),
    (lambda d: d.update(ingest_health=[1]), "ingest_health"),
    (lambda d: d.update(slowest_hosts=[{"host": 3}]), "slowest_hosts"),
])
def test_validate_flags_each_broken_field(mutate, needle):
    d = _valid_dict()
    mutate(d)
    problems = validate_manifest(d)
    assert problems and any(needle in p for p in problems)


def test_validate_flags_bad_span_and_histogram_shapes():
    d = _valid_dict()
    d["stages"] = [{"name": "x", "duration_s": "fast", "status": "maybe"}]
    d["metrics"]["histograms"] = {"h": {"bounds": [1.0], "counts": [1]}}
    d["metrics"]["counters"] = {"c": "many"}
    problems = validate_manifest(d)
    assert any("duration_s" in p for p in problems)
    assert any("bad status" in p for p in problems)
    assert any("len(bounds)+1" in p for p in problems)
    assert any("counters.c" in p for p in problems)


def test_from_dict_raises_on_invalid_document():
    d = _valid_dict()
    d["run_id"] = ""
    with pytest.raises(ValueError, match="invalid run manifest"):
        RunManifest.from_dict(d)


# -- prometheus export -------------------------------------------------------


def test_prometheus_counters_gauges_and_types():
    snap = MetricsSnapshot(counters={"parse.bytes": 4096},
                           gauges={"workers": 2.5})
    text = to_prometheus(snap)
    assert "# TYPE repro_parse_bytes counter\nrepro_parse_bytes 4096" in text
    assert "# TYPE repro_workers gauge\nrepro_workers 2.5" in text
    assert text.endswith("\n")


def test_prometheus_histogram_buckets_are_cumulative():
    r = MetricsRegistry()
    h = r.histogram("scan.seconds", bounds=(1.0, 2.0))
    for v in (0.5, 1.5, 99.0):
        h.observe(v)
    text = to_prometheus(r.snapshot())
    assert 'repro_scan_seconds_bucket{le="1"} 1' in text
    assert 'repro_scan_seconds_bucket{le="2"} 2' in text
    assert 'repro_scan_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_scan_seconds_count 3" in text
    assert "repro_scan_seconds_sum 101.0" in text


def test_prometheus_output_is_deterministic():
    snap = _full_registry().snapshot()
    assert to_prometheus(snap) == to_prometheus(
        MetricsSnapshot.from_dict(snap.to_dict()))
