"""End-to-end server behaviour over real HTTP.

Covers the success paths: endpoint payloads match the underlying
analytics exactly (the report text is byte-identical to
``repro-report`` output), the L1 cache and tenancy semantics are
observable in responses and counters, ``/metrics`` serves Prometheus
text, and an external ingest commit is adopted by ``POST
/api/v1/refresh``.
"""

from __future__ import annotations

import threading

from repro.cli.report import main as report_main
from repro.ingest.summarize import SUMMARY_METRICS, JobSummary
from repro.ingest.warehouse import Warehouse
from repro.scheduler.job import ExitStatus, JobRecord
from repro.telemetry.metrics import get_registry
from repro.xdmod.query import JobQuery
from repro.xdmod.reports import SupportStaffReport
from tests.scheduler.test_job import make_request
from tests.service.conftest import SYSTEM


def test_health(client, warehouse_path):
    status, body = client.get("/api/v1/health")
    assert status == 200
    assert body["status"] == "ok"
    assert body["systems"] == [SYSTEM]
    assert body["warehouse"] == warehouse_path


def test_systems(client):
    status, body = client.get("/api/v1/systems")
    assert status == 200
    info = body["systems"][SYSTEM]
    assert info["num_nodes"] == 16
    assert info["cores_per_node"] > 0


def test_report_matches_direct_render(client, warehouse_path):
    status, body = client.get(f"/api/v1/report/support?system={SYSTEM}")
    assert status == 200
    wh = Warehouse(warehouse_path)
    try:
        expected = SupportStaffReport(wh, SYSTEM).render()
    finally:
        wh.close()
    assert body["report"] == expected
    assert body["kind"] == "support"
    assert body["system"] == SYSTEM


def test_report_byte_identical_to_cli(client, warehouse_path, capsys):
    """The service answer is the CLI answer: same bytes as
    ``repro-report --warehouse ... --system ... admin`` prints."""
    status, body = client.get(f"/api/v1/report/admin?system={SYSTEM}")
    assert status == 200
    assert report_main(["--warehouse", warehouse_path,
                        "--system", SYSTEM, "admin"]) == 0
    assert body["report"] + "\n" == capsys.readouterr().out


def test_group_by_matches_query_layer(client, warehouse_path):
    status, body = client.get(
        f"/api/v1/query/group_by?system={SYSTEM}"
        f"&dimension=exit_status&metrics=cpu_idle")
    assert status == 200
    wh = Warehouse(warehouse_path)
    try:
        expected = JobQuery(wh, SYSTEM).group_by(
            "exit_status", metrics=("cpu_idle",))
    finally:
        wh.close()
    assert len(body["groups"]) == len(expected)
    for got, want in zip(body["groups"], expected):
        assert got["key"] == want.key
        assert got["job_count"] == want.job_count
        assert abs(got["node_hours"] - want.node_hours) < 1e-9
        assert got["weighted_means"]["cpu_idle"] == want.mean("cpu_idle")


def test_multi_dimension_group_by(client):
    status, body = client.get(
        f"/api/v1/query/group_by?system={SYSTEM}"
        f"&dimension=queue,exit_status&metrics=")
    assert status == 200
    assert all(len(g["keys"]) == 2 for g in body["groups"])


def test_timeseries_matches_warehouse(client, warehouse_path):
    status, body = client.get(
        f"/api/v1/timeseries/active_nodes?system={SYSTEM}")
    assert status == 200
    wh = Warehouse(warehouse_path)
    try:
        t, v = wh.series(SYSTEM, "active_nodes")
    finally:
        wh.close()
    assert body["times"] == t.tolist()
    assert body["values"] == v.tolist()


def test_second_request_is_l1_cache_hit(client):
    registry = get_registry()
    path = f"/api/v1/report/funding?system={SYSTEM}"
    client.get(path)  # populate
    hits = registry.counter("service.cache.hit").value
    status, body = client.get(path)
    assert status == 200
    assert body["cached"] is True
    assert registry.counter("service.cache.hit").value == hits + 1


def test_tenant_isolation(client):
    """A tenant's first request misses L1 even when another tenant has
    the same query cached (isolated working sets)."""
    path = f"/api/v1/report/manager?system={SYSTEM}"
    client.get(path)  # warm the default tenant
    _, warm = client.get(path)
    assert warm["cached"] is True
    _, other = client.get(path, headers={"X-Tenant": "acct-team"})
    assert other["cached"] is False
    assert other["report"] == warm["report"]
    _, again = client.get(path, headers={"X-Tenant": "acct-team"})
    assert again["cached"] is True


def test_concurrent_identical_responses_are_identical(client):
    """16 concurrent sessions asking the same question all get the
    exact same bytes back."""
    path = f"/api/v1/report/support?system={SYSTEM}&tenant=burst"
    results: list[str] = []
    lock = threading.Lock()

    def hit():
        status, body = client.get(path)
        assert status == 200
        with lock:
            results.append(body["report"])

    threads = [threading.Thread(target=hit) for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(results)) == 1


def test_metrics_endpoint_prometheus_text(client):
    client.get("/api/v1/health")  # ensure at least one request counted
    status, text = client.get("/metrics")
    assert status == 200
    assert "# TYPE repro_service_requests counter" in text
    assert "repro_service_requests_health" in text
    assert "repro_service_latency_seconds_bucket" in text
    assert "repro_service_latency_seconds_count" in text


def _append_job(path: str, jobid: str) -> None:
    wh = Warehouse(path)
    try:
        req = make_request(jobid=jobid, user="external", nodes=2)
        rec = JobRecord(req, 0.0, 3600.0, (0, 1), ExitStatus.COMPLETED)
        metrics = {m: 1.0 for m in SUMMARY_METRICS}
        wh.add_job(SYSTEM, rec, 16,
                   JobSummary(jobid, metrics, 2, 3600.0, 6))
        wh.commit()
    finally:
        wh.close()


def test_refresh_adopts_external_commit(client, warehouse_path):
    count = "/api/v1/query/group_by?system={}&dimension=exit_status&metrics="
    _, before = client.get(count.format(SYSTEM))
    total_before = sum(g["job_count"] for g in before["groups"])

    _append_job(warehouse_path, "zzz-external-1")
    # Not adopted until refresh: the served snapshot is stable.
    _, still = client.get(count.format(SYSTEM))
    assert sum(g["job_count"] for g in still["groups"]) == total_before

    status, body = client.post("/api/v1/refresh")
    assert status == 200
    assert body["changed"] is True

    _, after = client.get(count.format(SYSTEM))
    assert sum(g["job_count"] for g in after["groups"]) == total_before + 1
    assert after["generation"] > before["generation"]

    status, body = client.post("/api/v1/refresh")
    assert status == 200
    assert body["changed"] is False


def test_refresh_adopts_external_series_write(client, warehouse_path):
    """An external ``append_series`` (tail rewrite via upsert) must be
    visible after ``POST /api/v1/refresh`` — the persisted change-state
    tells the adopting snapshot to reload that system's series instead
    of serving the stale frozen arrays."""
    path = f"/api/v1/timeseries/active_nodes?system={SYSTEM}"
    _, before = client.get(path)

    wh = Warehouse(warehouse_path)
    try:
        t, v = wh.series(SYSTEM, "active_nodes")
        wh.append_series(SYSTEM, "active_nodes",
                         t[-1:], v[-1:] + 7.0)
        wh.commit()
    finally:
        wh.close()

    # Not adopted until refresh: the served snapshot is stable.
    _, still = client.get(path)
    assert still["values"] == before["values"]

    status, body = client.post("/api/v1/refresh")
    assert status == 200
    assert body["changed"] is True

    _, after = client.get(path)
    assert after["times"] == before["times"]
    assert after["values"][-1] == before["values"][-1] + 7.0
    assert after["values"][:-1] == before["values"][:-1]


def test_drain_waits_for_inflight_requests(fresh_state):
    from repro.service.server import make_server

    server = make_server(fresh_state)
    try:
        assert server.request_started() is True
        # One dispatched request still running: drain times out, new
        # arrivals are refused.
        assert server.drain(timeout=0.05) is False
        assert server.request_started() is False
        server.request_finished()
        assert server.drain(timeout=1.0) is True
    finally:
        server.server_close()


def test_requests_during_drain_get_structured_503(warehouse_path):
    from repro.service.server import make_server
    from repro.service.state import ServiceState
    from tests.service.conftest import Client

    state = ServiceState(warehouse_path)
    server = make_server(state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        probe = Client(server)
        status, _ = probe.get("/api/v1/health")
        assert status == 200
        assert server.drain(timeout=1.0) is True
        # The warehouse is still open, but the drain gate answers
        # without touching it — a structured 503, never a 500.
        status, body = probe.get("/api/v1/health")
        assert status == 503
        assert body["error"]["code"] == "shutting_down"
    finally:
        server.shutdown()
        server.server_close()
        state.close()
        thread.join(timeout=5)
