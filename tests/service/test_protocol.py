"""Protocol conformance: every failure is structured JSON.

The dashboard contract is that a client can branch on a stable
``error.code`` for any failure — bad parameters, unknown names, wrong
methods — and that no response body ever carries an HTML error page or
a Python traceback.
"""

from __future__ import annotations

import pytest

from repro.service.protocol import ERROR_STATUS, ServiceError
from tests.service.conftest import SYSTEM


def assert_error(status, body, code):
    """One structured-error response: right code, right status, no
    traceback leakage."""
    assert status == ERROR_STATUS[code]
    assert body["error"]["code"] == code
    assert body["error"]["message"]
    assert "Traceback" not in str(body)


def test_unknown_realm_rejected(client):
    status, body = client.get(f"/api/v1/report/wizard?system={SYSTEM}")
    assert_error(status, body, "unknown_realm")
    assert "support" in body["error"]["detail"]["known"]


def test_unknown_metric_rejected(client):
    status, body = client.get(
        f"/api/v1/query/group_by?system={SYSTEM}"
        f"&dimension=user&metrics=flops2")
    assert_error(status, body, "unknown_metric")
    assert "cpu_idle" in body["error"]["detail"]["known"]


def test_unknown_dimension_rejected(client):
    status, body = client.get(
        f"/api/v1/query/group_by?system={SYSTEM}&dimension=favourite")
    assert_error(status, body, "unknown_dimension")


def test_unknown_system_rejected(client):
    status, body = client.get("/api/v1/report/support?system=bluewaters")
    assert_error(status, body, "unknown_system")
    assert body["error"]["detail"]["known"] == [SYSTEM]


def test_unknown_series_rejected(client):
    status, body = client.get(f"/api/v1/timeseries/nosuch?system={SYSTEM}")
    assert_error(status, body, "unknown_series")


def test_missing_target_rejected(client):
    status, body = client.get(f"/api/v1/report/user?system={SYSTEM}")
    assert_error(status, body, "missing_target")


def test_unexpected_target_rejected(client):
    status, body = client.get(
        f"/api/v1/report/support?system={SYSTEM}&target=user0001")
    assert_error(status, body, "unexpected_target")


def test_missing_system_rejected(client):
    status, body = client.get("/api/v1/report/support")
    assert_error(status, body, "missing_param")


def test_unknown_target_is_bad_request_not_500(client):
    """A nonexistent user inside a valid realm is a client error with
    the underlying message, never an internal error."""
    status, body = client.get(
        f"/api/v1/report/user?system={SYSTEM}&target=nobody9999")
    assert_error(status, body, "bad_request")


def test_unknown_endpoint_rejected(client):
    for path in ("/", "/api", "/api/v1/nope", "/api/v2/health"):
        status, body = client.get(path)
        assert_error(status, body, "unknown_endpoint")


def test_method_not_allowed(client):
    status, body = client.post(f"/api/v1/report/support?system={SYSTEM}")
    assert_error(status, body, "method_not_allowed")
    status, body = client.get("/api/v1/refresh")
    assert_error(status, body, "method_not_allowed")


def test_repeated_parameter_rejected(client):
    status, body = client.get(
        f"/api/v1/report/support?system={SYSTEM}&system={SYSTEM}")
    assert_error(status, body, "bad_request")


def test_service_error_requires_registered_code():
    with pytest.raises(ValueError):
        ServiceError("made_up_code", "nope")


def test_error_statuses_are_http_errors():
    assert all(400 <= s < 600 for s in ERROR_STATUS.values())


def test_overlong_tenant_rejected(client):
    status, body = client.get(
        f"/api/v1/report/support?system={SYSTEM}",
        headers={"X-Tenant": "t" * 200})
    assert_error(status, body, "bad_request")
    status, body = client.get(
        f"/api/v1/report/support?system={SYSTEM}&tenant={'t' * 200}")
    assert_error(status, body, "bad_request")


def test_valid_tenant_rules():
    from repro.service.protocol import MAX_TENANT_LEN, valid_tenant

    assert valid_tenant("acct-team") == "acct-team"
    assert valid_tenant("t" * MAX_TENANT_LEN) == "t" * MAX_TENANT_LEN
    for bad in ("", "t" * (MAX_TENANT_LEN + 1), "a\x00b", "a\nb"):
        with pytest.raises(ServiceError) as err:
            valid_tenant(bad)
        assert err.value.code == "bad_request"
