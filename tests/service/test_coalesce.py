"""Single-flight coalescing: identical in-flight queries compute once.

The deterministic proof rides on two design choices: followers count
themselves in ``service.coalesced`` *before* blocking (so a test can
wait until exactly K-1 followers are enqueued), and the leader's
compute is gated on an event the test controls — no sleeps, no racy
"hope they overlap" scheduling.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.coalesce import SingleFlight
from repro.service.state import REPORT_KINDS
from repro.telemetry.metrics import get_registry
from tests.service.conftest import SYSTEM


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


def test_single_flight_computes_once_per_concurrent_set():
    flight = SingleFlight()
    release = threading.Event()
    computes = []
    results = []
    coalesced_before = get_registry().counter("service.coalesced").value

    def compute():
        computes.append(1)
        release.wait(10)
        return "answer"

    def call():
        value, _ = flight.do("key", compute)
        results.append(value)

    threads = [threading.Thread(target=call) for _ in range(8)]
    for t in threads:
        t.start()
    # All 7 followers are provably enqueued before the leader finishes.
    _wait_until(lambda: get_registry().counter(
        "service.coalesced").value - coalesced_before == 7)
    assert flight.in_flight() == 1
    release.set()
    for t in threads:
        t.join(10)
    assert computes == [1]  # the compute-once assertion
    assert results == ["answer"] * 8
    assert flight.in_flight() == 0


def test_distinct_keys_do_not_coalesce():
    flight = SingleFlight()
    before = get_registry().counter("service.coalesced").value
    seen = []
    for key in ("a", "b", "a"):
        value, coalesced = flight.do(key, lambda k=key: k.upper())
        seen.append((value, coalesced))
    # Sequential calls never coalesce — nothing is in flight.
    assert seen == [("A", False), ("B", False), ("A", False)]
    assert get_registry().counter("service.coalesced").value == before


def test_leader_failure_fans_out_and_clears_flight():
    flight = SingleFlight()
    release = threading.Event()
    errors = []

    def explode():
        release.wait(10)
        raise RuntimeError("boom")

    def call():
        try:
            flight.do("k", explode)
        except RuntimeError as exc:
            errors.append(str(exc))

    before = get_registry().counter("service.coalesced").value
    threads = [threading.Thread(target=call) for _ in range(3)]
    for t in threads:
        t.start()
    _wait_until(lambda: get_registry().counter(
        "service.coalesced").value - before == 2)
    release.set()
    for t in threads:
        t.join(10)
    assert errors == ["boom"] * 3
    # The failed flight is gone: a retry computes fresh.
    assert flight.do("k", lambda: 42) == (42, False)


def test_concurrent_identical_reports_coalesce_end_to_end(
        fresh_state, monkeypatch):
    """Through the full ServiceState path: K identical report requests
    arriving while the first is computing produce exactly one compute,
    K-1 ``service.coalesced`` increments, and identical payloads."""
    release = threading.Event()
    computes = []

    class GatedReport:
        """Stands in for a report class; render blocks until released."""

        def __init__(self, warehouse, system, snapshot=None):
            self.system = system

        def render(self):
            computes.append(1)
            release.wait(10)
            return f"GATED {self.system}"

    monkeypatch.setitem(REPORT_KINDS, "support", GatedReport)
    registry = get_registry()
    before = registry.counter("service.coalesced").value
    results = []
    lock = threading.Lock()

    def request():
        body = fresh_state.report("support", SYSTEM)
        with lock:
            results.append(body["report"])

    threads = [threading.Thread(target=request) for _ in range(6)]
    for t in threads:
        t.start()
    _wait_until(lambda: registry.counter(
        "service.coalesced").value - before == 5)
    release.set()
    for t in threads:
        t.join(10)
    assert computes == [1]
    assert results == [f"GATED {SYSTEM}"] * 6


def test_coalesced_flag_reported_in_body(fresh_state, monkeypatch):
    """Follower responses carry ``coalesced: true``."""
    release = threading.Event()
    started = threading.Event()

    class GatedReport:
        """Gated stand-in report (leader blocks until released)."""

        def __init__(self, warehouse, system, snapshot=None):
            pass

        def render(self):
            started.set()
            release.wait(10)
            return "X"

    monkeypatch.setitem(REPORT_KINDS, "support", GatedReport)
    bodies = []
    lock = threading.Lock()

    def request():
        body = fresh_state.report("support", SYSTEM)
        with lock:
            bodies.append(body)

    leader = threading.Thread(target=request)
    leader.start()
    assert started.wait(10)
    registry = get_registry()
    before = registry.counter("service.coalesced").value
    follower = threading.Thread(target=request)
    follower.start()
    _wait_until(lambda: registry.counter(
        "service.coalesced").value - before == 1)
    release.set()
    leader.join(10)
    follower.join(10)
    flags = sorted(b["coalesced"] for b in bodies)
    assert flags == [False, True]


@pytest.mark.parametrize("capacity", [-1, 0])
def test_cache_capacity_validated(capacity):
    from repro.service.cache import TenantReportCache
    with pytest.raises(ValueError):
        TenantReportCache(capacity)
