"""TenantReportCache bounds: per-tenant capacity LRU plus the
whole-tenant LRU bound.

The tenant name is client-controlled (``X-Tenant`` / ``tenant``
parameter), so the map of tenants must be bounded too — otherwise a
client minting fresh tenant names grows server memory without limit,
each slot pinning up to ``capacity`` full report bodies.
"""

from __future__ import annotations

import pytest

from repro.service.cache import TenantReportCache
from repro.telemetry.metrics import get_registry


def test_per_tenant_capacity_evicts_oldest():
    cache = TenantReportCache(capacity=2)
    cache.put("t", "a", 1)
    cache.put("t", "b", 2)
    cache.put("t", "c", 3)
    assert cache.get("t", "a") is None
    assert cache.get("t", "b") == 2
    assert cache.get("t", "c") == 3


def test_tenant_count_is_bounded():
    cache = TenantReportCache(capacity=4, max_tenants=3)
    for i in range(5):
        cache.put(f"tenant-{i}", "k", i)
    stats = cache.stats()
    assert stats["total"] == 3
    assert "tenant-0" not in stats and "tenant-1" not in stats
    assert cache.get("tenant-4", "k") == 4


def test_tenant_eviction_is_lru_not_fifo():
    cache = TenantReportCache(capacity=4, max_tenants=2)
    cache.put("old", "k", 1)
    cache.put("busy", "k", 2)
    assert cache.get("old", "k") == 1  # touch: old is now most recent
    cache.put("new", "k", 3)  # evicts "busy", the least recently used
    assert cache.get("old", "k") == 1
    assert cache.get("busy", "k") is None
    assert cache.get("new", "k") == 3


def test_tenant_evictions_counted():
    counter = get_registry().counter("service.cache.tenant_evictions")
    before = counter.value
    cache = TenantReportCache(capacity=1, max_tenants=1)
    cache.put("a", "k", 1)
    cache.put("b", "k", 2)
    cache.put("c", "k", 3)
    assert counter.value == before + 2


def test_clear_drops_all_tenants():
    cache = TenantReportCache(capacity=2, max_tenants=4)
    cache.put("a", "k", 1)
    cache.put("b", "k", 2)
    cache.clear()
    assert cache.stats()["total"] == 0


@pytest.mark.parametrize("max_tenants", [0, -1])
def test_max_tenants_validated(max_tenants):
    with pytest.raises(ValueError):
        TenantReportCache(max_tenants=max_tenants)
