"""Service-layer fixtures: one small file-backed warehouse per session,
one live HTTP server shared by the read-only protocol tests, and a
tiny stdlib HTTP client.

The server is session-scoped (binding and snapshot warm-up are the
expensive parts); tests that need pristine cache or counter state use
a fresh function-scoped :class:`ServiceState` instead of the shared
server, or assert on counter *deltas*.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro import RANGER, Facility
from repro.ingest.warehouse import Warehouse
from repro.service.server import make_server
from repro.service.state import ServiceState

SYSTEM = "ranger"


@pytest.fixture(scope="session")
def warehouse_path(tmp_path_factory) -> str:
    """A small simulated facility persisted to a SQLite file."""
    path = tmp_path_factory.mktemp("service") / "facility.sqlite"
    cfg = RANGER.scaled(num_nodes=16, horizon_days=6, n_users=24)
    wh = Warehouse(str(path))
    Facility(cfg, seed=3).run(warehouse=wh)
    wh.commit()
    wh.close()
    return str(path)


@pytest.fixture(scope="session")
def server(warehouse_path):
    """A live ``ReproServer`` on a free port, torn down after the
    session."""
    state = ServiceState(warehouse_path)
    srv = make_server(state)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    state.close()
    thread.join(timeout=5)


class Client:
    """A minimal JSON-over-HTTP client for one server."""

    def __init__(self, server):
        host, port = server.server_address[:2]
        self.host, self.port = host, port

    def request(self, method: str, path: str,
                headers: dict | None = None):
        """Returns ``(status, parsed_json_or_text)``."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request(method, path, headers=headers or {})
            resp = conn.getresponse()
            raw = resp.read().decode()
            if resp.headers.get_content_type() == "application/json":
                return resp.status, json.loads(raw)
            return resp.status, raw
        finally:
            conn.close()

    def get(self, path: str, headers: dict | None = None):
        return self.request("GET", path, headers)

    def post(self, path: str, headers: dict | None = None):
        return self.request("POST", path, headers)


@pytest.fixture(scope="session")
def client(server) -> Client:
    return Client(server)


@pytest.fixture()
def fresh_state(warehouse_path):
    """A function-scoped state with empty caches (no HTTP in front)."""
    state = ServiceState(warehouse_path)
    yield state
    state.close()
