"""Tests for the InfiniBand fabric model."""

import numpy as np
import pytest

from repro.cluster.interconnect import Fabric, InterconnectSpec


def test_spec_rates():
    sdr = InterconnectSpec(link_gbps=8.0)
    assert sdr.link_mb_s == pytest.approx(1000.0)
    with pytest.raises(ValueError):
        InterconnectSpec(kind="tokenring")
    with pytest.raises(ValueError):
        InterconnectSpec(link_gbps=0.0)


def test_fabric_leaf_mapping():
    fabric = Fabric(InterconnectSpec(radix=4), num_nodes=10)
    assert fabric.num_leaves == 3
    assert fabric.leaf_of(0) == 0
    assert fabric.leaf_of(3) == 0
    assert fabric.leaf_of(4) == 1
    assert fabric.leaf_of(9) == 2
    assert list(fabric.nodes_on_leaf(1)) == [4, 5, 6, 7]


def test_fabric_bounds():
    fabric = Fabric(InterconnectSpec(radix=4), num_nodes=8)
    with pytest.raises(IndexError):
        fabric.leaf_of(8)
    with pytest.raises(IndexError):
        fabric.nodes_on_leaf(2)


def test_leaf_aggregate_sums_members():
    fabric = Fabric(InterconnectSpec(radix=2), num_nodes=4)
    agg = fabric.leaf_aggregate(np.array([1.0, 2.0, 3.0, 4.0]))
    np.testing.assert_allclose(agg, [3.0, 7.0])


def test_leaf_aggregate_shape_checked():
    fabric = Fabric(InterconnectSpec(radix=2), num_nodes=4)
    with pytest.raises(ValueError):
        fabric.leaf_aggregate(np.ones(3))


def test_leaf_saturation():
    spec = InterconnectSpec(link_gbps=8.0, radix=2)  # 1000 MB/s links
    fabric = Fabric(spec, num_nodes=2)
    sat = fabric.leaf_saturation(np.array([2000.0, 2000.0]),
                                 uplinks_per_leaf=4)
    assert sat[0] == pytest.approx(1.0)
