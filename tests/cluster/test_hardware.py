"""Tests for processor/node hardware models against published specs."""

import pytest

from repro.cluster.hardware import (
    OPTERON_BARCELONA,
    XEON_5680,
    NodeHardware,
    ProcessorSpec,
    lonestar4_node,
    ranger_node,
)
from repro.util.units import GB


def test_ranger_node_matches_paper():
    node = ranger_node()
    assert node.cores == 16
    assert node.sockets == 4
    assert node.memory_gb == pytest.approx(32.0)
    assert node.memory_per_core_gb == pytest.approx(2.0)
    assert node.processor.arch == "amd64"
    # 2.3 GHz x 4 flops/cycle x 16 cores = 147.2 GF; x 3936 nodes ~ 579 TF.
    assert node.peak_gflops == pytest.approx(147.2)
    assert node.peak_gflops * 3936 / 1000 == pytest.approx(579.4, abs=0.5)


def test_lonestar4_node_matches_paper():
    node = lonestar4_node()
    assert node.cores == 12
    assert node.memory_gb == pytest.approx(24.0)
    assert node.memory_per_core_gb == pytest.approx(2.0)
    assert node.processor.arch == "intel"
    assert node.processor.clock_ghz == pytest.approx(3.33)


def test_pmc_event_sets_match_paper():
    # Paper §3: Opteron events are FLOPS, memory accesses, data cache
    # fills and SMP/NUMA traffic; Intel events are FLOPS, SMP/NUMA
    # traffic and L1 data cache hits.
    assert OPTERON_BARCELONA.pmc_events == (
        "SSE_FLOPS", "DRAM_ACCESSES", "DCACHE_SYS_FILLS", "HT_LINK_TRAFFIC"
    )
    assert XEON_5680.pmc_events == ("FP_COMP_OPS", "QPI_TRAFFIC", "L1D_HITS")


def test_processor_validation():
    with pytest.raises(ValueError):
        ProcessorSpec("x", "sparc", 2.0, 4, 4, ())
    with pytest.raises(ValueError):
        ProcessorSpec("x", "intel", 2.0, 0, 4, ())


def test_node_validation():
    with pytest.raises(ValueError):
        NodeHardware(processor=XEON_5680, sockets=0, memory_bytes=GB)
    with pytest.raises(ValueError):
        NodeHardware(processor=XEON_5680, sockets=2, memory_bytes=0)


def test_counter_width_default():
    assert OPTERON_BARCELONA.counter_width == 48
