"""Tests for node state transitions."""

import pytest

from repro.cluster.hardware import ranger_node
from repro.cluster.node import Node, NodeState


@pytest.fixture
def node():
    return Node(index=3, hostname="c000-003.test", hardware=ranger_node())


def test_allocate_release_cycle(node):
    assert node.is_free
    node.allocate("j1")
    assert node.state is NodeState.ALLOCATED
    assert node.jobid == "j1"
    node.release()
    assert node.is_free
    assert node.jobid is None


def test_double_allocate_rejected(node):
    node.allocate("j1")
    with pytest.raises(RuntimeError, match="cannot allocate"):
        node.allocate("j2")


def test_release_free_rejected(node):
    with pytest.raises(RuntimeError, match="cannot release"):
        node.release()


def test_mark_down_returns_victim(node):
    node.allocate("j1")
    assert node.mark_down() == "j1"
    assert node.state is NodeState.DOWN
    assert node.jobid is None


def test_mark_down_free_node_no_victim(node):
    assert node.mark_down() is None


def test_mark_up_resets_boot_time(node):
    node.mark_down()
    node.mark_up(now=1000.0)
    assert node.is_free
    assert node.boot_time == 1000.0


def test_mark_up_requires_down(node):
    with pytest.raises(RuntimeError):
        node.mark_up(now=5.0)


def test_allocate_down_node_rejected(node):
    node.mark_down()
    with pytest.raises(RuntimeError):
        node.allocate("j1")
