"""Tests for the Lustre/NFS filesystem policy model."""

import pytest

from repro.cluster.filesystem import (
    FilesystemSpec,
    FilesystemState,
    QuotaExceeded,
    lonestar4_filesystems,
    ranger_filesystems,
)
from repro.util.units import GB, TB


def test_paper_policy_split():
    """§4.2: scratch is purged with a huge quota; work is non-purged, 200 GB."""
    fs = {s.name: s for s in ranger_filesystems()}
    assert fs["scratch"].purged
    assert fs["scratch"].quota_bytes >= 100 * TB
    assert not fs["work"].purged
    assert fs["work"].quota_bytes == 200 * GB


def test_lonestar4_has_nfs_home():
    kinds = {s.name: s.kind for s in lonestar4_filesystems()}
    assert kinds["home"] == "nfs"
    assert kinds["scratch"] == "lustre"


def test_spec_validation():
    with pytest.raises(ValueError):
        FilesystemSpec("x", "fat32", "/x", quota_bytes=GB)
    with pytest.raises(ValueError):
        FilesystemSpec("x", "lustre", "/x", quota_bytes=0)


@pytest.fixture
def work():
    return FilesystemState(FilesystemSpec("work", "lustre", "/work",
                                          quota_bytes=10 * GB))


@pytest.fixture
def scratch():
    return FilesystemState(FilesystemSpec(
        "scratch", "lustre", "/scratch", quota_bytes=100 * TB,
        purged=True, purge_age_days=10,
    ))


def test_charges_accumulate(work):
    work.charge_write("u1", 4 * GB, now=0.0)
    work.charge_read(GB)
    assert work.bytes_written == 4 * GB
    assert work.bytes_read == GB
    assert work.usage("u1") == 4 * GB
    assert work.total_resident == 4 * GB


def test_quota_enforced(work):
    work.charge_write("u1", 8 * GB, now=0.0)
    with pytest.raises(QuotaExceeded):
        work.charge_write("u1", 4 * GB, now=1.0)
    # Another user has their own quota.
    work.charge_write("u2", 8 * GB, now=1.0)


def test_quota_can_be_waived(work):
    work.charge_write("u1", 30 * GB, now=0.0, enforce_quota=False)
    assert work.usage("u1") == 30 * GB


def test_release_frees_oldest_first(work):
    work.charge_write("u1", 2 * GB, now=0.0)
    work.charge_write("u1", 3 * GB, now=10.0)
    work.release("u1", 2 * GB)
    assert work.usage("u1") == 3 * GB


def test_release_partial_extent(work):
    work.charge_write("u1", 4 * GB, now=0.0)
    work.release("u1", GB)
    assert work.usage("u1") == 3 * GB


def test_purge_deletes_old_extents(scratch):
    day = 86400.0
    scratch.charge_write("u1", 5 * GB, now=0.0)
    scratch.charge_write("u1", 2 * GB, now=8 * day)
    freed = scratch.run_purge(now=12 * day)
    assert freed == 5 * GB
    assert scratch.usage("u1") == 2 * GB
    # Throughput counters are never purged.
    assert scratch.bytes_written == 7 * GB


def test_purge_noop_on_unpurged(work):
    work.charge_write("u1", GB, now=0.0)
    assert work.run_purge(now=1e9) == 0.0
    assert work.usage("u1") == GB


def test_negative_charges_rejected(work):
    with pytest.raises(ValueError):
        work.charge_write("u1", -1.0, now=0.0)
    with pytest.raises(ValueError):
        work.charge_read(-1.0)
