"""Tests for the outage generator."""

import numpy as np
import pytest

from repro.cluster.outages import Outage, OutageGenerator, OutageKind
from repro.util.timeutil import DAY


def _gen(**kw):
    defaults = dict(num_nodes=100)
    defaults.update(kw)
    return OutageGenerator(**defaults)


def test_outage_validation():
    with pytest.raises(ValueError):
        Outage(10.0, 10.0, OutageKind.SCHEDULED)
    with pytest.raises(ValueError):
        OutageGenerator(num_nodes=0)


def test_outages_sorted_and_disjoint():
    rng = np.random.default_rng(0)
    outages = _gen(unscheduled_rate_per_month=20.0).generate(90 * DAY, rng)
    for a, b in zip(outages, outages[1:]):
        assert a.start <= b.start
        assert a.end <= b.start  # disjoint


def test_scheduled_cadence():
    rng = np.random.default_rng(1)
    outages = _gen(scheduled_interval_days=30,
                   unscheduled_rate_per_month=0.0).generate(200 * DAY, rng)
    scheduled = [o for o in outages if o.kind is OutageKind.SCHEDULED]
    assert 4 <= len(scheduled) <= 9
    assert all(o.is_full_system for o in scheduled)
    assert all(o.duration == pytest.approx(12 * 3600) for o in scheduled)


def test_unscheduled_rate_roughly_matches():
    rng = np.random.default_rng(2)
    outages = _gen(scheduled_interval_days=0,
                   unscheduled_rate_per_month=4.0).generate(300 * DAY, rng)
    # ~40 expected over 10 months; allow generous Poisson slack (some
    # overlapping draws are merged away).
    assert 20 <= len(outages) <= 60


def test_partial_outages_have_valid_node_lists():
    rng = np.random.default_rng(3)
    outages = _gen(scheduled_interval_days=0, unscheduled_rate_per_month=10.0,
                   full_system_prob=0.0).generate(300 * DAY, rng)
    assert outages
    for o in outages:
        assert o.nodes is not None
        assert len(set(o.nodes)) == len(o.nodes)
        assert all(0 <= i < 100 for i in o.nodes)


def test_horizon_respected():
    rng = np.random.default_rng(4)
    outages = _gen().generate(30 * DAY, rng)
    assert all(o.start < 30 * DAY for o in outages)


def test_reproducible():
    a = _gen().generate(100 * DAY, np.random.default_rng(7))
    b = _gen().generate(100 * DAY, np.random.default_rng(7))
    assert a == b
