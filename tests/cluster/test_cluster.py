"""Tests for cluster allocation bookkeeping and outage handling."""

import pytest

from repro.cluster.cluster import AllocationError, Cluster
from repro.cluster.filesystem import ranger_filesystems
from repro.cluster.hardware import ranger_node


@pytest.fixture
def cluster():
    return Cluster("test", 8, ranger_node(), ranger_filesystems())


def test_capacity_properties(cluster):
    assert cluster.num_nodes == 8
    assert cluster.free_count == 8
    assert cluster.active_count == 8
    assert cluster.busy_count == 0
    assert cluster.total_cores == 8 * 16
    assert cluster.peak_tflops == pytest.approx(8 * 147.2 / 1000)


def test_allocate_and_release(cluster):
    nodes = cluster.allocate("j1", 3)
    assert len(nodes) == 3
    assert cluster.free_count == 5
    assert cluster.busy_count == 3
    assert sorted(cluster.nodes_of("j1")) == sorted(nodes)
    returned = cluster.release("j1")
    assert sorted(returned) == sorted(nodes)
    assert cluster.free_count == 8
    cluster.check_invariants()


def test_allocate_too_many_rejected(cluster):
    with pytest.raises(AllocationError, match="only 8 free"):
        cluster.allocate("j1", 9)


def test_allocate_twice_rejected(cluster):
    cluster.allocate("j1", 2)
    with pytest.raises(AllocationError, match="already holds"):
        cluster.allocate("j1", 1)


def test_allocate_zero_rejected(cluster):
    with pytest.raises(AllocationError):
        cluster.allocate("j1", 0)


def test_release_unknown_rejected(cluster):
    with pytest.raises(AllocationError, match="holds no nodes"):
        cluster.release("nope")


def test_full_outage_kills_jobs_and_reduces_active(cluster):
    cluster.allocate("j1", 4)
    victims = cluster.begin_outage(None)
    assert victims == {"j1"}
    assert cluster.active_count == 0
    assert cluster.free_count == 0
    # Scheduler fails the job: release returns nothing (nodes are down).
    assert cluster.release("j1") == []
    cluster.end_outage(None, now=100.0)
    assert cluster.active_count == 8
    assert cluster.free_count == 8
    cluster.check_invariants()


def test_partial_outage_only_hits_targets(cluster):
    nodes = cluster.allocate("j1", 2)
    untouched = [i for i in range(8) if i not in nodes][:2]
    victims = cluster.begin_outage(untouched)
    assert victims == set()
    assert cluster.active_count == 6
    assert cluster.busy_count == 2
    cluster.release("j1")
    cluster.end_outage(untouched, now=50.0)
    assert cluster.free_count == 8
    cluster.check_invariants()


def test_outage_idempotent_on_down_nodes(cluster):
    cluster.begin_outage([0, 1])
    cluster.begin_outage([0, 1])  # no crash, no double-remove
    assert cluster.active_count == 6
    restored = cluster.end_outage([0, 1], now=10.0)
    assert restored == 2


def test_partial_node_failure_mid_job(cluster):
    nodes = cluster.allocate("j1", 3)
    victims = cluster.begin_outage([nodes[1]])
    assert victims == {"j1"}
    # Releasing the job returns only its surviving nodes.
    returned = cluster.release("j1")
    assert len(returned) == 2
    assert cluster.free_count == 7
    cluster.check_invariants()


def test_hostnames_unique(cluster):
    names = {n.hostname for n in cluster.nodes}
    assert len(names) == 8


def test_filesystem_states_created(cluster):
    assert set(cluster.filesystems) == {"scratch", "work", "share"}
