"""Tests for the facility configurations."""

import dataclasses

import pytest

from repro.config import LONESTAR4, RANGER, TEST_SYSTEM


def test_ranger_published_specs():
    assert RANGER.num_nodes == 3936
    assert RANGER.node.cores == 16
    assert RANGER.node.memory_gb == pytest.approx(32.0)
    assert RANGER.peak_tflops == pytest.approx(579.4, abs=1.0)
    assert RANGER.sample_interval == 600.0
    assert RANGER.avg_job_minutes == 549.0
    assert RANGER.target_efficiency == 0.90
    assert RANGER.n_users == 2000
    assert {f.name for f in RANGER.filesystems} == {"scratch", "work",
                                                    "share"}


def test_lonestar4_published_specs():
    assert LONESTAR4.num_nodes == 1888
    assert LONESTAR4.node.cores == 12
    assert LONESTAR4.node.memory_gb == pytest.approx(24.0)
    assert LONESTAR4.avg_job_minutes == 446.0
    assert LONESTAR4.target_efficiency == 0.85
    kinds = {f.name: f.kind for f in LONESTAR4.filesystems}
    assert kinds["home"] == "nfs"


def test_scaled_preserves_per_node_invariants():
    small = RANGER.scaled(num_nodes=64, horizon_days=10, n_users=50)
    assert small.num_nodes == 64
    assert small.node == RANGER.node
    assert small.target_efficiency == RANGER.target_efficiency
    assert small.avg_job_minutes == RANGER.avg_job_minutes
    assert small.workload_scale == pytest.approx(64 / 3936)
    assert small.horizon == 10 * 86400
    assert small.n_users == 50
    # Per-node peak unchanged -> system peak scales linearly.
    assert small.peak_tflops == pytest.approx(RANGER.peak_tflops * 64 / 3936)


def test_scaled_composes():
    twice = RANGER.scaled(num_nodes=128).scaled(num_nodes=64)
    assert twice.workload_scale == pytest.approx(64 / 3936)


def test_stream_prefix_and_seed_label():
    assert RANGER.stream_prefix == "ranger"
    other = dataclasses.replace(RANGER, seed_label="replica-b")
    assert other.stream_prefix == "replica-b"


def test_validation():
    with pytest.raises(ValueError):
        dataclasses.replace(RANGER, num_nodes=0)
    with pytest.raises(ValueError):
        dataclasses.replace(RANGER, target_utilization=0.0)
    with pytest.raises(ValueError):
        dataclasses.replace(RANGER, target_efficiency=1.5)
    with pytest.raises(ValueError):
        dataclasses.replace(RANGER, sample_interval=0.0)


def test_test_system_is_tiny():
    assert TEST_SYSTEM.num_nodes <= 16
    assert TEST_SYSTEM.horizon <= 3 * 86400
