"""Tests for the facility facade (fast path)."""

import numpy as np
import pytest

from repro import LONESTAR4, RANGER, Facility
from repro.xdmod.metrics import SERIES_NAMES


def test_fast_run_contents(fast_run):
    assert fast_run.records
    assert fast_run.warehouse.systems() == ["ranger"]
    q = fast_run.query()
    assert len(q) > 0
    stored = set(fast_run.warehouse.series_metrics("ranger"))
    assert stored == set(SERIES_NAMES)


def test_series_lengths_consistent(fast_run):
    wh = fast_run.warehouse
    lengths = set()
    for name in wh.series_metrics("ranger"):
        t, v = wh.series("ranger", name)
        lengths.add(len(t))
        assert (np.diff(t) > 0).all()
    assert len(lengths) == 1


def test_flops_bounded_by_peak_and_active(fast_run):
    wh = fast_run.warehouse
    _, flops = wh.series("ranger", "flops_tf")
    _, active = wh.series("ranger", "active_nodes")
    per_node_peak = fast_run.config.node.peak_gflops / 1000.0
    assert (flops <= active * per_node_peak + 1e-9).all()
    assert (flops >= 0).all()


def test_busy_never_exceeds_active(fast_run):
    wh = fast_run.warehouse
    _, busy = wh.series("ranger", "busy_nodes")
    _, active = wh.series("ranger", "active_nodes")
    # Bins where a node hands off between jobs count both jobs' samples,
    # so busy can locally exceed active on a saturated machine; the
    # overcount must stay small in aggregate and bounded per bin.
    assert busy.max() <= 2 * fast_run.config.num_nodes
    up = active > 0
    assert busy[up].mean() <= active[up].mean() * 1.05
    assert float(np.mean(busy[up] <= active[up] + 3)) > 0.9


def test_idle_frac_in_bounds(fast_run):
    _, idle = fast_run.warehouse.series("ranger", "cpu_idle_frac")
    assert (idle >= 0).all()
    assert (idle <= 1.0 + 1e-9).all()


def test_efficiency_calibration_both_systems():
    for base, tol in ((RANGER, 0.04), (LONESTAR4, 0.04)):
        cfg = base.scaled(num_nodes=24, horizon_days=10, n_users=40)
        run = Facility(cfg, seed=3).run(with_syslog=False)
        idle = run.query().weighted_mean("cpu_idle")
        target = 1.0 - cfg.target_efficiency
        assert idle == pytest.approx(target, abs=tol), base.name


def test_reproducible_runs():
    cfg = RANGER.scaled(num_nodes=16, horizon_days=4, n_users=15)
    a = Facility(cfg, seed=5).run(with_syslog=False)
    b = Facility(cfg, seed=5).run(with_syslog=False)
    ta = a.warehouse.job_table("ranger")
    tb = b.warehouse.job_table("ranger")
    np.testing.assert_array_equal(ta["jobid"], tb["jobid"])
    np.testing.assert_allclose(ta["cpu_flops"], tb["cpu_flops"])
    _, va = a.warehouse.series("ranger", "flops_tf")
    _, vb = b.warehouse.series("ranger", "flops_tf")
    np.testing.assert_allclose(va, vb)


def test_different_seeds_differ():
    cfg = RANGER.scaled(num_nodes=16, horizon_days=4, n_users=15)
    a = Facility(cfg, seed=1).run(with_syslog=False)
    b = Facility(cfg, seed=2).run(with_syslog=False)
    assert len(a.records) != len(b.records) or not np.allclose(
        a.warehouse.series("ranger", "flops_tf")[1],
        b.warehouse.series("ranger", "flops_tf")[1],
    )


def test_syslog_flows_into_warehouse(fast_run):
    events = fast_run.warehouse.syslog_events("ranger")
    assert events
    kinds = {e[3] for e in events}
    assert "job_prolog" in kinds and "job_epilog" in kinds
    # Prolog/epilog are job-tagged.
    tagged = [e for e in events if e[2] is not None]
    assert len(tagged) > 0.8 * len(events)


def test_shared_warehouse_two_systems():
    from repro.ingest.warehouse import Warehouse
    wh = Warehouse()
    Facility(RANGER.scaled(16, 3, 12), seed=1).run(
        warehouse=wh, with_syslog=False)
    Facility(LONESTAR4.scaled(16, 3, 12), seed=1).run(
        warehouse=wh, with_syslog=False)
    assert wh.systems() == ["lonestar4", "ranger"]
    assert wh.job_count("ranger") > 0
    assert wh.job_count("lonestar4") > 0
