"""Property-based byte-identity: vectorized synthesis vs the scalar
daemon oracle.

Each example simulates the same facility twice — ``synthesis="fast"``
and ``synthesis="scalar"`` — and asserts the archive trees are
byte-identical file for file and the warehouses row-identical.  The
draws sweep the dimensions that could plausibly break the kernels'
bit-exactness: the system archetype (different collector suites,
filesystems, PMC programs), the on-disk format (text vs direct-to-v2
column encoding), the ingest error policy (the fault-tolerant read-back
paths), and sub-day rotation periods (the live replay's segment close /
re-register cycle, which cuts synthesis blocks at arbitrary points).
"""

import hashlib
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Facility
from repro.config import LONESTAR4, RANGER, STAMPEDE
from repro.live.runner import LiveReplay, LiveSession
from repro.tacc_stats.archive import HostArchive
from repro.util.timeutil import HOUR

ARCHETYPES = {
    "ranger": RANGER,
    "stampede": STAMPEDE,
    "lonestar4": LONESTAR4,
}


def _tree(root) -> dict[str, str]:
    root = Path(root)
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


def _data_rows(warehouse):
    warehouse.commit()
    return {
        table: warehouse.connection.execute(
            f"SELECT {cols} FROM {table} ORDER BY {cols}").fetchall()
        for table, cols in [
            ("jobs", "system, jobid, user, account, science_field, app, "
                     "queue, exit_status, submit_time, start_time, "
                     "end_time, nodes, cores, node_hours"),
            ("job_metrics", "system, jobid, metric, value"),
            ("system_series", "system, metric, t, value"),
        ]
    }


@given(
    name=st.sampled_from(sorted(ARCHETYPES)),
    seed=st.integers(min_value=0, max_value=2**20),
    archive_format=st.sampled_from(["text", "v2"]),
    error_policy=st.sampled_from(["strict", "quarantine", "repair"]),
)
@settings(max_examples=6, deadline=None)
def test_fast_engine_matches_scalar_oracle(
        tmp_path_factory, name, seed, archive_format, error_policy):
    cfg = ARCHETYPES[name].scaled(num_nodes=2, horizon_days=1, n_users=6)
    d_fast = str(tmp_path_factory.mktemp("fast"))
    d_scalar = str(tmp_path_factory.mktemp("scalar"))
    r_fast = Facility(cfg, seed=seed).run_with_files(
        d_fast, compress=False, archive_format=archive_format,
        error_policy=error_policy)
    r_scalar = Facility(cfg, seed=seed).run_with_files(
        d_scalar, compress=False, archive_format=archive_format,
        error_policy=error_policy, synthesis="scalar")
    assert _tree(d_fast) == _tree(d_scalar)
    assert _data_rows(r_fast.warehouse) == _data_rows(r_scalar.warehouse)


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    segment_hours=st.sampled_from([1, 3, 6, 12]),
    batch_segments=st.integers(min_value=1, max_value=3),
    archive_format=st.sampled_from(["text", "v2"]),
)
@settings(max_examples=4, deadline=None)
def test_sub_day_rotation_identity(tmp_path_factory, seed, segment_hours,
                                   batch_segments, archive_format):
    """Sub-day rotation: the live replay closes segments (firing the
    direct-to-v2 encoder) after every micro-batch, so the fast engine's
    blocks are cut and flushed at points the offline path never sees —
    the archives must still match the scalar daemon's byte for byte."""
    cfg = RANGER.scaled(num_nodes=2, horizon_days=1, n_users=5)
    seg = segment_hours * HOUR
    trees = {}
    for synthesis in ("fast", "scalar"):
        d = str(tmp_path_factory.mktemp(synthesis))
        facility = Facility(cfg, seed=seed)
        workload, sim, _outages, _cluster = facility._simulate()
        archive = HostArchive(d, compress=False, rotate_seconds=seg,
                              archive_format=archive_format)
        replay = LiveReplay(
            cfg, seed, workload.users, workload.util_scale,
            facility.phase_calibration, facility.regressions,
            sim.records, archive, synthesis=synthesis)
        t = 0.0
        while t < cfg.horizon:
            t = min(t + batch_segments * seg, cfg.horizon)
            replay.advance(t)
            archive.flush_before(t)
        archive.close()
        trees[synthesis] = _tree(d)
    assert trees["fast"] == trees["scalar"]


def test_live_session_fast_matches_scalar(tmp_path_factory):
    """The full live session (micro-batch ingest included) pinned on one
    representative cadence — the end-to-end path operators actually run."""
    cfg = RANGER.scaled(num_nodes=2, horizon_days=1, n_users=5)
    trees, rows = {}, {}
    for synthesis in ("fast", "scalar"):
        d = str(tmp_path_factory.mktemp(f"sess-{synthesis}"))
        session = LiveSession(Facility(cfg, seed=3), d,
                              segment_seconds=6 * HOUR,
                              synthesis=synthesis)
        session.run()
        trees[synthesis] = _tree(d)
        rows[synthesis] = _data_rows(session.warehouse)
    assert trees["fast"] == trees["scalar"]
    assert rows["fast"] == rows["scalar"]
