"""Shared fixtures.

The expensive artifacts — a fast-path facility run big enough for the
analytics to be meaningful, and a slow-path (text-format) run of the tiny
test system — are built once per session and shared read-only across the
suite.
"""

from __future__ import annotations

import pytest

from repro import RANGER, TEST_SYSTEM, Facility
from repro.xdmod.query import JobQuery


@pytest.fixture(scope="session")
def fast_run():
    """A 32-node, 20-day Ranger replica via the fast path."""
    cfg = RANGER.scaled(num_nodes=32, horizon_days=20, n_users=50)
    return Facility(cfg, seed=7).run()


@pytest.fixture(scope="session")
def fast_query(fast_run) -> JobQuery:
    return fast_run.query()


@pytest.fixture(scope="session")
def file_run(tmp_path_factory):
    """The tiny TEST_SYSTEM through the full text-format pipeline."""
    archive_dir = tmp_path_factory.mktemp("tacc_stats_archive")
    return Facility(TEST_SYSTEM, seed=11).run_with_files(str(archive_dir))
