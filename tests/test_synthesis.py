"""Determinism contract for the vectorized synthesis engine.

The fast replay path (:class:`repro.tacc_stats.synth.NodeSynth`) must be
a drop-in match for the scalar daemon oracle: byte-identical archives in
both on-disk formats, and output that depends only on ``(seed, node,
collector)`` — never on how nodes are chunked across workers, because
every collector draws from its own keyed RNG stream.  Also pins the
worker-chunking clamp: requesting more workers than nodes degrades to
one worker per node, never an empty pool task.
"""

import hashlib
from pathlib import Path

import pytest

from repro import RANGER, Facility
from repro.facility import _node_chunks, _replay_nodes
from repro.telemetry.metrics import MetricsRegistry, use_registry

CFG = RANGER.scaled(num_nodes=4, horizon_days=1, n_users=8)
SEED = 17


def _tree(root) -> dict[str, str]:
    """{relative path: sha256} for every file under *root*."""
    root = Path(root)
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


# ---------------------------------------------------------------------------
# Worker chunking.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nodes,workers", [
    (4, 16), (1, 8), (3, 3), (5, 2), (16, 5), (2, 1),
])
def test_node_chunks_never_empty_and_cover_all(nodes, workers):
    chunks = _node_chunks(nodes, workers)
    assert all(chunks), "no chunk may be empty"
    assert len(chunks) == min(workers, nodes)
    assert sorted(i for c in chunks for i in c) == list(range(nodes))


def test_workers_beyond_node_count(tmp_path):
    """Regression: more workers than nodes used to produce empty strided
    chunks — pool tasks that opened an archive handle only to write
    nothing.  The clamp sizes the pool to the node count, with output
    byte-identical to the serial replay."""
    d1, d2 = str(tmp_path / "serial"), str(tmp_path / "wide")
    Facility(CFG, seed=SEED).run_with_files(d1, compress=False)
    Facility(CFG, seed=SEED).run_with_files(d2, compress=False, workers=12)
    assert _tree(d1) == _tree(d2)


# ---------------------------------------------------------------------------
# Fast engine == scalar oracle.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("archive_format", ["text", "v2"])
def test_fast_matches_scalar(tmp_path, archive_format):
    fast, scalar = str(tmp_path / "fast"), str(tmp_path / "scalar")
    r1 = Facility(CFG, seed=SEED).run_with_files(
        fast, compress=False, archive_format=archive_format)
    r2 = Facility(CFG, seed=SEED).run_with_files(
        scalar, compress=False, archive_format=archive_format,
        synthesis="scalar")
    assert _tree(fast) == _tree(scalar)
    s1, s2 = r1.archive_stats, r2.archive_stats
    assert (s1.raw_bytes, s1.file_count, s1.host_days) == \
           (s2.raw_bytes, s2.file_count, s2.host_days)
    t1 = r1.warehouse.job_table("ranger")
    t2 = r2.warehouse.job_table("ranger")
    assert list(t1["jobid"]) == list(t2["jobid"])


def test_synthesis_validation(tmp_path):
    with pytest.raises(ValueError):
        Facility(CFG, seed=SEED).run_with_files(
            str(tmp_path), synthesis="turbo")


# ---------------------------------------------------------------------------
# Stream keying: (seed, node, collector) fully determines a node's bytes.
# ---------------------------------------------------------------------------


def test_node_output_depends_only_on_seed_and_node(tmp_path):
    """Replaying a node subset alone reproduces the exact bytes those
    nodes got in the full-fleet replay — the stream-keying contract that
    makes *any* worker decomposition byte-identical."""
    fac = Facility(CFG, seed=SEED)
    workload, sim, _outages, _cluster = fac._simulate()
    args = (CFG, SEED, workload.users, workload.util_scale,
            fac.phase_calibration, fac.regressions, sim.records)
    full, part = str(tmp_path / "full"), str(tmp_path / "part")
    _replay_nodes(*args, list(range(CFG.num_nodes)), full, False)
    _replay_nodes(*args, [1, 3], part, False)
    full_tree, part_tree = _tree(full), _tree(part)
    assert part_tree, "subset replay wrote no files"
    for name, digest in part_tree.items():
        assert full_tree[name] == digest, name


# ---------------------------------------------------------------------------
# Telemetry.
# ---------------------------------------------------------------------------


def test_synth_telemetry_counters(tmp_path):
    reg = MetricsRegistry()
    with use_registry(reg):
        Facility(CFG, seed=SEED).run_with_files(str(tmp_path / "a"),
                                                compress=False)
    counters = reg.snapshot().counters
    assert counters["synth.nodes"] == CFG.num_nodes
    # At least one flushed block per node, each holding >= 1 sample.
    assert counters["synth.chunks"] >= CFG.num_nodes
    assert counters["synth.samples"] >= counters["synth.chunks"]
    assert counters["synth.rows"] > counters["synth.samples"]
