"""Property-based tests on the behaviour model and profile identities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hardware import lonestar4_node, ranger_node
from repro.util.rng import RngFactory
from repro.workload.applications import APP_CATALOG, RATE_INDEX
from repro.workload.behavior import DerivedRates, JobBehavior
from repro.workload.users import generate_users

_USERS = generate_users(40, RngFactory(123).stream("prop-users"))
_APPS = sorted(APP_CATALOG)


@st.composite
def _behavior_args(draw):
    return dict(
        app=APP_CATALOG[draw(st.sampled_from(_APPS))],
        user=_USERS[draw(st.integers(0, len(_USERS) - 1))],
        node_hw=draw(st.sampled_from([ranger_node(), lonestar4_node()])),
        n_nodes=draw(st.integers(1, 32)),
        duration=draw(st.floats(600.0, 3 * 86400.0)),
        sample_interval=draw(st.sampled_from([60.0, 600.0, 1800.0])),
        behavior_seed=draw(st.integers(0, 2**40)),
        util_scale=draw(st.floats(0.5, 1.6)),
        variability_scale=draw(st.sampled_from([0.1, 1.0])),
    )


@given(_behavior_args())
@settings(max_examples=40, deadline=None)
def test_behavior_rates_always_physical(kwargs):
    """No parameterization may produce unphysical rates: negative values,
    CPU fractions summing past 1, memory beyond the node, FLOPS beyond
    the hardware peak."""
    b = JobBehavior(**kwargs)
    n = min(b.n_steps, 50)
    r = b.rates_matrix(n)
    assert np.isfinite(r).all()
    assert (r >= 0).all()
    busy = (r[:, RATE_INDEX["cpu_user_frac"]]
            + r[:, RATE_INDEX["cpu_sys_frac"]]
            + r[:, RATE_INDEX["cpu_iowait_frac"]])
    assert (busy <= 1.0 + 1e-9).all()
    assert (r[:, RATE_INDEX["mem_used_gb"]]
            <= kwargs["node_hw"].memory_gb).all()
    assert (r[:, RATE_INDEX["mem_cache_gb"]]
            <= r[:, RATE_INDEX["mem_used_gb"]] + 1e-12).all()
    assert (r[:, RATE_INDEX["flops_gf"]]
            < kwargs["node_hw"].peak_gflops).all()
    idle = DerivedRates.cpu_idle(r)
    assert ((idle >= 0) & (idle <= 1)).all()


@given(_behavior_args(), st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_behavior_deterministic_per_seed(kwargs, slot):
    a = JobBehavior(**kwargs)
    b = JobBehavior(**kwargs)
    n = min(a.n_steps, 20)
    np.testing.assert_array_equal(a.rates_matrix(n), b.rates_matrix(n))
    slot = min(slot, kwargs["n_nodes"] - 1)
    np.testing.assert_array_equal(
        a.node_rates_at(0.0, slot), b.node_rates_at(0.0, slot)
    )


@given(_behavior_args())
@settings(max_examples=20, deadline=None)
def test_derived_rates_consistency(kwargs):
    """lnet <= ib; reads/writes enter their derived aggregates."""
    b = JobBehavior(**kwargs)
    r = b.rates_matrix(min(b.n_steps, 30))
    lnet_tx = DerivedRates.lnet_tx_mb(r)
    ib_tx = DerivedRates.ib_tx_mb(r)
    assert (ib_tx >= lnet_tx - 1e-9).all()
    writes = (r[:, RATE_INDEX["io_scratch_write_mb"]]
              + r[:, RATE_INDEX["io_work_write_mb"]]
              + r[:, RATE_INDEX["io_share_write_mb"]])
    assert (lnet_tx >= writes).all()


def test_profile_normalization_identity(fast_query):
    """The node-hour-weighted average of any dimension's group profiles
    equals exactly 1 on every metric — the radar charts' '=1.0 means
    average' guarantee is an identity, not an approximation."""
    from repro.ingest.summarize import KEY_METRICS
    from repro.xdmod.profiles import UsageProfiler

    profiler = UsageProfiler(fast_query)
    for dimension in ("science_field", "app"):
        groups = fast_query.group_by(dimension, metrics=())
        total_nh = sum(g.node_hours for g in groups)
        acc = {m: 0.0 for m in KEY_METRICS}
        for g in groups:
            p = profiler.profile(dimension, g.key)
            for m in KEY_METRICS:
                acc[m] += p.values[m] * g.node_hours
        for m in KEY_METRICS:
            assert acc[m] / total_nh == pytest.approx(1.0, rel=1e-9), (
                dimension, m
            )
