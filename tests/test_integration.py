"""Cross-path integration tests: the text-format pipeline and the fast
synthesizer must tell the same story about the same simulated facility."""

import numpy as np
import pytest

from repro import TEST_SYSTEM, Facility
from repro.workload.applications import APP_CATALOG


@pytest.fixture(scope="module")
def both_paths(tmp_path_factory):
    """The same (config, seed) through both measurement paths."""
    fac_files = Facility(TEST_SYSTEM, seed=11)
    file_run = fac_files.run_with_files(
        str(tmp_path_factory.mktemp("arch")))
    fast_run = Facility(TEST_SYSTEM, seed=11).run()
    return file_run, fast_run


def test_same_schedule(both_paths):
    file_run, fast_run = both_paths
    a = [(r.jobid, r.start_time, r.end_time, r.node_indices)
         for r in file_run.records]
    b = [(r.jobid, r.start_time, r.end_time, r.node_indices)
         for r in fast_run.records]
    assert a == b


def test_per_job_summaries_agree(both_paths):
    """Collected-and-parsed summaries match direct synthesis within the
    measurement noise the collectors inject."""
    file_run, fast_run = both_paths
    ta = file_run.warehouse.job_table("ranger")
    tb = fast_run.warehouse.job_table("ranger")
    common = sorted(set(ta["jobid"]) & set(tb["jobid"]))
    assert len(common) >= 0.8 * len(tb["jobid"])
    ia = {j: k for k, j in enumerate(ta["jobid"])}
    ib = {j: k for k, j in enumerate(tb["jobid"])}
    for metric, rel, abs_tol in [
        ("cpu_idle", 0.35, 0.06),
        ("cpu_flops", 0.2, 0.3),
        ("mem_used", 0.25, 0.7),
        ("io_scratch_write", 0.2, 0.25),
        ("net_ib_tx", 0.2, 0.5),
        ("net_lnet_tx", 0.2, 0.3),
    ]:
        va = np.array([ta[metric][ia[j]] for j in common])
        vb = np.array([tb[metric][ib[j]] for j in common])
        close = np.isclose(va, vb, rtol=rel, atol=abs_tol)
        assert close.mean() > 0.9, (
            f"{metric}: only {close.mean():.0%} of jobs agree "
            f"(worst: {np.max(np.abs(va - vb)):.3f})"
        )


def test_node_hour_weighted_aggregates_agree(both_paths):
    file_run, fast_run = both_paths
    qa, qb = file_run.query(), fast_run.query()
    assert qa.weighted_mean("cpu_idle") == pytest.approx(
        qb.weighted_mean("cpu_idle"), abs=0.04)
    assert qa.weighted_mean("cpu_flops") == pytest.approx(
        qb.weighted_mean("cpu_flops"), rel=0.15)
    assert qa.weighted_mean("mem_used") == pytest.approx(
        qb.weighted_mean("mem_used"), rel=0.15)


def test_app_attribution_falls_back_to_lariat(tmp_path):
    """Corrupt the accounting app tags; Lariat's fingerprint recovers."""
    import io
    from repro.ingest.pipeline import IngestPipeline
    from repro.ingest.warehouse import Warehouse
    from repro.lariat.records import lariat_record_for
    from repro.scheduler.accounting import AccountingWriter
    from repro.tacc_stats.archive import HostArchive

    fac = Facility(TEST_SYSTEM, seed=11)
    run = fac.run_with_files(str(tmp_path / "arch"))
    buf = io.StringIO()
    AccountingWriter(buf, TEST_SYSTEM.node.cores, "ranger").write_all(
        run.records)
    # Blank out every app tag (field 17).
    corrupted = "\n".join(
        ":".join(line.split(":")[:17] + ["-"])
        for line in buf.getvalue().strip().split("\n")
    )
    lariat = [lariat_record_for(r, TEST_SYSTEM.node.cores)
              for r in run.records]
    pipeline = IngestPipeline(Warehouse())
    report = pipeline.ingest(
        TEST_SYSTEM, accounting_text=corrupted,
        archive=HostArchive(tmp_path / "arch"), lariat_records=lariat,
    )
    assert report.lariat_attributed == report.jobs_loaded
    assert report.unattributed == []
    table = pipeline.warehouse.job_table("ranger", metrics=())
    assert set(table["app"]) <= set(APP_CATALOG)


def test_full_chain_reports_render(both_paths):
    """Every stakeholder report renders from file-path data."""
    from repro.xdmod.reports import (
        DeveloperReport, FundingAgencyReport, SupportStaffReport,
        UserReport,
    )
    file_run, _ = both_paths
    wh = file_run.warehouse
    q = file_run.query()
    user = q.top("user", 1)[0]
    assert UserReport(wh, "ranger").render(user)
    app = q.top("app", 1)[0]
    assert DeveloperReport(wh, "ranger").render(app)
    assert SupportStaffReport(wh, "ranger").render()
    assert FundingAgencyReport(wh, "ranger").render()
