"""Federation mode of the CLI tools (in-process via ``main(argv)``).

Includes the acceptance-critical byte-identity check: a one-cluster
federation's shard must hold row-identical data tables — and render
byte-identical reports — to the legacy ``--warehouse`` path with the
same knobs.  (Raw file bytes are not compared: ingest bookkeeping rows
carry a random run id by design.)
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.cli.diagnose import main as diagnose_main
from repro.cli.report import main as report_main
from repro.cli.serve import main as serve_main
from repro.cli.simulate import main as simulate_main

KNOBS = ["--nodes", "8", "--days", "2", "--users", "10", "--seed", "5"]


@pytest.fixture(scope="module")
def fed_dir(tmp_path_factory) -> str:
    """A 3-cluster federation built by the CLI (fast path), including
    an aliased second Ranger shard."""
    root = str(tmp_path_factory.mktemp("cli_fed") / "fed")
    rc = simulate_main(["--clusters",
                        "ranger,lonestar4,ranger-b=ranger",
                        "--federation", root, *KNOBS, "--quiet"])
    assert rc == 0
    return root


DATA_TABLES = ("systems", "jobs", "job_metrics", "system_series",
               "syslog_events")


def _dump(path: str) -> dict[str, list]:
    """Every data-table row, ordered — the byte-identity view."""
    conn = sqlite3.connect(path)
    try:
        out = {}
        for table in DATA_TABLES:
            cols = [r[1] for r in
                    conn.execute(f"PRAGMA table_info({table})")]
            out[table] = conn.execute(
                f"SELECT * FROM {table} ORDER BY {', '.join(cols)}"
            ).fetchall()
        return out
    finally:
        conn.close()


# -- simulate ----------------------------------------------------------------


def test_simulate_builds_all_shards(fed_dir, capsys):
    for cluster in ("ranger", "lonestar4", "ranger-b"):
        assert _dump(f"{fed_dir}/{cluster}.sqlite")["jobs"]
    # Re-running without --append refuses to clobber the shards.
    rc = simulate_main(["--federation", fed_dir, *KNOBS, "--quiet"])
    assert rc != 0
    assert "use --append" in capsys.readouterr().err


def test_simulate_prints_overview(tmp_path, capsys):
    root = str(tmp_path / "fed")
    rc = simulate_main(["--clusters", "ranger,lonestar4",
                        "--federation", root, "--nodes", "6",
                        "--days", "1", "--users", "8", "--seed", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FEDERATION OVERVIEW — 2 clusters" in out
    assert "[ranger]" in out and "[lonestar4]" in out


def test_simulate_federation_flag_validation(fed_dir, tmp_path, capsys):
    cases = [
        (["--clusters", "ranger"], "--clusters requires --federation"),
        (["--federation", str(tmp_path / "none")], "pass --clusters"),
        (["--clusters", "ranger", "--federation", str(tmp_path / "x"),
          "--warehouse", "w.sqlite"], "different modes"),
        (["--clusters", "ranger", "--federation", str(tmp_path / "x"),
          "--archive", "a/"], "--with-archives instead"),
        (["--clusters", "ranger", "--federation", str(tmp_path / "x"),
          "--append"], "requires --with-archives"),
        (["--clusters", "bogus", "--federation", str(tmp_path / "x")],
         "unknown archetype"),
        (["--clusters", "ranger,stampede", "--federation", fed_dir],
         "does not match"),
        (["--with-archives"], "federation-mode flags"),
        (["--shard-workers", "2"], "federation-mode flags"),
    ]
    for argv, needle in cases:
        rc = simulate_main(argv + ["--quiet"])
        assert rc != 0, argv
        assert needle in capsys.readouterr().err, argv


def test_simulate_archive_federation_with_append(tmp_path, capsys):
    """The slow path: per-shard archives + ledgers, windowed ingest,
    then an --append run that folds in the remaining day."""
    root = str(tmp_path / "fed")
    base = ["--federation", root, "--nodes", "4", "--days", "2",
            "--users", "6", "--seed", "3", "--with-archives"]
    rc = simulate_main(["--clusters", "test=ranger", *base,
                        "--ingest-days", "1", "--quiet"])
    assert rc == 0
    rc = simulate_main([*base, "--append", "--shard-workers", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ingest delta (append)" in out
    # The shard's ledger is visible through repro-diagnose.
    rc = diagnose_main(["--federation", root, "--ledger"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Ingest ledger — test" in out
    assert "append" in out


# -- byte identity -----------------------------------------------------------


def test_single_cluster_federation_matches_legacy_path(tmp_path, capsys):
    """MUST-preserve acceptance: one-cluster federation == legacy
    single-warehouse run, row for row and report for report."""
    root = str(tmp_path / "fed")
    legacy = str(tmp_path / "legacy.sqlite")
    rc = simulate_main(["--clusters", "ranger", "--federation", root,
                        *KNOBS, "--quiet"])
    assert rc == 0
    rc = simulate_main(["--system", "ranger", "--warehouse", legacy,
                        *KNOBS, "--quiet"])
    assert rc == 0
    assert _dump(f"{root}/ranger.sqlite") == _dump(legacy)

    rc = report_main(["--federation", root, "--cluster", "ranger",
                      "support"])
    assert rc == 0
    fed_text = capsys.readouterr().out
    rc = report_main(["--warehouse", legacy, "--system", "ranger",
                      "support"])
    assert rc == 0
    assert fed_text == capsys.readouterr().out


def test_aliased_shards_draw_distinct_workloads(fed_dir):
    """ranger and ranger-b share an archetype and seed but not data."""
    assert _dump(f"{fed_dir}/ranger.sqlite")["jobs"] != \
        _dump(f"{fed_dir}/ranger-b.sqlite")["jobs"]


# -- report ------------------------------------------------------------------


def test_report_federation_kind(fed_dir, capsys):
    rc = report_main(["--federation", fed_dir, "federation"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FEDERATION OVERVIEW — 3 clusters" in out
    assert "TOTAL" in out


def test_report_routed_to_cluster(fed_dir, capsys):
    rc = report_main(["--federation", fed_dir, "--cluster", "ranger-b",
                      "admin"])
    assert rc == 0
    assert "SYSTEMS ADMIN REPORT — ranger-b" in capsys.readouterr().out


def test_report_federation_flag_validation(fed_dir, capsys):
    cases = [
        (["federation"], "needs --federation"),
        (["--federation", fed_dir, "--warehouse", "w.sqlite",
          "federation"], "different modes"),
        (["--federation", fed_dir, "support"], "needs --cluster"),
        (["--federation", fed_dir, "--cluster", "nope", "support"],
         "not in federation"),
        (["--federation", fed_dir, "federation", "extra"], "no target"),
    ]
    for argv, needle in cases:
        rc = report_main(argv)
        assert rc != 0, argv
        assert needle in capsys.readouterr().err, argv


# -- diagnose ----------------------------------------------------------------


def test_diagnose_federation_requires_cluster_for_ancor(fed_dir, capsys):
    rc = diagnose_main(["--federation", fed_dir])
    assert rc != 0
    assert "needs --cluster" in capsys.readouterr().err
    rc = diagnose_main(["--federation", fed_dir, "--cluster", "ranger"])
    assert rc == 0


def test_diagnose_federation_ingest_health_all_shards(fed_dir, capsys):
    rc = diagnose_main(["--federation", fed_dir, "--ingest-health"])
    assert rc == 0
    out = capsys.readouterr().out
    # Fast-path shards have no ingest-health record; one line each.
    assert out.count("no ingest-health record") == 3


def test_diagnose_federation_flag_validation(fed_dir, capsys):
    rc = diagnose_main(["--federation", fed_dir, "--warehouse", "w",
                        "--system", "s"])
    assert rc != 0
    assert "different modes" in capsys.readouterr().err
    rc = diagnose_main(["--federation", fed_dir, "--cluster", "nope",
                        "--ledger"])
    assert rc != 0
    assert "not in federation" in capsys.readouterr().err


# -- serve -------------------------------------------------------------------


def test_serve_requires_exactly_one_source(fed_dir, capsys):
    rc = serve_main([])
    assert rc != 0
    assert "exactly one" in capsys.readouterr().err
    rc = serve_main(["--warehouse", "w.sqlite", "--federation", fed_dir])
    assert rc != 0
    assert "exactly one" in capsys.readouterr().err


def test_serve_rejects_missing_federation(tmp_path, capsys):
    rc = serve_main(["--federation", str(tmp_path / "nope")])
    assert rc != 0
    assert "cannot open federation" in capsys.readouterr().err
