"""Federation fixtures: the same three simulated systems arranged two
ways — one warehouse shard per system (the federation under test) and
one union warehouse holding all three (the single-warehouse ground
truth).  Shard-partition invariance means every cross-cluster query
must answer identically over both arrangements.
"""

from __future__ import annotations

import pytest

from repro import LONESTAR4, RANGER, STAMPEDE, Facility
from repro.federation import FederatedWarehouse
from repro.ingest.warehouse import Warehouse

#: The three member archetypes, scaled small enough for test speed but
#: large enough that weighted means differ between clusters.
MEMBER_CONFIGS = {
    "lonestar4": (LONESTAR4.scaled(num_nodes=16, horizon_days=4,
                                   n_users=20), 21),
    "ranger": (RANGER.scaled(num_nodes=24, horizon_days=4,
                             n_users=30), 7),
    "stampede": (STAMPEDE.scaled(num_nodes=16, horizon_days=4,
                                 n_users=20), 42),
}


@pytest.fixture(scope="session")
def shard_warehouses() -> dict[str, Warehouse]:
    """One in-memory warehouse per member system (the sharded layout)."""
    shards = {}
    for name, (cfg, seed) in MEMBER_CONFIGS.items():
        wh = Warehouse()
        Facility(cfg, seed=seed).run(warehouse=wh)
        shards[name] = wh
    yield shards
    for wh in shards.values():
        wh.close()


@pytest.fixture(scope="session")
def union_warehouse() -> Warehouse:
    """All three member systems simulated into ONE warehouse."""
    wh = Warehouse()
    for _name, (cfg, seed) in sorted(MEMBER_CONFIGS.items()):
        Facility(cfg, seed=seed).run(warehouse=wh)
    yield wh
    wh.close()


@pytest.fixture(scope="session")
def federated(shard_warehouses) -> FederatedWarehouse:
    """The three-shard federation."""
    return FederatedWarehouse(shard_warehouses)


@pytest.fixture(scope="session")
def union_federated(union_warehouse) -> FederatedWarehouse:
    """A one-shard federation over the union warehouse — the same
    host-days with the shard partition collapsed."""
    return FederatedWarehouse({"union": union_warehouse})
