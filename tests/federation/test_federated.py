"""Scatter-gather correctness of :class:`FederatedWarehouse`.

The headline property — **shard-partition invariance** — is tested as
the ISSUE specifies it: a federated query over N shards must equal the
same query over one warehouse containing the union of the same
host-days, with the cluster partition collapsed.  The fixtures build
both arrangements from identical simulation streams, so any
disagreement is a gather bug, not data drift.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TEST_SYSTEM
from repro.errors import ErrorPolicy
from repro.facility import Facility
from repro.federation import (
    ClusterPlan,
    FederatedFacility,
    FederatedWarehouse,
    FederationLayout,
    ShardSpec,
)
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive
from repro.testing.faults import corrupt_archive
from repro.xdmod.query import DIMENSIONS


def _assert_groups_equal(left, right):
    """Exact structural equality, approximate float equality."""
    assert [g.keys for g in left] == [g.keys for g in right]
    for a, b in zip(left, right):
        assert a.job_count == b.job_count
        assert a.node_hours == pytest.approx(b.node_hours, rel=1e-9)
        assert set(a.weighted_means) == set(b.weighted_means)
        for m, v in a.weighted_means.items():
            assert v == pytest.approx(b.weighted_means[m], rel=1e-9), m


# -- topology ----------------------------------------------------------------


def test_topology(federated):
    assert federated.clusters == ["lonestar4", "ranger", "stampede"]
    assert federated.all_systems() == ["lonestar4", "ranger", "stampede"]
    assert federated.shard_of("stampede") == "stampede"
    with pytest.raises(KeyError, match="unknown system"):
        federated.shard_of("frontera")
    with pytest.raises(KeyError, match="unknown cluster"):
        federated.shard("frontera")


def test_empty_federation_rejected():
    with pytest.raises(ValueError, match="at least one shard"):
        FederatedWarehouse({})


def test_duplicate_system_across_shards_rejected():
    wh1, wh2 = Warehouse(), Warehouse()
    cfg = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=4)
    Facility(cfg, seed=1).run(warehouse=wh1)
    Facility(cfg, seed=1).run(warehouse=wh2)
    fed = FederatedWarehouse({"a": wh1, "b": wh2})
    with pytest.raises(ValueError, match="present in shards"):
        fed.shard_of(cfg.name)
    wh1.close()
    wh2.close()


def test_single_system_query_is_the_classic_path(federated,
                                                 shard_warehouses):
    """Routing to a shard gives the very same results as querying the
    shard warehouse directly — same class, same snapshot machinery."""
    from repro.xdmod.query import JobQuery

    routed = federated.query("ranger")
    direct = JobQuery(shard_warehouses["ranger"], "ranger")
    assert len(routed) == len(direct)
    assert routed.node_hours == direct.node_hours
    _assert_groups_equal(routed.group_by("app"), direct.group_by("app"))


# -- shard-partition invariance (the ISSUE property test) --------------------


@pytest.mark.parametrize("dims", [
    "app", "user", "exit_status",
    ("app", "exit_status"), ("science_field", "queue"),
    "cluster", ("cluster", "app"), ("app", "cluster"),
])
def test_partition_invariance(federated, union_federated, dims):
    """Federated group_by over 3 shards == the same query over one
    warehouse holding the union of the same host-days."""
    _assert_groups_equal(federated.group_by(dims),
                         union_federated.group_by(dims))


@settings(max_examples=25, deadline=None)
@given(
    dims=st.lists(st.sampled_from(DIMENSIONS + ("cluster",)),
                  min_size=1, max_size=3, unique=True),
    metrics=st.lists(st.sampled_from(SUMMARY_METRICS),
                     min_size=1, max_size=4, unique=True),
)
def test_partition_invariance_over_query_space(federated, union_federated,
                                               dims, metrics):
    """The invariance holds across the whole (dims x metrics) space."""
    _assert_groups_equal(
        federated.group_by(tuple(dims), metrics=tuple(metrics)),
        union_federated.group_by(tuple(dims), metrics=tuple(metrics)))


def test_group_by_matches_numpy_oracle(federated):
    """Merged means recomputed a different way: flat sums over the
    per-shard partials."""
    per_system = {
        s: federated.query(s).group_by("app")
        for s in federated.all_systems()
    }
    merged = {g.keys: g for g in federated.group_by("app")}
    apps = {g.keys for groups in per_system.values() for g in groups}
    assert set(merged) == apps
    for keys in apps:
        parts = [g for groups in per_system.values() for g in groups
                 if g.keys == keys]
        hours = np.array([g.node_hours for g in parts])
        means = np.array([g.weighted_means["cpu_idle"] for g in parts])
        assert merged[keys].job_count == sum(g.job_count for g in parts)
        assert merged[keys].node_hours == pytest.approx(hours.sum())
        assert merged[keys].weighted_means["cpu_idle"] == pytest.approx(
            float((means * hours).sum() / hours.sum()))


def test_cluster_dimension_tags_not_aggregates(federated):
    """cluster,app groups are exactly the per-shard app groups tagged."""
    tagged = federated.group_by(("cluster", "app"))
    for system in federated.all_systems():
        own = {g.keys: g for g in federated.query(system).group_by("app")}
        mine = [g for g in tagged if g.keys[0] == system]
        assert {g.keys[1:] for g in mine} == set(own)
        for g in mine:
            assert g.job_count == own[g.keys[1:]].job_count
            assert g.node_hours == pytest.approx(
                own[g.keys[1:]].node_hours)


def test_cluster_dim_validation(federated):
    with pytest.raises(ValueError, match="duplicate 'cluster'"):
        federated.group_by(("cluster", "cluster"))
    with pytest.raises(ValueError, match="unknown dimension"):
        federated.group_by("rack")
    with pytest.raises(ValueError, match="at least one dimension"):
        federated.group_by(())


def test_timeseries_partition_invariance(federated, union_federated):
    for series in federated.series_metrics():
        ft, fv = federated.timeseries(series)
        ut, uv = union_federated.timeseries(series)
        assert np.array_equal(ft, ut), series
        assert np.allclose(fv, uv, rtol=1e-9), series


def test_timeseries_sum_mode_adds_clusters(federated):
    """Facility-wide FLOPS is the sum of the member clusters'."""
    from repro.xdmod.snapshot import WarehouseSnapshot

    grid, total = federated.timeseries("flops_tf")
    oracle = np.zeros_like(total)
    for s in federated.all_systems():
        snap = WarehouseSnapshot.for_warehouse(
            federated.shards[federated.shard_of(s)])
        t, v = snap.series(s, "flops_tf")
        oracle[np.searchsorted(grid, t)] += v
    assert np.allclose(total, oracle, rtol=1e-9)


def test_timeseries_unknown_series(federated):
    with pytest.raises(KeyError, match="no series"):
        federated.timeseries("nope")


def test_overview_totals_match_collapsed_group_by(federated,
                                                  union_federated):
    fo, uo = federated.overview(), union_federated.overview()
    assert set(fo["clusters"]) == set(uo["clusters"])
    assert fo["total"]["jobs"] == uo["total"]["jobs"]
    assert fo["total"]["node_hours"] == pytest.approx(
        uo["total"]["node_hours"])
    assert fo["total"]["efficiency"] == pytest.approx(
        uo["total"]["efficiency"])
    text = federated.render_overview()
    assert "FEDERATION OVERVIEW — 3 clusters" in text
    assert "TOTAL" in text


# -- degraded shard ----------------------------------------------------------


def _file_corpus(tmp_path, name, seed):
    """Archive + accounting + lariat for one renamed TEST_SYSTEM."""
    cfg = dataclasses.replace(
        TEST_SYSTEM.scaled(num_nodes=5, horizon_days=1, n_users=6),
        name=name)
    archive_dir = str(tmp_path / f"archive_{name}")
    run = Facility(cfg, seed=seed).run_with_files(archive_dir)
    import io

    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    return cfg, archive_dir, buf.getvalue(), lariat


def _ingest_into(wh, corpus):
    cfg, archive_dir, accounting, lariat = corpus
    IngestPipeline(wh).ingest(
        cfg, accounting_text=accounting,
        archive=HostArchive(archive_dir), lariat_records=lariat,
        error_policy=ErrorPolicy.QUARANTINE.value)


def test_partition_invariance_with_degraded_shard(tmp_path):
    """The property holds when one shard ingested through quarantine:
    both layouts consume the same corrupted archives, so the federated
    answer must still equal the collapsed-union answer."""
    alpha = _file_corpus(tmp_path, "alpha", seed=5)
    beta = _file_corpus(tmp_path, "beta", seed=6)
    victim = HostArchive(alpha[1]).hostnames()[0]
    corrupt_archive(alpha[1], {victim: "bit_flip"}, seed=77)

    wh_a, wh_b, wh_union = Warehouse(), Warehouse(), Warehouse()
    try:
        _ingest_into(wh_a, alpha)
        _ingest_into(wh_b, beta)
        _ingest_into(wh_union, alpha)
        _ingest_into(wh_union, beta)

        fed = FederatedWarehouse({"alpha": wh_a, "beta": wh_b})
        union = FederatedWarehouse({"union": wh_union})
        # The degraded shard really lost something relative to a clean
        # ingest, and still answers.
        health = wh_a.ingest_health("alpha")
        assert health is not None
        for dims in ("app", "cluster", ("cluster", "exit_status")):
            _assert_groups_equal(fed.group_by(dims),
                                 union.group_by(dims))
        assert fed.overview()["total"]["jobs"] == \
            union.overview()["total"]["jobs"]
    finally:
        wh_a.close()
        wh_b.close()
        wh_union.close()


# -- layout + federated facility --------------------------------------------


def test_layout_round_trip(tmp_path):
    root = tmp_path / "fed"
    shards = [
        ShardSpec(cluster="a", system="ranger", seed=1, nodes=8,
                  days=1.0, users=4),
        ShardSpec(cluster="b", system="lonestar4", seed=2, nodes=8,
                  days=1.0, users=4),
    ]
    layout = FederationLayout.create(root, shards)
    reopened = FederationLayout.open(root)
    assert reopened.clusters == ["a", "b"]
    assert reopened.shards["a"] == shards[0]
    assert reopened.warehouse_path("a").endswith("a.sqlite")
    assert "archives" in reopened.archive_path("b")
    with pytest.raises(KeyError):
        reopened.warehouse_path("c")


def test_layout_rejects_bad_names(tmp_path):
    with pytest.raises(ValueError, match="bad cluster name"):
        ShardSpec(cluster="a/b", system="ranger", seed=1, nodes=8,
                  days=1.0, users=4)
    spec = ShardSpec(cluster="a", system="ranger", seed=1, nodes=8,
                     days=1.0, users=4)
    with pytest.raises(ValueError, match="duplicate"):
        FederationLayout(tmp_path, [spec, spec])


def test_layout_open_requires_manifest(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a federation"):
        FederationLayout.open(tmp_path)


def test_federated_facility_runs_aliased_shards(tmp_path):
    """Two shards of the same archetype draw independent workloads
    (the rename re-keys the RNG streams) and land in separate files."""
    cfg = TEST_SYSTEM.scaled(num_nodes=5, horizon_days=1, n_users=6)
    plans = [
        ClusterPlan(cluster="test-a", config=cfg, seed=9),
        ClusterPlan(cluster="test-b", config=cfg, seed=9),
    ]
    fac = FederatedFacility.plan(str(tmp_path / "fed"), plans)
    results = fac.run()
    assert set(results) == {"test-a", "test-b"}
    fed = FederatedWarehouse.open(tmp_path / "fed")
    try:
        assert fed.all_systems() == ["test-a", "test-b"]
        a = fed.query("test-a")
        b = fed.query("test-b")
        # Same seed, different stream keys: genuinely different data.
        assert a.node_hours != b.node_hours
    finally:
        fed.close()


def test_federated_facility_append_needs_archive(tmp_path):
    cfg = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=4)
    fac = FederatedFacility.plan(
        str(tmp_path / "fed"),
        [ClusterPlan(cluster=cfg.name, config=cfg, seed=1)])
    with pytest.raises(ValueError, match="append=True needs"):
        fac.run(append=True)


def test_federated_facility_plan_name_mismatch(tmp_path):
    cfg = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=4)
    layout = FederationLayout.create(
        tmp_path / "fed",
        [ShardSpec(cluster="x", system=cfg.name, seed=1, nodes=4,
                   days=1.0, users=4)])
    with pytest.raises(ValueError, match="do not match"):
        FederatedFacility(layout, [ClusterPlan(cluster="y", config=cfg,
                                               seed=1)])


def test_open_missing_shard(tmp_path):
    """A manifest whose shard file never materialized: hard error by
    default, skipped with missing_ok (degraded federation)."""
    cfg = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=4)
    plans = [ClusterPlan(cluster="ok", config=cfg, seed=3)]
    FederatedFacility.plan(str(tmp_path / "fed"), plans).run()
    layout = FederationLayout.open(tmp_path / "fed")
    layout.shards["ghost"] = ShardSpec(
        cluster="ghost", system="ghost", seed=1, nodes=4, days=1.0,
        users=4)
    layout.save()
    with pytest.raises(FileNotFoundError, match="shard warehouse"):
        FederatedWarehouse.open(tmp_path / "fed")
    fed = FederatedWarehouse.open(tmp_path / "fed", missing_ok=True)
    try:
        assert fed.clusters == ["ok"]
    finally:
        fed.close()
