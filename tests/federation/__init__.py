"""Federation test package."""
