"""The service layer in federation mode.

Per-system requests must be indistinguishable from single-warehouse
serving (same classes, same snapshot, byte-identical report text);
``system=all`` scatter-gathers through the same L1/single-flight
stack; the two federation-only endpoints appear and the single-
warehouse server rejects them with ``not_federated``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import LONESTAR4, RANGER, Facility
from repro.federation import (
    ClusterPlan,
    FederatedFacility,
    FederatedWarehouse,
)
from repro.ingest.warehouse import Warehouse
from repro.service.protocol import ServiceError
from repro.service.server import make_server
from repro.service.state import ALL_SYSTEMS, ServiceState

from tests.service.conftest import Client


@pytest.fixture(scope="session")
def fed_root(tmp_path_factory) -> str:
    """A two-cluster on-disk federation (fast path)."""
    root = str(tmp_path_factory.mktemp("service_fed") / "fed")
    plans = [
        ClusterPlan(cluster="ranger",
                    config=RANGER.scaled(num_nodes=12, horizon_days=3,
                                         n_users=16), seed=7),
        ClusterPlan(cluster="lonestar4",
                    config=LONESTAR4.scaled(num_nodes=8, horizon_days=3,
                                            n_users=12), seed=21),
    ]
    FederatedFacility.plan(root, plans).run()
    return root


@pytest.fixture(scope="session")
def fed_state(fed_root):
    """A federated ServiceState shared by the read-only tests."""
    state = ServiceState(federation_root=fed_root)
    yield state
    state.close()


@pytest.fixture(scope="session")
def fed_server(fed_root):
    """A live HTTP server over the federation."""
    state = ServiceState(federation_root=fed_root)
    srv = make_server(state)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    state.close()
    thread.join(timeout=5)


@pytest.fixture(scope="session")
def fed_client(fed_server) -> Client:
    return Client(fed_server)


# -- construction ------------------------------------------------------------


def test_state_needs_exactly_one_source(fed_root, tmp_path):
    with pytest.raises(ValueError, match="exactly one"):
        ServiceState()
    with pytest.raises(ValueError, match="exactly one"):
        ServiceState(warehouse_path="x.sqlite", federation_root=fed_root)


# -- topology endpoints ------------------------------------------------------


def test_health_reports_federation(fed_state, fed_root):
    h = fed_state.health()
    assert h["status"] == "ok"
    assert h["federation"] == fed_root
    assert h["clusters"] == ["lonestar4", "ranger"]
    assert set(h["generations"]) == {"lonestar4", "ranger"}


def test_clusters_endpoint(fed_state):
    body = fed_state.clusters()
    assert set(body["clusters"]) == {"lonestar4", "ranger"}
    entry = body["clusters"]["ranger"]
    assert entry["systems"] == ["ranger"]
    assert entry["warehouse"].endswith("ranger.sqlite")
    assert isinstance(entry["generation"], int)

    only = fed_state.clusters(cluster="lonestar4")
    assert list(only["clusters"]) == ["lonestar4"]
    with pytest.raises(ServiceError) as exc:
        fed_state.clusters(cluster="frontera")
    assert exc.value.code == "unknown_cluster"


def test_clusters_rejected_in_single_mode(fed_root):
    state = ServiceState(
        warehouse_path=f"{fed_root}/ranger.sqlite")
    try:
        with pytest.raises(ServiceError) as exc:
            state.clusters()
        assert exc.value.code == "not_federated"
        with pytest.raises(ServiceError) as exc:
            state.federation_overview()
        assert exc.value.code == "not_federated"
        # system=all is not special outside a federation.
        with pytest.raises(ServiceError) as exc:
            state.group_by(ALL_SYSTEMS, "app")
        assert exc.value.code == "unknown_system"
    finally:
        state.close()


def test_systems_spans_every_shard(fed_state):
    body = fed_state.systems()
    assert set(body["systems"]) == {"lonestar4", "ranger"}


# -- routed single-system requests ------------------------------------------


def test_routed_report_is_byte_identical_to_single_mode(fed_state,
                                                        fed_root):
    """A shard-routed report == the same report served from the shard
    file by a plain single-warehouse server."""
    single = ServiceState(warehouse_path=f"{fed_root}/ranger.sqlite")
    try:
        for kind, target in [("support", None), ("admin", None),
                             ("funding", None)]:
            fed = fed_state.report(kind, "ranger", target)
            solo = single.report(kind, "ranger", target)
            assert fed["report"] == solo["report"]
    finally:
        single.close()


def test_routed_group_by_matches_single_mode(fed_state, fed_root):
    single = ServiceState(warehouse_path=f"{fed_root}/lonestar4.sqlite")
    try:
        fed = fed_state.group_by("lonestar4", "app,exit_status")
        solo = single.group_by("lonestar4", "app,exit_status")
        assert fed["groups"] == solo["groups"]
    finally:
        single.close()


def test_cluster_dim_rejected_for_single_system(fed_state):
    with pytest.raises(ServiceError) as exc:
        fed_state.group_by("ranger", "cluster")
    assert exc.value.code == "unknown_dimension"


# -- scatter-gather ----------------------------------------------------------


def test_federated_group_by_matches_direct_scatter(fed_state, fed_root):
    body = fed_state.group_by(ALL_SYSTEMS, "cluster,app")
    assert body["system"] == ALL_SYSTEMS
    assert body["clusters"] == ["lonestar4", "ranger"]
    fed = FederatedWarehouse.open(fed_root)
    try:
        direct = fed.group_by(("cluster", "app"))
    finally:
        fed.close()
    assert [tuple(g["keys"]) for g in body["groups"]] == \
        [g.keys for g in direct]
    for got, want in zip(body["groups"], direct):
        assert got["job_count"] == want.job_count
        assert got["node_hours"] == pytest.approx(want.node_hours)


def test_federated_group_by_is_cached_and_coalesced(fed_state):
    cold = fed_state.group_by(ALL_SYSTEMS, "app", tenant="cachetest")
    warm = fed_state.group_by(ALL_SYSTEMS, "app", tenant="cachetest")
    assert cold["cached"] is False
    assert warm["cached"] is True
    assert warm["groups"] == cold["groups"]


def test_federated_group_by_validation(fed_state):
    with pytest.raises(ServiceError) as exc:
        fed_state.group_by(ALL_SYSTEMS, None)
    assert exc.value.code == "missing_param"
    with pytest.raises(ServiceError) as exc:
        fed_state.group_by(ALL_SYSTEMS, "rack")
    assert exc.value.code == "unknown_dimension"
    with pytest.raises(ServiceError) as exc:
        fed_state.group_by(ALL_SYSTEMS, "app", metrics=("bogus",))
    assert exc.value.code == "unknown_metric"


def test_federated_timeseries(fed_state, fed_root):
    body = fed_state.timeseries(ALL_SYSTEMS, "flops_tf")
    fed = FederatedWarehouse.open(fed_root)
    try:
        t, v = fed.timeseries("flops_tf")
    finally:
        fed.close()
    assert body["times"] == t.tolist()
    assert body["values"] == pytest.approx(v.tolist())
    with pytest.raises(ServiceError) as exc:
        fed_state.timeseries(ALL_SYSTEMS, "nope")
    assert exc.value.code == "unknown_series"


def test_federation_overview_endpoint(fed_state):
    body = fed_state.federation_overview()
    assert set(body["clusters"]) == {"lonestar4", "ranger"}
    assert body["total"]["jobs"] == sum(
        c["jobs"] for c in body["clusters"].values())
    assert "FEDERATION OVERVIEW" in body["report"]
    warm = fed_state.federation_overview()
    assert warm["cached"] is True


def test_refresh_adopts_external_shard_writes(tmp_path):
    """An external commit into ONE shard flips changed=True and the
    new system becomes servable — without restarting the server."""
    from repro.config import TEST_SYSTEM

    root = str(tmp_path / "fed")
    cfg = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=4)
    FederatedFacility.plan(
        root, [ClusterPlan(cluster=cfg.name, config=cfg, seed=3)]).run()
    state = ServiceState(federation_root=root)
    try:
        assert state.refresh()["changed"] is False
        # Another process appends a second system to the shard file.
        import dataclasses

        extra = dataclasses.replace(cfg, name="late")
        wh = Warehouse(f"{root}/{cfg.name}.sqlite")
        Facility(extra, seed=4).run(warehouse=wh)
        wh.commit()
        wh.close()
        out = state.refresh()
        assert out["changed"] is True
        assert "late" in state._all_systems()
        assert state.report("support", "late")["report"]
    finally:
        state.close()


# -- HTTP front end ----------------------------------------------------------


def test_http_clusters_route(fed_client):
    status, body = fed_client.get("/api/v1/clusters")
    assert status == 200
    assert set(body["clusters"]) == {"lonestar4", "ranger"}
    status, body = fed_client.get("/api/v1/clusters?cluster=ghost")
    assert status == 404
    assert body["error"]["code"] == "unknown_cluster"


def test_http_federated_group_by(fed_client):
    status, body = fed_client.get(
        "/api/v1/query/group_by?system=all&dimension=cluster")
    assert status == 200
    assert {tuple(g["keys"]) for g in body["groups"]} == \
        {("lonestar4",), ("ranger",)}


def test_http_federation_overview(fed_client):
    status, body = fed_client.get("/api/v1/federation/overview")
    assert status == 200
    assert "FEDERATION OVERVIEW" in body["report"]
    status, _ = fed_client.get("/api/v1/federation/nope")
    assert status == 404


def test_http_federated_timeseries(fed_client):
    status, body = fed_client.get(
        "/api/v1/timeseries/cpu_user_frac?system=all")
    assert status == 200
    assert len(body["times"]) == len(body["values"]) > 0
    assert 0.0 <= body["mean"] <= 1.0


def test_http_routed_report(fed_client):
    status, body = fed_client.get("/api/v1/report/support?system=ranger")
    assert status == 200
    assert "SUPPORT STAFF REPORT" in body["report"]


def test_http_metrics_exports_federation_counters(fed_client):
    fed_client.get("/api/v1/query/group_by?system=all&dimension=app")
    status, text = fed_client.get("/metrics")
    assert status == 200
    assert "federation_scatter_group_by" in text


def test_json_round_trip_of_federated_payload(fed_state):
    """Every federated endpoint payload is JSON-serializable."""
    for payload in (
        fed_state.health(),
        fed_state.clusters(),
        fed_state.group_by(ALL_SYSTEMS, "cluster"),
        fed_state.timeseries(ALL_SYSTEMS, "flops_tf"),
        fed_state.federation_overview(),
    ):
        assert json.loads(json.dumps(payload)) is not None
