"""The partial-merge kernels against independent numpy oracles.

The kernels are the load-bearing piece of scatter-gather correctness:
if ``count``/``hours`` sum and every mean merges node-hour-weighted,
then any partition of the jobs into shards answers identically.  Each
test checks the kernel against arithmetic done a *different* way
(flat numpy reductions over the concatenated inputs).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.federation import (
    merge_group_results,
    merge_series,
    series_merge_mode,
)
from repro.xdmod.query import GroupResult


def _group(key: str, count: int, hours: float, **means) -> GroupResult:
    return GroupResult(key=key, job_count=count, node_hours=hours,
                       weighted_means=means, keys=(key,))


# -- group merge -------------------------------------------------------------


def test_counts_and_hours_sum_means_merge_weighted():
    merged = merge_group_results([
        [_group("namd", 10, 100.0, cpu_idle=0.2)],
        [_group("namd", 5, 300.0, cpu_idle=0.6)],
    ])
    assert len(merged) == 1
    g = merged[0]
    assert g.job_count == 15
    assert g.node_hours == pytest.approx(400.0)
    # Oracle: sum(mean_i * hours_i) / sum(hours_i).
    assert g.weighted_means["cpu_idle"] == pytest.approx(
        (0.2 * 100.0 + 0.6 * 300.0) / 400.0)


def test_disjoint_groups_pass_through_sorted_by_hours():
    merged = merge_group_results([
        [_group("small", 1, 10.0, m=0.5)],
        [_group("big", 1, 90.0, m=0.5)],
    ])
    assert [g.key for g in merged] == ["big", "small"]


def test_empty_parts_merge_to_empty():
    assert merge_group_results([]) == []
    assert merge_group_results([[], []]) == []


def test_zero_hour_group_gets_nan_mean_not_crash():
    merged = merge_group_results([[_group("idle", 3, 0.0, m=0.1)]])
    assert merged[0].job_count == 3
    assert np.isnan(merged[0].weighted_means["m"])


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0.1, max_value=1e4),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        max_size=4),
    max_size=4))
def test_merge_matches_flat_numpy_oracle(parts):
    """Kernel output == flat reductions over the concatenated groups."""
    merged = merge_group_results([
        [_group(k, c, h, m=v) for k, c, h, v in shard]
        for shard in parts
    ])
    flat = [entry for shard in parts for entry in shard]
    for g in merged:
        rows = [(c, h, v) for k, c, h, v in flat if k == g.key]
        hours = np.array([h for _c, h, _v in rows])
        vals = np.array([v for _c, _h, v in rows])
        assert g.job_count == sum(c for c, _h, _v in rows)
        assert g.node_hours == pytest.approx(hours.sum())
        assert g.weighted_means["m"] == pytest.approx(
            float((vals * hours).sum() / hours.sum()))
    assert {g.key for g in merged} == {k for k, _c, _h, _v in flat}


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["x", "y"]),
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1, max_size=12),
    st.integers(min_value=1, max_value=5))
def test_merge_is_partition_invariant(flat, nparts):
    """Any partition of the same groups merges to the same answer."""
    groups = [_group(k, c, h, m=v) for k, c, h, v in flat]
    one = merge_group_results([groups])
    split = merge_group_results(
        [groups[i::nparts] for i in range(nparts)])
    assert [g.keys for g in one] == [g.keys for g in split]
    for a, b in zip(one, split):
        assert a.job_count == b.job_count
        assert a.node_hours == pytest.approx(b.node_hours)
        assert a.weighted_means["m"] == pytest.approx(
            b.weighted_means["m"])


# -- series merge ------------------------------------------------------------


def test_series_sum_on_shared_grid():
    t = np.array([0.0, 10.0, 20.0])
    gt, gv = merge_series([(t, np.array([1.0, 2.0, 3.0])),
                           (t, np.array([10.0, 20.0, 30.0]))], mode="sum")
    assert np.array_equal(gt, t)
    assert np.allclose(gv, [11.0, 22.0, 33.0])


def test_series_sum_union_grid_missing_samples_add_zero():
    gt, gv = merge_series([
        (np.array([0.0, 10.0]), np.array([1.0, 1.0])),
        (np.array([10.0, 20.0]), np.array([5.0, 5.0])),
    ], mode="sum")
    assert np.array_equal(gt, [0.0, 10.0, 20.0])
    assert np.allclose(gv, [1.0, 6.0, 5.0])


def test_series_mean_weights_by_active_nodes():
    t = np.array([0.0, 10.0])
    parts = [(t, np.array([0.2, 0.2])), (t, np.array([0.8, 0.8]))]
    weights = [(t, np.array([30.0, 30.0])), (t, np.array([10.0, 10.0]))]
    _gt, gv = merge_series(parts, mode="mean", weights=weights)
    # Oracle: (0.2*30 + 0.8*10) / 40.
    assert np.allclose(gv, (0.2 * 30 + 0.8 * 10) / 40.0)


def test_series_mean_requires_matching_weights():
    t = np.array([0.0])
    with pytest.raises(ValueError, match="weight series"):
        merge_series([(t, np.array([1.0]))], mode="mean")


def test_series_unknown_mode_rejected():
    with pytest.raises(ValueError, match="merge mode"):
        merge_series([], mode="median")


def test_series_empty_parts():
    gt, gv = merge_series([], mode="sum")
    assert gt.size == 0 and gv.size == 0


@pytest.mark.parametrize("name,mode", [
    ("cpu_user_frac", "mean"),
    ("cpu_idle_frac", "mean"),
    ("mem_used_gb_per_node", "mean"),
    ("active_nodes", "sum"),
    ("busy_nodes", "sum"),
    ("flops_tf", "sum"),
    ("io_scratch_write_mb", "sum"),
    ("net_ib_tx_mb", "sum"),
])
def test_series_merge_mode_table(name, mode):
    """Intensive series average; extensive series sum."""
    assert series_merge_mode(name) == mode
