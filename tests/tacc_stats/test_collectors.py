"""Tests for the collector suite."""

import numpy as np
import pytest

from repro.cluster.hardware import lonestar4_node, ranger_node
from repro.cluster.node import Node
from repro.tacc_stats.collectors import (
    Amd64PmcCollector,
    CpuCollector,
    IbCollector,
    IntelPmcCollector,
    LliteCollector,
    MemCollector,
    SampleContext,
    build_collectors,
)
from repro.tacc_stats.collectors.base import core_fractions
from repro.util.units import KB
from repro.workload.applications import RATE_FIELDS, RATE_INDEX


def make_node(arch="amd64", index=0):
    hw = ranger_node() if arch == "amd64" else lonestar4_node()
    return Node(index=index, hostname=f"c000-{index:03d}.test", hardware=hw)


def rates(**kw):
    r = np.zeros(len(RATE_FIELDS))
    for name, value in kw.items():
        r[RATE_INDEX[name]] = value
    return r


def ctx(t, dt, r=None, jobids=()):
    return SampleContext(time=t, dt=dt, rates=r, jobids=jobids)


def read_all(collector, context):
    return {dev: vals for dev, vals in collector.sample(context)}


def test_build_collectors_selects_pmc_by_arch():
    rng = np.random.default_rng(0)
    amd = build_collectors(make_node("amd64"), rng)
    intel = build_collectors(make_node("intel"), rng)
    amd_types = {c.type_name for c in amd}
    intel_types = {c.type_name for c in intel}
    assert "amd64_pmc" in amd_types and "intel_pmc" not in amd_types
    assert "intel_pmc" in intel_types and "amd64_pmc" not in intel_types
    # The paper's full coverage list.
    for t in ("cpu", "mem", "vm", "net", "ib", "llite", "lnet", "block",
              "ps", "sysv_shm", "irq", "numa", "tmpfs", "vfs"):
        assert t in amd_types


def test_core_fractions_fill_first():
    np.testing.assert_allclose(core_fractions(0.25, 16),
                               [1.0] * 4 + [0.0] * 12)
    np.testing.assert_allclose(core_fractions(0.30, 16),
                               [1.0] * 4 + [0.8] + [0.0] * 11)
    assert core_fractions(1.0, 4).sum() == pytest.approx(4.0)
    assert core_fractions(0.0, 4).sum() == 0.0


def test_cpu_collector_conserves_time():
    node = make_node()
    col = CpuCollector(node, np.random.default_rng(1))
    r = rates(cpu_user_frac=0.5, cpu_sys_frac=0.05, cpu_iowait_frac=0.02)
    col.advance(ctx(600.0, 600.0, r))
    rows = read_all(col, ctx(1200.0, 0.0, r))
    assert len(rows) == 16
    for vals in rows.values():
        # user+nice+system+idle+iowait+irq+softirq = elapsed centiseconds.
        assert vals.sum() == pytest.approx(600.0 * 100, rel=0.03)


def test_cpu_collector_resolves_undersubscription_per_core():
    """The paper's key advance over sar: per-core resolution shows 4 busy
    cores and 12 idle ones for a 25 %-utilized node."""
    node = make_node()
    col = CpuCollector(node, np.random.default_rng(2))
    r = rates(cpu_user_frac=0.25)
    col.advance(ctx(600.0, 600.0, r))
    rows = read_all(col, ctx(600.0, 0.0, r))
    user_col = col.schema.index_of("user")
    users = np.array([rows[str(c)][user_col] for c in range(16)])
    assert (users[:4] > 0.9 * 600 * 100).all()
    assert (users[5:] == 0).all()


def test_mem_collector_reports_gauges():
    node = make_node()
    col = MemCollector(node, np.random.default_rng(3))
    r = rates(mem_used_gb=8.0, mem_cache_gb=2.0)
    col.advance(ctx(0.0, 600.0, r))
    rows = read_all(col, ctx(0.0, 0.0, r))
    assert len(rows) == 4  # sockets
    total_col = col.schema.index_of("MemTotal")
    used_col = col.schema.index_of("MemUsed")
    total = sum(int(v[total_col]) for v in rows.values())
    used = sum(int(v[used_col]) for v in rows.values())
    assert total == pytest.approx(32 * 1024 * 1024, rel=0.01)  # KB
    # Used = job + base OS overhead, split across sockets.
    assert used * KB / 2**30 == pytest.approx(8.0 + 1.2, rel=0.05)


def test_mem_gauge_does_not_accumulate():
    node = make_node()
    col = MemCollector(node, np.random.default_rng(4))
    r = rates(mem_used_gb=4.0)
    col.advance(ctx(0.0, 600.0, r))
    first = read_all(col, ctx(0.0, 0.0, r))
    col.advance(ctx(600.0, 600.0, r))
    second = read_all(col, ctx(600.0, 0.0, r))
    np.testing.assert_array_equal(first["0"], second["0"])


def test_ib_collector_uses_extended_64bit_counters():
    """mlx4 extended port counters: no wrap even at high rates (the
    legacy 32-bit registers would wrap inside one 10-minute interval)."""
    node = make_node()
    col = IbCollector(node, np.random.default_rng(5))
    r = rates(net_mpi_mb=40.0)
    xmit_col = col.schema.index_of("port_xmit_data")
    assert col.schema.entries[xmit_col].width == 64
    last = -1
    for k in range(1, 40):
        col.advance(ctx(k * 600.0, 600.0, r))
        cur = int(read_all(col, ctx(k * 600.0, 0.0, r))["mlx4_0"][xmit_col])
        assert cur > last
        last = cur
    # Counted in 4-byte words: ~40 MB/s * 39 * 600 s / 4.
    assert last == pytest.approx(40e6 * 39 * 600 / 4, rel=0.15)


def test_net_collector_32bit_bytes_roll_over():
    """Ethernet byte counters are 32-bit and wrap at sustained rates —
    the rollover-correction path sees real wraps in production data."""
    from repro.tacc_stats.collectors import NetCollector
    node = make_node()
    col = NetCollector(node, np.random.default_rng(15))
    r = rates(net_eth_mb=3.0)
    tx_col = col.schema.index_of("tx_bytes")
    assert col.schema.entries[tx_col].width == 32
    wrapped = False
    last = 0
    for k in range(1, 40):  # 3 MB/s wraps 2^32 bytes every ~24 min
        col.advance(ctx(k * 600.0, 600.0, r))
        cur = int(read_all(col, ctx(k * 600.0, 0.0, r))["eth0"][tx_col])
        if cur < last:
            wrapped = True
        last = cur
    assert wrapped


def test_llite_reports_per_mount():
    node = make_node()
    col = LliteCollector(node, np.random.default_rng(6),
                         mounts=("scratch", "work"))
    r = rates(io_scratch_write_mb=10.0, io_work_write_mb=1.0)
    col.advance(ctx(600.0, 600.0, r))
    rows = read_all(col, ctx(600.0, 0.0, r))
    wcol = col.schema.index_of("write_bytes")
    assert rows["scratch"][wcol] > 8 * rows["work"][wcol]


def test_amd64_pmc_reprogram_resets_and_tags():
    node = make_node()
    col = Amd64PmcCollector(node, np.random.default_rng(7))
    r = rates(cpu_user_frac=0.9, flops_gf=14.0)
    col.on_job_begin("1", 0.0)
    col.advance(ctx(600.0, 600.0, r))
    rows = read_all(col, ctx(600.0, 0.0, r))
    ctl0 = int(rows["0"][col.schema.index_of("ctl0")])
    from repro.tacc_stats.collectors.amd64_pmc import AMD64_EVENT_CODES
    assert ctl0 == AMD64_EVENT_CODES["SSE_FLOPS"]
    before = int(rows["0"][col.schema.index_of("ctr0")])
    assert before > 0
    col.on_job_begin("2", 1200.0)
    rows2 = read_all(col, ctx(1200.0, 0.0, r))
    assert int(rows2["0"][col.schema.index_of("ctr0")]) == 0


def test_amd64_pmc_flops_total_matches_rate():
    node = make_node()
    col = Amd64PmcCollector(node, np.random.default_rng(8))
    col.on_job_begin("1", 0.0)
    col._user_programmed = False
    r = rates(cpu_user_frac=1.0, flops_gf=14.0)
    col.advance(ctx(600.0, 600.0, r))
    rows = read_all(col, ctx(600.0, 0.0, r))
    c = col.schema.index_of("ctr0")
    total = sum(int(v[c]) for v in rows.values())
    assert total == pytest.approx(14.0e9 * 600, rel=0.05)


def test_intel_pmc_overcounts_flops():
    """The paper: Lonestar4 FLOPS 'were not SSE flops' — FP_COMP_OPS
    over-counts relative to true FLOPs."""
    from repro.tacc_stats.collectors.intel_pmc import FP_OVERCOUNT
    node = make_node("intel")
    col = IntelPmcCollector(node, np.random.default_rng(9))
    col.on_job_begin("1", 0.0)
    col._user_programmed = False
    r = rates(cpu_user_frac=1.0, flops_gf=10.0)
    col.advance(ctx(600.0, 600.0, r))
    rows = read_all(col, ctx(600.0, 0.0, r))
    c = col.schema.index_of("ctr0")
    total = sum(int(v[c]) for v in rows.values())
    assert total == pytest.approx(10.0e9 * 600 * FP_OVERCOUNT, rel=0.05)


def test_pmc_user_programmed_uses_foreign_codes():
    node = make_node()
    col = Amd64PmcCollector(node, np.random.default_rng(10))
    col._user_programmed = True  # force the rare path
    col.on_job_begin("1", 0.0)
    # on_job_begin redraws; force again and reprogram manually.
    col._user_programmed = True
    from repro.tacc_stats.collectors.amd64_pmc import AMD64_EVENT_CODES
    for dev in col.devices:
        col._acc[dev][:4] = [0x430076] * 4
    r = rates(cpu_user_frac=0.5, flops_gf=5.0)
    col.advance(ctx(600.0, 600.0, r))
    rows = read_all(col, ctx(600.0, 0.0, r))
    ctl0 = int(rows["0"][col.schema.index_of("ctl0")])
    assert ctl0 not in AMD64_EVENT_CODES.values()


def test_idle_node_still_reports():
    """Idle nodes produce realistic background samples, not zeros."""
    node = make_node()
    rng = np.random.default_rng(11)
    for col in build_collectors(node, rng):
        col.advance(ctx(600.0, 600.0, None))
        rows = read_all(col, ctx(600.0, 0.0, None))
        assert rows, col.type_name
    # Specifically: cpu idle time accrues, memory shows the OS footprint.
    cpu = CpuCollector(node, rng)
    cpu.advance(ctx(600.0, 600.0, None))
    rows = read_all(cpu, ctx(600.0, 0.0, None))
    idle_col = cpu.schema.index_of("idle")
    assert int(rows["3"][idle_col]) > 0.95 * 600 * 100


def test_negative_dt_rejected():
    node = make_node()
    col = CpuCollector(node, np.random.default_rng(12))
    with pytest.raises(ValueError):
        list(col.sample(ctx(0.0, -1.0, None)))


def test_bump_rejects_negative():
    node = make_node()
    col = CpuCollector(node, np.random.default_rng(13))
    with pytest.raises(ValueError):
        col.bump("0", "user", -5.0)
