"""Tests for the self-describing schema grammar."""

import pytest

from repro.tacc_stats.schema import SchemaEntry, TypeSchema


def test_entry_spec_roundtrip():
    cases = [
        SchemaEntry("user", is_event=True, unit="cs"),
        SchemaEntry("MemUsed", unit="KB"),
        SchemaEntry("port_xmit_data", is_event=True, unit="4B", width=32),
        SchemaEntry("load_1"),
    ]
    for e in cases:
        assert SchemaEntry.parse(e.spec()) == e


def test_entry_parse_flags():
    e = SchemaEntry.parse("ctr0,E,W=48")
    assert e.is_event and e.width == 48 and e.unit is None
    assert e.modulus == 1 << 48


def test_entry_parse_rejects_garbage():
    with pytest.raises(ValueError):
        SchemaEntry.parse("")
    with pytest.raises(ValueError):
        SchemaEntry.parse("key,X=9")
    with pytest.raises(ValueError):
        SchemaEntry("bad key")
    with pytest.raises(ValueError):
        SchemaEntry("k", width=0)


def test_type_schema_header_roundtrip():
    schema = TypeSchema("cpu", (
        SchemaEntry("user", is_event=True, unit="cs"),
        SchemaEntry("idle", is_event=True, unit="cs"),
    ))
    line = schema.header_line()
    assert line.startswith("!cpu ")
    assert TypeSchema.parse_header_line(line) == schema


def test_type_schema_lookups():
    schema = TypeSchema("mem", (SchemaEntry("MemTotal"), SchemaEntry("MemUsed")))
    assert schema.n_values == 2
    assert schema.keys == ("MemTotal", "MemUsed")
    assert schema.index_of("MemUsed") == 1
    with pytest.raises(KeyError):
        schema.index_of("Nope")
    assert schema.event_mask() == (False, False)


def test_type_schema_validation():
    with pytest.raises(ValueError):
        TypeSchema("bad name", (SchemaEntry("a"),))
    with pytest.raises(ValueError):
        TypeSchema("t", ())
    with pytest.raises(ValueError):
        TypeSchema("t", (SchemaEntry("a"), SchemaEntry("a")))
    with pytest.raises(ValueError):
        TypeSchema.parse_header_line("cpu user")  # missing '!'
    with pytest.raises(ValueError):
        TypeSchema.parse_header_line("!cpu")  # no keys
