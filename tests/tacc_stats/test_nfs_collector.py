"""Tests for the NFS collector and its Lonestar4 wiring."""

import numpy as np
import pytest

from repro import LONESTAR4, Facility
from repro.cluster.hardware import lonestar4_node
from repro.cluster.node import Node
from repro.tacc_stats.collectors import NfsCollector, build_collectors
from repro.tacc_stats.collectors.base import SampleContext
from repro.workload.applications import RATE_FIELDS, RATE_INDEX


def make_node():
    return Node(index=0, hostname="c000-000.ls4", hardware=lonestar4_node())


def rates(**kw):
    r = np.zeros(len(RATE_FIELDS))
    for name, value in kw.items():
        r[RATE_INDEX[name]] = value
    return r


def test_nfs_collector_reports_share_traffic():
    col = NfsCollector(make_node(), np.random.default_rng(0),
                       mounts=("home",))
    r = rates(io_share_write_mb=2.0, io_share_read_mb=1.0)
    col.advance(SampleContext(600.0, 600.0, r))
    rows = dict(col.sample(SampleContext(600.0, 0.0, r)))
    w = int(rows["home"][col.schema.index_of("write_bytes")])
    rd = int(rows["home"][col.schema.index_of("read_bytes")])
    assert w == pytest.approx(2.0e6 * 600, rel=0.1)
    assert rd == pytest.approx(1.0e6 * 600, rel=0.1)
    assert int(rows["home"][col.schema.index_of("rpc_ops")]) > 0


def test_nfs_collector_requires_mounts():
    with pytest.raises(ValueError):
        NfsCollector(make_node(), np.random.default_rng(0), mounts=())


def test_build_collectors_includes_nfs_when_requested():
    rng = np.random.default_rng(1)
    with_nfs = build_collectors(make_node(), rng, ("scratch", "work"),
                                nfs_mounts=("home",))
    without = build_collectors(make_node(), rng, ("scratch", "work"))
    assert "nfs" in {c.type_name for c in with_nfs}
    assert "nfs" not in {c.type_name for c in without}


@pytest.mark.slow
def test_lonestar4_file_path_fills_share_metrics(tmp_path):
    """On LS4, the io_share metrics must come from the NFS collector —
    a regression here silently drops every LS4 job from the default
    query (all-metrics-present filter)."""
    cfg = LONESTAR4.scaled(num_nodes=8, horizon_days=1, n_users=8)
    run = Facility(cfg, seed=5).run_with_files(str(tmp_path / "arch"))
    report = run.ingest_report
    assert report.jobs_loaded > 0
    q = run.query()
    # Most loaded jobs have complete summaries, including io_share_*.
    assert len(q) >= 0.8 * report.jobs_loaded
    share = q.column("io_share_write")
    assert (share >= 0).all()
