"""Tests for the stats writer."""

import io

import numpy as np
import pytest

from repro.tacc_stats.format import FORMAT_VERSION, StatsWriter
from repro.tacc_stats.schema import SchemaEntry, TypeSchema


CPU = TypeSchema("cpu", (SchemaEntry("user", is_event=True),
                         SchemaEntry("idle", is_event=True)))


def writer(**props):
    buf = io.StringIO()
    w = StatsWriter(buf, "c001-001.test", props)
    w.register_schema(CPU)
    return buf, w


def test_header_written_once_before_data():
    buf, w = writer(uname="Linux")
    w.begin_block(100.0, ("42",))
    w.write_row("cpu", "0", [1, 2])
    w.begin_block(700.0, ("42",))
    w.write_row("cpu", "0", [3, 4])
    text = buf.getvalue()
    assert text.count(f"$tacc_stats {FORMAT_VERSION}") == 1
    assert text.count("!cpu") == 1
    assert text.index("$hostname") < text.index("!cpu") < text.index("100 42")


def test_idle_block_tag():
    buf, w = writer()
    w.begin_block(100.0)
    assert "100 -" in buf.getvalue()


def test_marks_inside_blocks():
    buf, w = writer()
    w.begin_block(100.0, ("42",))
    w.write_mark("begin", "42")
    assert "%begin 42" in buf.getvalue()
    with pytest.raises(ValueError):
        w.write_mark("middle", "42")


def test_mark_outside_block_rejected():
    _, w = writer()
    with pytest.raises(RuntimeError):
        w.write_mark("begin", "42")


def test_row_validation():
    _, w = writer()
    w.begin_block(100.0)
    with pytest.raises(ValueError, match="unregistered"):
        w.write_row("mem", "0", [1])
    with pytest.raises(ValueError, match="values"):
        w.write_row("cpu", "0", [1, 2, 3])
    with pytest.raises(ValueError, match="negative"):
        w.write_row("cpu", "0", [-1, 2])
    w.write_row("cpu", "0", [1, 2])
    with pytest.raises(ValueError, match="duplicate"):
        w.write_row("cpu", "0", [1, 2])


def test_row_outside_block_rejected():
    _, w = writer()
    with pytest.raises(RuntimeError):
        w.write_row("cpu", "0", [1, 2])


def test_nonmonotonic_time_rejected():
    _, w = writer()
    w.begin_block(100.0)
    with pytest.raises(ValueError, match="non-monotonic"):
        w.begin_block(50.0)


def test_schema_after_data_rejected():
    _, w = writer()
    w.begin_block(100.0)
    with pytest.raises(RuntimeError):
        w.register_schema(TypeSchema("mem", (SchemaEntry("a"),)))


def test_duplicate_schema_rejected():
    _, w = writer()
    with pytest.raises(ValueError):
        w.register_schema(CPU)


def test_values_rendered_as_ints():
    buf, w = writer()
    w.begin_block(100.0)
    w.write_row("cpu", "0", np.array([1.9, 2**40], dtype=float))
    line = buf.getvalue().strip().split("\n")[-1]
    assert line == f"cpu 0 1 {2**40}"


def test_bad_hostname_rejected():
    with pytest.raises(ValueError):
        StatsWriter(io.StringIO(), "has space")


def test_bytes_written_tracked():
    buf, w = writer()
    w.begin_block(100.0)
    w.write_row("cpu", "0", [1, 2])
    assert w.bytes_written == len(buf.getvalue())
