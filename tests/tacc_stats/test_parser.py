"""Tests for the strict stats parser."""

import io

import numpy as np
import pytest

from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import ParseError, event_delta, parse_host_text
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

CPU = TypeSchema("cpu", (SchemaEntry("user", is_event=True),
                         SchemaEntry("idle", is_event=True)))
MEM = TypeSchema("mem", (SchemaEntry("MemUsed", unit="KB"),))


def sample_text():
    buf = io.StringIO()
    w = StatsWriter(buf, "h1.test", {"uname": "Linux x86_64"})
    w.register_schema(CPU)
    w.register_schema(MEM)
    w.begin_block(100.0)
    w.write_row("cpu", "0", [10, 90])
    w.write_row("mem", "0", [500])
    w.begin_block(700.0, ("42",))
    w.write_mark("begin", "42")
    w.write_row("cpu", "0", [20, 180])
    w.write_row("mem", "0", [900])
    w.begin_block(1300.0, ("42",))
    w.write_mark("end", "42")
    w.write_row("cpu", "0", [50, 250])
    w.write_row("mem", "0", [1200])
    return buf.getvalue()


def test_roundtrip_structure():
    host = parse_host_text(sample_text())
    assert host.hostname == "h1.test"
    assert host.properties["uname"] == "Linux x86_64"
    assert set(host.schemas) == {"cpu", "mem"}
    assert len(host.blocks) == 3
    assert host.blocks[0].jobids == ()
    assert host.blocks[1].jobids == ("42",)
    assert [m.kind for m in host.marks] == ["begin", "end"]
    assert host.job_window("42") == (700.0, 1300.0)
    assert host.job_window("99") is None


def test_series_extraction():
    host = parse_host_text(sample_text())
    t, v = host.series("cpu", "0", "user")
    np.testing.assert_array_equal(t, [100.0, 700.0, 1300.0])
    np.testing.assert_array_equal(v, [10, 20, 50])


def test_blocks_for_job():
    host = parse_host_text(sample_text())
    blocks = host.blocks_for_job("42")
    assert [b.time for b in blocks] == [700.0, 1300.0]


def test_empty_file_ok():
    host = parse_host_text("")
    assert host.blocks == []


@pytest.mark.parametrize(
    "mutation,message",
    [
        (lambda t: t.replace("cpu 0 10 90", "cpu 0 10"), "values"),
        (lambda t: t.replace("cpu 0 10 90", "cpu 0 ten 90"), "non-integer"),
        (lambda t: t.replace("cpu 0 10 90", "gpu 0 10 90"), "undeclared"),
        (lambda t: t.replace("1300 42", "99 42"), "non-monotonic"),
        (lambda t: t.replace("%begin 42", "%pause 42"), "malformed mark"),
        (lambda t: "cpu 0 1 2\n" + t, "before"),
        (lambda t: t + "!cpu user,E\n", "after data"),
        (lambda t: t.replace("100 -\n", "100 -\n\n"), "blank"),
    ],
)
def test_malformed_inputs_raise(mutation, message):
    with pytest.raises(ParseError, match=message):
        parse_host_text(mutation(sample_text()))


def test_missing_hostname_rejected():
    text = "!cpu user,E idle,E\n100 -\ncpu 0 1 2\n"
    with pytest.raises(ParseError, match="hostname"):
        parse_host_text(text)


def test_truncated_tail_tolerated_when_allowed():
    text = sample_text() + "cpu 0 77"  # no newline, incomplete row
    with pytest.raises(ParseError):
        parse_host_text(text)
    host = parse_host_text(text, allow_truncated=True)
    assert len(host.blocks) == 3


def test_truncated_mid_file_still_raises():
    lines = sample_text().split("\n")
    lines.insert(5, "cpu 0 13")  # early corrupt line
    with pytest.raises(ParseError):
        parse_host_text("\n".join(lines), allow_truncated=True)


def test_duplicate_row_rejected():
    text = sample_text().replace(
        "cpu 0 10 90\n", "cpu 0 10 90\ncpu 0 11 91\n"
    )
    with pytest.raises(ParseError, match="duplicate"):
        parse_host_text(text)


def test_merge_from_rotated_files():
    host_a = parse_host_text(sample_text())
    buf = io.StringIO()
    w = StatsWriter(buf, "h1.test")
    w.register_schema(CPU)
    w.begin_block(2000.0)
    w.write_row("cpu", "0", [60, 300])
    host_b = parse_host_text(buf.getvalue())
    host_a.merge_from(host_b)
    assert len(host_a.blocks) == 4
    assert host_a.blocks[-1].time == 2000.0


def test_merge_rejects_other_host_or_schema_drift():
    host_a = parse_host_text(sample_text())
    buf = io.StringIO()
    w = StatsWriter(buf, "h2.test")
    w.register_schema(CPU)
    w.begin_block(2000.0)
    w.write_row("cpu", "0", [1, 2])
    host_b = parse_host_text(buf.getvalue())
    with pytest.raises(ValueError, match="cannot merge"):
        host_a.merge_from(host_b)

    buf2 = io.StringIO()
    w2 = StatsWriter(buf2, "h1.test")
    w2.register_schema(TypeSchema("cpu", (SchemaEntry("user", is_event=True),)))
    w2.begin_block(3000.0)
    w2.write_row("cpu", "0", [1])
    host_c = parse_host_text(buf2.getvalue())
    with pytest.raises(ValueError, match="drift"):
        host_a.merge_from(host_c)


# -- event_delta -------------------------------------------------------------


def test_event_delta_plain():
    assert event_delta(100, 350, 64) == 250


def test_event_delta_rollover_32bit():
    assert event_delta(2**32 - 10, 5, 32) == 15


def test_event_delta_out_of_range():
    with pytest.raises(ValueError):
        event_delta(2**32, 0, 32)
    with pytest.raises(ValueError):
        event_delta(-1, 0, 32)
