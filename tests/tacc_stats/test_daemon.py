"""Tests for the per-node daemon's invocation discipline."""

import io

import numpy as np
import pytest

from repro.cluster.hardware import ranger_node
from repro.cluster.node import Node
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import parse_host_text
from repro.util.rng import RngFactory
from repro.workload.applications import get_app
from repro.workload.behavior import JobBehavior
from repro.workload.users import generate_users


@pytest.fixture
def setup():
    node = Node(index=0, hostname="c000-000.test", hardware=ranger_node())
    buf = io.StringIO()
    writer = StatsWriter(buf, node.hostname)
    daemon = TaccStatsDaemon(node, RngFactory(0).stream("noise"), writer)
    users = generate_users(5, RngFactory(0).stream("u"))
    behavior = JobBehavior(get_app("namd"), users[0], ranger_node(), 2,
                           duration=3000.0, sample_interval=600.0,
                           behavior_seed=5)
    return node, buf, daemon, behavior


def test_job_lifecycle_produces_marks_and_tags(setup):
    _, buf, daemon, behavior = setup
    daemon.sample(0.0)
    daemon.begin_job("7", 600.0, behavior, 0)
    for t in (1200.0, 1800.0, 2400.0, 3000.0):
        daemon.sample(t)
    daemon.end_job("7", 3600.0)
    daemon.sample(4200.0)
    host = parse_host_text(buf.getvalue())
    assert host.job_window("7") == (600.0, 3600.0)
    tagged = host.blocks_for_job("7")
    assert [b.time for b in tagged] == [600.0, 1200.0, 1800.0, 2400.0,
                                        3000.0, 3600.0]
    # Pre/post samples are idle-tagged.
    assert host.blocks[0].jobids == ()
    assert host.blocks[-1].jobids == ()


def test_counters_keep_running_across_jobs(setup):
    _, buf, daemon, behavior = setup
    daemon.sample(0.0)
    daemon.begin_job("7", 600.0, behavior, 0)
    daemon.end_job("7", 1200.0)
    daemon.sample(1800.0)
    host = parse_host_text(buf.getvalue())
    _, user = host.series("cpu", "0", "user")
    # cpu counters are monotone across the job boundary (no reset).
    assert (np.diff(user.astype(np.int64)) >= 0).all()


def test_pmc_reset_at_job_begin(setup):
    _, buf, daemon, behavior = setup
    daemon.sample(0.0)
    daemon.begin_job("7", 600.0, behavior, 0)
    daemon.sample(1200.0)
    daemon.end_job("7", 1800.0)
    daemon.begin_job("8", 2400.0, behavior, 0)
    host = parse_host_text(buf.getvalue())
    t, ctr = host.series("amd64_pmc", "0", "ctr0")
    # The begin-sample of job 8 reads a freshly reset counter.
    assert int(ctr[list(t).index(2400.0)]) == 0


def test_double_begin_rejected(setup):
    _, _, daemon, behavior = setup
    daemon.begin_job("7", 600.0, behavior, 0)
    with pytest.raises(RuntimeError, match="still active"):
        daemon.begin_job("8", 700.0, behavior, 0)


def test_end_wrong_job_rejected(setup):
    _, _, daemon, behavior = setup
    daemon.begin_job("7", 600.0, behavior, 0)
    with pytest.raises(RuntimeError):
        daemon.end_job("9", 700.0)


def test_time_cannot_go_backwards(setup):
    _, _, daemon, _ = setup
    daemon.sample(600.0)
    with pytest.raises(ValueError, match="backwards"):
        daemon.sample(500.0)


def test_begin_sample_accounts_preceding_idle_interval(setup):
    """The baseline sample at job begin covers the idle interval before
    it, so its cpu row is ~all idle even though it is tagged with the job."""
    _, buf, daemon, behavior = setup
    daemon.sample(0.0)
    daemon.begin_job("7", 600.0, behavior, 0)
    host = parse_host_text(buf.getvalue())
    begin_block = host.blocks_for_job("7")[0]
    vals = begin_block.get("cpu", "0")
    schema = host.schemas["cpu"]
    idle = int(vals[schema.index_of("idle")])
    user = int(vals[schema.index_of("user")])
    assert idle > 50 * user


def test_writer_factory_gets_schemas_registered(setup):
    node, _, _, behavior = setup
    buffers = {}

    def factory(t):
        day = int(t // 86400)
        if day not in buffers:
            buffers[day] = StatsWriter(io.StringIO(), node.hostname)
        return buffers[day]

    daemon = TaccStatsDaemon(node, RngFactory(1).stream("n"), factory)
    daemon.sample(0.0)
    daemon.sample(90000.0)  # next day -> new writer
    assert len(buffers) == 2
    for w in buffers.values():
        assert "cpu" in w.schemas


def test_samples_counted(setup):
    _, _, daemon, _ = setup
    daemon.sample(0.0)
    daemon.sample(600.0)
    assert daemon.samples_taken == 2
    assert daemon.current_jobid is None
