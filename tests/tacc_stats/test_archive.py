"""Tests for the rotating host archive."""

import gzip

import pytest

from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.util.timeutil import DAY

CPU = TypeSchema("cpu", (SchemaEntry("user", is_event=True),))


def write_day(archive, host, day, blocks=3):
    for k in range(blocks):
        t = day * DAY + 600.0 * (k + 1)
        w = archive.writer(host, t)
        if "cpu" not in w.schemas:
            w.register_schema(CPU)
        w.begin_block(t)
        w.write_row("cpu", "0", [k * 100])


def test_daily_rotation_creates_one_file_per_day(tmp_path):
    archive = HostArchive(tmp_path, compress=False)
    write_day(archive, "h1", 0)
    write_day(archive, "h1", 1)
    archive.close()
    files = archive.host_files("h1")
    assert [f.name for f in files] == ["2011-06-01", "2011-06-02"]


def test_compression_and_stats(tmp_path):
    archive = HostArchive(tmp_path, compress=True)
    write_day(archive, "h1", 0, blocks=50)
    stats = archive.close()
    files = archive.host_files("h1")
    assert files[0].suffix == ".gz"
    raw = gzip.decompress(files[0].read_bytes())
    assert stats.raw_bytes == len(raw)
    assert stats.compressed_bytes == files[0].stat().st_size
    assert stats.compression_ratio > 1.0
    assert stats.host_days == 1
    assert stats.bytes_per_host_day == stats.raw_bytes


def test_read_host_merges_rotated_files(tmp_path):
    archive = HostArchive(tmp_path, compress=True)
    write_day(archive, "h1", 0)
    write_day(archive, "h1", 1)
    archive.close()
    host = archive.read_host("h1")
    assert host.hostname == "h1"
    assert len(host.blocks) == 6
    times = [b.time for b in host.blocks]
    assert times == sorted(times)


def test_hostnames_listing(tmp_path):
    archive = HostArchive(tmp_path, compress=False)
    write_day(archive, "h2", 0)
    write_day(archive, "h1", 0)
    archive.close()
    assert archive.hostnames() == ["h1", "h2"]


def test_read_missing_host_raises(tmp_path):
    archive = HostArchive(tmp_path)
    with pytest.raises(FileNotFoundError):
        archive.read_host("ghost")


def test_same_day_reuses_writer(tmp_path):
    archive = HostArchive(tmp_path, compress=False)
    w1 = archive.writer("h1", 600.0)
    w2 = archive.writer("h1", 1200.0)
    assert w1 is w2
    w3 = archive.writer("h1", DAY + 600.0)
    assert w3 is not w1


def test_empty_stats(tmp_path):
    archive = HostArchive(tmp_path)
    stats = archive.close()
    assert stats.bytes_per_host_day == 0.0
    assert stats.compression_ratio == 0.0
