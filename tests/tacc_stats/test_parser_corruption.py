"""Property test: single-line corruption never silently alters values.

For ANY single-line corruption of a valid stats stream (bit-flipped
digit, deleted line, truncated line, duplicated line, interleaved
garbage), the parser must land in one of exactly three states:

* the stream still parses (the corruption produced valid-looking input
  — e.g. a flipped jobid digit), with every surviving value bit-equal
  to the original;
* the affected records are quarantined (repair mode) with everything
  else bit-equal to the original;
* the parse raises :class:`ParseError` (strict mode, or an
  unsalvageable stream).

What may never happen is a value moving: no surviving
``(time, type, device)`` record may carry values that differ from the
pristine parse, and no record may appear at a key the pristine parse
did not have — the repair-mode block poisoning exists precisely so rows
can never silently re-attach to the wrong timestamp.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.tacc_stats.parser import ParseError, parse_host_text

VALID = (
    "$hostname i101-101\n"
    "$uname Linux 2.6.18\n"
    "!cpu user,E idle,E\n"
    "!mem used free\n"
    "!net rx,E,W=32 tx,E,W=32\n"
    "1349000000.0 -\n"
    "cpu 0 10 20\n"
    "cpu 1 11 21\n"
    "mem - 512 1536\n"
    "net eth0 1000 2000\n"
    "1349000600.0 2001\n"
    "%begin 2001\n"
    "cpu 0 310 620\n"
    "cpu 1 311 621\n"
    "mem - 600 1448\n"
    "net eth0 4000 8000\n"
    "1349001200.0 2001\n"
    "cpu 0 910 1220\n"
    "cpu 1 911 1221\n"
    "mem - 700 1348\n"
    "net eth0 9000 16000\n"
)

LINES = VALID.split("\n")[:-1]
OPS = ("flip_digit", "delete", "truncate", "duplicate", "garbage")


def _value_map(host):
    """``(time, type, device) -> value tuple`` for every parsed row."""
    out = {}
    for block in host.blocks:
        for type_name, by_dev in block.rows.items():
            for device, values in by_dev.items():
                out[(block.time, type_name, device)] = tuple(
                    int(v) for v in values)
    return out


ORIGINAL = _value_map(parse_host_text(VALID))


def _corrupt(lines, idx, op, salt):
    """Apply one corruption; returns the new lines or None if the op
    does not apply to this line (no digit to flip, no space to cut)."""
    rng = random.Random(salt)
    line = lines[idx]
    if op == "flip_digit":
        if line[:1].islower() and line.count(" ") >= 2:
            # Data row: corrupt the value region (a device rename is a
            # different failure mode, covered by the archive layer's
            # hostname/merge checks, not a value alteration).
            head, device, rest = line.split(" ", 2)
            cols = [i for i, ch in enumerate(rest) if ch.isdigit()]
            if not cols:
                return None
            col = rng.choice(cols)
            rest = rest[:col] + chr(ord(rest[col]) ^ 0x40) + rest[col + 1:]
            lines[idx] = f"{head} {device} {rest}"
        else:
            cols = [i for i, ch in enumerate(line) if ch.isdigit()]
            if not cols:
                return None
            col = rng.choice(cols)
            lines[idx] = (line[:col] + chr(ord(line[col]) ^ 0x40)
                          + line[col + 1:])
    elif op == "delete":
        lines.pop(idx)
    elif op == "truncate":
        spaces = [i for i, ch in enumerate(line) if ch == " "]
        if not spaces:
            return None
        lines[idx] = line[:rng.choice(spaces) + 1]
    elif op == "duplicate":
        lines.insert(idx, line)
    else:  # garbage
        lines.insert(idx, "XYZZY corrupted segment from another stream")
    return lines


def _assert_subset_of_original(host):
    """Every surviving record must exist in the pristine parse with
    bit-identical values — the no-silent-alteration invariant."""
    for key, values in _value_map(host).items():
        assert key in ORIGINAL, f"record invented at {key}"
        assert values == ORIGINAL[key], f"values altered at {key}"


@settings(max_examples=400, derandomize=True, deadline=None)
@given(
    idx=st.integers(min_value=0, max_value=len(LINES) - 1),
    op=st.sampled_from(OPS),
    salt=st.integers(min_value=0, max_value=10**6),
)
def test_single_line_corruption_never_alters_values(idx, op, salt):
    lines = _corrupt(list(LINES), idx, op, salt)
    assume(lines is not None)
    tail_cut = op == "truncate" and idx == len(LINES) - 1
    corrupted = "\n".join(lines) + ("" if tail_cut else "\n")

    # Strict: parses (valid-looking corruption) or raises — and when it
    # parses, nothing may have moved.
    try:
        strict_host = parse_host_text(corrupted, allow_truncated=True)
    except ParseError:
        pass
    else:
        _assert_subset_of_original(strict_host)

    # Repair: same invariant, plus the skipped lines are accounted.
    faults = []
    try:
        repaired = parse_host_text(corrupted, allow_truncated=True,
                                   faults=faults)
    except ParseError:
        return  # unsalvageable stream (e.g. hostname destroyed) is legal
    _assert_subset_of_original(repaired)
    lost = len(ORIGINAL) - len(_value_map(repaired))
    if lost > 0 and op in ("flip_digit", "garbage", "duplicate"):
        # When the corrupted bytes are still present in the stream,
        # records only vanish with an audit trail.  (A deleted line is
        # indistinguishable from a file that never had it, and the
        # crash-consistent truncated tail is dropped silently by
        # design — those two may lose records without a fault.)
        assert faults, f"{lost} records vanished without a fault record"
