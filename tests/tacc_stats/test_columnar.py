"""Archive v2 columnar codec: round-trip identity, integrity, parity.

The format's contract is threefold: (1) ``text -> v2 -> text`` is
byte-identical for every canonical (writer-produced) stream — proved
here as a hypothesis property over generated schemas/blocks/marks;
(2) the decoded column views rebuild exactly the :class:`HostData` the
text parser would produce; (3) corruption anywhere in a v2 file is
*detected* (header magic, chunk digests, truncated footer) and surfaces
as a :class:`ParseError` subclass, so every :class:`ErrorPolicy`
outcome matches what the same corruption in a text archive produces.
"""

import gzip
import io
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ErrorPolicy
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.columnar import (
    V2FormatError,
    encode_host_text,
    is_v2_path,
    read_header,
    read_host_day,
    source_fingerprint_for_text,
)
from repro.tacc_stats.convert import convert_archive
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import ParseError, parse_host_text
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.telemetry.metrics import MetricsRegistry, use_registry

VALID = (
    "$hostname i101-101\n"
    "$uname Linux 2.6.18\n"
    "!cpu user,E idle,E\n"
    "!mem used free\n"
    "!net rx,E,W=32 tx,E,W=32\n"
    "1349000000 -\n"
    "cpu 0 10 20\n"
    "cpu 1 11 21\n"
    "mem - 512 1536\n"
    "net eth0 1000 2000\n"
    "1349000600 2001\n"
    "%begin 2001\n"
    "cpu 0 310 620\n"
    "cpu 1 311 621\n"
    "mem - 600 1448\n"
    "net eth0 4000 8000\n"
    "1349001200 2001\n"
    "%end 2001\n"
    "cpu 0 910 1220\n"
    "cpu 1 911 1221\n"
    "mem - 700 1348\n"
    "net eth0 9000 16000\n"
)


def _encode(text=VALID):
    sha, kind = source_fingerprint_for_text(text, compress=False)
    return encode_host_text(text, source_sha256=sha, source_kind=kind)


def _write_v2(tmp_path, text=VALID, name="2012-09-30"):
    path = tmp_path / name
    path = path.with_suffix(path.suffix + ".v2")
    path.write_bytes(_encode(text))
    return path


def _host_data_map(host):
    """Every parsed record as plain comparable python values."""
    out = {
        "hostname": host.hostname,
        "properties": dict(host.properties),
        "schemas": dict(host.schemas),
        "marks": list(host.marks),
        "times": [b.time for b in host.blocks],
        "jobids": [b.jobids for b in host.blocks],
    }
    rows = {}
    for b in host.blocks:
        for tname, devs in b.rows.items():
            for dev, vec in devs.items():
                rows[(b.time, tname, dev)] = tuple(int(v) for v in vec)
    out["rows"] = rows
    return out


def test_text_roundtrip_byte_identical(tmp_path):
    path = _write_v2(tmp_path)
    assert is_v2_path(path)
    day = read_host_day(path)
    assert day.to_text() == VALID


def test_decoded_host_data_matches_parser(tmp_path):
    day = read_host_day(_write_v2(tmp_path))
    assert _host_data_map(day.to_host_data()) == _host_data_map(
        parse_host_text(VALID))


def test_header_carries_source_fingerprint(tmp_path):
    path = _write_v2(tmp_path)
    header = read_header(path)
    sha, kind = source_fingerprint_for_text(VALID, compress=False)
    assert header["source_sha256"] == sha
    assert header["source_kind"] == kind == "text"
    assert header["hostname"] == "i101-101"
    assert header["text_bytes"] == len(VALID.encode())


def test_chunk_digest_detects_bit_flip(tmp_path):
    path = _write_v2(tmp_path)
    blob = bytearray(path.read_bytes())
    # Flip a byte well inside the chunk region (past the JSON header).
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(V2FormatError):
        read_host_day(path)


def test_truncation_detected(tmp_path):
    path = _write_v2(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 16])
    with pytest.raises(V2FormatError):
        read_host_day(path)
    with pytest.raises(V2FormatError):
        read_header(path)


def test_v2_format_error_is_parse_error():
    # The whole policy engine keys off ParseError; v2 corruption must
    # flow through the same quarantine/repair paths as text corruption.
    assert issubclass(V2FormatError, ParseError)


def test_read_telemetry_counters(tmp_path):
    path = _write_v2(tmp_path)
    local = MetricsRegistry()
    with use_registry(local):
        day = read_host_day(path)
    assert local.counter("archive.v2.files_read").value == 1
    assert local.counter("archive.v2.chunks_read").value \
        == day.chunks_read > 0
    assert local.counter("archive.v2.bytes_mapped").value \
        == day.bytes_mapped > 0


# ---------------------------------------------------------------------------
# Property: text -> v2 -> text is byte-identical for any canonical
# stream, and corrupted inputs land in identical ErrorPolicy outcomes.
# ---------------------------------------------------------------------------

_key = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True)
_device = st.from_regex(r"[A-Za-z0-9_.-]{1,8}", fullmatch=True)


@st.composite
def _schema(draw):
    name = draw(st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True))
    n = draw(st.integers(1, 6))
    keys = draw(st.lists(_key, min_size=n, max_size=n, unique=True))
    entries = tuple(
        SchemaEntry(
            k,
            is_event=draw(st.booleans()),
            unit=draw(st.sampled_from([None, "B", "KB", "cs"])),
            width=draw(st.sampled_from([32, 48, 64])),
        )
        for k in keys
    )
    return TypeSchema(name, entries)


@st.composite
def _host_text(draw):
    """A canonical writer-produced host-day text with marks."""
    schemas = draw(st.lists(_schema(), min_size=1, max_size=3,
                            unique_by=lambda s: s.type_name))
    n_blocks = draw(st.integers(1, 4))
    times = sorted(draw(st.lists(
        st.integers(0, 10**7), min_size=n_blocks, max_size=n_blocks,
        unique=True)))
    buf = io.StringIO()
    w = StatsWriter(buf, "h1")
    for s in schemas:
        w.register_schema(s)
    for t in times:
        jobids = tuple(draw(st.lists(
            st.from_regex(r"[0-9]{1,7}", fullmatch=True), max_size=2,
            unique=True)))
        w.begin_block(float(t), jobids)
        for jid in jobids:
            if draw(st.booleans()):
                w.write_mark(draw(st.sampled_from(["begin", "end"])), jid)
        for schema in schemas:
            for dev in draw(st.lists(_device, min_size=1, max_size=3,
                                     unique=True)):
                w.write_row(schema.type_name, dev, draw(st.lists(
                    st.integers(0, 2**31), min_size=schema.n_values,
                    max_size=schema.n_values)))
    return buf.getvalue()


@given(_host_text())
@settings(max_examples=60, deadline=None)
def test_property_v2_roundtrip_identity(text):
    sha, kind = source_fingerprint_for_text(text, compress=True)
    blob = encode_host_text(text, source_sha256=sha, source_kind=kind)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "2012-09-30.v2"
        path.write_bytes(blob)
        day = read_host_day(path)
    assert day.to_text() == text
    assert _host_data_map(day.to_host_data()) == _host_data_map(
        parse_host_text(text))


def _policy_outcome(root, policy):
    """Comparable (status-ish, record kinds, surviving data) triple."""
    archive = HostArchive(root)
    try:
        result = archive.read_host_checked("h1", policy=policy)
    except ParseError as e:
        return ("raised", type(e).__name__ in ("ParseError",), None)
    data = (_host_data_map(result.data)
            if result.data is not None else None)
    return (result.status,
            tuple(sorted(r.kind for r in result.records)), data)


_OPS = ("flip_digit", "delete_line", "truncate_line", "garbage")


def _corrupt(text: str, op: str, idx: int) -> str:
    lines = text.split("\n")
    idx = idx % max(len(lines) - 1, 1)
    if op == "flip_digit":
        line = lines[idx]
        digits = [i for i, ch in enumerate(line) if ch.isdigit()]
        if not digits:
            return text
        i = digits[idx % len(digits)]
        lines[idx] = line[:i] + chr(ord(line[i]) ^ 0x40) + line[i + 1:]
    elif op == "delete_line":
        lines.pop(idx)
    elif op == "truncate_line":
        lines[idx] = lines[idx][: len(lines[idx]) // 2]
    else:
        lines.insert(idx, "XYZZY corrupted segment")
    return "\n".join(lines)


@given(text=_host_text(), op=st.sampled_from(_OPS),
       idx=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_property_policy_parity_after_convert(text, op, idx):
    """Converting an archive never changes any ErrorPolicy outcome.

    Corrupt (or leave alone) one host-day, store it as text, convert
    the archive to v2 — unconvertible files pass through — and assert
    strict/quarantine/repair all land in the same outcome on both
    archives.  This is the "corruption is never laundered" half of the
    round-trip contract.
    """
    corrupted = _corrupt(text, op, idx)
    with tempfile.TemporaryDirectory() as tmp:
        text_root = Path(tmp) / "text"
        v2_root = Path(tmp) / "v2"
        (text_root / "h1").mkdir(parents=True)
        (text_root / "h1" / "2012-09-30.gz").write_bytes(
            gzip.compress(corrupted.encode(), mtime=0))
        shutil.copytree(text_root, v2_root)
        convert_archive(str(v2_root), to="v2")
        for policy in (ErrorPolicy.STRICT, ErrorPolicy.QUARANTINE,
                       ErrorPolicy.REPAIR):
            assert _policy_outcome(str(text_root), policy) \
                == _policy_outcome(str(v2_root), policy), \
                f"policy {policy} diverged after conversion ({op})"
