"""Regression-gate semantics for the wall-clock-sensitive service
metrics: advisory by default (shared CI runners), enforced under
``--strict``.
"""

from __future__ import annotations

from benchmarks.check_regression import ADVISORY, METRICS, check


def test_advisory_metrics_are_registered():
    assert ADVISORY <= set(METRICS)


def test_service_gate_failure_is_advisory_by_default(capsys):
    current = {"service_p99_ms": 50.0}
    baseline = {"service_p99_ms": 5.0}
    failures, advisories = check(current, baseline, 0.30, strict=False)
    assert failures == []
    assert len(advisories) == 1
    assert "ADVISORY" in capsys.readouterr().out


def test_service_gate_failure_fails_under_strict():
    current = {"service_p99_ms": 50.0}
    baseline = {"service_p99_ms": 5.0}
    failures, advisories = check(current, baseline, 0.30, strict=True)
    assert len(failures) == 1
    assert advisories == []


def test_non_advisory_regression_still_fails():
    current = {"report_warm_ms": 500.0}
    baseline = {"report_warm_ms": 10.0}
    failures, advisories = check(current, baseline, 0.30, strict=False)
    assert len(failures) == 1
    assert advisories == []


def test_passing_metrics_raise_nothing_either_way():
    current = {"service_p99_ms": 4.0, "report_warm_ms": 20.0}
    baseline = {"service_p99_ms": 5.0, "report_warm_ms": 10.0}
    for strict in (False, True):
        failures, advisories = check(current, baseline, 0.30,
                                     strict=strict)
        assert failures == [] and advisories == []
