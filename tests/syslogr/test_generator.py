"""Tests for the behaviour-driven syslog generator."""

import numpy as np

from repro.scheduler.job import ExitStatus, JobRecord
from repro.syslogr.catalog import MessageKind
from repro.syslogr.generator import SyslogGenerator
from repro.syslogr.rationalizer import Rationalizer
from tests.scheduler.test_job import make_request


def record(jobid="1", nodes=4, exit_status=ExitStatus.COMPLETED,
           start=0.0, end=7200.0):
    req = make_request(jobid=jobid, nodes=nodes)
    return JobRecord(req, start, end, tuple(range(nodes)), exit_status)


def gen(seed=0):
    return SyslogGenerator(np.random.default_rng(seed), "test")


def kinds_of(raws):
    r = Rationalizer()
    r.finalize()
    msgs, unknown = r.rationalize_stream(raws)
    assert unknown == 0  # the generator only emits catalog shapes
    return [m.kind for m in msgs]


def test_every_job_gets_prolog_epilog():
    raws = gen().generate_for_job(record(), 0.3, 1.0, 0.05)
    kinds = kinds_of(raws)
    assert kinds[0] is MessageKind.JOB_PROLOG
    assert kinds[-1] is MessageKind.JOB_EPILOG


def test_near_capacity_memory_draws_oom():
    hits = 0
    for seed in range(20):
        kinds = kinds_of(gen(seed).generate_for_job(record(), 0.97, 1.0, 0.05))
        hits += MessageKind.OOM_KILL in kinds
    assert hits >= 8  # p=0.6 per job


def test_normal_memory_never_ooms():
    for seed in range(10):
        kinds = kinds_of(gen(seed).generate_for_job(record(), 0.5, 1.0, 0.05))
        assert MessageKind.OOM_KILL not in kinds


def test_heavy_scratch_writes_draw_lustre_trouble():
    found = 0
    for seed in range(10):
        kinds = kinds_of(gen(seed).generate_for_job(record(), 0.3, 60.0, 0.05))
        found += MessageKind.LUSTRE_TIMEOUT in kinds
    assert found >= 7


def test_failed_job_may_segfault():
    found = 0
    for seed in range(30):
        raws = gen(seed).generate_for_job(
            record(exit_status=ExitStatus.FAILED), 0.3, 1.0, 0.05)
        found += MessageKind.SEGFAULT in kinds_of(raws)
    assert 5 <= found <= 25  # p = 0.5


def test_high_idle_long_job_may_soft_lockup():
    found = 0
    for seed in range(100):
        raws = gen(seed).generate_for_job(record(), 0.3, 1.0, 0.95)
        found += MessageKind.SOFT_LOCKUP in kinds_of(raws)
    assert found >= 3  # p = 0.15


def test_messages_within_job_window():
    raws = gen(3).generate_for_job(record(start=1000.0, end=9000.0),
                                   0.97, 60.0, 0.95)
    for raw in raws:
        assert 999.0 <= raw.time <= 9001.0


def test_background_noise_rate():
    rng_raws = gen(1).generate_background(1000, 30 * 86400.0,
                                          rate_per_node_month=0.1)
    # Expected 100 events, Poisson.
    assert 60 <= len(rng_raws) <= 140
    kinds = kinds_of(rng_raws)
    assert set(kinds) <= {MessageKind.MCE, MessageKind.IB_LINK_DOWN}
