"""Tests for job-id tagging and the uniform log format."""

import io

import pytest

from repro.syslogr.catalog import MESSAGE_CATALOG, MessageKind, RawMessage
from repro.syslogr.rationalizer import (
    RationalizedMessage,
    Rationalizer,
    parse_rationalized_log,
)
from repro.syslogr.rationalizer import write_rationalized_log


def oom(t, host):
    return RawMessage(t, host, "kernel", MESSAGE_CATALOG[
        MessageKind.OOM_KILL].render(pid=1, comm="x", vm_kb=2, rss_kb=1))


def test_job_tagging_from_occupancy():
    r = Rationalizer()
    r.add_occupancy("h1", 100.0, 200.0, "42")
    r.add_occupancy("h1", 300.0, 400.0, "43")
    r.finalize()
    assert r.job_at("h1", 150.0) == "42"
    assert r.job_at("h1", 350.0) == "43"
    assert r.job_at("h1", 250.0) is None
    assert r.job_at("h2", 150.0) is None
    msg = r.rationalize(oom(150.0, "h1"))
    assert msg is not None
    assert msg.jobid == "42"
    assert msg.kind is MessageKind.OOM_KILL


def test_explicit_jobid_in_message_wins():
    r = Rationalizer()
    r.add_occupancy("h1", 0.0, 1000.0, "42")
    r.finalize()
    raw = RawMessage(500.0, "h1", "sge", MESSAGE_CATALOG[
        MessageKind.JOB_PROLOG].render(jobid="99", user="u"))
    msg = r.rationalize(raw)
    assert msg.jobid == "99"


def test_unrecognized_counted_not_raised():
    r = Rationalizer()
    r.finalize()
    msgs, unknown = r.rationalize_stream([
        RawMessage(1.0, "h1", "kernel", "random chatter nobody knows"),
        oom(2.0, "h1"),
    ])
    assert unknown == 1
    assert len(msgs) == 1


def test_stream_sorted_by_time():
    r = Rationalizer()
    r.finalize()
    msgs, _ = r.rationalize_stream([oom(5.0, "h1"), oom(1.0, "h1")])
    assert [m.time for m in msgs] == [1.0, 5.0]


def test_lookup_before_finalize_rejected():
    r = Rationalizer()
    with pytest.raises(RuntimeError):
        r.job_at("h1", 0.0)


def test_occupancy_after_finalize_rejected():
    r = Rationalizer()
    r.finalize()
    with pytest.raises(RuntimeError):
        r.add_occupancy("h1", 0.0, 1.0, "42")


def test_uniform_format_roundtrip():
    msgs = [
        RationalizedMessage(100.0, "h1", "42", MessageKind.OOM_KILL,
                            "Out of memory: Killed process 1 (x)"),
        RationalizedMessage(200.0, "h2", None, MessageKind.MCE,
                            "MCE: CPU 3"),
    ]
    buf = io.StringIO()
    write_rationalized_log(msgs, buf)
    parsed = list(parse_rationalized_log(buf.getvalue()))
    assert parsed == msgs


def test_format_rejects_malformed():
    with pytest.raises(ValueError, match="fields"):
        list(parse_rationalized_log("100\th1\tonly three\n"))
    with pytest.raises(ValueError, match="unknown kind"):
        list(parse_rationalized_log(
            "100\th1\t-\texplosion\terr\ttext\n"))
    with pytest.raises(ValueError, match="severity"):
        list(parse_rationalized_log(
            "100\th1\t-\toom_kill\tinfo\ttext\n"))


def test_render_rejects_separator_in_text():
    msg = RationalizedMessage(1.0, "h", None, MessageKind.MCE, "tab\there")
    with pytest.raises(ValueError):
        msg.render()
