"""Tests for the raw-message catalog: render→recognize must be lossless."""

import pytest

from repro.syslogr.catalog import MESSAGE_CATALOG, MessageKind

SAMPLE_PARAMS = {
    MessageKind.OOM_KILL: dict(pid=1234, comm="vasp.x", vm_kb=31000000,
                               rss_kb=30000000),
    MessageKind.LUSTRE_TIMEOUT: dict(rpc=5581, target="scratch-OST0007",
                                     sent=1372088405, addr="ffff8101"),
    MessageKind.LUSTRE_EVICTION: dict(target="scratch-MDT0000",
                                      server="mds1"),
    MessageKind.SOFT_LOCKUP: dict(cpu=7, secs=22, comm="namd2", pid=999),
    MessageKind.MCE: dict(cpu=3, bank="K8", nbank=4, status="corrected"),
    MessageKind.IB_LINK_DOWN: dict(port=1, state="INIT"),
    MessageKind.NFS_STALE: dict(mount="/home", dev="0:21"),
    MessageKind.SEGFAULT: dict(comm="a.out", pid=482, addr="deadbeef",
                               ip="400123", sp="7fff1234", err=6),
    MessageKind.JOB_PROLOG: dict(jobid="2683088", user="user0042"),
    MessageKind.JOB_EPILOG: dict(jobid="2683088", status="completed"),
}


def test_catalog_covers_all_kinds():
    assert set(MESSAGE_CATALOG) == set(MessageKind)
    assert set(SAMPLE_PARAMS) == set(MessageKind)


@pytest.mark.parametrize("kind", list(MessageKind))
def test_render_recognize_roundtrip(kind):
    entry = MESSAGE_CATALOG[kind]
    text = entry.render(**SAMPLE_PARAMS[kind])
    params = entry.match(text)
    assert params is not None
    for key, value in SAMPLE_PARAMS[kind].items():
        assert params[key] == str(value)


@pytest.mark.parametrize("kind", list(MessageKind))
def test_no_cross_matching(kind):
    """A rendered message matches only its own recognizer (prefix
    ambiguity between Lustre variants is the one risk)."""
    text = MESSAGE_CATALOG[kind].render(**SAMPLE_PARAMS[kind])
    matches = [k for k, e in MESSAGE_CATALOG.items() if e.match(text)]
    assert matches == [kind]


def test_severity_classes():
    assert MessageKind.MCE.severity == "crit"
    assert MessageKind.JOB_PROLOG.severity == "info"
    assert MessageKind.OOM_KILL.is_failure
    assert not MessageKind.JOB_EPILOG.is_failure
    failures = [k for k in MessageKind if k.is_failure]
    assert len(failures) >= 5
