"""The parallel slow-path replay must be byte-identical to the serial one.

Every node owns its own RNG stream and its own archive files, so the
split across workers cannot influence the output — the strongest possible
correctness statement for the parallelization.
"""

import pytest

from repro import RANGER, Facility
from repro.tacc_stats.archive import HostArchive

CFG = RANGER.scaled(num_nodes=8, horizon_days=1, n_users=10)


@pytest.fixture(scope="module")
def serial_and_parallel(tmp_path_factory):
    d1 = str(tmp_path_factory.mktemp("serial"))
    d2 = str(tmp_path_factory.mktemp("parallel"))
    run1 = Facility(CFG, seed=6).run_with_files(d1, compress=False)
    run2 = Facility(CFG, seed=6).run_with_files(d2, compress=False,
                                                workers=3)
    return (d1, run1), (d2, run2)


def test_byte_identical_archives(serial_and_parallel):
    (d1, _), (d2, _) = serial_and_parallel
    a1, a2 = HostArchive(d1), HostArchive(d2)
    assert a1.hostnames() == a2.hostnames()
    for host in a1.hostnames():
        f1 = a1.host_files(host)
        f2 = a2.host_files(host)
        assert [p.name for p in f1] == [p.name for p in f2]
        for p1, p2 in zip(f1, f2):
            assert p1.read_bytes() == p2.read_bytes(), p1.name


def test_volume_accounting_matches(serial_and_parallel):
    (_, run1), (_, run2) = serial_and_parallel
    s1, s2 = run1.archive_stats, run2.archive_stats
    assert s1.raw_bytes == s2.raw_bytes
    assert s1.file_count == s2.file_count
    assert s1.host_days == s2.host_days


def test_warehouse_contents_match(serial_and_parallel):
    (_, run1), (_, run2) = serial_and_parallel
    t1 = run1.warehouse.job_table("ranger")
    t2 = run2.warehouse.job_table("ranger")
    assert list(t1["jobid"]) == list(t2["jobid"])
    import numpy as np
    np.testing.assert_allclose(t1["cpu_flops"], t2["cpu_flops"])
    np.testing.assert_allclose(t1["mem_used_max"], t2["mem_used_max"])


def test_workers_validation(tmp_path):
    with pytest.raises(ValueError):
        Facility(CFG, seed=1).run_with_files(str(tmp_path), workers=0)
