"""Tests for the fault-injection harness itself.

The whole fault matrix rests on two properties of the injectors:
determinism (same seed, same corruption, byte for byte) and
detectability-by-construction (fatal kinds can never produce output
that still parses as different-but-valid data).
"""

import gzip

import pytest

from repro.tacc_stats.parser import ParseError, parse_host_text
from repro.testing.faults import (
    BENIGN_KINDS,
    FATAL_KINDS,
    FAULT_KINDS,
    corrupt_archive,
    inject_fault,
)

VALID = (
    "$hostname h7\n"
    "$uname Linux\n"
    "!cpu user,E idle,E\n"
    "!mem used free\n"
    "100 7\n"
    "cpu 0 10 20\n"
    "cpu 1 11 21\n"
    "mem - 512 1536\n"
    "700 7\n"
    "cpu 0 310 620\n"
    "cpu 1 311 621\n"
    "mem - 600 1448\n"
)


def _file(tmp_path, name="2013-01-01", text=VALID, gz=False):
    tmp_path.mkdir(parents=True, exist_ok=True)
    if gz:
        p = tmp_path / f"{name}.gz"
        p.write_bytes(gzip.compress(text.encode()))
    else:
        p = tmp_path / name
        p.write_text(text)
    return p


def _read(p):
    if p.suffix == ".gz":
        return gzip.decompress(p.read_bytes()).decode()
    return p.read_text()


@pytest.mark.parametrize("kind", FAULT_KINDS)
@pytest.mark.parametrize("gz", [False, True])
def test_same_seed_same_corruption(tmp_path, kind, gz):
    a = _file(tmp_path / "a", gz=gz)
    b = _file(tmp_path / "b", gz=gz)
    fa = inject_fault(a, kind, seed=5)
    fb = inject_fault(b, kind, seed=5)
    assert _read(a) == _read(b)
    assert (fa.kind, fa.lineno, fa.detail) == (fb.kind, fb.lineno, fb.detail)


def test_different_seeds_vary(tmp_path):
    """bit_flip with different seeds hits different bytes (eventually)."""
    outputs = set()
    for seed in range(6):
        p = _file(tmp_path / str(seed))
        inject_fault(p, "bit_flip", seed=seed)
        outputs.add(p.read_text())
    assert len(outputs) > 1


@pytest.mark.parametrize("kind", FATAL_KINDS)
def test_fatal_kinds_fail_strict_parse(tmp_path, kind):
    p = _file(tmp_path)
    inject_fault(p, kind, seed=3)
    with pytest.raises(ParseError):
        parse_host_text(p.read_text(), allow_truncated=True)


@pytest.mark.parametrize("kind", BENIGN_KINDS)
def test_benign_kinds_still_parse(tmp_path, kind):
    """Benign corruption parses clean — and never alters surviving
    values relative to the pristine file."""
    p = _file(tmp_path)
    inject_fault(p, kind, seed=3)
    original = parse_host_text(VALID)
    host = parse_host_text(p.read_text(), allow_truncated=True)
    want = {
        (b.time, t, d): v.tolist()
        for b in original.blocks for t, by in b.rows.items()
        for d, v in by.items()
    }
    for b in host.blocks:
        for t, by in b.rows.items():
            for d, v in by.items():
                assert want[(b.time, t, d)] == v.tolist()


def test_fatal_kinds_are_quarantinable(tmp_path):
    """Repair-mode parse survives every fatal kind with faults recorded
    (except corruption that destroys the stream identity entirely)."""
    for kind in FATAL_KINDS:
        p = _file(tmp_path, name=kind)
        inject_fault(p, kind, seed=11)
        faults = []
        parse_host_text(p.read_text(), allow_truncated=True, faults=faults)
        assert faults, kind


def test_corrupt_archive_one_file_per_host(tmp_path):
    for host in ("h0", "h1"):
        (tmp_path / host).mkdir()
        _file(tmp_path / host)
    injected = corrupt_archive(
        tmp_path, {"h0": "bit_flip", "h1": "zero_byte"}, seed=9)
    assert [f.kind for f in injected] == ["bit_flip", "zero_byte"]
    assert (tmp_path / "h1" / "2013-01-01").read_text() == ""
    assert (tmp_path / "h0" / "2013-01-01").read_text() != VALID


def test_unknown_kind_rejected(tmp_path):
    p = _file(tmp_path)
    with pytest.raises(ValueError, match="unknown fault kind"):
        inject_fault(p, "gamma_rays", seed=0)
