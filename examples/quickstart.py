#!/usr/bin/env python
"""Quickstart: simulate a scaled Ranger, run the SUPReMM pipeline, and
print the headline analytics.

    python examples/quickstart.py [--seed N] [--nodes N] [--days D]

This uses the fast synthesis path (behaviour model → job summaries →
warehouse).  See ``examples/full_pipeline.py`` for the complete
text-format tool chain.
"""

from __future__ import annotations

import argparse

from repro import Facility, RANGER
from repro.ingest.summarize import KEY_METRICS
from repro.util.tables import render_kv, render_table
from repro.util.textchart import radar_text, series_text
from repro.xdmod.efficiency import EfficiencyAnalysis
from repro.xdmod.profiles import UsageProfiler
from repro.xdmod.timeseries import SystemTimeseries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--days", type=float, default=21)
    parser.add_argument("--users", type=int, default=120)
    args = parser.parse_args()

    config = RANGER.scaled(num_nodes=args.nodes, horizon_days=args.days,
                           n_users=args.users)
    print(f"Simulating {config.name}: {config.num_nodes} nodes, "
          f"{args.days:g} days, {config.n_users} users "
          f"(seed {args.seed}) ...")
    run = Facility(config, seed=args.seed).run()
    query = run.query()

    print()
    print(render_kv({
        "jobs completed": len(run.records),
        "jobs in warehouse": len(query),
        "node hours": f"{query.node_hours:,.0f}",
        "facility efficiency":
            f"{1 - query.weighted_mean('cpu_idle'):.1%}",
        "mean job FLOPS": f"{query.weighted_mean('cpu_flops'):.1f} GF/s/node",
        "mean memory": f"{query.weighted_mean('mem_used'):.1f} GB/node",
    }, title="Facility summary"))

    # System-level time series (the Figures 8/9/11 views).
    ts = SystemTimeseries(run.warehouse, config.name)
    print()
    active = ts.active_nodes()
    flops = ts.flops()
    mem = ts.memory_per_node()
    print(series_text(active.times, active.values, label="active nodes",
                      fmt=".0f"))
    print(series_text(flops.times, flops.values, label="system TF   "))
    print(series_text(mem.times, mem.values, label="GB per node "))
    print(f"\nFLOPS delivered: {ts.flops_fraction_of_peak():.1%} of the "
          f"{config.peak_tflops:.1f} TF peak")

    # The heaviest user's normalized profile (the Figure 2 view).
    profiler = UsageProfiler(query)
    top_user = query.top("user", 1)[0]
    profile = profiler.profile("user", top_user)
    print(f"\nHeaviest user {top_user} "
          f"({profile.node_hours:,.0f} node-hours) vs facility avg (=1.0):")
    print(radar_text(profile.values))

    # Who is wasting node-hours (the Figure 4 view).
    eff = EfficiencyAnalysis(query)
    worst = eff.worst_heavy_user()
    print(f"\nMost wasteful heavy user: {worst.user} — "
          f"{worst.idle_fraction:.0%} of {worst.node_hours:,.0f} "
          f"node-hours spent CPU-idle")

    # Per-application comparison (the Figure 3 view).
    rows = []
    for app in query.top("app", 6):
        p = profiler.profile("app", app)
        rows.append({
            "app": app,
            "node hours": f"{p.node_hours:,.0f}",
            **{m: f"{p.values[m]:.2f}" for m in KEY_METRICS[:4]},
        })
    print()
    print(render_table(rows,
                       ["app", "node hours"] + list(KEY_METRICS[:4]),
                       title="Top applications vs facility average"))


if __name__ == "__main__":
    main()
