#!/usr/bin/env python
"""Application-developer / resource-manager view (paper §4.3.2, §5):
compare the molecular-dynamics codes across two architectures and ask
the paper's closing question — which codes should a center steer users
toward, and on which machine?

Simulates both Ranger (AMD) and Lonestar4 (Intel) with independent
workloads, reproduces the Figure 3 comparison, and prints the
"bouquet of machines" recommendation table.

    python examples/app_comparison.py [--days D]
"""

from __future__ import annotations

import argparse

from repro import Facility, LONESTAR4, RANGER
from repro.ingest.summarize import KEY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.util.tables import render_table
from repro.util.textchart import radar_text
from repro.xdmod.profiles import UsageProfiler
from repro.xdmod.query import JobQuery

MD_APPS = ("namd", "amber", "gromacs")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=30)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    warehouse = Warehouse()
    configs = {
        "ranger": RANGER.scaled(num_nodes=64, horizon_days=args.days,
                                n_users=220),
        "lonestar4": LONESTAR4.scaled(num_nodes=48, horizon_days=args.days,
                                      n_users=200),
    }
    for name, cfg in configs.items():
        print(f"Simulating {name} ({cfg.num_nodes} nodes, "
              f"{args.days:g} days) ...")
        Facility(cfg, seed=args.seed).run(warehouse=warehouse,
                                          with_syslog=False)

    # Figure 3 table: each code vs its system's average job.
    rows = []
    profiles = {}
    for name in configs:
        profiler = UsageProfiler(JobQuery(warehouse, name))
        for app in MD_APPS:
            p = profiler.profile("app", app)
            profiles[(name, app)] = p
            rows.append({
                "system-app": f"{name[0].upper()}-{app}",
                "jobs": p.job_count,
                **{m: f"{p.values[m]:.2f}" for m in KEY_METRICS},
            })
    print()
    print(render_table(rows, ["system-app", "jobs"] + list(KEY_METRICS),
                       title="Figure 3 (reproduced): MD codes vs system "
                             "average (=1.0)"))

    print("\nNAMD on Ranger:")
    print(radar_text(profiles[("ranger", "namd")].values))
    print("\nAMBER on Ranger:")
    print(radar_text(profiles[("ranger", "amber")].values))

    # The paper's closing proposal, in full: the bouquet analysis over
    # every application with presence on both systems.
    from repro.xdmod.bouquet import BouquetAnalysis
    print()
    print(BouquetAnalysis(warehouse).render())


if __name__ == "__main__":
    main()
