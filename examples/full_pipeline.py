#!/usr/bin/env python
"""The complete Figure 1 tool chain, end to end, on a small system:

  per-node TACC_Stats daemons → self-describing text archive (gzip,
  daily rotation) → parse → match with SGE accounting → per-job
  summaries → SQLite warehouse → stakeholder report,

with Lariat records and the rationalized syslog riding along.

    python examples/full_pipeline.py [--archive DIR]

Unlike the quickstart, every byte here really passes through the text
format — inspect the archive afterwards with ``zcat``.
"""

from __future__ import annotations

import argparse
import tempfile

from repro import Facility, TEST_SYSTEM
from repro.tacc_stats.archive import HostArchive
from repro.util.tables import render_kv
from repro.util.units import format_bytes
from repro.xdmod.reports import SupportStaffReport


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--archive", default=None,
                        help="directory for the stats archive "
                             "(default: a temp dir)")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    archive_dir = args.archive or tempfile.mkdtemp(prefix="tacc_stats_")
    cfg = TEST_SYSTEM
    print(f"Running the full pipeline on {cfg.num_nodes} nodes x "
          f"{cfg.horizon / 86400:.0f} days into {archive_dir} ...")
    run = Facility(cfg, seed=args.seed).run_with_files(archive_dir)

    stats = run.archive_stats
    report = run.ingest_report
    print()
    print(render_kv({
        "jobs simulated": len(run.records),
        "archive files": stats.file_count,
        "raw volume": format_bytes(stats.raw_bytes),
        "compressed": format_bytes(stats.compressed_bytes),
        "per node-day": format_bytes(stats.bytes_per_host_day),
        "compression": f"{stats.compression_ratio:.1f}x",
        "ingest": str(report),
    }, title="Pipeline run"))

    # Peek at the raw format, like `zcat <file> | head` would.
    archive = HostArchive(archive_dir)
    first_host = archive.hostnames()[0]
    first_file = archive.host_files(first_host)[0]
    text = archive.read_file(first_file)
    print(f"\nFirst 14 lines of {first_file}:")
    for line in text.split("\n")[:14]:
        print(f"  {line[:100]}")

    print("\n" + SupportStaffReport(run.warehouse, cfg.name).render())
    print(f"\nArchive kept at: {archive_dir}")


if __name__ == "__main__":
    main()
