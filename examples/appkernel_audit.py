#!/usr/bin/env python
"""Performance auditing with application kernels (the XDMoD capability
the paper's framework builds on — its reference [2] — applied to §4.3.4's
"evaluating the efficiency and effectiveness of new versions of the
system software stack").

Simulates a facility running the standard kernel battery on a 12-hour
cadence, injects a software-stack regression half way through the study
period (a miscompiled MD library after a maintenance window: −30 % FLOPS
for NAMD/GROMACS), and shows the control charts catching it — with onset
time and magnitude — while the unaffected I/O kernel stays quiet.

    python examples/appkernel_audit.py [--days D] [--factor F]
"""

from __future__ import annotations

import argparse

from repro import Facility, RANGER
from repro.util.tables import render_kv, render_table
from repro.util.textchart import sparkline
from repro.util.timeutil import DAY
from repro.xdmod.appkernels import (
    AppKernelMonitor,
    DEFAULT_KERNELS,
    PerfRegression,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=16)
    parser.add_argument("--factor", type=float, default=0.7,
                        help="FLOPS factor after the bad update")
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()

    onset = args.days / 2 * DAY
    cfg = RANGER.scaled(num_nodes=24, horizon_days=args.days, n_users=40)
    regression = PerfRegression(start=onset, flops_factor=args.factor,
                                apps=("namd", "gromacs"))
    print(f"Simulating {args.days:g} days with the app-kernel battery; "
          f"injecting a {1 - args.factor:.0%} MD FLOPS regression at "
          f"day {args.days / 2:g} ...")
    run = Facility(cfg, seed=args.seed, appkernels=DEFAULT_KERNELS,
                   regressions=(regression,)).run(with_syslog=False)

    monitor = AppKernelMonitor(run.query())
    print("\nControl charts (kernel FLOPS, GF/s/node):")
    for kernel in monitor.kernels():
        chart = monitor.chart(kernel, "cpu_flops")
        flags = "".join("!" if v else "." for v in chart.violations)
        print(f"  {kernel:10s} {sparkline(chart.values)}")
        print(f"  {'':10s} {flags}   "
              f"baseline {chart.baseline_mean:.1f} "
              f"± {chart.baseline_sigma:.2f}")

    findings = monitor.detect_regressions()
    if not findings:
        print("\nNo regressions detected.")
        return
    rows = [
        {"kernel": f["kernel"], "metric": f["metric"],
         "onset (day)": f"{f['onset_time'] / DAY:.1f}",
         "change": f"{f['relative_change']:+.0%}"}
        for f in findings
    ]
    print()
    print(render_table(rows, ["kernel", "metric", "onset (day)", "change"],
                       title="Detected regressions"))
    print()
    print(render_kv({
        "injected": f"{1 - args.factor:.0%} FLOPS loss on namd/gromacs "
                    f"at day {args.days / 2:g}",
        "verdict": "the audit catches the bad update from the kernels "
                   "alone — no user ever has to file a ticket",
    }))


if __name__ == "__main__":
    main()
