#!/usr/bin/env python
"""Systems-administrator view (paper §4.3.4): how predictable is this
machine's near-future resource use?

Reproduces Table 1 and the Figure 6 combined fit for a simulated Ranger,
then uses the fitted logarithmic model the way the paper suggests — "jobs
could be selected from the queue to complement the present resource
usage" — by forecasting each metric's uncertainty band at a few horizons.

    python examples/persistence_forecast.py [--days D] [--nodes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Facility, RANGER
from repro.util.tables import render_kv, render_table
from repro.xdmod.persistence import PersistenceAnalysis


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=40)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    cfg = RANGER.scaled(num_nodes=args.nodes, horizon_days=args.days,
                        n_users=150)
    print(f"Simulating {args.days:g} days on {args.nodes} nodes ...")
    run = Facility(cfg, seed=args.seed).run(with_syslog=False)
    analysis = PersistenceAnalysis(run.warehouse, cfg.name)

    # Table 1.
    table = analysis.table()
    rows = []
    for off in table[0].offsets_min:
        row = {"offset (min)": off}
        for r in table:
            k = r.offsets_min.index(off) if off in r.offsets_min else None
            row[r.metric] = f"{r.ratios[k]:.3f}" if k is not None else "-"
        rows.append(row)
    print()
    print(render_table(rows,
                       ["offset (min)"] + [r.metric for r in table],
                       title="Table 1 (reproduced): offset-sigma ratios"))

    fit = analysis.combined_fit()
    print()
    print(render_kv({
        "combined fit": fit.summary(),
        "paper (Ranger)": "intercept -0.17(6), slope 0.36(2), R^2 = 0.87",
        "least predictable": analysis.predictability_order()[0],
    }, title="Figure 6 (reproduced)"))

    # Forecast bands: current value +/- ratio(t) * sigma (in native units).
    print("\nForecast uncertainty bands (fitted model):")
    forecast_rows = []
    for metric, series_name in analysis._metrics.items():
        _, v = run.warehouse.series(cfg.name, series_name)
        sigma = float(np.std(v))
        current = float(v[-1])
        row = {"metric": metric, "now": f"{current:.2f}"}
        for horizon in (10, 100, 1000):
            ratio = float(np.clip(fit.predict([np.log10(horizon)])[0],
                                  0.0, 1.0))
            band = ratio * np.sqrt(2.0) * sigma
            row[f"+{horizon}min"] = f"±{band:.2f}"
        forecast_rows.append(row)
    print(render_table(
        forecast_rows,
        ["metric", "now", "+10min", "+100min", "+1000min"],
        title="value ± band (native units per series)",
    ))
    print("\nReading: within ~10 minutes the machine's state is nearly "
          "known; by ~1000 minutes (≈ the mean job length) only the "
          "ensemble statistics remain — exactly the paper's conclusion.")


if __name__ == "__main__":
    main()
