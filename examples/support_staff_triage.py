#!/usr/bin/env python
"""Support-staff triage session (paper §4.3.1/§4.3.3 + the ANCOR
direction): find the users and jobs that need attention.

Walks the workflow the paper describes: the wasted-node-hours scatter →
the circled user's profile ("can we help them?") → per-application
anomaly flags → linkage of anomalous jobs to syslog failure events
("anomalous resource use patterns ... are commonly the precursors of job
failures").

    python examples/support_staff_triage.py [--days D]
"""

from __future__ import annotations

import argparse

from repro import Facility, RANGER
from repro.anomaly.detect import AnomalyDetector
from repro.anomaly.link import link_anomalies_to_failures
from repro.util.tables import render_kv, render_table
from repro.xdmod.reports import SupportStaffReport, UserReport


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=25)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    cfg = RANGER.scaled(num_nodes=48, horizon_days=args.days, n_users=150)
    print(f"Simulating {args.days:g} days ...")
    run = Facility(cfg, seed=args.seed).run()
    wh = run.warehouse

    # Step 1: the Figure 4 scatter and the circled user.
    print("\n" + SupportStaffReport(wh, cfg.name).render())

    # Step 2: pull that user's own report (what we'd send them).
    staff = SupportStaffReport(wh, cfg.name).generate()
    worst_user = staff["worst_user"].user
    print("\n" + UserReport(wh, cfg.name).render(worst_user))

    # Step 3: anomalous jobs per application.
    detector = AnomalyDetector(run.query(), z_threshold=4.0)
    flags = detector.detect()
    rows = [
        {"job": a.jobid, "user": a.user, "app": a.app, "metric": a.metric,
         "value": f"{a.value:.2f}", "app median": f"{a.baseline_median:.2f}",
         "z": f"{a.robust_z:+.1f}"}
        for a in flags[:12]
    ]
    print()
    print(render_table(
        rows, ["job", "user", "app", "metric", "value", "app median", "z"],
        title=f"Anomalous jobs (top {len(rows)} of {len(flags)} flags)",
    ))

    # Step 4: do anomalies precede failures?  (ANCOR linkage.)
    link = link_anomalies_to_failures(wh, cfg.name, flags)
    print()
    print(render_kv({
        "anomalous jobs": link.anomalous_total,
        "  ... with failure events": link.anomalous_with_failures,
        "normal jobs": link.normal_total,
        "  ... with failure events": link.normal_with_failures,
        "failure-rate enrichment": f"{link.enrichment:.1f}x",
    }, title="Anomaly -> failure linkage"))
    examples = [
        (jid, [a.metric for a in flags_], list(fails))
        for jid, (flags_, fails) in link.linked.items() if fails
    ][:5]
    for jid, metrics, fails in examples:
        print(f"  job {jid}: anomalous {', '.join(sorted(set(metrics)))} "
              f"-> syslog {', '.join(sorted(set(fails)))}")


if __name__ == "__main__":
    main()
