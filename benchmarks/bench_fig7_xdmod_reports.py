"""Figure 7: the three XDMoD sample reports — (a) average memory per core
by parent science, (b) CPU hours split into user/idle/system, (c) Lustre
filesystem traffic for scratch/share/work.

Shape claims reproduced: memory per core varies across sciences around
the 2 GB/core installed on Ranger; user time dominates the CPU-hour
split; scratch dominates the Lustre traffic with work and share far
behind.
"""

import numpy as np

from repro.util.tables import render_table
from repro.xdmod.reports import ResourceManagerReport


def test_fig7_xdmod_reports(benchmark, ranger_run, save_artifact):
    report = ResourceManagerReport(ranger_run.warehouse, "ranger")
    data = benchmark(report.generate)
    ts = data["timeseries"]

    # 7a: memory per core by parent science.
    rows_a = [
        {"science field": field, "GB/core": f"{gb:.2f}"}
        for field, gb in data["mem_per_core_by_field"].items()
    ]
    # 7b: CPU-hour split.
    split = ts.cpu_hours_split()
    rows_b = [
        {"component": name, "mean fraction": f"{s.values.mean():.3f}"}
        for name, s in split.items()
    ]
    # 7c: Lustre traffic.
    lustre = ts.lustre_rates()
    rows_c = [
        {"filesystem": fs, "mean MB/s": f"{s.mean:.2f}",
         "peak MB/s": f"{s.peak:.1f}"}
        for fs, s in lustre.items()
    ]
    text = "\n\n".join([
        render_table(rows_a, ["science field", "GB/core"],
                     title="Figure 7a (reproduced): memory/core by science"),
        render_table(rows_b, ["component", "mean fraction"],
                     title="Figure 7b (reproduced): CPU time split"),
        render_table(rows_c, ["filesystem", "mean MB/s", "peak MB/s"],
                     title="Figure 7c (reproduced): Lustre traffic"),
    ])
    save_artifact("fig7_xdmod_reports", text)
    print("\n" + text)

    # 7a: values scattered around but below the 2 GB/core installed.
    per_core = np.array(list(data["mem_per_core_by_field"].values()))
    assert (per_core > 0).all()
    assert per_core.max() <= 2.0
    assert per_core.max() > 1.5 * per_core.min()  # sciences differ
    # 7b: user >> idle > 0; fractions sane.
    assert split["user"].values.mean() > 0.6
    assert 0.0 < split["idle"].values.mean() < 0.4
    assert split["sys"].values.mean() < 0.1
    # 7c: scratch dominates.
    assert lustre["scratch"].mean > 5 * lustre["work"].mean
    assert lustre["work"].mean > lustre["share"].mean
