"""Figure 2: normalized 8-metric usage profiles of 5 heavy Ranger users.

Paper claims reproduced: profiles are normalized so the average user is a
unit octagon; the five largest consumers of node-hours have *strongly
different* profiles (one FLOPS/network heavy, one dominated by cpu_idle
and filesystem traffic, ...).
"""

import numpy as np

from repro.ingest.summarize import KEY_METRICS
from repro.util.tables import render_table
from repro.util.textchart import radar_text
from repro.xdmod.profiles import UsageProfiler


def test_fig2_user_profiles(benchmark, ranger_run, save_artifact):
    profiler = UsageProfiler(ranger_run.query())
    profiles = benchmark(profiler.top_profiles, "user", 5)

    rows = []
    for p in profiles:
        row = {"user": p.entity, "node_hours": f"{p.node_hours:.0f}"}
        row.update({m: f"{p.values[m]:.2f}" for m in KEY_METRICS})
        rows.append(row)
    text = render_table(
        rows, ["user", "node_hours"] + list(KEY_METRICS),
        title="Figure 2 (reproduced): top-5 user profiles, facility avg = 1.0",
    )
    text += "\n\n" + "\n\n".join(
        f"{p.entity}:\n{radar_text(p.values)}" for p in profiles[:2]
    )
    save_artifact("fig2_user_profiles", text)
    print("\n" + text)

    assert len(profiles) == 5
    # Heavy users: each holds a nontrivial share of facility node-hours.
    total = ranger_run.query().node_hours
    assert all(p.node_hours > 0.01 * total for p in profiles)
    # "Note the variability in the usage profiles between users": across
    # the five, at least one metric spans a >3x range, and profiles are
    # not mutually similar.
    mat = np.array([[p.values[m] for m in KEY_METRICS] for p in profiles])
    spans = mat.max(axis=0) / np.maximum(mat.min(axis=0), 1e-9)
    assert spans.max() > 3.0
    assert (mat.max(axis=0) - mat.min(axis=0)).max() > 0.8
