"""Figure 4: wasted (CPU-idle) node-hours vs total node-hours per user,
with the facility-average efficiency line (90 % Ranger / 85 % Lonestar4)
and one circled problematic user per system.

Paper claims reproduced: the facility averages land on the configured
lines; many heavy users sit below the line (efficient codes) while some
spend 50 %+ of their node-hours idle; the circled user wastes the great
majority of a large consumption (paper: 87 % and 89 %).
"""

from repro.util.textchart import scatter_text
from repro.xdmod.efficiency import EfficiencyAnalysis


def _analyze(run):
    return EfficiencyAnalysis(run.query())


def test_fig4_wasted_nodehours(benchmark, ranger_run, lonestar_run,
                               save_artifact):
    eff_r = benchmark(_analyze, ranger_run)
    eff_l = _analyze(lonestar_run)

    blocks = []
    for name, eff, target in (("Ranger", eff_r, 0.90),
                              ("Lonestar4", eff_l, 0.85)):
        x, y, _ = eff.scatter()
        worst = eff.worst_heavy_user()
        blocks.append(
            f"{name}: facility efficiency {eff.facility_efficiency:.1%} "
            f"(paper line: {target:.0%}); circled user {worst.user}: "
            f"{worst.idle_fraction:.1%} idle over {worst.node_hours:.0f} "
            f"node-hours\n"
            + scatter_text(
                x, y, logx=True, logy=True,
                overlay={(worst.node_hours, worst.wasted_node_hours): "O"},
            )
        )
        # Shape assertions per system.
        assert eff.facility_efficiency == __import__("pytest").approx(
            target, abs=0.05)
        assert worst.idle_fraction > 0.5
        above = eff.users_above_line()
        assert 0 < len(above) < len(eff.users)
    text = "Figure 4 (reproduced)\n\n" + "\n\n".join(blocks)
    save_artifact("fig4_wasted_nodehours", text)
    print("\n" + text)

    # Lonestar4's line sits below Ranger's (85 % vs 90 %).
    assert eff_l.facility_efficiency < eff_r.facility_efficiency
