"""Telemetry overhead: the cost of leaving instrumentation on.

The paper's collector is sold on ~0.1 % overhead (§2.1); our budget for
the pipeline's own telemetry is <1 % of end-to-end ingest wall time,
and it is a *gated* number, not an aspiration: this bench measures the
instrumentation cost of a real archive ingest, writes the result to
``benchmarks/out/telemetry_overhead.txt``, and
``benchmarks/check_regression.py`` fails CI when the overhead climbs
past the budget.

Why not a plain wall-clock A/B?  The instrumentation adds ~1 ms to a
~350 ms ingest, while run-to-run noise on the same machine is tens of
milliseconds (CPU frequency scaling, SQLite page allocation, GC
timing) — the effect is an order of magnitude below the noise floor,
so an A/B gate would alarm on scheduler jitter and sleep through real
regressions alike.  Instead the gated figure is built from two
noise-immune measurements:

* **Exact operation counts** from one real ingest: a counting
  :class:`~repro.telemetry.metrics.MetricsRegistry` subclass tallies
  every instrument lookup (call sites always pair one lookup with one
  mutation).  It is also injected as the per-host scan's private
  registry class, so worker-side parse counters are tallied too, and
  spans are counted exactly from the merged ``span.*.seconds``
  histograms (every closed span feeds one observation).
* **Per-operation costs** from tight-loop microbenches of the same
  call shapes the pipeline uses (``registry.counter(name).inc()`` —
  lookup included — and a full ``span()`` enter/exit).

``overhead = Σ(count × cost) / uninstrumented wall time``.  This is a
slight *over*-estimate (a span's cost already contains its histogram
observation, which the lookup tally counts again), which is the right
direction for a budget gate.  A wall-clock A/B is still run and
reported as a sanity line — it should straddle zero — but is not the
gated number.
"""

from __future__ import annotations

import gc
import io
import os
import time

import pytest

from repro import TEST_SYSTEM, Facility
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive
from repro.telemetry.metrics import (
    MetricsRegistry,
    set_enabled,
    use_registry,
)
from repro.telemetry.trace import Tracer, use_tracer


def _quick() -> bool:
    """True when the CI smoke mode is requested via the environment."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    """A finished archive + accounting text, built once."""
    cfg = TEST_SYSTEM.scaled(num_nodes=8, horizon_days=2, n_users=10)
    archive_dir = str(tmp_path_factory.mktemp("telemetry_bench"))
    run = Facility(cfg, seed=21).run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    return cfg, archive_dir, buf.getvalue(), lariat


class _CountingRegistry(MetricsRegistry):
    """Tallies instrument lookups; call sites pair each with a mutation.

    The tally is class-level so every instance — the ambient registry
    and each per-host private one the scan path constructs — feeds one
    shared count.  Lookups made by :meth:`merge_snapshot` are excluded:
    they are bookkeeping, not call-site instrumentation.
    """

    tally: dict[str, int] = {}
    _merging = False

    def counter(self, name):
        if not self._merging:
            type(self).tally["counter"] += 1
        return super().counter(name)

    def gauge(self, name):
        if not self._merging:
            type(self).tally["gauge"] += 1
        return super().gauge(name)

    def histogram(self, name, bounds=None):
        if not self._merging:
            type(self).tally["histogram"] += 1
        if bounds is None:
            return super().histogram(name)
        return super().histogram(name, bounds)

    def merge_snapshot(self, snap):
        self._merging = True
        try:
            super().merge_snapshot(snap)
        finally:
            self._merging = False


def _count_spans(merged) -> int:
    """Total spans across coordinator and workers, from the merged
    ``span.<name>.seconds`` histograms (one observation per span)."""
    return sum(h.count for name, h in merged.histograms.items()
               if name.startswith("span.") and name.endswith(".seconds"))


def _one_pass(prepared, enabled: bool,
              registry: MetricsRegistry | None = None,
              tracer: Tracer | None = None) -> float:
    """One full serial ingest; returns wall seconds."""
    cfg, archive_dir, accounting, lariat = prepared
    gc.collect()
    set_enabled(enabled)
    try:
        with use_registry(registry or MetricsRegistry()), \
                use_tracer(tracer or Tracer()):
            t0 = time.perf_counter()
            report = IngestPipeline(Warehouse()).ingest(
                cfg, accounting_text=accounting,
                archive=HostArchive(archive_dir), lariat_records=lariat)
            elapsed = time.perf_counter() - t0
    finally:
        set_enabled(True)
    assert report.jobs_loaded > 0
    return elapsed


def _per_op_seconds() -> dict[str, float]:
    """Tight-loop cost of each instrumentation shape, per operation."""
    n = 20_000 if _quick() else 100_000
    registry, tracer = MetricsRegistry(), Tracer()
    costs: dict[str, float] = {}
    with use_registry(registry), use_tracer(tracer):
        t0 = time.perf_counter()
        for _ in range(n):
            registry.counter("bench.counter").inc(7)
        costs["counter"] = (time.perf_counter() - t0) / n
        t0 = time.perf_counter()
        for _ in range(n):
            registry.gauge("bench.gauge").set(1.5)
        costs["gauge"] = (time.perf_counter() - t0) / n
        t0 = time.perf_counter()
        for _ in range(n):
            registry.histogram("bench.hist").observe(0.1)
        costs["histogram"] = (time.perf_counter() - t0) / n
        # Spans are heavier (context manager + perf_counter pair +
        # histogram feed); bench fewer, and reset the tree as a run
        # does, so the roots list never grows unbounded.
        n_spans = n // 10
        t0 = time.perf_counter()
        for _ in range(n_spans):
            with tracer.span("bench.span"):
                pass
        costs["span"] = (time.perf_counter() - t0) / n_spans
        tracer.reset()
    return costs


def test_telemetry_overhead(prepared, save_artifact, monkeypatch):
    """Gate the <1 % budget on op counts × per-op costs."""
    import repro.ingest.parallel as parallel_mod

    # Exact op counts from one instrumented ingest — the counting class
    # also replaces the private registry the per-host scan constructs,
    # so worker-side parse instrumentation lands in the same tally.
    _CountingRegistry.tally = {"counter": 0, "gauge": 0, "histogram": 0}
    monkeypatch.setattr(parallel_mod, "MetricsRegistry",
                        _CountingRegistry)
    ambient = _CountingRegistry()
    _one_pass(prepared, True, registry=ambient, tracer=Tracer())
    ops = dict(_CountingRegistry.tally)
    ops["span"] = _count_spans(ambient.snapshot())
    monkeypatch.undo()

    costs = _per_op_seconds()
    added_s = sum(ops[kind] * costs[kind] for kind in ops)

    # Uninstrumented wall time: best of alternating passes (the A/B
    # delta doubles as the sanity line).
    rounds = 3 if _quick() else 7
    _one_pass(prepared, True)  # warm-up: imports, page cache, sqlite
    on_times = [_one_pass(prepared, True) for _ in range(rounds)]
    off_times = [_one_pass(prepared, False) for _ in range(rounds)]
    best_on, best_off = min(on_times), min(off_times)
    overhead_pct = added_s / best_off * 100.0
    ab_pct = (best_on - best_off) / best_off * 100.0

    op_lines = [
        f"  {kind:<10} {ops[kind]:>8,} ops x {costs[kind] * 1e9:>6.0f} ns"
        for kind in ("counter", "gauge", "histogram", "span")
    ]
    text = "\n".join([
        "Telemetry overhead (instrumentation cost of one serial ingest)",
        "",
        "operation counts (real ingest) x microbenched per-op cost:",
        *op_lines,
        f"added work: {added_s * 1000.0:.3f} ms "
        f"on a {best_off * 1000.0:.0f} ms uninstrumented ingest",
        f"telemetry overhead: {overhead_pct:.3f} % (budget < 1 %)",
        "",
        f"wall-clock A/B sanity (noise floor >> effect): "
        f"{ab_pct:+.2f} % over {rounds} alternating best-of passes",
    ])
    save_artifact("telemetry_overhead", text)
    print("\n" + text)

    assert added_s > 0
    assert overhead_pct < 1.0, (
        f"telemetry instrumentation costs {overhead_pct:.3f} % of ingest "
        f"wall time — over the 1 % budget")
