"""Figure 11: memory used per node over time on both systems.

Paper claims reproduced: Ranger (32 GB/node) averages under 10 GB with
peaks under 16 GB (< 50 % of capacity); Lonestar4 (24 GB/node) runs
relatively hotter, ~15 GB on average — i.e. a substantially higher
fraction of capacity than Ranger.
"""

from repro.util.textchart import series_text
from repro.xdmod.timeseries import SystemTimeseries


def test_fig11_memory_series(benchmark, ranger_run, lonestar_run,
                             save_artifact):
    ts_r = SystemTimeseries(ranger_run.warehouse, "ranger")
    ts_l = SystemTimeseries(lonestar_run.warehouse, "lonestar4")
    mem_r = benchmark(ts_r.memory_per_node)
    mem_l = ts_l.memory_per_node()

    cap_r = ranger_run.config.node.memory_gb
    cap_l = lonestar_run.config.node.memory_gb
    text = "Figure 11 (reproduced): memory used per node (GB)\n\n" + "\n".join([
        series_text(mem_r.times, mem_r.values, label="Ranger    (32 GB)"),
        series_text(mem_l.times, mem_l.values, label="Lonestar4 (24 GB)"),
        "",
        f"Ranger: mean {mem_r.mean:.1f} GB ({mem_r.mean / cap_r:.0%}), "
        f"peak {mem_r.peak:.1f} GB ({mem_r.peak / cap_r:.0%})",
        f"Lonestar4: mean {mem_l.mean:.1f} GB ({mem_l.mean / cap_l:.0%}), "
        f"peak {mem_l.peak:.1f} GB ({mem_l.peak / cap_l:.0%})",
    ])
    save_artifact("fig11_memory_series", text)
    print("\n" + text)

    # Ranger: low occupancy (paper: <10/32 GB mean, <16 GB peaks).
    assert mem_r.mean / cap_r < 0.45
    assert mem_r.peak / cap_r < 0.7
    # Lonestar4 runs a higher fraction of its capacity than Ranger.
    assert mem_l.mean / cap_l > mem_r.mean / cap_r
    assert mem_l.peak <= cap_l
