"""Shared fixtures for the figure/table reproduction benches.

Two study-period replicas (one per system) are simulated once per session;
each bench times the *analysis* that generates its table or figure and
writes the reproduced rows/series to ``benchmarks/out/<name>.txt`` so the
numbers recorded in EXPERIMENTS.md can be regenerated verbatim.

Scale note (DESIGN.md §3): node counts and horizons are compressed from
the paper's 3936-node × 20-month production systems; every reproduced
quantity is either per-job, node-hour-weighted, or a fraction of capacity,
so the *shape* is preserved at this scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import LONESTAR4, RANGER, Facility

OUT_DIR = Path(__file__).parent / "out"

#: Scaled study periods used by every figure bench.  Populations are kept
#: in the hundreds so per-application user pools are big enough for the
#: paper's app-level comparisons (one sloppy heavy user must not be able
#: to swamp a whole application's node-hour-weighted profile).
RANGER_BENCH = RANGER.scaled(num_nodes=64, horizon_days=40, n_users=240)
LONESTAR_BENCH = LONESTAR4.scaled(num_nodes=48, horizon_days=35, n_users=200)


@pytest.fixture(scope="session")
def ranger_run():
    return Facility(RANGER_BENCH, seed=42).run()


@pytest.fixture(scope="session")
def lonestar_run():
    return Facility(LONESTAR_BENCH, seed=42).run()


@pytest.fixture(scope="session")
def save_artifact():
    """Write a reproduced table/series to benchmarks/out/<name>.txt."""
    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
