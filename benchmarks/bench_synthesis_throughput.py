"""Vectorized synthesis vs the scalar daemon loop: replay throughput.

The slow path's write side used to be a per-timestep Python loop — one
``sample()`` per node per interval, each formatting ~160 counter rows
through string concatenation.  The vectorized engine
(``docs/PERFORMANCE.md`` "Vectorized synthesis") batches every
job-segment into one ``[timesteps x devices x counters]`` kernel call
per collector and, for v2 archives, hands the columns straight to the
encoder without re-parsing the text it just rendered.

This bench runs the scheduler simulation once, then times ONLY the node
replay for both engines in the tentpole configuration — direct-to-v2,
uncompressed — and asserts the two archive trees are byte-identical
before reporting the ratio.  The ``synthesis speedup`` line is gated in
``check_regression.py`` with a hard 5.0 floor (the acceptance criterion
for the engine); it is a wall-clock ratio, so on shared runners the
gate reports as advisory and ``--strict`` enforces it.

Set ``REPRO_BENCH_QUICK=1`` for fewer timed passes (CI smoke).
"""

import hashlib
import json
import os
import shutil
import time
from pathlib import Path

import pytest

from repro import RANGER, Facility
from repro.facility import _replay_nodes

BENCH_CFG = RANGER.scaled(num_nodes=8, horizon_days=1, n_users=10)
SEED = 7


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="module")
def replay_inputs():
    """One scheduler simulation shared by every timed replay pass."""
    facility = Facility(BENCH_CFG, seed=SEED)
    workload, sim, _outages, _cluster = facility._simulate()
    return (BENCH_CFG, SEED, workload.users, workload.util_scale,
            facility.phase_calibration, facility.regressions, sim.records)


def _tree(root) -> dict[str, str]:
    root = Path(root)
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


def _timed(replay_inputs, base: str, synthesis: str, reps: int):
    """(best seconds, first pass's dir, first pass's metrics snapshot)."""
    best, kept_dir, kept_snap = None, None, None
    for i in range(reps):
        out = os.path.join(base, f"{synthesis}-{i}")
        t0 = time.perf_counter()
        _stats, snap = _replay_nodes(
            *replay_inputs, list(range(BENCH_CFG.num_nodes)), out,
            False, "v2", synthesis)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
        if i == 0:
            kept_dir, kept_snap = out, snap
        else:
            shutil.rmtree(out)
    return best, kept_dir, kept_snap


def test_synthesis_throughput(replay_inputs, save_artifact, tmp_path):
    """Scalar daemon loop vs batched kernels, direct-to-v2, no gzip."""
    # The gated number is a ratio of wall times; best-of-N on both
    # sides keeps one noisy pass on a loaded CI runner from swinging it.
    reps = 2 if _quick() else 3

    scalar_s, scalar_dir, _ = _timed(
        replay_inputs, str(tmp_path), "scalar", reps)
    fast_s, fast_dir, fast_snap = _timed(
        replay_inputs, str(tmp_path), "fast", reps)

    assert _tree(fast_dir) == _tree(scalar_dir)  # byte-identical archives

    samples = int(fast_snap.counters["synth.samples"])
    rows = int(fast_snap.counters["synth.rows"])
    nodes = BENCH_CFG.num_nodes
    speedup = scalar_s / fast_s
    text = "\n".join([
        "Vectorized synthesis (batched kernels -> direct-to-v2, "
        "uncompressed)",
        "",
        f"corpus: {nodes} nodes x 1 day ranger, {samples} samples, "
        f"{rows} value rows",
        f"scalar replay: {scalar_s:.2f} s  "
        f"({nodes / scalar_s:.1f} nodes/s)",
        f"fast replay:   {fast_s:.2f} s  ({nodes / fast_s:.1f} nodes/s, "
        f"{rows / fast_s:,.0f} rows/s)",
        f"synthesis speedup: {speedup:.2f}x",
        "",
        "archives byte-identical fast == scalar (checked)",
    ])
    save_artifact("synthesis_throughput", text)
    # Machine-readable trajectory point (uploaded by CI with the rest
    # of benchmarks/out/): one JSON object per run, diffable over time.
    summary = {
        "bench": "synthesis_throughput",
        "system": "ranger",
        "nodes": nodes,
        "days": 1,
        "samples": samples,
        "rows": rows,
        "scalar_s": round(scalar_s, 4),
        "fast_s": round(fast_s, 4),
        "synthesis_speedup_x": round(speedup, 2),
        "nodes_per_s": round(nodes / fast_s, 1),
        "rows_per_s": round(rows / fast_s),
    }
    (Path(__file__).parent / "out" / "synthesis_summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print("\n" + text)
    assert speedup > 1.0
