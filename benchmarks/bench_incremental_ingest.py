"""Incremental ingest: ledger-driven append vs a full re-ingest.

The paper's pipeline runs as a nightly delta ETL — each day's host
files are folded into the warehouse without re-reading the months
already loaded.  This bench reproduces that access pattern: a warehouse
seeded through day N-1 absorbs the final day with
``ingest(mode="append")`` and is compared against re-ingesting the
whole archive from scratch.  The append pass must produce a warehouse
whose analytics-visible rows are identical to the one-shot result, and
the gate in ``check_regression.py`` requires the speedup to stay >= 5x
(the delta is a few days of a ~20-day corpus; the remaining cost is
the manifest scan plus the appended days' parse and lookback).

Set ``REPRO_BENCH_QUICK=1`` to run one timed pass per configuration
(CI smoke) instead of three.
"""

import io
import os
import time

import pytest

from repro import TEST_SYSTEM, Facility
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive

#: Facility horizon; the append pass consumes everything past SEED_DAYS.
HORIZON_DAYS = 20
SEED_DAYS = 19


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A finished HORIZON_DAYS archive plus its accounting and Lariat."""
    cfg = TEST_SYSTEM.scaled(num_nodes=8, horizon_days=HORIZON_DAYS,
                             n_users=24)
    archive_dir = str(tmp_path_factory.mktemp("inc_bench"))
    run = Facility(cfg, seed=33).run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, cfg.node.cores, cfg.name).write_all(run.records)
    lariat = [lariat_record_for(r, cfg.node.cores) for r in run.records]
    return cfg, archive_dir, buf.getvalue(), lariat, run


def _ingest(corpus, warehouse, **kw):
    cfg, archive_dir, accounting, lariat, _run = corpus
    return IngestPipeline(warehouse).ingest(
        cfg, accounting_text=accounting, archive=HostArchive(archive_dir),
        lariat_records=lariat, **kw)


def _data_rows(warehouse):
    """Every analytics-visible row, ordered (ledger/meta excluded)."""
    warehouse.commit()
    return {
        table: warehouse.connection.execute(
            f"SELECT {cols} FROM {table} ORDER BY {cols}").fetchall()
        for table, cols in [
            ("jobs", "system, jobid, user, account, science_field, app, "
                     "queue, exit_status, submit_time, start_time, "
                     "end_time, nodes, cores, node_hours"),
            ("job_metrics", "system, jobid, metric, value"),
            ("system_series", "system, metric, t, value"),
        ]
    }


def test_incremental_append_speedup(corpus, save_artifact):
    """Time one appended day against re-ingesting the whole corpus."""
    # The gated number is a ratio of two wall times, so both sides are
    # best-of-N even in quick mode — a single noisy pass on a loaded CI
    # runner would swing the speedup by +/-20%.
    reps = 2 if _quick() else 3

    full_times = []
    for _ in range(reps):
        w_full = Warehouse()
        t0 = time.perf_counter()
        full_report = _ingest(corpus, w_full)
        full_times.append(time.perf_counter() - t0)
        if _ == 0:
            full_rows = _data_rows(w_full)
        w_full.close()
    full_s = min(full_times)

    append_times = []
    for _ in range(reps):
        w_inc = Warehouse()
        _ingest(corpus, w_inc, through_day=SEED_DAYS)
        t0 = time.perf_counter()
        report = _ingest(corpus, w_inc, mode="append")
        append_times.append(time.perf_counter() - t0)
        if _ == 0:
            assert _data_rows(w_inc) == full_rows
            delta = report.delta
        w_inc.close()
    append_s = min(append_times)

    archive = HostArchive(corpus[1])
    n_files = len(archive.manifest())
    speedup = full_s / append_s
    text = "\n".join([
        "Incremental ingest (ledger-driven append vs full re-ingest)",
        "",
        f"corpus: {n_files} host-day files, "
        f"{full_report.jobs_loaded} jobs, horizon {HORIZON_DAYS} days",
        f"full re-ingest: {full_s:.2f} s",
        f"seed through day {SEED_DAYS}, then append the rest "
        f"({delta})",
        f"append pass: {append_s:.2f} s",
        f"append speedup: {speedup:.1f}x",
        "",
        "warehouse rows after append == one-shot ingest (checked)",
    ])
    save_artifact("incremental_ingest", text)
    print("\n" + text)
    assert full_report.jobs_loaded > 0
    assert speedup > 1.0
