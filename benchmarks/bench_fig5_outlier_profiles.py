"""Figure 5: usage profiles of the users circled in Figure 4.

Paper claims reproduced: the circled user's cpu_idle sits far above the
facility average (8x on Ranger, 5x on Lonestar4) while every *other*
metric shows normal-to-light usage — "nothing to explain the anomalously
high CPU idle fraction".
"""

from repro.ingest.summarize import KEY_METRICS
from repro.util.textchart import radar_text
from repro.xdmod.efficiency import EfficiencyAnalysis
from repro.xdmod.profiles import UsageProfiler


def _circled_profile(run):
    q = run.query()
    worst = EfficiencyAnalysis(q).worst_heavy_user()
    return UsageProfiler(q).profile("user", worst.user)


def test_fig5_outlier_profiles(benchmark, ranger_run, lonestar_run,
                               save_artifact):
    p_r = benchmark(_circled_profile, ranger_run)
    p_l = _circled_profile(lonestar_run)

    text = "Figure 5 (reproduced): circled users' profiles\n\n" + "\n\n".join(
        f"{name} — {p.entity} ({p.job_count} jobs, "
        f"{p.node_hours:.0f} node-hours):\n{radar_text(p.values)}"
        for name, p in (("Ranger", p_r), ("Lonestar4", p_l))
    )
    save_artifact("fig5_outlier_profiles", text)
    print("\n" + text)

    for p in (p_r, p_l):
        idle_ratio = p.values["cpu_idle"]
        # Paper: 8x / 5x the average user's idle.  Accept >= 3x.
        assert idle_ratio > 3.0
        # Every other metric: normal-to-light (no alternative explanation).
        others = [p.values[m] for m in KEY_METRICS if m != "cpu_idle"]
        assert max(others) < idle_ratio / 2
        assert max(others) < 2.5
