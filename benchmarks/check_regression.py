"""Bench-smoke regression gate.

Parses the human-readable artifacts the bench smoke leaves under
``benchmarks/out/`` and compares the headline numbers against the
committed ``benchmarks/baseline.json``.  A metric that regresses by
more than the slack factor (default 30%, ``--slack`` / the
``REPRO_BENCH_SLACK`` env var) fails the gate with exit code 1, so a
perf regression turns the CI job red instead of scrolling past in a
log nobody reads.

Gated metrics::

    ingest_serial_mb_per_s        serial ingest throughput  (higher)
    columnar_ingest_speedup_x     v2 vs text ingest rate    (higher)
    report_cold_ms                cold report-suite latency (lower)
    report_warm_ms                warm (memoized) latency   (lower)
    telemetry_overhead_pct        telemetry on-vs-off cost  (lower)
    incremental_append_speedup_x  append vs full re-ingest  (higher)
    service_p99_ms                warm report p99 under 64
                                  concurrent sessions       (lower)
    service_cli_speedup_x         warm report vs per-request
                                  CLI invocation            (higher)
    service_coalesce_rate         single-flight dedup rate  (higher)
    federation_warm_ms            warm cross-cluster
                                  scatter-gather group_by   (lower)
    federation_scatter_speedup_x  scatter-gather vs N
                                  sequential shard opens    (higher)
    federation_shard_ingest_speedup_x
                                  process-pool shard fan-out
                                  vs the serial loop        (higher)
    live_batch_ms                 live micro-batch append +
                                  snapshot refresh latency  (lower)
    live_top_warm_ms              warm /api/v1/live/top
                                  rate-poll latency         (lower)
    synthesis_speedup_x           vectorized replay vs the
                                  scalar daemon loop        (higher)

Latency metrics carry an absolute *floor*: anything at or under the
floor passes outright, because below it the measurement is timer and
scheduler noise (the warm path is memoized-dict territory — sub-
millisecond on every machine — and a 0.1 ms -> 0.2 ms "100%
regression" means nothing).  For higher-is-better metrics the floor is
the opposite thing — a hard minimum the slack rule can never relax,
used where the requirement is an acceptance criterion rather than a
measured baseline.

The service gates (:data:`ADVISORY`) are wall-clock-sensitive — a p99
under concurrency and a thread-overlap dedup rate both wobble on
shared CI runners — so by default their failures print as ADVISORY
warnings without flipping the exit code.  Pass ``--strict`` (or set
``REPRO_BENCH_STRICT=1``) to enforce them: do that locally on quiet
hardware, and always before refreshing the baseline — ``--update``
implies strict measurement conditions.

Refresh the baseline after an intentional perf change with::

    python benchmarks/check_regression.py --strict --update

run on the same machine class as CI (the committed numbers come from a
quick-mode run, ``REPRO_BENCH_QUICK=1``).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

#: metric -> (artifact file, extraction regex, higher|lower, noise floor)
METRICS = {
    "ingest_serial_mb_per_s": (
        "ingest_throughput.txt",
        re.compile(r"^serial pass:.*?([\d.]+) MB/s raw", re.MULTILINE),
        "higher",
        0.0,
    ),
    # The archive-v2 contract: zero-copy columnar ingest must beat the
    # text parser by at least 5x in raw-bytes MB/s on the same corpus
    # with a byte-identical warehouse (the floor is the acceptance
    # criterion — see docs/PERFORMANCE.md "Columnar archive v2").
    "columnar_ingest_speedup_x": (
        "columnar_ingest.txt",
        re.compile(r"^columnar speedup: ([\d.]+)x", re.MULTILINE),
        "higher",
        5.0,
    ),
    "report_cold_ms": (
        "report_latency.txt",
        re.compile(r"^cold\s+\(one shared scan\):\s+([\d.]+) ms",
                   re.MULTILINE),
        "lower",
        100.0,
    ),
    "report_warm_ms": (
        "report_latency.txt",
        re.compile(r"^warm\s+\(memoized\):\s+([\d.]+) ms", re.MULTILINE),
        "lower",
        50.0,
    ),
    # The incremental-ingest contract: appending one day via the
    # ledger must beat a full re-ingest by at least 5x (the floor is
    # the acceptance criterion itself — a hard minimum the slack rule
    # cannot relax, see docs/PERFORMANCE.md "Incremental ingest").
    "incremental_append_speedup_x": (
        "incremental_ingest.txt",
        re.compile(r"^append speedup: ([\d.]+)x", re.MULTILINE),
        "higher",
        5.0,
    ),
    # The service contract (docs/PERFORMANCE.md "Service latency"):
    # warm report p99 stays under 10 ms with 64 concurrent dashboard
    # sessions live, the service beats a per-request CLI process by at
    # least 100x, and the single-flight layer deduplicates most of a
    # synchronized wave of identical uncached queries.  All three
    # floors are the acceptance criteria themselves.
    "service_p99_ms": (
        "service_latency.txt",
        re.compile(r"^warm report p99: ([\d.]+) ms", re.MULTILINE),
        "lower",
        10.0,
    ),
    "service_cli_speedup_x": (
        "service_latency.txt",
        re.compile(r"^cli speedup: ([\d.]+)x", re.MULTILINE),
        "higher",
        100.0,
    ),
    "service_coalesce_rate": (
        "service_latency.txt",
        re.compile(r"^coalesce rate: ([\d.]+)", re.MULTILINE),
        "higher",
        0.5,
    ),
    # The federation gates (docs/FEDERATION.md): a warm cross-cluster
    # scatter-gather answers from the per-shard snapshot memos (sub-
    # millisecond territory, same noise floor as report_warm_ms), and
    # it must beat re-opening every shard per request.  The shard
    # fan-out gate has no hard floor: on a single-core runner the
    # process pool measures its own overhead (that is why all three
    # are wall-clock ADVISORY gates).
    "federation_warm_ms": (
        "federation_scatter.txt",
        re.compile(r"^federated warm \(scatter-gather\): ([\d.]+) ms",
                   re.MULTILINE),
        "lower",
        50.0,
    ),
    "federation_scatter_speedup_x": (
        "federation_scatter.txt",
        re.compile(r"^scatter speedup: ([\d.]+)x", re.MULTILINE),
        "higher",
        1.0,
    ),
    "federation_shard_ingest_speedup_x": (
        "federation_ingest.txt",
        re.compile(r"^parallel shard speedup: ([\d.]+)x", re.MULTILINE),
        "higher",
        0.0,
    ),
    # The live-mode gates (docs/OBSERVABILITY.md "Live monitoring"):
    # a micro-batch (replay + rotation + ledger append + snapshot
    # refresh) must complete far inside the rotation cadence, and a
    # warm live/top poll — deliberately uncached, one counter scan
    # plus an in-memory rate diff — stays in the same noise-floor
    # territory as the other warm read paths.  Both are wall-clock
    # ADVISORY gates.
    "live_batch_ms": (
        "live_append.txt",
        re.compile(r"^live batch median: ([\d.]+) ms", re.MULTILINE),
        "lower",
        250.0,
    ),
    "live_top_warm_ms": (
        "live_append.txt",
        re.compile(r"^warm live/top median: ([\d.]+) ms", re.MULTILINE),
        "lower",
        10.0,
    ),
    # The vectorized-synthesis contract (docs/PERFORMANCE.md
    # "Vectorized synthesis"): the batched-kernel replay writing
    # direct-to-v2 must beat the scalar daemon loop by at least 5x on
    # the same config with byte-identical archives (asserted inside the
    # bench).  The floor is the acceptance criterion; the number itself
    # is a wall-clock ratio, hence advisory on shared runners.
    "synthesis_speedup_x": (
        "synthesis_throughput.txt",
        re.compile(r"^synthesis speedup: ([\d.]+)x", re.MULTILINE),
        "higher",
        5.0,
    ),
    # The observability budget: telemetry stays on by default, so its
    # cost is a gated headline number.  The 1.0 floor IS the < 1 %
    # budget from docs/OBSERVABILITY.md — at or under it the gate
    # passes outright (A/B timing noise lives well inside ±1 %);
    # above it the usual slack-vs-baseline rule applies and CI goes red.
    "telemetry_overhead_pct": (
        "telemetry_overhead.txt",
        re.compile(r"^telemetry overhead: (-?[\d.]+) %", re.MULTILINE),
        "lower",
        1.0,
    ),
}

#: Wall-clock-sensitive gates: enforced only under ``--strict`` /
#: ``REPRO_BENCH_STRICT=1`` (local quiet hardware, baseline updates);
#: on shared CI runners their failures are advisory warnings so a
#: noisy-neighbour scheduler blip cannot fail an unrelated PR.
ADVISORY = {"service_p99_ms", "service_cli_speedup_x",
            "service_coalesce_rate", "federation_warm_ms",
            "federation_scatter_speedup_x",
            "federation_shard_ingest_speedup_x",
            "live_batch_ms", "live_top_warm_ms",
            "synthesis_speedup_x"}


def read_metrics(out_dir: Path) -> dict[str, float]:
    """Extract every gated metric from the artifacts in *out_dir*.

    Raises ``SystemExit`` with a readable message when an artifact is
    missing or its format has drifted away from the regexes above —
    a gate that silently matches nothing is worse than no gate.  Every
    problem is collected before exiting, so one run reports the whole
    damage instead of failing artifact-by-artifact across retries.
    """
    values = {}
    errors: list[str] = []
    missing_artifacts: set[str] = set()
    for name, (artifact, pattern, _, _) in METRICS.items():
        path = out_dir / artifact
        if not path.exists():
            # One message per missing file, not per metric in it.
            if artifact not in missing_artifacts:
                missing_artifacts.add(artifact)
                errors.append(f"{path} not found — run the bench smoke "
                              f"(REPRO_BENCH_QUICK=1 python -m pytest "
                              f"benchmarks/bench_*.py -q -s) first")
            continue
        match = pattern.search(path.read_text())
        if match is None:
            errors.append(f"could not find {name} in {path}; the "
                          f"artifact format drifted — update METRICS in "
                          f"{__file__}")
            continue
        values[name] = float(match.group(1))
    if errors:
        sys.exit("error:\n  " + "\n  ".join(errors))
    return values


def check(current: dict[str, float], baseline: dict[str, float],
          slack: float, strict: bool = False
          ) -> tuple[list[str], list[str]]:
    """Return ``(failures, advisories)`` — human-readable regression
    messages; only *failures* flip the exit code."""
    failures: list[str] = []
    advisories: list[str] = []
    for name, value in current.items():
        _, _, direction, floor = METRICS[name]
        advisory = name in ADVISORY and not strict
        base = baseline.get(name)
        if base is None:
            failures.append(f"{name}: no baseline entry — run with "
                            f"--update to record one")
            continue
        if direction == "higher":
            # The floor is a hard minimum for higher-is-better metrics:
            # even a baseline refreshed on slow hardware cannot ratchet
            # the requirement below it.
            limit = max(base * (1.0 - slack), floor)
            ok = value >= limit
            verdict = f">= {limit:.1f} required"
        else:
            if value <= floor:
                ok, verdict = True, f"under the {floor:g} noise floor"
            else:
                limit = max(base, floor) * (1.0 + slack)
                ok = value <= limit
                verdict = f"<= {limit:.1f} required"
        status = "ok" if ok else ("ADVISORY" if advisory else "REGRESSION")
        print(f"  {name:<24} {value:>10.1f}  (baseline {base:.1f}, "
              f"{verdict}) {status}")
        if not ok:
            message = (f"{name}: {value:.1f} vs baseline {base:.1f} "
                       f"(> {slack:.0%} worse)")
            (advisories if advisory else failures).append(message)
    return failures, advisories


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="fail CI when bench-smoke numbers regress >slack "
                    "vs the committed baseline")
    parser.add_argument("--out-dir", default=str(BENCH_DIR / "out"),
                        help="directory holding the bench artifacts")
    parser.add_argument("--baseline",
                        default=str(BENCH_DIR / "baseline.json"),
                        help="committed baseline file")
    parser.add_argument("--slack", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SLACK",
                                                     "0.30")),
                        help="allowed fractional regression "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current "
                             "artifacts instead of checking")
    parser.add_argument("--strict", action="store_true",
                        default=os.environ.get("REPRO_BENCH_STRICT",
                                               "") not in ("", "0"),
                        help="enforce the wall-clock-sensitive service "
                             "gates instead of reporting them as "
                             "advisory (default: REPRO_BENCH_STRICT)")
    args = parser.parse_args(argv)

    current = read_metrics(Path(args.out_dir))
    baseline_path = Path(args.baseline)

    if args.update:
        baseline_path.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {baseline_path}")
        for name, value in sorted(current.items()):
            print(f"  {name:<24} {value:>10.1f}")
        return 0

    if not baseline_path.exists():
        sys.exit(f"error: {baseline_path} not found — run with --update "
                 f"to record one")
    baseline = json.loads(baseline_path.read_text())

    mode = "strict" if args.strict else "service gates advisory"
    print(f"bench regression gate (slack {args.slack:.0%}, {mode}):")
    failures, advisories = check(current, baseline, args.slack,
                                 strict=args.strict)
    if advisories:
        print("\nADVISORY (timing-sensitive; not failing this run — "
              "verify locally with --strict):")
        for a in advisories:
            print(f"  {a}")
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("all enforced bench metrics within slack")
    return 0


if __name__ == "__main__":
    sys.exit(main())
