"""Figure 8: active nodes vs time for both systems.

Paper claims reproduced: most nodes are active throughout the study
period; the count drops (to zero for full-system events) during
"relatively infrequent" planned and unplanned shutdowns.
"""


from repro.util.textchart import series_text
from repro.xdmod.timeseries import SystemTimeseries


def test_fig8_active_nodes(benchmark, ranger_run, lonestar_run,
                           save_artifact):
    ts_r = SystemTimeseries(ranger_run.warehouse, "ranger")
    ts_l = SystemTimeseries(lonestar_run.warehouse, "lonestar4")
    active_r = benchmark(ts_r.active_nodes)
    active_l = ts_l.active_nodes()

    text = "Figure 8 (reproduced): active nodes over time\n\n" + "\n".join([
        series_text(active_r.times, active_r.values,
                    label="Ranger   ", fmt=".0f"),
        series_text(active_l.times, active_l.values,
                    label="Lonestar4", fmt=".0f"),
    ])
    save_artifact("fig8_active_nodes", text)
    print("\n" + text)

    for run, active in ((ranger_run, active_r), (lonestar_run, active_l)):
        n = run.config.num_nodes
        assert active.peak == n
        assert active.mean > 0.85 * n          # "most ... active"
        assert active.time_at_zero_fraction() < 0.1  # infrequent outages
        # Dips exist where the outage schedule says they should.
        full = [o for o in run.outages if o.is_full_system]
        if full:
            assert active.minimum == 0
