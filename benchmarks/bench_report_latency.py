"""Report-suite latency: the columnar engine's cold/warm paths vs the
pre-engine per-report reload, plus raw group-by kernel throughput.

Three ways to render the full stakeholder bouquet (all six reports):

* **legacy** — snapshot dropped and memoization disabled before *every*
  report, so each one rebuilds its own columnar image from SQLite: the
  pre-engine behaviour where every report re-scanned the warehouse.
* **cold**  — snapshot dropped once, cache enabled: the bouquet shares
  one warehouse scan and one set of memoized aggregates.
* **warm**  — a second bouquet on the live snapshot: pure memo hits.

The rendered text must be identical across all three (the engine is an
optimization, not a semantic change), and the warm bouquet must beat the
legacy path by at least the 3x the engine promises.  A second section
times the ``np.bincount`` group-by kernel against a straightforward
mask-per-group reference on the same data.

Set ``REPRO_BENCH_QUICK=1`` to run each configuration once (CI smoke)
instead of pytest-benchmark's calibrated rounds.
"""

import os
import time

import numpy as np

from repro.xdmod.query import JobQuery
from repro.xdmod.reports import (
    AdminReport,
    DeveloperReport,
    FundingAgencyReport,
    ResourceManagerReport,
    SupportStaffReport,
    UserReport,
)
from repro.xdmod.snapshot import WarehouseSnapshot, set_cache_enabled


def _quick() -> bool:
    """True when the CI smoke mode is requested via the environment."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _render_bouquet(warehouse, system, user, app) -> list[str]:
    """Render all six stakeholder reports, in a fixed order."""
    return [
        UserReport(warehouse, system).render(user),
        DeveloperReport(warehouse, system).render(app),
        SupportStaffReport(warehouse, system).render(),
        AdminReport(warehouse, system).render(),
        ResourceManagerReport(warehouse, system).render(),
        FundingAgencyReport(warehouse, system).render(),
    ]


def _legacy_group_by(query: JobQuery, dim: str, metrics: tuple):
    """The pre-engine group-by: one boolean mask per group value."""
    vals = query.column(dim)
    w = query.column("node_hours")
    cols = {m: query.column(m) for m in metrics}
    out = []
    for v in np.unique(vals):
        sel = vals == v
        wsum = float(w[sel].sum())
        out.append((
            str(v), int(sel.sum()), wsum,
            {m: float((cols[m][sel] * w[sel]).sum() / wsum)
             for m in metrics},
        ))
    out.sort(key=lambda g: -g[2])
    return out


def test_report_suite_latency(benchmark, ranger_run, save_artifact):
    """Cold/warm/legacy bouquet latency + equality of rendered output."""
    warehouse = ranger_run.warehouse
    system = "ranger"
    base = JobQuery(warehouse, system)
    user = base.top("user", 1)[0]
    app = base.top("app", 1)[0]
    rounds = 1 if _quick() else 3

    def timed(fn) -> float:
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    # Legacy: every report rebuilds its own image, nothing memoized.
    legacy_out = None
    try:
        def legacy():
            nonlocal legacy_out
            set_cache_enabled(False)
            out = []
            for render_one in (
                lambda: UserReport(warehouse, system).render(user),
                lambda: DeveloperReport(warehouse, system).render(app),
                lambda: SupportStaffReport(warehouse, system).render(),
                lambda: AdminReport(warehouse, system).render(),
                lambda: ResourceManagerReport(warehouse, system).render(),
                lambda: FundingAgencyReport(warehouse, system).render(),
            ):
                WarehouseSnapshot.invalidate(warehouse)
                out.append(render_one())
            legacy_out = out
        legacy_s = timed(legacy)
    finally:
        set_cache_enabled(True)

    # Cold: one shared snapshot per bouquet, built from scratch.
    cold_out = None

    def cold():
        nonlocal cold_out
        WarehouseSnapshot.invalidate(warehouse)
        cold_out = _render_bouquet(warehouse, system, user, app)

    cold_s = timed(cold)

    # Warm: live snapshot, hot memo — the interactive steady state.
    cold()  # ensure the snapshot the warm runs hit is freshly built
    warm_out = None

    def warm():
        nonlocal warm_out
        warm_out = _render_bouquet(warehouse, system, user, app)

    if _quick():
        benchmark.pedantic(warm, rounds=1, iterations=1)
    else:
        benchmark(warm)
    warm_s = benchmark.stats.stats.min
    stats = WarehouseSnapshot.for_warehouse(warehouse).cache_stats

    # The engine must not change a single character of any report.
    assert warm_out == cold_out == legacy_out

    # Group-by kernel throughput on the same frame.
    metrics = ("cpu_idle", "mem_used")
    kernel_rows = []
    try:
        set_cache_enabled(False)
        for dims in ("user", "app", ("app", "exit_status")):
            t0 = time.perf_counter()
            groups = base.group_by(dims, metrics=metrics)
            kernel_s = time.perf_counter() - t0
            if isinstance(dims, str):
                ref = _legacy_group_by(base, dims, metrics)
                t0 = time.perf_counter()
                _legacy_group_by(base, dims, metrics)
                ref_s = time.perf_counter() - t0
                assert [g.key for g in groups] == [r[0] for r in ref]
                assert [g.job_count for g in groups] == [r[1] for r in ref]
                np.testing.assert_allclose(
                    [g.node_hours for g in groups], [r[2] for r in ref])
                for g, r in zip(groups, ref):
                    for m in metrics:
                        np.testing.assert_allclose(g.mean(m), r[3][m])
                ref_txt = f"{len(base) / ref_s / 1e3:8.0f}"
            else:
                ref_txt = "       -"
            label = dims if isinstance(dims, str) else "x".join(dims)
            kernel_rows.append(
                f"  {label:<16} {len(groups):>6} groups  "
                f"{len(base) / kernel_s / 1e3:8.0f} krows/s  "
                f"(mask-per-group reference:{ref_txt} krows/s)"
            )
    finally:
        set_cache_enabled(True)

    speedup_legacy = legacy_s / warm_s
    lines = [
        "Report-suite latency (six stakeholder reports, one system)",
        "",
        f"corpus: {len(base)} fully summarized jobs on {system}",
        f"legacy (reload per report): {legacy_s * 1e3:8.1f} ms",
        f"cold   (one shared scan):   {cold_s * 1e3:8.1f} ms  "
        f"({legacy_s / cold_s:.1f}x vs legacy)",
        f"warm   (memoized):          {warm_s * 1e3:8.1f} ms  "
        f"({speedup_legacy:.1f}x vs legacy)",
        f"cache: {stats['entries']} entries, "
        f"{stats['hits']} hits / {stats['misses']} misses",
        "rendered output: identical across all three paths",
        "",
        "group-by kernel throughput (cache disabled; krows = 1000 input "
        "rows):",
        *kernel_rows,
    ]
    text = "\n".join(lines)
    save_artifact("report_latency", text)
    print("\n" + text)

    assert speedup_legacy >= 3.0, (
        f"warm bouquet only {speedup_legacy:.1f}x faster than the "
        f"per-report reload path (need >= 3x)"
    )
