"""Ingest throughput: parse + match + summarize + load for raw host files.

The paper flags "the sheer volume of the data" as a core challenge
(§1.2) and ingests 20 months × 3936 nodes into Netezza/MySQL.  This
bench measures our pipeline's sustained rate in host-days of raw text
per second and in jobs per second, end to end from the archive.
"""

import pytest

from repro import Facility, TEST_SYSTEM
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    """A finished archive + accounting text, built once."""
    import io
    archive_dir = str(tmp_path_factory.mktemp("ingest_bench"))
    fac = Facility(TEST_SYSTEM, seed=21)
    run = fac.run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, TEST_SYSTEM.node.cores, "ranger").write_all(
        run.records)
    lariat = [lariat_record_for(r, TEST_SYSTEM.node.cores)
              for r in run.records]
    return archive_dir, buf.getvalue(), lariat, run


def test_ingest_throughput(benchmark, prepared, save_artifact):
    archive_dir, accounting, lariat, run = prepared

    def ingest():
        pipeline = IngestPipeline(Warehouse())
        return pipeline.ingest(
            TEST_SYSTEM, accounting_text=accounting,
            archive=HostArchive(archive_dir), lariat_records=lariat,
        )

    report = benchmark(ingest)
    assert report.jobs_loaded > 0
    mean_s = benchmark.stats.stats.mean
    host_days = run.archive_stats.host_days
    raw_mb = run.archive_stats.raw_bytes / 1e6
    text = (
        "Ingest throughput (archive -> warehouse, end to end)\n\n"
        f"corpus: {host_days} host-days, {raw_mb:.1f} MB raw, "
        f"{report.jobs_loaded} jobs\n"
        f"one pass: {mean_s:.2f} s  "
        f"({host_days / mean_s:.1f} host-days/s, "
        f"{raw_mb / mean_s:.1f} MB/s, "
        f"{report.jobs_loaded / mean_s:.1f} jobs/s)"
    )
    save_artifact("ingest_throughput", text)
    print("\n" + text)
