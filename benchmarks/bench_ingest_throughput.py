"""Ingest throughput: parse + match + summarize + load for raw host files.

The paper flags "the sheer volume of the data" as a core challenge
(§1.2) and ingests 20 months × 3936 nodes into Netezza/MySQL.  This
bench measures our pipeline's sustained rate in host-days of raw text
per second and in jobs per second, end to end from the archive — serial
and with the parallel scan engine at several worker counts — plus the
peak RSS of the process tree, and writes the comparison to
``benchmarks/out/ingest_throughput.txt``.

Set ``REPRO_BENCH_QUICK=1`` to run each configuration once (CI smoke)
instead of pytest-benchmark's calibrated rounds.
"""

import os
import resource
import time

import pytest

from repro import TEST_SYSTEM, Facility
from repro.ingest.parallel import effective_workers
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive


def _quick() -> bool:
    """True when the CI smoke mode is requested via the environment."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _peak_rss_mb() -> float:
    """Peak RSS of this process plus reaped children, in MB.

    ``ru_maxrss`` is a high-water mark over the whole process lifetime
    (kilobytes on Linux), so this is an upper bound covering every
    configuration run so far, not a per-run figure.
    """
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (self_kb + child_kb) / 1024.0


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    """A finished archive + accounting text, built once."""
    import io
    archive_dir = str(tmp_path_factory.mktemp("ingest_bench"))
    fac = Facility(TEST_SYSTEM, seed=21)
    run = fac.run_with_files(archive_dir)
    buf = io.StringIO()
    AccountingWriter(buf, TEST_SYSTEM.node.cores, "ranger").write_all(
        run.records)
    lariat = [lariat_record_for(r, TEST_SYSTEM.node.cores)
              for r in run.records]
    return archive_dir, buf.getvalue(), lariat, run


def _make_ingest(prepared, workers: int):
    """A no-arg callable running one full ingest pass at *workers*."""
    archive_dir, accounting, lariat, _run = prepared

    def ingest():
        pipeline = IngestPipeline(Warehouse())
        return pipeline.ingest(
            TEST_SYSTEM, accounting_text=accounting,
            archive=HostArchive(archive_dir), lariat_records=lariat,
            workers=workers,
        )

    return ingest


def test_ingest_throughput(benchmark, prepared, save_artifact):
    """Serial throughput plus a worker-count scaling sweep."""
    run = prepared[3]
    ingest = _make_ingest(prepared, workers=1)

    if _quick():
        report = benchmark.pedantic(ingest, rounds=1, iterations=1)
    else:
        report = benchmark(ingest)
    assert report.jobs_loaded > 0
    mean_s = benchmark.stats.stats.mean
    host_days = run.archive_stats.host_days
    raw_mb = run.archive_stats.raw_bytes / 1e6
    stored_mb = run.archive_stats.compressed_bytes / 1e6

    # Two rates, reported explicitly: "raw" divides by the text-
    # equivalent (uncompressed) bytes the parser actually consumed,
    # "stored" by the on-disk (gzipped) bytes read.  A single
    # unlabelled MB/s is ambiguous between the two by the compression
    # ratio (~3x), which is exactly the error bar that matters when
    # comparing against the paper's volume figures.
    lines = [
        "Ingest throughput (archive -> warehouse, end to end)",
        "",
        f"corpus: {host_days} host-days, {raw_mb:.1f} MB raw "
        f"({stored_mb:.1f} MB stored on disk), "
        f"{report.jobs_loaded} jobs",
        f"serial pass: {mean_s:.2f} s  "
        f"({host_days / mean_s:.1f} host-days/s, "
        f"{raw_mb / mean_s:.1f} MB/s raw, "
        f"{stored_mb / mean_s:.1f} MB/s stored, "
        f"{report.jobs_loaded / mean_s:.1f} jobs/s)",
        "",
        "scaling (one pass per worker count; requested counts are "
        f"clamped to the {os.cpu_count()} visible CPU(s), so pool "
        "speedup needs multicore hardware):",
    ]
    n_hosts = len(HostArchive(prepared[0]).hostnames())
    for workers in (1, 2, 4):
        eff = effective_workers(workers, n_hosts)
        t0 = time.perf_counter()
        r = _make_ingest(prepared, workers)()
        elapsed = time.perf_counter() - t0
        assert r.jobs_loaded == report.jobs_loaded
        lines.append(
            f"  workers={workers} (effective {eff}): {elapsed:.2f} s  "
            f"({raw_mb / elapsed:.1f} MB/s raw)"
        )
    lines.append(f"peak RSS (process tree high-water mark): "
                 f"{_peak_rss_mb():.0f} MB")
    text = "\n".join(lines)
    save_artifact("ingest_throughput", text)
    print("\n" + text)
