"""Ablation: complement-aware backfill vs plain EASY (paper §5's
"add high I/O jobs when I/O is relatively free").

Success metric follows the proposal's intent: with the same workload and
equal delivered utilization, selecting complementary backfill candidates
should smooth the aggregate scratch-I/O series (lower peak-to-mean and
coefficient of variation), i.e. the filesystem sees steadier pressure.
"""

import numpy as np

from benchmarks.conftest import RANGER_BENCH
from repro import Facility
from repro.scheduler.policies import EasyBackfillPolicy
from repro.scheduler.resource_aware import ResourceAwareBackfillPolicy
from repro.util.tables import render_table

_CFG = RANGER_BENCH.scaled(num_nodes=48, horizon_days=15, n_users=80)


def _run(policy):
    run = Facility(_CFG, seed=5, policy=policy).run(with_syslog=False)
    _, io = run.warehouse.series(_CFG.name, "io_scratch_write_mb")
    _, busy = run.warehouse.series(_CFG.name, "busy_nodes")
    _, active = run.warehouse.series(_CFG.name, "active_nodes")
    up = active > 0
    util = float(busy[up].mean() / active[up].mean())
    mean = float(io.mean())
    return {
        "policy": policy.name,
        "utilization": util,
        "io_mean": mean,
        "io_cv": float(io.std() / mean) if mean else float("nan"),
        "io_p99_over_mean": float(np.percentile(io, 99) / mean)
        if mean else float("nan"),
        "jobs": len(run.records),
    }


def test_ablation_complement(benchmark, save_artifact):
    aware = benchmark.pedantic(_run, args=(ResourceAwareBackfillPolicy(),),
                               rounds=1, iterations=1)
    easy = _run(EasyBackfillPolicy())

    rows = [
        {"policy": d["policy"],
         "utilization": f"{d['utilization']:.1%}",
         "scratch MB/s (mean)": f"{d['io_mean']:.1f}",
         "CV": f"{d['io_cv']:.2f}",
         "p99/mean": f"{d['io_p99_over_mean']:.2f}",
         "jobs": d["jobs"]}
        for d in (easy, aware)
    ]
    text = render_table(
        rows, ["policy", "utilization", "scratch MB/s (mean)", "CV",
               "p99/mean", "jobs"],
        title="Ablation: complement-aware backfill (paper §5 proposal)",
    )
    save_artifact("ablation_complement", text)
    print("\n" + text)

    # Equal service: utilization and throughput within noise of EASY.
    assert abs(aware["utilization"] - easy["utilization"]) < 0.03
    assert abs(aware["jobs"] - easy["jobs"]) < 0.05 * easy["jobs"]
    # The proposal's payoff: no *worse* I/O burstiness (and typically
    # smoother).  Backfill reordering is a weak lever at this scale, so
    # the bound is "not worse + margin" rather than a strict win.
    assert aware["io_cv"] <= easy["io_cv"] * 1.10
