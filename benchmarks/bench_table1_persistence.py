"""Table 1: persistence ratios for 5 metrics at offsets 10-1000 min.

Paper (Ranger):

    Offset(min)  flops  mem    write  ib_tx  cpu_idle
    10           0.123  0.148  0.311  0.268  0.267
    30           0.211  0.217  0.494  0.431  0.375
    100          0.377  0.344  0.670  0.652  0.544
    500          0.705  0.638  0.999  0.911  0.849
    1000         0.889  0.814  -      0.999  1.009
    Fit R^2      0.98   0.95   0.995  0.998  0.98

Shape claims reproduced: ratios rise monotonically from ~0.1-0.5 at 10 min
to ~1 by 1000 min; every metric fits a logarithmic model;
io_scratch_write is the least predictable metric and net_ib_tx the next.
"""

from repro.util.tables import render_table
from repro.xdmod.persistence import PersistenceAnalysis


def _render(table) -> str:
    offsets = table[0].offsets_min
    rows = []
    for off in offsets:
        row = {"Offset(min)": off}
        for r in table:
            try:
                row[r.metric] = f"{r.ratios[r.offsets_min.index(off)]:.3f}"
            except ValueError:
                row[r.metric] = "-"
        rows.append(row)
    fit = {"Offset(min)": "Fit R^2"}
    fit.update({r.metric: f"{r.fit_r_squared:.3f}" for r in table})
    rows.append(fit)
    cols = ["Offset(min)"] + [r.metric for r in table]
    return render_table(rows, cols, title="Table 1 (reproduced, Ranger)")


def test_table1_persistence(benchmark, ranger_run, save_artifact):
    analysis = PersistenceAnalysis(ranger_run.warehouse, "ranger")
    table = benchmark(analysis.table)
    text = _render(table)
    save_artifact("table1_persistence", text)
    print("\n" + text)

    rows = {r.metric: r for r in table}
    # Monotone growth toward saturation near 1 (estimator noise allowed).
    for r in table:
        for a, b in zip(r.ratios, r.ratios[1:]):
            assert b >= a - 0.05
        assert r.ratios[0] < 0.6
        assert r.ratios[-1] > 0.7
        # Logarithmic model fits (paper R^2 0.95-0.998).
        assert r.fit_r_squared > 0.75
    # Predictability ordering: io least predictable, then net.
    order = analysis.predictability_order()
    assert order[0] == "io_scratch_write"
    assert order[1] == "net_ib_tx"
    # flops/mem are the most predictable pair at short offsets.
    assert rows["mem_used"].ratios[0] < rows["io_scratch_write"].ratios[0]
    assert rows["cpu_flops"].ratios[0] < rows["net_ib_tx"].ratios[0]
