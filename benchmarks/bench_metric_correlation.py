"""§4.2 claim: the eight key metrics are "the smallest independent set".

Paper: "there are many highly correlated or anti-correlated metrics,
such as cpu_user ... negatively correlated to cpu_idle, or net_ib_rx ...
positively correlated to net_ib_tx.  Therefore, we have selected the
smallest independent set of metrics."

We compute the full job-level correlation matrix, list the strong pairs,
and run the greedy independent-set selection with the key metrics as
priority — the redundant mirrors must all fall out.
"""

from repro.ingest.summarize import KEY_METRICS
from repro.util.tables import render_table
from repro.xdmod.correlation import (
    correlation_matrix,
    select_independent,
    strong_pairs,
)


def test_metric_correlation(benchmark, ranger_run, save_artifact):
    query = ranger_run.query()
    names, r = benchmark(correlation_matrix, query)
    pairs = strong_pairs(names, r, threshold=0.8)
    kept = select_independent(names, r, threshold=0.8,
                              priority=KEY_METRICS)

    rows = [{"metric A": a, "metric B": b, "corr": f"{c:+.2f}"}
            for a, b, c in pairs]
    text = (
        render_table(rows, ["metric A", "metric B", "corr"],
                     title="Strong (|r| >= 0.8) metric pairs (reproduced)")
        + "\n\nindependent set kept: " + ", ".join(kept)
    )
    save_artifact("metric_correlation", text)
    print("\n" + text)

    idx = {n: i for i, n in enumerate(names)}
    # The paper's named examples.
    assert r[idx["cpu_user"], idx["cpu_idle"]] < -0.8
    assert r[idx["net_ib_rx"], idx["net_ib_tx"]] > 0.8
    # Redundant mirrors drop; the key metrics' core survives.
    assert "cpu_user" not in kept
    assert "net_ib_rx" not in kept
    for m in ("cpu_idle", "cpu_flops", "mem_used", "io_scratch_write",
              "net_ib_tx"):
        assert m in kept
    # The selection genuinely shrinks the measured set.
    assert len(kept) < len(names)
