"""Figure 6: combined log-offset fit of all 5 metrics' persistence ratios
for both systems.

Paper: Ranger slope 0.36(2) p=5e-12, intercept −0.17(6) p=0.016, R²=0.87;
Lonestar4 slope 0.42(2) p=9e-15, intercept −0.28(5) p=2e-5, R²=0.93 — and
the Lonestar4 slope is *steeper* because its jobs are shorter (446 vs 549
weighted-mean minutes), so the metrics forget their values faster.
"""

from repro.util.tables import render_kv
from repro.xdmod.persistence import PersistenceAnalysis


def test_fig6_persistence_fit(benchmark, ranger_run, lonestar_run,
                              save_artifact):
    pa_r = PersistenceAnalysis(ranger_run.warehouse, "ranger")
    pa_l = PersistenceAnalysis(lonestar_run.warehouse, "lonestar4")
    fit_r = benchmark(pa_r.combined_fit)
    fit_l = pa_l.combined_fit()

    text = "\n\n".join([
        render_kv({"fit": fit_r.summary(),
                   "paper": "intercept -0.17(6) p=0.016, slope 0.36(2), "
                            "R^2=0.87"},
                  title="Figure 6 (reproduced) — Ranger"),
        render_kv({"fit": fit_l.summary(),
                   "paper": "intercept -0.28(5) p=2e-5, slope 0.42(2), "
                            "R^2=0.93"},
                  title="Figure 6 (reproduced) — Lonestar4"),
    ])
    save_artifact("fig6_persistence_fit", text)
    print("\n" + text)

    for fit in (fit_r, fit_l):
        assert 0.2 < fit.slope < 0.55
        assert fit.slope_p < 1e-4  # highly significant, as in the paper
        assert fit.r_squared > 0.6
        assert -0.45 < fit.intercept < 0.25
    # Shorter jobs on Lonestar4 -> steeper slope (paper: 0.42 vs 0.36).
    # At our 1/60-scale node counts the effect (≈0.02-0.05) is of the
    # same order as seed noise, so assert it with a noise allowance; the
    # full-scale direction is documented in EXPERIMENTS.md.
    assert fit_l.slope > fit_r.slope - 0.03
