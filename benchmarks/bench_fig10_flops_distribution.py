"""Figure 10: kernel density of the Ranger FLOPS series.

Paper claims reproduced: the distribution concentrates at a small
fraction of the 579 TF peak ("typically less than 20 TF ... with very
moderate peak values"), with a small spike at zero from shutdown
periods.  The density is a Gaussian KDE with Scott's rule, as in the
paper (R's density()).
"""


from repro.util.textchart import sparkline
from repro.xdmod.density import series_density


def test_fig10_flops_distribution(benchmark, ranger_run, save_artifact):
    curve = benchmark(series_density, ranger_run.warehouse, "ranger",
                      "flops_tf")
    peak = ranger_run.config.peak_tflops

    text = (
        "Figure 10 (reproduced): Ranger FLOPS kernel density\n\n"
        f"TF grid {curve.grid[0]:.2f}..{curve.grid[-1]:.2f}:\n"
        + sparkline(curve.density)
        + f"\nmode {curve.mode:.2f} TF, mean {curve.mean:.2f} TF, "
          f"peak {peak:.1f} TF"
    )
    save_artifact("fig10_flops_distribution", text)
    print("\n" + text)

    assert curve.mode < 0.15 * peak
    assert curve.mean < 0.15 * peak
    # Negligible mass anywhere near benchmarked peak.
    assert curve.fraction_above(0.5 * peak) < 0.01
    # The outage spike at zero: density at 0 is a visible local feature
    # when full-system outages occurred.
    if any(o.is_full_system for o in ranger_run.outages):
        _, v = ranger_run.warehouse.series("ranger", "flops_tf")
        assert (v <= 1e-9).mean() > 0.0
