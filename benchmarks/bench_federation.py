"""Federation: scatter-gather query latency and shard ingest scaling.

Two headline numbers for ``check_regression.py`` (both wall-clock-
sensitive, so their gates are ADVISORY on shared CI runners):

* **Scatter-gather vs sequential per-shard.**  A held-open
  :class:`FederatedWarehouse` answers a merged cross-cluster report
  from the per-shard snapshot memos; the baseline answers the same
  question the pre-federation way — one fresh warehouse open + scan
  per shard per request (N ``repro-report`` invocations and a manual
  merge).  The warm scatter path must win by a wide margin.
* **N-shard parallel ingest scaling.**  ``shard_workers=N`` fans whole
  shards over a process pool; the shard files must be row-identical to
  the serial run (determinism is asserted, not assumed) and the wall
  clock should improve.

Set ``REPRO_BENCH_QUICK=1`` for the smaller CI-smoke configuration.
"""

from __future__ import annotations

import os
import shutil
import sqlite3
import time

import pytest

from repro import LONESTAR4, RANGER, STAMPEDE
from repro.federation import (
    ClusterPlan,
    FederatedFacility,
    FederatedWarehouse,
    merge_group_results,
)
from repro.ingest.warehouse import Warehouse
from repro.xdmod.query import GroupResult, JobQuery


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _plans() -> list[ClusterPlan]:
    nodes, days, users = (12, 4, 24) if _quick() else (24, 8, 48)
    return [
        ClusterPlan("ranger",
                    RANGER.scaled(num_nodes=nodes, horizon_days=days,
                                  n_users=users), seed=7),
        ClusterPlan("lonestar4",
                    LONESTAR4.scaled(num_nodes=nodes, horizon_days=days,
                                     n_users=users), seed=21),
        ClusterPlan("stampede",
                    STAMPEDE.scaled(num_nodes=nodes, horizon_days=days,
                                    n_users=users), seed=42),
    ]


@pytest.fixture(scope="module")
def fed_root(tmp_path_factory) -> str:
    """A three-shard on-disk federation (fast path)."""
    root = str(tmp_path_factory.mktemp("fed_bench") / "fed")
    FederatedFacility.plan(root, _plans()).run()
    return root


def _jobs_rows(path: str) -> list:
    conn = sqlite3.connect(path)
    try:
        return conn.execute(
            "SELECT system, jobid, user, app, node_hours FROM jobs "
            "ORDER BY system, jobid").fetchall()
    finally:
        conn.close()


def test_scatter_gather_vs_sequential(fed_root, save_artifact):
    """Warm federated group_by vs per-request shard opens + merge."""
    reps = 20 if _quick() else 50
    dims = ("cluster", "app")

    fed = FederatedWarehouse.open(fed_root)
    try:
        clusters = fed.clusters
        # Cold: first scatter builds each shard's columnar frame.
        t0 = time.perf_counter()
        cold_groups = fed.group_by(dims)
        cold_ms = (time.perf_counter() - t0) * 1000.0

        snaps = fed.snapshots()
        warm_times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            warm_groups = fed.group_by(dims, snapshots=snaps)
            warm_times.append(time.perf_counter() - t0)
        warm_ms = min(warm_times) * 1000.0
        assert [g.keys for g in warm_groups] == \
            [g.keys for g in cold_groups]

        # Sequential baseline: every request pays N fresh opens + scans
        # (what answering a cross-cluster question cost before the
        # federation layer: one repro-report per shard, merged by hand).
        seq_reps = 3 if _quick() else 5
        seq_times = []
        for _ in range(seq_reps):
            t0 = time.perf_counter()
            parts = []
            for cluster in clusters:
                wh = Warehouse(f"{fed_root}/{cluster}.sqlite")
                for system in wh.systems():
                    q = JobQuery(wh, system)
                    groups = q.group_by("app")
                    parts.append([
                        GroupResult(key=f"{system}|{g.key}",
                                    job_count=g.job_count,
                                    node_hours=g.node_hours,
                                    weighted_means=g.weighted_means,
                                    keys=(system,) + g.keys)
                        for g in groups
                    ])
                wh.close()
            seq_groups = merge_group_results(parts)
            seq_times.append(time.perf_counter() - t0)
        seq_ms = min(seq_times) * 1000.0
        assert [g.keys for g in seq_groups] == \
            [g.keys for g in warm_groups]

        speedup = seq_ms / warm_ms
        n_jobs = sum(len(fed.query(s)) for s in fed.all_systems())
    finally:
        fed.close()

    text = "\n".join([
        "Federation scatter-gather vs sequential per-shard",
        "",
        f"shards: {len(clusters)} ({', '.join(clusters)}), "
        f"{n_jobs} jobs total, group_by {'|'.join(dims)}",
        f"federated cold (first scatter): {cold_ms:.2f} ms",
        f"federated warm (scatter-gather): {warm_ms:.2f} ms",
        f"sequential per-shard opens: {seq_ms:.2f} ms",
        f"scatter speedup: {speedup:.1f}x",
        "",
        "merged groups identical across all three paths (checked)",
    ])
    save_artifact("federation_scatter", text)
    print("\n" + text)
    assert speedup > 1.0


def test_parallel_shard_ingest_scaling(tmp_path_factory, save_artifact):
    """shard_workers=N wall clock vs the serial loop, same output."""
    base = tmp_path_factory.mktemp("fed_scaling")
    plans = _plans()
    # At least 2 workers so the pool path is always exercised; on a
    # single-core runner the measured "speedup" is then pool overhead
    # (advisory gate — see check_regression.py).
    workers = min(len(plans), max(os.cpu_count() or 1, 2))

    def _build(root: str, shard_workers: int) -> float:
        fac = FederatedFacility.plan(root, plans)
        t0 = time.perf_counter()
        fac.run(shard_workers=shard_workers)
        return time.perf_counter() - t0

    serial_root = str(base / "serial")
    parallel_root = str(base / "parallel")
    serial_s = _build(serial_root, 1)
    parallel_s = _build(parallel_root, workers)

    # Determinism: the fan-out must not change a single row.
    for plan in plans:
        assert _jobs_rows(f"{serial_root}/{plan.cluster}.sqlite") == \
            _jobs_rows(f"{parallel_root}/{plan.cluster}.sqlite"), \
            plan.cluster
    shutil.rmtree(serial_root)
    shutil.rmtree(parallel_root)

    speedup = serial_s / parallel_s
    text = "\n".join([
        "Federation parallel shard ingest scaling",
        "",
        f"shards: {len(plans)}, shard workers: {workers}",
        f"serial shard loop: {serial_s:.2f} s",
        f"process-pool fan-out: {parallel_s:.2f} s",
        f"parallel shard speedup: {speedup:.2f}x",
        "",
        "per-shard warehouse rows identical for any worker count "
        "(checked)",
    ])
    save_artifact("federation_ingest", text)
    print("\n" + text)
    assert speedup > 0.0
