"""Figure 12: kernel densities of per-job mean and maximum memory per
node on both systems.

Paper claims reproduced: the max curve (red) sits right of the mean
curve (black); on Ranger even the job-max memory stays around half of
the 32 GB capacity with negligible mass above 16 GB, while on Lonestar4
the max curve approaches the full 24 GB.
"""

from repro.util.textchart import sparkline
from repro.xdmod.density import metric_density


def _curves(run):
    q = run.query()
    return (metric_density(q, "mem_used"),
            metric_density(q, "mem_used_max"))


def test_fig12_memory_distribution(benchmark, ranger_run, lonestar_run,
                                   save_artifact):
    mean_r, max_r = benchmark(_curves, ranger_run)
    mean_l, max_l = _curves(lonestar_run)
    cap_r = ranger_run.config.node.memory_gb
    cap_l = lonestar_run.config.node.memory_gb

    def block(name, mean_c, max_c, cap):
        return (
            f"{name} (capacity {cap:.0f} GB)\n"
            f"  mean: {sparkline(mean_c.density)}  "
            f"[mode {mean_c.mode:.1f} GB]\n"
            f"  max:  {sparkline(max_c.density)}  "
            f"[mode {max_c.mode:.1f} GB]\n"
            f"  mass above capacity/2: mean {mean_c.fraction_above(cap / 2):.1%}, "
            f"max {max_c.fraction_above(cap / 2):.1%}"
        )

    text = ("Figure 12 (reproduced): memory per node distributions\n\n"
            + block("Ranger", mean_r, max_r, cap_r) + "\n\n"
            + block("Lonestar4", mean_l, max_l, cap_l))
    save_artifact("fig12_memory_distribution", text)
    print("\n" + text)

    # Max curve right of mean curve, both systems.
    assert max_r.mean > mean_r.mean
    assert max_l.mean > mean_l.mean
    # Ranger: low usage even at job max (paper: ~50 % of capacity).
    assert max_r.mean < 0.6 * cap_r
    assert mean_r.fraction_above(0.5 * cap_r) < 0.15
    # Lonestar4: hotter, with the max curve approaching capacity.
    assert max_l.mean / cap_l > max_r.mean / cap_r
    assert max_l.fraction_above(0.75 * cap_l) > 0.02
