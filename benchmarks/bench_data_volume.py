"""§4.1 claim: TACC_Stats generates ~0.5 MB raw per node per day, and the
archive compresses ~3x (60 GB -> 20 GB per month on 3936-node Ranger).

We run one node's daemon for a full simulated day at the production
cadence through the rotating archive and measure the file sizes.
"""

from repro.cluster.hardware import ranger_node
from repro.cluster.node import Node
from repro.config import RANGER
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY
from repro.util.units import format_bytes
from repro.workload.applications import get_app
from repro.workload.behavior import JobBehavior
from repro.workload.users import generate_users


def _one_node_day(tmpdir: str) -> HostArchive:
    archive = HostArchive(tmpdir, compress=True)
    node = Node(index=0, hostname="c000-000.bench", hardware=ranger_node())
    daemon = TaccStatsDaemon(
        node, RngFactory(0).stream("n"),
        writer=lambda t: archive.writer(node.hostname, t),
    )
    users = generate_users(5, RngFactory(0).stream("u"))
    behavior = JobBehavior(get_app("namd"), users[0], ranger_node(), 2,
                           duration=DAY, sample_interval=600.0,
                           behavior_seed=2)
    daemon.begin_job("1", 0.0, behavior, 0)
    t = 600.0
    while t < DAY:
        daemon.sample(t)
        t += 600.0
    daemon.end_job("1", float(DAY - 1))
    archive.close()
    return archive


def test_data_volume(benchmark, tmp_path_factory, save_artifact):
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        return _one_node_day(
            str(tmp_path_factory.mktemp(f"vol{counter['n']}")))

    archive = benchmark.pedantic(run, rounds=3, iterations=1)
    stats = archive.stats
    per_day = stats.bytes_per_host_day
    monthly_full_scale = per_day * 30 * RANGER.num_nodes
    text = (
        "Data volume (paper §4.1: 0.5 MB/node/day raw; 60 GB/month raw,\n"
        "20 GB/month compressed for 3936-node Ranger)\n\n"
        f"raw per node-day:  {format_bytes(per_day)}\n"
        f"compression ratio: {stats.compression_ratio:.1f}x\n"
        f"implied full-scale Ranger month: "
        f"{format_bytes(monthly_full_scale)} raw, "
        f"{format_bytes(monthly_full_scale / stats.compression_ratio)} "
        f"compressed"
    )
    save_artifact("data_volume", text)
    print("\n" + text)

    # Same order of magnitude as the paper's 0.5 MB/node/day.
    assert 0.15e6 < per_day < 1.5e6
    # gzip ratio ~3x (paper: 60 GB -> 20 GB).
    assert 2.0 < stats.compression_ratio < 8.0
