"""Ablation: counter-rollover correction on vs off.

32-bit byte counters wrap every ~4.3 GB; at production network rates
that is minutes-to-hours, well inside a job.  A summarizer that ignores
rollover silently reports garbage (negative or tiny deltas).  This
ablation quantifies the corruption the correction prevents — the reason
TACC_Stats samples *periodically* instead of only at job begin/end.
"""

import numpy as np

from repro.tacc_stats.parser import event_delta
from repro.util.tables import render_table

_WIDTH = 32
_RATE_BYTES_S = 3.0e6  # 3 MB/s sustained on a 32-bit byte counter
_INTERVAL = 600.0
_N_SAMPLES = 144  # one day at 10-minute cadence


def _counter_series():
    mod = 1 << _WIDTH
    t = np.arange(_N_SAMPLES + 1) * _INTERVAL
    true_total = _RATE_BYTES_S * t
    return (true_total % mod).astype(np.uint64), true_total[-1]


def _summarize(values, corrected: bool) -> float:
    if corrected:
        return float(sum(
            event_delta(int(a), int(b), _WIDTH)
            for a, b in zip(values, values[1:])
        ))
    # Naive: last - first, no modulus awareness (clamped at 0 the way a
    # careless pipeline would "fix" negative deltas).
    return float(max(int(values[-1]) - int(values[0]), 0))


def test_ablation_rollover(benchmark, save_artifact):
    values, truth = _counter_series()
    corrected = benchmark(_summarize, values, True)
    naive = _summarize(values, False)

    rows = [
        {"method": "rollover-corrected", "total GB": f"{corrected / 1e9:.2f}",
         "error": f"{abs(corrected - truth) / truth:.2%}"},
        {"method": "naive last-first", "total GB": f"{naive / 1e9:.2f}",
         "error": f"{abs(naive - truth) / truth:.2%}"},
        {"method": "(true)", "total GB": f"{truth / 1e9:.2f}", "error": "-"},
    ]
    text = render_table(
        rows, ["method", "total GB", "error"],
        title="Ablation: 32-bit counter rollover over one day at 3 MB/s",
    )
    save_artifact("ablation_rollover", text)
    print("\n" + text)

    assert abs(corrected - truth) / truth < 1e-9
    # The naive reading loses the wrapped multiples of 4.3 GB — a large
    # fraction of a ~260 GB day.
    assert abs(naive - truth) / truth > 0.5
