"""Ablation: TACC_Stats sampling interval (1 / 10 / 30 minutes).

The paper chose 10 minutes as the overhead/fidelity sweet spot (§3).
This ablation measures both sides of that trade on one job: raw data
volume scales inversely with the interval, and the job-summary error —
from piecewise-constant integration of the *same* underlying behaviour
realization — grows as the cadence coarsens.
"""

import io

import pytest

from repro.cluster.hardware import ranger_node
from repro.cluster.node import Node
from repro.ingest.summarize import summarize_job_from_hosts
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import parse_host_text
from repro.util.rng import RngFactory
from repro.util.tables import render_table
from repro.workload.applications import get_app
from repro.workload.behavior import JobBehavior
from repro.workload.users import generate_users

_DURATION = 8 * 3600.0
_METRICS = ("cpu_idle", "cpu_flops", "io_scratch_write", "net_ib_tx")


def _behavior():
    """One fixed realization on a fine (60 s) grid, shared by all
    cadences — the ablation isolates the *measurement* cadence."""
    users = generate_users(5, RngFactory(3).stream("u"))
    return JobBehavior(get_app("wrf"), users[0], ranger_node(), 2,
                       duration=_DURATION, sample_interval=60.0,
                       behavior_seed=77)


def _collect(behavior, interval: float):
    """Sample the shared behaviour at a given cadence; return
    (summary, raw bytes)."""
    node = Node(index=0, hostname="c000-000.abl", hardware=ranger_node())
    buf = io.StringIO()
    daemon = TaccStatsDaemon(node, RngFactory(1).stream("n"),
                             StatsWriter(buf, node.hostname))
    daemon.begin_job("1", 0.0, behavior, 0)
    t = interval
    while t < _DURATION:
        daemon.sample(t)
        t += interval
    daemon.end_job("1", _DURATION)
    host = parse_host_text(buf.getvalue())
    summary = summarize_job_from_hosts("1", [host],
                                       wall_seconds=_DURATION)
    return summary, len(buf.getvalue())


def test_ablation_sampling(benchmark, save_artifact):
    behavior = _behavior()
    reference, b60 = _collect(behavior, 60.0)
    sum600, b600 = benchmark.pedantic(
        _collect, args=(behavior, 600.0), rounds=2, iterations=1)
    sum1800, b1800 = _collect(behavior, 1800.0)

    rows = []
    for interval, (summary, nbytes) in (
        (60.0, (reference, b60)),
        (600.0, (sum600, b600)),
        (1800.0, (sum1800, b1800)),
    ):
        err = max(
            abs(summary.metrics[m] - reference.metrics[m])
            / max(abs(reference.metrics[m]), 1e-9)
            for m in _METRICS
        )
        rows.append({
            "interval": f"{interval / 60:.0f} min",
            "bytes/job": nbytes,
            "bytes/node/day": int(nbytes * 86400 / _DURATION),
            "max summary err": f"{err:.1%}",
        })
    text = render_table(
        rows, ["interval", "bytes/job", "bytes/node/day",
               "max summary err"],
        title="Ablation: sampling interval (one 8 h WRF job, shared "
              "behaviour realization)",
    )
    save_artifact("ablation_sampling", text)
    print("\n" + text)

    # Volume scales ~inversely with the interval.
    assert 6 < b60 / b600 < 14
    assert 2 < b600 / b1800 < 4.5
    # 10-minute summaries stay close to the 1-minute reference.
    for m in _METRICS:
        assert sum600.metrics[m] == pytest.approx(
            reference.metrics[m], rel=0.25, abs=0.05
        ), m
