"""Live mode: micro-batch append latency and warm ``live/top`` reads.

Live mode's operating budget is an operator watching a terminal: each
micro-batch (replay advance + segment rotation + ledger append +
counter upsert + snapshot refresh) must complete well inside the
rotation cadence, and a warm ``/api/v1/live/top`` poll — one indexed
counter scan plus an in-memory rate diff, no L1 cache in front — must
feel instant.  Both are wall-clock numbers, so their gates in
``check_regression.py`` are ADVISORY on shared CI runners (the PR7
convention); run with ``REPRO_BENCH_STRICT=1`` locally before
refreshing the baseline.

Set ``REPRO_BENCH_QUICK=1`` for one timed session (CI smoke).
"""

import os
import statistics
import time

import pytest

from repro import TEST_SYSTEM, Facility
from repro.ingest.warehouse import Warehouse
from repro.live.runner import LiveSession
from repro.service.state import ServiceState
from repro.util.timeutil import HOUR

CFG = TEST_SYSTEM.scaled(num_nodes=4, horizon_days=1, n_users=8)
SEGMENT = 2 * HOUR
WARM_POLLS = 50


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="module")
def live_run(tmp_path_factory):
    """One complete live session into a file warehouse, every batch
    timed: (warehouse path, batch wall times, reports)."""
    reps = 1 if _quick() else 2
    best = None
    for rep in range(reps):
        root = tmp_path_factory.mktemp(f"live_bench_{rep}")
        path = str(root / "live.sqlite")
        warehouse = Warehouse(path, fast_writes=True)
        session = LiveSession(Facility(CFG, seed=21), str(root / "arch"),
                              warehouse=warehouse,
                              segment_seconds=SEGMENT)
        times, reports = [], []
        while not session.done:
            t0 = time.perf_counter()
            report = session.run_batch()
            times.append(time.perf_counter() - t0)
            reports.append(report)
        warehouse.commit()
        warehouse.close()
        if best is None or statistics.median(times) < best[1]:
            best = (path, statistics.median(times), times, reports)
    return best


def test_live_append_and_top_latency(live_run, save_artifact):
    path, batch_median_s, times, reports = live_run

    # Snapshot growth is the liveness invariant the operator relies on.
    counts = [r.snapshot_rows for r in reports]
    assert counts == sorted(counts) and counts[-1] > 0

    # Warm live/top: one baseline poll, then timed steady-state polls.
    state = ServiceState(path)
    system = CFG.name
    state.live_top(system, client="bench")
    polls = []
    for _ in range(WARM_POLLS):
        t0 = time.perf_counter()
        state.live_top(system, n=10, client="bench")
        polls.append(time.perf_counter() - t0)
    state.close()
    top_median_ms = statistics.median(polls) * 1e3

    batch_median_ms = batch_median_s * 1e3
    budget_pct = 100.0 * batch_median_s / SEGMENT
    text = "\n".join([
        "Live micro-batch append + warm live/top latency",
        "",
        f"corpus: {CFG.num_nodes} nodes, {CFG.horizon / 3600:.0f} h "
        f"horizon, {len(reports)} micro-batches of {SEGMENT} s",
        f"jobs appended: {sum(r.jobs_loaded for r in reports)}, "
        f"final snapshot rows: {counts[-1]}",
        f"live batch median: {batch_median_ms:.1f} ms "
        f"(worst {max(times) * 1e3:.1f} ms, "
        f"{budget_pct:.4f}% of the rotation cadence)",
        f"warm live/top median: {top_median_ms:.2f} ms "
        f"({WARM_POLLS} polls, n=10, cache bypassed by design)",
        "",
        "snapshot rows grew monotonically across every batch (checked)",
    ])
    save_artifact("live_append", text)
    print("\n" + text)
    assert batch_median_s < SEGMENT  # sanity: far inside the cadence
    assert top_median_ms < 1000.0
