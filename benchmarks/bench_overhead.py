"""§3 claim: TACC_Stats overhead ≈ 0.1 % at the 10-minute cadence.

Overhead here = (wall time of one full collector invocation) / (sampling
interval).  We time the daemon taking a sample on a busy Ranger node —
the same work the production cron job does — and check the duty cycle is
well under the paper's 0.1 % (our collectors are Python, but the bar is
generous at a 600 s interval).
"""

import io

from repro.cluster.hardware import ranger_node
from repro.cluster.node import Node
from repro.config import RANGER
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.tacc_stats.format import StatsWriter
from repro.util.rng import RngFactory
from repro.workload.applications import get_app
from repro.workload.behavior import JobBehavior
from repro.workload.users import generate_users


def test_sampling_overhead(benchmark, save_artifact):
    node = Node(index=0, hostname="c000-000.bench", hardware=ranger_node())
    buf = io.StringIO()
    daemon = TaccStatsDaemon(node, RngFactory(0).stream("n"),
                             StatsWriter(buf, node.hostname))
    users = generate_users(5, RngFactory(0).stream("u"))
    behavior = JobBehavior(get_app("wrf"), users[0], ranger_node(), 4,
                           duration=30 * 86400.0, sample_interval=600.0,
                           behavior_seed=1)
    daemon.sample(0.0)
    daemon.begin_job("1", 600.0, behavior, 0)

    clock = {"t": 1200.0}

    def one_sample():
        daemon.sample(clock["t"])
        clock["t"] += 600.0

    benchmark(one_sample)
    mean_s = benchmark.stats.stats.mean
    overhead = mean_s / RANGER.sample_interval
    text = (
        "Collector overhead (paper §3: ~0.1 % at 10-minute cadence)\n\n"
        f"one full invocation: {mean_s * 1000:.2f} ms\n"
        f"duty cycle at 600 s interval: {overhead:.4%} "
        f"(paper: ~0.1000%)"
    )
    save_artifact("overhead", text)
    print("\n" + text)
    assert overhead < 0.002  # well under 0.2 %
