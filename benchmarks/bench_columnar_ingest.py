"""Columnar archive v2: zero-copy ingest vs the text parser.

The paper ingests 20 months of per-host text archives and flags parse
cost as the reason the ETL runs as a nightly batch (§2.2).  Archive v2
stores each host-day as memory-mappable column chunks, so ingest reads
``np.frombuffer`` views instead of running the line parser.  This bench
converts a freshly simulated text archive to v2 with ``repro-convert``
and times one serial end-to-end ingest of each against the same
accounting, asserting the analytics-visible warehouse rows are
identical before reporting the ratio.

Both rates divide by the *raw* (text-equivalent) bytes, so the ratio is
a like-for-like measure of pipeline speed on the same logical corpus —
the v2 files' different on-disk size is reported separately.  The
``columnar speedup`` line is gated in ``check_regression.py`` with a
hard 5.0 floor: the acceptance criterion for the format, not a measured
baseline.

Set ``REPRO_BENCH_QUICK=1`` for one timed pass per side (CI smoke)
instead of three.
"""

import io
import os
import time

import pytest

from repro import TEST_SYSTEM, Facility
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.convert import convert_archive


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One simulated text archive plus its v2 conversion, side by side."""
    text_dir = str(tmp_path_factory.mktemp("columnar_bench") / "text")
    v2_dir = text_dir[: -len("text")] + "v2"
    run = Facility(TEST_SYSTEM, seed=21).run_with_files(text_dir)
    buf = io.StringIO()
    AccountingWriter(buf, TEST_SYSTEM.node.cores,
                     TEST_SYSTEM.name).write_all(run.records)
    lariat = [lariat_record_for(r, TEST_SYSTEM.node.cores)
              for r in run.records]
    report = convert_archive(text_dir, to="v2", out_root=v2_dir)
    assert not report.passthrough and not report.drifted
    return text_dir, v2_dir, buf.getvalue(), lariat, run


def _ingest(corpus, archive_dir):
    _, _, accounting, lariat, _run = corpus
    warehouse = Warehouse()
    report = IngestPipeline(warehouse).ingest(
        TEST_SYSTEM, accounting_text=accounting,
        archive=HostArchive(archive_dir), lariat_records=lariat,
        workers=1)
    return warehouse, report


def _data_rows(warehouse):
    """Every analytics-visible row, ordered (ledger/meta excluded)."""
    warehouse.commit()
    return {
        table: warehouse.connection.execute(
            f"SELECT {cols} FROM {table} ORDER BY {cols}").fetchall()
        for table, cols in [
            ("jobs", "system, jobid, user, account, science_field, app, "
                     "queue, exit_status, submit_time, start_time, "
                     "end_time, nodes, cores, node_hours"),
            ("job_metrics", "system, jobid, metric, value"),
            ("system_series", "system, metric, t, value"),
        ]
    }


def _timed(corpus, archive_dir, reps):
    """(best seconds, first pass's rows, report) for one archive."""
    times, rows, report = [], None, None
    for i in range(reps):
        warehouse = None
        t0 = time.perf_counter()
        warehouse, r = _ingest(corpus, archive_dir)
        times.append(time.perf_counter() - t0)
        if i == 0:
            rows, report = _data_rows(warehouse), r
        warehouse.close()
    return min(times), rows, report


def _tree_bytes(root: str) -> int:
    total = 0
    for dirpath, _dirs, files in os.walk(root):
        for f in files:
            total += os.path.getsize(os.path.join(dirpath, f))
    return total


def test_columnar_ingest_speedup(corpus, save_artifact):
    """Serial text ingest vs serial v2 ingest on the same corpus."""
    text_dir, v2_dir, _, _, run = corpus
    # The gated number is a ratio of wall times; best-of-N on both
    # sides keeps one noisy pass on a loaded CI runner from swinging it.
    reps = 2 if _quick() else 3

    text_s, text_rows, text_report = _timed(corpus, text_dir, reps)
    v2_s, v2_rows, v2_report = _timed(corpus, v2_dir, reps)

    assert text_report.jobs_loaded == v2_report.jobs_loaded > 0
    assert text_rows == v2_rows  # byte-identical analytics tables

    raw_mb = run.archive_stats.raw_bytes / 1e6
    host_days = run.archive_stats.host_days
    speedup = text_s / v2_s
    text = "\n".join([
        "Columnar archive v2 (zero-copy mmap ingest vs text parse)",
        "",
        f"corpus: {host_days} host-days, {raw_mb:.1f} MB raw, "
        f"{text_report.jobs_loaded} jobs",
        f"on disk: text (gz) {_tree_bytes(text_dir) / 1e6:.1f} MB, "
        f"v2 {_tree_bytes(v2_dir) / 1e6:.1f} MB",
        f"text ingest: {text_s:.2f} s  ({raw_mb / text_s:.1f} MB/s raw)",
        f"v2 ingest:   {v2_s:.2f} s  ({raw_mb / v2_s:.1f} MB/s raw)",
        f"columnar speedup: {speedup:.2f}x",
        "",
        "warehouse rows text == v2 (checked)",
    ])
    save_artifact("columnar_ingest", text)
    print("\n" + text)
    assert speedup > 1.0
