"""Figure 3: NAMD / AMBER / GROMACS usage profiles on Ranger and
Lonestar4, normalized to each system's average job.

Paper claims reproduced: NAMD and GROMACS run more efficiently (lower
cpu_idle, higher FLOPS) than AMBER on both systems; NAMD's profile is
very similar across the two machines while AMBER's and GROMACS' differ.
"""

import numpy as np

from repro.ingest.summarize import KEY_METRICS
from repro.util.tables import render_table
from repro.xdmod.profiles import UsageProfiler

MD_APPS = ("namd", "amber", "gromacs")


def _profiles(run):
    profiler = UsageProfiler(run.query())
    return profiler.compare("app", MD_APPS)


def _distance(pa, pb):
    # Euclidean distance between the radar shapes (normalized ratios);
    # a log metric would over-weight noise in near-zero idle ratios.
    a = np.array([pa.values[m] for m in KEY_METRICS])
    b = np.array([pb.values[m] for m in KEY_METRICS])
    return float(np.linalg.norm(a - b))


def test_fig3_app_profiles(benchmark, ranger_run, lonestar_run,
                           save_artifact):
    ranger = benchmark(_profiles, ranger_run)
    ls4 = _profiles(lonestar_run)

    rows = []
    for system, profs in (("R", ranger), ("L", ls4)):
        for app in MD_APPS:
            p = profs[app]
            row = {"app": f"{system}-{p.entity}",
                   "jobs": p.job_count}
            row.update({m: f"{p.values[m]:.2f}" for m in KEY_METRICS})
            rows.append(row)
    text = render_table(
        rows, ["app", "jobs"] + list(KEY_METRICS),
        title="Figure 3 (reproduced): MD codes vs system average (=1.0)",
    )
    save_artifact("fig3_app_profiles", text)
    print("\n" + text)

    for profs in (ranger, ls4):
        # Efficiency ordering by cpu_idle (paper's Figure 3 discussion).
        assert profs["namd"].values["cpu_idle"] < profs["amber"].values["cpu_idle"]
        assert profs["gromacs"].values["cpu_idle"] < profs["amber"].values["cpu_idle"]
        assert profs["namd"].values["cpu_flops"] > profs["amber"].values["cpu_flops"]
    # Cross-system similarity: NAMD's profile moves less between machines
    # than AMBER's ("NAMD usage pattern ... very similar whereas GROMACS
    # and AMBER usage is different").
    d_namd = _distance(ranger["namd"], ls4["namd"])
    d_amber = _distance(ranger["amber"], ls4["amber"])
    assert d_namd < d_amber
