"""Figure 1: the integrated workflow — TACC_Stats + accounting + Lariat +
rationalized syslog flowing through matching/summarization into the
XDMoD warehouse and out as reports.

This bench runs the *entire* chain end to end (simulate → collect to
text files → parse → match → summarize → load → render a stakeholder
report) and times it, asserting every stage actually contributed.
"""

from repro import TEST_SYSTEM, Facility
from repro.xdmod.reports import SupportStaffReport


def test_pipeline_workflow(benchmark, tmp_path_factory, save_artifact):
    counter = {"n": 0}

    def full_chain():
        counter["n"] += 1
        d = tmp_path_factory.mktemp(f"wf{counter['n']}")
        run = Facility(TEST_SYSTEM, seed=33).run_with_files(str(d))
        report_text = SupportStaffReport(run.warehouse, "ranger").render()
        return run, report_text

    run, report_text = benchmark.pedantic(full_chain, rounds=2,
                                          iterations=1)
    mean_s = benchmark.stats.stats.mean

    rep = run.ingest_report
    text = (
        "Figure 1 workflow (reproduced end to end)\n\n"
        f"simulate {TEST_SYSTEM.num_nodes} nodes x "
        f"{TEST_SYSTEM.horizon / 86400:.0f} days -> "
        f"{len(run.records)} jobs\n"
        f"archive: {run.archive_stats.file_count} files, "
        f"{run.archive_stats.raw_bytes / 1e6:.1f} MB raw\n"
        f"ingest: {rep}\n"
        f"wall time, whole chain: {mean_s:.1f} s\n\n"
        + report_text
    )
    save_artifact("pipeline_workflow", text)
    print("\n" + text)

    assert rep.jobs_loaded > 0
    assert rep.syslog_events_loaded > 0
    assert rep.match is not None and rep.match.match_rate > 0.9
    assert "circled user" in report_text
