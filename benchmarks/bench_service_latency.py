"""Service latency under concurrent dashboard sessions.

Spins up the real ``repro.service`` HTTP server on a file-backed
warehouse and replays concurrent dashboard sessions against it — 64
keep-alive connections, each painting the interactive endpoint mix
(stakeholder reports, group-by queries, timeseries) on a ~1 s
staggered refresh cadence, the dashboard steady state — measuring
client-side p50/p99 per endpoint family.  (Zero think time would
measure closed-loop saturation of the shared client+server GIL, i.e.
Little's-law queueing, not request latency; the sessions are paced
the way real dashboards are.)  Three acceptance gates feed
``check_regression.py``:

* **warm report p99** — the steady-state (cache-hot) report latency
  must stay under 10 ms with 64 concurrent sessions live;
* **CLI speedup** — the mean warm report request must beat a
  per-request ``repro-report`` process invocation (full interpreter +
  numpy/scipy import + snapshot build per query — what consumers paid
  before the service existed) by >= 100x;
* **coalesce rate** — with caches disabled and synchronized waves of
  identical requests, the single-flight layer must serve most of the
  wave from one computation.

Correctness rides along: every report body served concurrently must be
byte-identical to what serial ``repro-report`` prints for the same
query — that assertion is always hard.  The three wall-clock gates
hard-fail only under ``REPRO_BENCH_STRICT=1`` (quiet local hardware);
on shared CI runners they print ADVISORY lines instead, matching
``check_regression.py``.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke (fewer circuits/waves).
"""

from __future__ import annotations

import http.client
import json
import os
import random
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro import RANGER, Facility
from repro.ingest.warehouse import Warehouse
from repro.service.server import make_server
from repro.service.state import ServiceState
from repro.telemetry.metrics import get_registry
from repro.xdmod.snapshot import set_cache_enabled

SYSTEM = "ranger"
SESSIONS = 64
#: Seconds between one session's dashboard refreshes (jittered ±25%).
THINK_S = 1.0


def _quick() -> bool:
    """True when the CI smoke mode is requested via the environment."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _strict() -> bool:
    """True when the wall-clock gates should hard-fail
    (``REPRO_BENCH_STRICT=1`` — local quiet hardware)."""
    return os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")


def _timing_gate(ok: bool, message: str) -> None:
    """Enforce a wall-clock-sensitive acceptance gate.

    Hard assertion under ``REPRO_BENCH_STRICT=1``; elsewhere (shared
    CI runners, where scheduler noise makes absolute floors flaky) a
    loud ADVISORY line, mirroring ``check_regression.py``."""
    if ok:
        return
    if _strict():
        raise AssertionError(message)
    print(f"ADVISORY (timing-sensitive, not failing this run): "
          f"{message}")


def _build_warehouse(path: Path) -> None:
    """Simulate a dashboard-sized study period into a SQLite file."""
    cfg = RANGER.scaled(num_nodes=32, horizon_days=10, n_users=60)
    wh = Warehouse(str(path))
    Facility(cfg, seed=42).run(warehouse=wh)
    wh.commit()
    wh.close()


def _percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of client-measured latencies, in ms."""
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx] * 1e3


class Session:
    """One dashboard session: a persistent keep-alive connection."""

    def __init__(self, address: tuple):
        host, port = address[:2]
        self.conn = http.client.HTTPConnection(host, port, timeout=60)

    def get(self, path: str) -> tuple[float, dict]:
        """GET *path*; returns (seconds, parsed JSON body).

        The timed window is request -> last body byte received;
        parsing happens outside it (parse cost is the client's, not
        the service's).
        """
        t0 = time.perf_counter()
        self.conn.request("GET", path)
        resp = self.conn.getresponse()
        raw = resp.read()
        elapsed = time.perf_counter() - t0
        body = json.loads(raw)
        if resp.status != 200:
            raise AssertionError(f"{path} -> {resp.status}: {body}")
        return elapsed, body

    def close(self) -> None:
        self.conn.close()


#: The interactive endpoint mix one dashboard paints per refresh.
ENDPOINT_MIX: list[tuple[str, str]] = [
    ("report", f"/api/v1/report/support?system={SYSTEM}"),
    ("report", f"/api/v1/report/admin?system={SYSTEM}"),
    ("report", f"/api/v1/report/manager?system={SYSTEM}"),
    ("report", f"/api/v1/report/funding?system={SYSTEM}"),
    ("group_by",
     f"/api/v1/query/group_by?system={SYSTEM}&dimension=app"
     f"&metrics=cpu_idle,mem_used"),
    ("group_by",
     f"/api/v1/query/group_by?system={SYSTEM}&dimension=queue,exit_status"
     f"&metrics="),
    ("timeseries", f"/api/v1/timeseries/active_nodes?system={SYSTEM}"),
    ("timeseries", f"/api/v1/timeseries/flops_tf?system={SYSTEM}"),
]


def _run_sessions(address, circuits: int) -> dict[str, list[float]]:
    """Drive SESSIONS concurrent sessions through the endpoint mix
    *circuits* times each; returns latencies per endpoint family.

    Sessions are paced: each starts at a deterministic random offset
    within one think interval and sleeps ~``THINK_S`` (jittered ±25%)
    between dashboard refreshes.  All 64 connections stay live for the
    whole phase — that is the concurrency claim — but arrivals are
    spread the way real auto-refreshing dashboards spread them, so the
    percentiles measure request latency rather than the closed-loop
    queueing of 64 zero-think-time loops in one process.
    """
    per_family: dict[str, list[float]] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(SESSIONS)
    failures: list[BaseException] = []

    def run_one(idx: int):
        session = Session(address)
        rng = random.Random(idx)
        local: dict[str, list[float]] = {}
        try:
            # Establish the connection before the barrier so the
            # measured phase times requests, not connection setup.
            session.conn.connect()
            barrier.wait()
            time.sleep(rng.uniform(0.0, THINK_S))  # de-sync sessions
            for circuit in range(circuits):
                for family, path in ENDPOINT_MIX:
                    elapsed, _ = session.get(path)
                    local.setdefault(family, []).append(elapsed)
                if circuit + 1 < circuits:
                    time.sleep(THINK_S * rng.uniform(0.75, 1.25))
        except BaseException as exc:
            with lock:
                failures.append(exc)
        finally:
            session.close()
        with lock:
            for family, values in local.items():
                per_family.setdefault(family, []).extend(values)

    threads = [threading.Thread(target=run_one, args=(i,))
               for i in range(SESSIONS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(300)
    if failures:
        raise failures[0]
    return per_family


def _coalesce_waves(address, waves: int) -> tuple[float, int]:
    """Synchronized waves of identical *uncached* requests; returns
    (coalesce rate, total requests).

    The snapshot memo is disabled around the waves so every request is
    a real computation, and each request rides a distinct tenant so
    the per-tenant L1 cannot answer it — the only dedup left is the
    single-flight layer, which is exactly what the rate isolates (the
    flight key is the query, not the tenant).
    """
    registry = get_registry()
    before = registry.counter("service.coalesced").value
    total = 0
    set_cache_enabled(False)
    try:
        for wave in range(waves):
            barrier = threading.Barrier(SESSIONS)
            errors: list[BaseException] = []
            lock = threading.Lock()

            def fire(i: int, wave: int = wave):
                session = Session(address)
                try:
                    session.conn.connect()
                    barrier.wait()
                    session.get(
                        f"/api/v1/report/support?system={SYSTEM}"
                        f"&tenant=w{wave}-{i}")
                except BaseException as exc:
                    with lock:
                        errors.append(exc)
                finally:
                    session.close()

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(SESSIONS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(300)
            if errors:
                raise errors[0]
            total += SESSIONS
    finally:
        set_cache_enabled(True)
    coalesced = registry.counter("service.coalesced").value - before
    return coalesced / total, total


def _cli_report_ms(warehouse: Path, kinds: list[str]) -> tuple[float, dict]:
    """Per-request CLI latency: one ``repro-report`` process per query
    (interpreter + imports + snapshot build every time).  Returns the
    mean wall ms and each kind's stdout for the byte-identity check."""
    root = Path(__file__).resolve().parent.parent
    env = {**os.environ, "PYTHONPATH": str(root / "src")}
    outputs: dict[str, str] = {}
    times = []
    for kind in kinds:
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli.report",
             "--warehouse", str(warehouse), "--system", SYSTEM, kind],
            capture_output=True, text=True, env=env, cwd=root, check=True)
        times.append(time.perf_counter() - t0)
        outputs[kind] = proc.stdout
    return statistics.mean(times) * 1e3, outputs


def test_service_latency(tmp_path, save_artifact):
    """The tentpole acceptance bench: p50/p99 per endpoint at 64
    concurrent sessions, CLI speedup, coalesce rate, byte-identity."""
    warehouse = tmp_path / "service_bench.sqlite"
    _build_warehouse(warehouse)

    state = ServiceState(str(warehouse))
    server = make_server(state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        address = server.server_address
        # Warm-up circuit: build the snapshot, fill L1 + memo.
        warmup = Session(address)
        for _, path in ENDPOINT_MIX:
            warmup.get(path)
        job_count = sum(
            g["job_count"] for g in warmup.get(
                f"/api/v1/query/group_by?system={SYSTEM}"
                f"&dimension=exit_status&metrics=")[1]["groups"])

        # Measured warm phase.
        circuits = 3 if _quick() else 12
        per_family = _run_sessions(address, circuits)
        all_samples = [s for v in per_family.values() for s in v]
        report_p50 = _percentile(per_family["report"], 0.50)
        report_p99 = _percentile(per_family["report"], 0.99)

        # Per-request CLI baseline + byte-identity of served reports.
        kinds = ["support", "admin"] if _quick() else \
            ["support", "admin", "manager", "funding"]
        cli_ms, cli_out = _cli_report_ms(warehouse, kinds)
        for kind in kinds:
            _, body = warmup.get(f"/api/v1/report/{kind}?system={SYSTEM}")
            assert body["report"] + "\n" == cli_out[kind], (
                f"service {kind} report is not byte-identical to "
                f"repro-report output")
        warmup.close()
        report_mean_ms = statistics.mean(per_family["report"]) * 1e3
        speedup = cli_ms / report_mean_ms

        # Coalescing under synchronized identical cold requests.
        waves = 2 if _quick() else 6
        rate, wave_requests = _coalesce_waves(address, waves)
    finally:
        server.shutdown()
        server.server_close()
        state.close()
        thread.join(timeout=10)

    family_lines = [
        f"  {family:<12} p50: {_percentile(v, 0.5):7.2f} ms   "
        f"p99: {_percentile(v, 0.99):7.2f} ms   (n={len(v)})"
        for family, v in sorted(per_family.items())
    ]
    lines = [
        "Service latency under concurrent dashboard sessions",
        "",
        f"corpus: {job_count} jobs on {SYSTEM} (file warehouse)",
        f"sessions: {SESSIONS} concurrent keep-alive connections, "
        f"{circuits} dashboard refreshes of {len(ENDPOINT_MIX)} "
        f"endpoints each, ~{THINK_S:.0f} s jittered refresh cadence "
        f"({len(all_samples)} requests)",
        "",
        "client-measured latency per endpoint family (warm):",
        *family_lines,
        "",
        f"warm report p50: {report_p50:.2f} ms",
        f"warm report p99: {report_p99:.2f} ms",
        f"CLI per-request mean: {cli_ms:.1f} ms "
        f"(one repro-report process per query)",
        f"cli speedup: {speedup:.1f}x "
        f"(vs {report_mean_ms:.3f} ms mean warm report request)",
        f"coalesce rate: {rate:.2f} "
        f"({waves} waves of {SESSIONS} identical uncached requests, "
        f"{wave_requests} total)",
        "responses: byte-identical to serial repro-report output",
    ]
    text = "\n".join(lines)
    save_artifact("service_latency", text)
    print("\n" + text)

    _timing_gate(report_p99 <= 10.0, (
        f"warm report p99 {report_p99:.2f} ms exceeds the 10 ms budget "
        f"at {SESSIONS} concurrent sessions"))
    _timing_gate(speedup >= 100.0, (
        f"service only {speedup:.0f}x faster than per-request CLI "
        f"(need >= 100x)"))
    _timing_gate(rate >= 0.5, (
        f"coalesce rate {rate:.2f} below 0.5 — single-flight is not "
        f"deduplicating concurrent identical queries"))
