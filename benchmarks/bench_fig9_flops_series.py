"""Figure 9: system SSE FLOPS over time on Ranger.

Paper claims reproduced: output is irregular; the long-term average is a
small fraction of the benchmarked peak (<20 TF of 579 TF ≈ 3.5 %), and
even peak excursions stay far below it (<50 TF ≈ 8.6 %).
"""

from repro.util.textchart import series_text
from repro.xdmod.timeseries import SystemTimeseries


def test_fig9_flops_series(benchmark, ranger_run, save_artifact):
    ts = SystemTimeseries(ranger_run.warehouse, "ranger")
    flops = benchmark(ts.flops)
    peak = ranger_run.config.peak_tflops

    text = (
        "Figure 9 (reproduced): Ranger system FLOPS\n\n"
        + series_text(flops.times, flops.values, label="TF", fmt=".2f")
        + f"\n\nbenchmarked peak: {peak:.1f} TF; "
          f"measured mean {flops.mean:.2f} TF "
          f"({flops.mean / peak:.1%} of peak); "
          f"measured max {flops.peak:.2f} TF ({flops.peak / peak:.1%})"
    )
    save_artifact("fig9_flops_series", text)
    print("\n" + text)

    assert 0.01 < flops.mean / peak < 0.15       # paper: ~3.5 %
    assert flops.peak / peak < 0.35              # paper: peaks < ~9 %
    # Irregular output: meaningful relative variability.
    assert flops.values.std() > 0.15 * flops.mean
