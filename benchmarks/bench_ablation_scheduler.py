"""Ablation: EASY backfill vs plain FCFS.

Both of the paper's systems ran backfilling schedulers; §4.3.4 names
"determining 'optimal' settings for system software such as job
schedulers" as a task these reports support.  This ablation quantifies
what backfill buys on the same workload: higher delivered utilization
and lower queue waits, with identical job demand.
"""

import numpy as np

from benchmarks.conftest import RANGER_BENCH
from repro.cluster.cluster import Cluster
from repro.scheduler.engine import SchedulerEngine
from repro.scheduler.policies import EasyBackfillPolicy, FCFSPolicy
from repro.util.rng import RngFactory
from repro.util.tables import render_table
from repro.workload.generator import WorkloadGenerator

_CFG = RANGER_BENCH.scaled(num_nodes=48, horizon_days=15, n_users=80)


def _run(policy):
    workload = WorkloadGenerator(_CFG, RngFactory(9)).generate()
    cluster = Cluster(_CFG.name, _CFG.num_nodes, _CFG.node)
    result = SchedulerEngine(cluster, policy).run(
        workload.requests, horizon=_CFG.horizon)
    waits = np.array([r.wait_time for r in result.records])
    return {
        "policy": policy.name,
        "utilization": result.utilization(_CFG.num_nodes, _CFG.horizon),
        "median_wait_h": float(np.median(waits)) / 3600.0,
        "p90_wait_h": float(np.percentile(waits, 90)) / 3600.0,
        "jobs_finished": len(result.records),
        "dropped": len(result.dropped),
    }


def test_ablation_scheduler(benchmark, save_artifact):
    easy = benchmark.pedantic(_run, args=(EasyBackfillPolicy(),),
                              rounds=2, iterations=1)
    fcfs = _run(FCFSPolicy())

    rows = []
    for d in (easy, fcfs):
        rows.append({
            "policy": d["policy"],
            "utilization": f"{d['utilization']:.1%}",
            "median wait (h)": f"{d['median_wait_h']:.2f}",
            "p90 wait (h)": f"{d['p90_wait_h']:.2f}",
            "finished": d["jobs_finished"],
            "dropped": d["dropped"],
        })
    text = render_table(
        rows, ["policy", "utilization", "median wait (h)", "p90 wait (h)",
               "finished", "dropped"],
        title="Ablation: scheduler policy (same workload)",
    )
    save_artifact("ablation_scheduler", text)
    print("\n" + text)

    # Backfill must not lose to FCFS on delivered utilization, and on an
    # over-requested machine it should win visibly on wait.
    assert easy["utilization"] >= fcfs["utilization"] - 0.01
    assert easy["median_wait_h"] <= fcfs["median_wait_h"]
    assert easy["jobs_finished"] >= fcfs["jobs_finished"]
