"""Legacy-path shim: this environment lacks the `wheel` package, so PEP 517
editable installs fail; `pip install -e . --no-use-pep517` works via this file."""
from setuptools import setup

setup()
