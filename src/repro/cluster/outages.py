"""Facility outage process.

Figure 8 of the paper shows the active-node count dropping to zero during
"relatively infrequent" planned and unplanned shutdowns, with smaller dips
as nodes cycle between jobs.  We generate:

* **scheduled maintenance** — full-system, at a regular cadence with jitter;
* **unscheduled outages** — Poisson arrivals, full-system with small
  probability, otherwise hitting a random subset of nodes (e.g. a chassis
  or a Lustre OSS taking out a rack's jobs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.timeutil import DAY, HOUR

__all__ = ["OutageKind", "Outage", "OutageGenerator"]


class OutageKind(enum.Enum):
    SCHEDULED = "scheduled"
    UNSCHEDULED = "unscheduled"


@dataclass(frozen=True)
class Outage:
    """One outage window.

    ``nodes`` is None for a full-system outage, else a tuple of node indices.
    """

    start: float
    end: float
    kind: OutageKind
    nodes: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("outage must have positive duration")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_full_system(self) -> bool:
        return self.nodes is None


class OutageGenerator:
    """Draw an outage schedule for a simulation horizon.

    Parameters
    ----------
    num_nodes:
        Cluster size (for partial outages).
    scheduled_interval_days:
        Mean spacing of maintenance windows (0 disables them).
    scheduled_duration_hours:
        Length of each maintenance window.
    unscheduled_rate_per_month:
        Poisson rate of unplanned outages (30-day months).
    unscheduled_mean_hours:
        Mean (exponential) duration of unplanned outages.
    full_system_prob:
        Probability an unplanned outage takes the whole system down.
    partial_fraction:
        Fraction of nodes hit by a partial outage (± 50 % jitter).
    """

    def __init__(
        self,
        num_nodes: int,
        scheduled_interval_days: float = 45.0,
        scheduled_duration_hours: float = 12.0,
        unscheduled_rate_per_month: float = 1.0,
        unscheduled_mean_hours: float = 4.0,
        full_system_prob: float = 0.3,
        partial_fraction: float = 0.05,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.scheduled_interval_days = scheduled_interval_days
        self.scheduled_duration_hours = scheduled_duration_hours
        self.unscheduled_rate_per_month = unscheduled_rate_per_month
        self.unscheduled_mean_hours = unscheduled_mean_hours
        self.full_system_prob = full_system_prob
        self.partial_fraction = partial_fraction

    def generate(self, horizon: float, rng: np.random.Generator) -> list[Outage]:
        """All outages with ``start < horizon``, sorted and non-overlapping.

        Overlapping windows are merged conservatively by dropping the later
        one — the discrete-event engine requires disjoint outage intervals.
        """
        outages: list[Outage] = []

        if self.scheduled_interval_days > 0:
            t = self.scheduled_interval_days * DAY * (0.8 + 0.4 * rng.random())
            while t < horizon:
                outages.append(
                    Outage(t, t + self.scheduled_duration_hours * HOUR,
                           OutageKind.SCHEDULED)
                )
                t += self.scheduled_interval_days * DAY * (0.8 + 0.4 * rng.random())

        if self.unscheduled_rate_per_month > 0:
            rate_per_sec = self.unscheduled_rate_per_month / (30 * DAY)
            t = rng.exponential(1.0 / rate_per_sec)
            while t < horizon:
                dur = max(10 * 60.0, rng.exponential(self.unscheduled_mean_hours * HOUR))
                if rng.random() < self.full_system_prob:
                    nodes = None
                else:
                    frac = self.partial_fraction * (0.5 + rng.random())
                    k = max(1, int(round(frac * self.num_nodes)))
                    nodes = tuple(
                        int(i) for i in rng.choice(self.num_nodes, size=k,
                                                   replace=False)
                    )
                outages.append(Outage(t, t + dur, OutageKind.UNSCHEDULED, nodes))
                t += rng.exponential(1.0 / rate_per_sec)

        outages.sort(key=lambda o: o.start)
        disjoint: list[Outage] = []
        for o in outages:
            if disjoint and o.start < disjoint[-1].end:
                continue
            disjoint.append(o)
        return disjoint
