"""Cluster container: node pool, allocation bookkeeping, outage application.

The scheduler engine owns *when* things happen; this class owns *which nodes*
are involved and guarantees the two core safety invariants tested by the
property suite: a node is never allocated to two jobs, and released/failed
nodes always return to a consistent state.
"""

from __future__ import annotations

from repro.cluster.filesystem import FilesystemSpec, FilesystemState
from repro.cluster.hardware import NodeHardware
from repro.cluster.interconnect import Fabric, InterconnectSpec
from repro.cluster.node import Node, NodeState

__all__ = ["Cluster", "AllocationError"]


class AllocationError(Exception):
    """Raised when an allocation request cannot be satisfied."""


class Cluster:
    """A pool of identical compute nodes plus shared services.

    Parameters
    ----------
    name:
        System name (``"ranger"``) used in hostnames and records.
    num_nodes:
        Node count.
    hardware:
        Per-node hardware description.
    filesystems:
        Shared mounts (each gets a live :class:`FilesystemState`).
    interconnect:
        Fabric description.
    """

    def __init__(
        self,
        name: str,
        num_nodes: int,
        hardware: NodeHardware,
        filesystems: tuple[FilesystemSpec, ...] = (),
        interconnect: InterconnectSpec | None = None,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.name = name
        self.hardware = hardware
        self.nodes = [
            Node(index=i, hostname=f"c{i // 100:03d}-{i % 100:03d}.{name}",
                 hardware=hardware)
            for i in range(num_nodes)
        ]
        self.filesystems = {
            spec.name: FilesystemState(spec) for spec in filesystems
        }
        self.fabric = Fabric(interconnect or InterconnectSpec(), num_nodes)
        # Free list kept sorted-ish for deterministic placement; allocation
        # order does not affect analytics but must be reproducible.
        self._free: list[int] = list(range(num_nodes))
        self._allocated: dict[str, list[int]] = {}

    # -- capacity ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def free_count(self) -> int:
        """Nodes currently available for scheduling."""
        return len(self._free)

    @property
    def active_count(self) -> int:
        """Nodes that are up (free or allocated) — Figure 8's quantity."""
        return sum(1 for n in self.nodes if n.state is not NodeState.DOWN)

    @property
    def busy_count(self) -> int:
        return sum(1 for n in self.nodes if n.state is NodeState.ALLOCATED)

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.hardware.cores

    @property
    def peak_tflops(self) -> float:
        """System peak in TFLOP/s (Ranger full scale: 579 TF)."""
        return self.num_nodes * self.hardware.peak_gflops / 1000.0

    # -- allocation -------------------------------------------------------

    def allocate(self, jobid: str, n: int) -> list[int]:
        """Allocate *n* free nodes to *jobid*; returns their indices.

        Raises
        ------
        AllocationError
            If fewer than *n* nodes are free, or the job already holds nodes.
        """
        if n <= 0:
            raise AllocationError(f"job {jobid}: requested {n} nodes")
        if jobid in self._allocated:
            raise AllocationError(f"job {jobid} already holds nodes")
        if n > len(self._free):
            raise AllocationError(
                f"job {jobid}: need {n} nodes, only {len(self._free)} free"
            )
        picked = self._free[:n]
        del self._free[:n]
        for i in picked:
            self.nodes[i].allocate(jobid)
        self._allocated[jobid] = picked
        return list(picked)

    def release(self, jobid: str) -> list[int]:
        """Release all nodes held by *jobid*; returns their indices.

        Nodes that went DOWN while the job ran stay down (they re-enter the
        pool via :meth:`end_outage`).
        """
        if jobid not in self._allocated:
            raise AllocationError(f"job {jobid} holds no nodes")
        held = self._allocated.pop(jobid)
        returned = []
        for i in held:
            node = self.nodes[i]
            if node.state is NodeState.ALLOCATED and node.jobid == jobid:
                node.release()
                returned.append(i)
        self._free.extend(returned)
        self._free.sort()
        return returned

    def nodes_of(self, jobid: str) -> list[int]:
        """Indices currently held by *jobid* (empty if none)."""
        return list(self._allocated.get(jobid, ()))

    # -- outages ----------------------------------------------------------

    def begin_outage(self, node_indices: list[int] | None) -> set[str]:
        """Take nodes down; returns ids of jobs that lost a node.

        ``None`` means full-system.  Victim jobs keep their *other* nodes
        allocated until the scheduler fails them via :meth:`release`.
        """
        targets = range(self.num_nodes) if node_indices is None else node_indices
        victims: set[str] = set()
        for i in targets:
            node = self.nodes[i]
            if node.state is NodeState.DOWN:
                continue
            if node.state is NodeState.FREE:
                self._free.remove(i)
            victim = node.mark_down()
            if victim is not None:
                victims.add(victim)
        return victims

    def end_outage(self, node_indices: list[int] | None, now: float) -> int:
        """Bring nodes back up; returns how many came back."""
        targets = range(self.num_nodes) if node_indices is None else node_indices
        restored = 0
        for i in targets:
            node = self.nodes[i]
            if node.state is NodeState.DOWN:
                node.mark_up(now)
                self._free.append(i)
                restored += 1
        self._free.sort()
        return restored

    # -- invariant check (used by tests/property suite) --------------------

    def check_invariants(self) -> None:
        """Assert internal consistency; raises AssertionError on violation."""
        free_set = set(self._free)
        assert len(free_set) == len(self._free), "duplicate entries in free list"
        seen: dict[int, str] = {}
        for jobid, held in self._allocated.items():
            for i in held:
                assert i not in free_set, f"node {i} both free and in job {jobid}"
                node = self.nodes[i]
                if node.state is NodeState.ALLOCATED:
                    assert node.jobid == jobid, (
                        f"node {i} tagged {node.jobid} but held by {jobid}"
                    )
                    assert i not in seen, (
                        f"node {i} in jobs {seen[i]} and {jobid}"
                    )
                    seen[i] = jobid
        for i in free_set:
            assert self.nodes[i].state is NodeState.FREE, (
                f"node {i} in free list but state {self.nodes[i].state}"
            )
