"""Cluster hardware substrate: nodes, processors, filesystems, fabric, outages.

This package models just enough of a Linux HPC cluster for the TACC_Stats
collectors to have something real to measure: per-socket core layouts and
architecture-specific performance-counter event sets, Lustre/NFS mounts with
quotas and purge policy, an InfiniBand fabric, and an outage process that
produces the planned/unplanned downtime visible in the paper's Figure 8.
"""

from repro.cluster.cluster import AllocationError, Cluster
from repro.cluster.filesystem import FilesystemSpec, FilesystemState
from repro.cluster.hardware import NodeHardware, ProcessorSpec
from repro.cluster.interconnect import Fabric, InterconnectSpec
from repro.cluster.node import Node, NodeState
from repro.cluster.outages import Outage, OutageGenerator, OutageKind

__all__ = [
    "ProcessorSpec",
    "NodeHardware",
    "Node",
    "NodeState",
    "Cluster",
    "AllocationError",
    "FilesystemSpec",
    "FilesystemState",
    "InterconnectSpec",
    "Fabric",
    "Outage",
    "OutageKind",
    "OutageGenerator",
]
