"""Compute node state.

A node is either up (free or allocated to exactly one job — both Ranger and
Lonestar4 schedule nodes exclusively) or down.  The node object also carries
the identity rendered into TACC_Stats headers and syslog lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.hardware import NodeHardware

__all__ = ["NodeState", "Node"]


class NodeState(enum.Enum):
    """Lifecycle of a compute node."""

    FREE = "free"
    ALLOCATED = "allocated"
    DOWN = "down"


@dataclass
class Node:
    """One compute node.

    Attributes
    ----------
    index:
        Position in the cluster (0-based).
    hostname:
        Fully qualified name rendered into collector output and logs.
    hardware:
        Immutable hardware description.
    state:
        Current :class:`NodeState`.
    jobid:
        Id of the job occupying the node, or ``None``.
    boot_time:
        Facility epoch of the last (re)boot; TACC_Stats reports uptime.
    """

    index: int
    hostname: str
    hardware: NodeHardware
    state: NodeState = NodeState.FREE
    jobid: str | None = None
    boot_time: float = 0.0

    def allocate(self, jobid: str) -> None:
        """Assign this node to *jobid*; only legal from FREE."""
        if self.state is not NodeState.FREE:
            raise RuntimeError(
                f"{self.hostname}: cannot allocate in state {self.state.value} "
                f"(current job {self.jobid})"
            )
        self.state = NodeState.ALLOCATED
        self.jobid = jobid

    def release(self) -> None:
        """Return the node to the free pool; only legal from ALLOCATED."""
        if self.state is not NodeState.ALLOCATED:
            raise RuntimeError(
                f"{self.hostname}: cannot release in state {self.state.value}"
            )
        self.state = NodeState.FREE
        self.jobid = None

    def mark_down(self) -> str | None:
        """Take the node down (outage / crash).

        Returns the id of the job that was running on it, if any — the
        scheduler uses this to fail the job.
        """
        victim = self.jobid
        self.state = NodeState.DOWN
        self.jobid = None
        return victim

    def mark_up(self, now: float) -> None:
        """Bring the node back after an outage (resets uptime)."""
        if self.state is not NodeState.DOWN:
            raise RuntimeError(f"{self.hostname}: mark_up from {self.state.value}")
        self.state = NodeState.FREE
        self.boot_time = now

    @property
    def is_free(self) -> bool:
        return self.state is NodeState.FREE
