"""Processor and node hardware models.

The paper's two systems differ in exactly the ways TACC_Stats cares about:

* **Ranger** — 4 × quad-core AMD Opteron (Barcelona) per node @ 2.3 GHz,
  32 GB/node.  TACC_Stats programs the Opteron PMCs for FLOPS, memory
  accesses, data-cache fills, and SMP/NUMA traffic.
* **Lonestar4** — 2 × hexa-core Intel Xeon 5680 (Westmere) per node @
  3.33 GHz, 24 GB/node.  PMCs are programmed for FLOPS, SMP/NUMA traffic and
  L1D hits, and the FLOPS event is *not* SSE-comparable to Ranger's (the
  paper notes the two systems' FLOPS series cannot be compared directly).

A third archetype exercises the multi-cluster federation: **Stampede** —
2 × octa-core Intel Xeon E5-2680 (Sandy Bridge) per node @ 2.7 GHz,
32 GB/node.  Its PMC event set differs again (AVX ``SIMD_FP_256`` instead
of ``FP_COMP_OPS``, last-level-cache misses instead of L1D hits), so a
federation must carry three mutually incomparable FLOPS definitions —
exactly the situation the paper describes across TACC's machine room.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB

__all__ = ["ProcessorSpec", "NodeHardware", "OPTERON_BARCELONA", "XEON_5680",
           "XEON_E5_2680"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One processor socket.

    Attributes
    ----------
    model:
        Marketing name, rendered into the TACC_Stats header.
    arch:
        ``"amd64"`` or ``"intel"`` — selects which PMC collector runs and
        which event set is programmed at job begin.
    clock_ghz:
        Core clock.
    cores:
        Cores per socket.
    flops_per_cycle:
        Peak double-precision FLOPs per core per cycle (SSE2: 4 for both
        Barcelona and Westmere).
    pmc_events:
        Event names programmed into the counters at job begin, in counter
        order (paper §3).
    counter_width:
        Width in bits of the hardware counter registers; the collectors
        wrap at ``2**counter_width`` and the summarizer must correct for it.
    """

    model: str
    arch: str
    clock_ghz: float
    cores: int
    flops_per_cycle: int
    pmc_events: tuple[str, ...]
    counter_width: int = 48

    def __post_init__(self):
        if self.arch not in ("amd64", "intel"):
            raise ValueError(f"unknown arch {self.arch!r}")
        if self.cores <= 0 or self.clock_ghz <= 0:
            raise ValueError("cores and clock must be positive")

    @property
    def peak_gflops(self) -> float:
        """Peak GFLOP/s of one socket."""
        return self.clock_ghz * self.flops_per_cycle * self.cores


OPTERON_BARCELONA = ProcessorSpec(
    model="AMD Opteron 8356 (Barcelona)",
    arch="amd64",
    clock_ghz=2.3,
    cores=4,
    flops_per_cycle=4,
    pmc_events=("SSE_FLOPS", "DRAM_ACCESSES", "DCACHE_SYS_FILLS", "HT_LINK_TRAFFIC"),
    counter_width=48,
)

XEON_5680 = ProcessorSpec(
    model="Intel Xeon X5680 (Westmere-EP)",
    arch="intel",
    clock_ghz=3.33,
    cores=6,
    flops_per_cycle=4,
    pmc_events=("FP_COMP_OPS", "QPI_TRAFFIC", "L1D_HITS"),
    counter_width=48,
)

#: Sandy Bridge doubles the FP width (AVX: 8 DP FLOPs/cycle) and its FP
#: event counts 256-bit SIMD ops — a third FLOPS definition incomparable
#: to both FP_COMP_OPS and SSE_FLOPS.
XEON_E5_2680 = ProcessorSpec(
    model="Intel Xeon E5-2680 (Sandy Bridge-EP)",
    arch="intel",
    clock_ghz=2.7,
    cores=8,
    flops_per_cycle=8,
    pmc_events=("SIMD_FP_256", "QPI_TRAFFIC", "LLC_MISSES"),
    counter_width=48,
)


@dataclass(frozen=True)
class NodeHardware:
    """Hardware of one compute node.

    The device lists mirror what the per-device TACC_Stats collectors
    enumerate on a real node (``/proc/diskstats``, ``/sys/class/net``,
    ``/sys/class/infiniband``).
    """

    processor: ProcessorSpec
    sockets: int
    memory_bytes: int
    swap_bytes: int = 0
    block_devices: tuple[str, ...] = ("sda",)
    net_devices: tuple[str, ...] = ("eth0", "ib0")
    ib_devices: tuple[str, ...] = ("mlx4_0",)

    def __post_init__(self):
        if self.sockets <= 0:
            raise ValueError("sockets must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory must be positive")

    @property
    def cores(self) -> int:
        """Total cores in the node."""
        return self.sockets * self.processor.cores

    @property
    def peak_gflops(self) -> float:
        """Peak GFLOP/s of the whole node."""
        return self.sockets * self.processor.peak_gflops

    @property
    def memory_gb(self) -> float:
        """Installed memory in (binary) GB."""
        return self.memory_bytes / GB

    @property
    def memory_per_core_gb(self) -> float:
        """GB of memory per core (Figure 7a reports memory per core)."""
        return self.memory_gb / self.cores


def ranger_node() -> NodeHardware:
    """A Ranger compute node: 4 sockets × 4 cores, 32 GB (147.2 GF peak)."""
    return NodeHardware(
        processor=OPTERON_BARCELONA,
        sockets=4,
        memory_bytes=32 * GB,
        swap_bytes=0,  # Ranger nodes were diskless-swap
    )


def lonestar4_node() -> NodeHardware:
    """A Lonestar4 compute node: 2 sockets × 6 cores, 24 GB (159.8 GF peak)."""
    return NodeHardware(
        processor=XEON_5680,
        sockets=2,
        memory_bytes=24 * GB,
        swap_bytes=0,
    )


def stampede_node() -> NodeHardware:
    """A Stampede compute node: 2 sockets × 8 cores, 32 GB (345.6 GF peak)."""
    return NodeHardware(
        processor=XEON_E5_2680,
        sockets=2,
        memory_bytes=32 * GB,
        swap_bytes=0,
    )
