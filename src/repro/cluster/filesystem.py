"""Shared filesystem models (Lustre scratch/work/share, NFS).

The paper's 8 key metrics distinguish ``io_scratch_write`` from
``io_work_write`` precisely because the two Lustre filesystems differ in
*policy*, not mechanism: "scratch is purged periodically and has a largish
quota to the tune of hundreds of TB, and work is non-purged space with a
200 GB quota" (§4.2).  We model both the aggregate throughput counters that
feed Figure 7c and the per-user quota/purge behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import GB, TB

__all__ = ["FilesystemSpec", "FilesystemState", "QuotaExceeded"]


class QuotaExceeded(Exception):
    """Raised when a charge would push a user past the filesystem quota."""


@dataclass(frozen=True)
class FilesystemSpec:
    """Static description of a shared filesystem mount.

    Attributes
    ----------
    name:
        Short metric-facing name (``"scratch"``, ``"work"``, ``"share"``).
    kind:
        ``"lustre"``, ``"nfs"`` or ``"panasas"`` — selects which TACC_Stats
        collector (llite vs nfs) reports it and whether it contributes to
        Lustre network (lnet) traffic.
    mount:
        Mount point rendered into collector device names.
    quota_bytes:
        Per-user quota.
    purged:
        Whether a periodic purge policy deletes old files.
    purge_age_days:
        Age threshold for the purge (only meaningful when ``purged``).
    capacity_bytes:
        Total capacity (used for occupancy reporting).
    """

    name: str
    kind: str
    mount: str
    quota_bytes: int
    purged: bool = False
    purge_age_days: float = 10.0
    capacity_bytes: int = 400 * TB

    def __post_init__(self):
        if self.kind not in ("lustre", "nfs", "panasas"):
            raise ValueError(f"unknown filesystem kind {self.kind!r}")
        if self.quota_bytes <= 0 or self.capacity_bytes <= 0:
            raise ValueError("quota and capacity must be positive")

    @property
    def is_lustre(self) -> bool:
        return self.kind == "lustre"


def ranger_filesystems() -> tuple[FilesystemSpec, ...]:
    """Ranger: three Lustre mounts (scratch purged, work 200 GB quota, share)."""
    return (
        FilesystemSpec("scratch", "lustre", "/scratch", quota_bytes=400 * TB,
                       purged=True, purge_age_days=10, capacity_bytes=800 * TB),
        FilesystemSpec("work", "lustre", "/work", quota_bytes=200 * GB,
                       capacity_bytes=200 * TB),
        FilesystemSpec("share", "lustre", "/share", quota_bytes=10 * GB,
                       capacity_bytes=50 * TB),
    )


def lonestar4_filesystems() -> tuple[FilesystemSpec, ...]:
    """Lonestar4: Lustre scratch/work plus NFS home over Ethernet."""
    return (
        FilesystemSpec("scratch", "lustre", "/scratch", quota_bytes=250 * TB,
                       purged=True, purge_age_days=10, capacity_bytes=500 * TB),
        FilesystemSpec("work", "lustre", "/work", quota_bytes=200 * GB,
                       capacity_bytes=100 * TB),
        FilesystemSpec("home", "nfs", "/home", quota_bytes=5 * GB,
                       capacity_bytes=20 * TB),
    )


def stampede_filesystems() -> tuple[FilesystemSpec, ...]:
    """Stampede: big purged Lustre scratch, quota'd work, NFS home."""
    return (
        FilesystemSpec("scratch", "lustre", "/scratch", quota_bytes=1000 * TB,
                       purged=True, purge_age_days=10,
                       capacity_bytes=7000 * TB),
        FilesystemSpec("work", "lustre", "/work", quota_bytes=400 * GB,
                       capacity_bytes=400 * TB),
        FilesystemSpec("home", "nfs", "/home", quota_bytes=5 * GB,
                       capacity_bytes=40 * TB),
    )


@dataclass
class FilesystemState:
    """Mutable state of one filesystem: usage ledger + throughput counters.

    ``charge_write`` both advances the aggregate byte counter (what Figure 7c
    plots) and grows the writing user's residency, enforcing the quota for
    non-purged mounts; ``run_purge`` implements the scratch policy.
    """

    spec: FilesystemSpec
    bytes_written: float = 0.0
    bytes_read: float = 0.0
    #: user -> list of (create_time, bytes) extents, oldest first.
    _holdings: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def usage(self, user: str) -> float:
        """Current residency of *user* in bytes."""
        return sum(b for _, b in self._holdings.get(user, ()))

    @property
    def total_resident(self) -> float:
        """Bytes currently resident across all users."""
        return sum(b for exts in self._holdings.values() for _, b in exts)

    def charge_read(self, nbytes: float) -> None:
        """Account a read of *nbytes* (aggregate counter only)."""
        if nbytes < 0:
            raise ValueError("negative read")
        self.bytes_read += nbytes

    def charge_write(self, user: str, nbytes: float, now: float,
                     enforce_quota: bool = True) -> None:
        """Account a write of *nbytes* by *user* at time *now*.

        Raises
        ------
        QuotaExceeded
            If quota enforcement is on and the write would exceed the user's
            quota.  Purged scratch filesystems historically ran with lax
            enforcement, so jobs there keep running (the paper's scratch has
            a quota "to the tune of hundreds of TB" that users rarely hit).
        """
        if nbytes < 0:
            raise ValueError("negative write")
        if enforce_quota and self.usage(user) + nbytes > self.spec.quota_bytes:
            raise QuotaExceeded(
                f"{user} over quota on {self.spec.name}: "
                f"{self.usage(user) + nbytes:.0f} > {self.spec.quota_bytes}"
            )
        self.bytes_written += nbytes
        self._holdings.setdefault(user, []).append((now, nbytes))

    def release(self, user: str, nbytes: float) -> None:
        """User deletes *nbytes* (oldest extents first)."""
        exts = self._holdings.get(user, [])
        remaining = nbytes
        while exts and remaining > 0:
            t, b = exts[0]
            if b <= remaining:
                exts.pop(0)
                remaining -= b
            else:
                exts[0] = (t, b - remaining)
                remaining = 0

    def run_purge(self, now: float) -> float:
        """Delete extents older than the purge age; returns bytes freed.

        No-op (returns 0) on non-purged filesystems.
        """
        if not self.spec.purged:
            return 0.0
        cutoff = now - self.spec.purge_age_days * 86400.0
        freed = 0.0
        for user, exts in self._holdings.items():
            keep = []
            for t, b in exts:
                if t < cutoff:
                    freed += b
                else:
                    keep.append((t, b))
            self._holdings[user] = keep
        return freed
