"""InfiniBand fabric model.

TACC_Stats reports per-node IB port counters (``net_ib_tx`` / ``net_ib_rx``
in the paper's key metrics) and Lustre networking (lnet) counters that ride
the same fabric.  We model a two-level fat tree: nodes attach to leaf
switches, leaves attach to a spine.  The topology only matters for
aggregate switch-level occupancy reporting; per-node counters come from the
collectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InterconnectSpec", "Fabric"]


@dataclass(frozen=True)
class InterconnectSpec:
    """Static fabric description.

    Attributes
    ----------
    kind:
        ``"infiniband"`` (Ranger, Lonestar4) — kept as a field so a Myrinet
        variant (which TACC_Stats also supports) can be configured.
    link_gbps:
        Signalling rate of a host link (SDR 4x = 8 Gb/s data on Ranger;
        QDR 4x = 32 Gb/s on Lonestar4).
    radix:
        Ports per leaf switch available for hosts.
    """

    kind: str = "infiniband"
    link_gbps: float = 8.0
    radix: int = 24

    def __post_init__(self):
        if self.kind not in ("infiniband", "myrinet"):
            raise ValueError(f"unknown interconnect kind {self.kind!r}")
        if self.link_gbps <= 0 or self.radix <= 1:
            raise ValueError("link rate and radix must be positive")

    @property
    def link_mb_s(self) -> float:
        """Host link data rate in MB/s (decimal MB, as IB counters report)."""
        return self.link_gbps * 1e9 / 8 / 1e6


class Fabric:
    """Two-level fat tree over *num_nodes* hosts.

    Provides the node→leaf mapping and switch-level aggregation of per-node
    traffic — a support-staff report ("is one leaf saturated?") uses this.
    """

    def __init__(self, spec: InterconnectSpec, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.spec = spec
        self.num_nodes = num_nodes
        self.num_leaves = (num_nodes + spec.radix - 1) // spec.radix
        self._leaf_of = np.arange(num_nodes) // spec.radix

    def leaf_of(self, node_index: int) -> int:
        """Leaf switch index a node attaches to."""
        if not 0 <= node_index < self.num_nodes:
            raise IndexError(f"node index {node_index} out of range")
        return int(self._leaf_of[node_index])

    def nodes_on_leaf(self, leaf: int) -> np.ndarray:
        """Indices of all nodes on a leaf switch."""
        if not 0 <= leaf < self.num_leaves:
            raise IndexError(f"leaf {leaf} out of range")
        return np.nonzero(self._leaf_of == leaf)[0]

    def leaf_aggregate(self, per_node_rate_mb: np.ndarray) -> np.ndarray:
        """Sum a per-node traffic rate (MB/s) up to each leaf switch."""
        rates = np.asarray(per_node_rate_mb, dtype=float)
        if rates.shape != (self.num_nodes,):
            raise ValueError(
                f"expected {self.num_nodes} per-node rates, got {rates.shape}"
            )
        out = np.zeros(self.num_leaves)
        np.add.at(out, self._leaf_of, rates)
        return out

    def leaf_saturation(self, per_node_rate_mb: np.ndarray,
                        uplinks_per_leaf: int = 4) -> np.ndarray:
        """Fraction of leaf uplink bandwidth in use (1.0 = saturated)."""
        uplink_mb = uplinks_per_leaf * self.spec.link_mb_s
        return self.leaf_aggregate(per_node_rate_mb) / uplink_mb
