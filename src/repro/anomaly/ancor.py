"""ANCOR-style failure diagnosis (paper §4.3.4 and reference [26],
"Linking Resource Usage Anomalies with System Failures from Cluster Log
Data").

Three layers on top of the basic anomaly↔failure join:

* **association mining** — for every (anomalous metric, failure kind)
  pair, the *lift* ``P(kind | metric anomalous) / P(kind)`` measured
  from the warehouse: which resource anomalies actually precede which
  faults on *this* machine;
* **per-job diagnosis** — for a failed job, rank root-cause hypotheses
  by combining its syslog evidence with its anomaly flags through the
  learned lift table;
* **lead time** — how long before job end the first failure-class
  message appeared ("anomalous resource use patterns ... are commonly
  the precursors of job failures", §4.3.1): the window in which a
  proactive support staff could have intervened.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomaly.detect import AnomalousJob, AnomalyDetector
from repro.ingest.warehouse import Warehouse
from repro.syslogr.catalog import MessageKind
from repro.xdmod.query import JobQuery

__all__ = ["Association", "Diagnosis", "AncorAnalysis"]

#: Domain priors: which metric anomalies plausibly cause which faults.
#: The learned lift sharpens or suppresses these; a pair absent here can
#: still surface if its lift is strong (data beats priors).
_CAUSE_PRIORS: dict[tuple[str, str], str] = {
    ("mem_used_max", "oom_kill"): "memory exhaustion (working set near capacity)",
    ("mem_used", "oom_kill"): "memory exhaustion (sustained high usage)",
    ("io_scratch_write", "lustre_timeout"): "filesystem overload (scratch writes)",
    ("io_scratch_write", "lustre_eviction"): "filesystem overload (client evicted)",
    ("net_lnet_tx", "lustre_timeout"): "filesystem overload (lnet saturation)",
    ("cpu_idle", "soft_lockup"): "hung/livelocked process",
    ("net_ib_tx", "ib_link_down"): "fabric stress on a flaky link",
}

_FAILURE_KINDS = tuple(k.value for k in MessageKind if k.is_failure)


@dataclass(frozen=True)
class Association:
    """One mined (anomalous metric → failure kind) association."""

    metric: str
    kind: str
    lift: float
    support: int           # anomalous-on-metric jobs with this kind
    anomalous_jobs: int    # jobs anomalous on this metric
    base_rate: float       # P(kind) over all jobs

    @property
    def confidence(self) -> float:
        """P(kind | metric anomalous)."""
        if self.anomalous_jobs == 0:
            return 0.0
        return self.support / self.anomalous_jobs


@dataclass(frozen=True)
class Diagnosis:
    """Root-cause ranking for one job."""

    jobid: str
    user: str
    app: str
    exit_status: str
    failure_events: tuple[str, ...]
    anomalies: tuple[AnomalousJob, ...]
    hypotheses: tuple[tuple[str, float], ...]  # (explanation, score) desc
    lead_time_s: float | None

    @property
    def top_hypothesis(self) -> str | None:
        return self.hypotheses[0][0] if self.hypotheses else None


class AncorAnalysis:
    """Mines associations once, then diagnoses jobs cheaply."""

    def __init__(self, warehouse: Warehouse, system: str,
                 detector: AnomalyDetector | None = None,
                 z_threshold: float = 3.5):
        self.warehouse = warehouse
        self.system = system
        self.query = JobQuery(warehouse, system)
        det = detector or AnomalyDetector(self.query,
                                          z_threshold=z_threshold)
        self._anomalies_by_job: dict[str, list[AnomalousJob]] = det.by_job()

        # Per-job failure events (and their times) from syslog.
        self._events: dict[str, list[tuple[float, str]]] = {}
        for t, _host, jobid, kind, _sev in warehouse.syslog_events(system):
            if jobid is not None and kind in _FAILURE_KINDS:
                self._events.setdefault(jobid, []).append((t, kind))
        for lst in self._events.values():
            lst.sort()

        self._table = self._mine()
        self._job_index = {
            jid: i for i, jid in enumerate(self.query.column("jobid"))
        }

    # -- association mining ---------------------------------------------------

    def _mine(self) -> list[Association]:
        n_jobs = max(len(self.query), 1)
        kind_count: dict[str, int] = {}
        for events in self._events.values():
            for kind in {k for _, k in events}:
                kind_count[kind] = kind_count.get(kind, 0) + 1

        metric_jobs: dict[str, set[str]] = {}
        for jid, flags in self._anomalies_by_job.items():
            for a in flags:
                if a.robust_z > 0:  # high-side anomalies cause faults
                    metric_jobs.setdefault(a.metric, set()).add(jid)

        out: list[Association] = []
        for metric, jobs in metric_jobs.items():
            for kind, total in kind_count.items():
                base = total / n_jobs
                support = sum(
                    1 for j in jobs
                    if any(k == kind for _, k in self._events.get(j, ()))
                )
                if support == 0:
                    continue
                confidence = support / len(jobs)
                out.append(Association(
                    metric=metric, kind=kind,
                    lift=confidence / base if base else float("inf"),
                    support=support, anomalous_jobs=len(jobs),
                    base_rate=base,
                ))
        out.sort(key=lambda a: -a.lift)
        return out

    def association_table(self, min_support: int = 3) -> list[Association]:
        """Mined associations with at least *min_support* co-occurrences,
        strongest lift first."""
        return [a for a in self._table if a.support >= min_support]

    def _lift(self, metric: str, kind: str) -> float:
        for a in self._table:
            if a.metric == metric and a.kind == kind:
                return a.lift
        return 1.0

    # -- diagnosis ------------------------------------------------------------

    def diagnose(self, jobid: str) -> Diagnosis:
        """Rank root-cause hypotheses for one job."""
        if jobid not in self._job_index:
            raise KeyError(f"job {jobid!r} not in warehouse for "
                           f"{self.system}")
        i = self._job_index[jobid]
        events = self._events.get(jobid, [])
        kinds = tuple(sorted({k for _, k in events}))
        anomalies = tuple(self._anomalies_by_job.get(jobid, ()))

        scores: dict[str, float] = {}
        for a in anomalies:
            if a.robust_z <= 0:
                continue
            for kind in kinds:
                prior = _CAUSE_PRIORS.get((a.metric, kind))
                lift = self._lift(a.metric, kind)
                if prior is None and lift < 2.0:
                    continue
                label = prior or (
                    f"{a.metric} anomaly associated with {kind} "
                    f"(lift {lift:.1f})"
                )
                weight = min(abs(a.robust_z), 10.0) * max(lift, 1.0)
                scores[label] = scores.get(label, 0.0) + weight
        if not scores and kinds:
            # Faults with no resource anomaly: name the evidence itself.
            for kind in kinds:
                scores[f"{kind} without a resource-use anomaly "
                       "(external/hardware cause)"] = 1.0

        end_time = float(self.query.column("end_time")[i])
        lead = None
        if events:
            lead = max(end_time - events[0][0], 0.0)

        hypotheses = tuple(sorted(scores.items(), key=lambda kv: -kv[1]))
        return Diagnosis(
            jobid=jobid,
            user=str(self.query.column("user")[i]),
            app=str(self.query.column("app")[i]),
            exit_status=str(self.query.column("exit_status")[i]),
            failure_events=kinds,
            anomalies=anomalies,
            hypotheses=hypotheses,
            lead_time_s=lead,
        )

    def diagnose_failures(self) -> list[Diagnosis]:
        """Diagnoses for every abnormally-exited job that left evidence,
        richest evidence first."""
        exit_col = self.query.column("exit_status")
        jobids = self.query.column("jobid")
        out = []
        for jid, status in zip(jobids, exit_col):
            if status == "completed":
                continue
            d = self.diagnose(str(jid))
            if d.failure_events or d.anomalies:
                out.append(d)
        out.sort(key=lambda d: -(len(d.failure_events) + len(d.anomalies)))
        return out

    def mean_lead_time(self) -> float | None:
        """Average warning window across jobs with failure events."""
        leads = []
        for jid in self._events:
            if jid in self._job_index:
                d_end = float(
                    self.query.column("end_time")[self._job_index[jid]])
                leads.append(max(d_end - self._events[jid][0][0], 0.0))
        return float(np.mean(leads)) if leads else None
