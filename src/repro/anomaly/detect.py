"""Per-metric job anomaly detection.

A job is anomalous when a metric deviates strongly from the *application's
own* distribution (robust z-score on the median/MAD), not the facility's:
NAMD writing 10 MB/s is strange, WRF writing 10 MB/s is Tuesday.  This is
the report behind "jobs with anomalous or inefficient resource use
patterns" offered to users, developers and support staff (§4.3.1-4.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.summarize import KEY_METRICS
from repro.xdmod.query import JobQuery

__all__ = ["AnomalousJob", "AnomalyDetector"]

#: MAD -> sigma for a normal distribution.
_MAD_SCALE = 1.4826


@dataclass(frozen=True)
class AnomalousJob:
    """One flagged job."""

    jobid: str
    user: str
    app: str
    metric: str
    value: float
    robust_z: float
    baseline_median: float

    @property
    def direction(self) -> str:
        return "high" if self.robust_z > 0 else "low"


class AnomalyDetector:
    """Flags jobs anomalous relative to their application baseline.

    Parameters
    ----------
    query:
        The system's job query.
    metrics:
        Metrics to scan (default: the eight key metrics).
    z_threshold:
        |robust z| above which a job is flagged.
    min_app_jobs:
        Applications with fewer jobs than this are skipped (no baseline).
    """

    def __init__(
        self,
        query: JobQuery,
        metrics: tuple[str, ...] = KEY_METRICS,
        z_threshold: float = 4.0,
        min_app_jobs: int = 10,
    ):
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.query = query
        self.metrics = metrics
        self.z_threshold = z_threshold
        self.min_app_jobs = min_app_jobs

    def detect(self) -> list[AnomalousJob]:
        """Scan all applications; returns flags sorted by |z| descending."""
        out: list[AnomalousJob] = []
        apps = np.unique(self.query.column("app"))
        for app in apps:
            sub = self.query.filter(app=str(app))
            if len(sub) < self.min_app_jobs:
                continue
            jobids = sub.column("jobid")
            users = sub.column("user")
            for metric in self.metrics:
                v = sub.column(metric)
                med = float(np.median(v))
                mad = float(np.median(np.abs(v - med))) * _MAD_SCALE
                if mad <= 0:
                    # Degenerate spread: fall back to std, skip if constant.
                    mad = float(v.std())
                    if mad <= 0:
                        continue
                z = (v - med) / mad
                for i in np.nonzero(np.abs(z) >= self.z_threshold)[0]:
                    out.append(AnomalousJob(
                        jobid=str(jobids[i]),
                        user=str(users[i]),
                        app=str(app),
                        metric=metric,
                        value=float(v[i]),
                        robust_z=float(z[i]),
                        baseline_median=med,
                    ))
        out.sort(key=lambda a: -abs(a.robust_z))
        return out

    def by_job(self) -> dict[str, list[AnomalousJob]]:
        """Flags grouped by job id (multi-metric anomalies surface first)."""
        grouped: dict[str, list[AnomalousJob]] = {}
        for a in self.detect():
            grouped.setdefault(a.jobid, []).append(a)
        return dict(
            sorted(grouped.items(), key=lambda kv: -len(kv[1]))
        )
