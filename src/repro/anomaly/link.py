"""Link resource-use anomalies to syslog failure events (ANCOR-style).

Given the detector's flags and the rationalized syslog events in the
warehouse, associate each anomalous job with the failure-class messages
tagged with its job id, and quantify the association: do anomalous jobs
draw failure events more often than normal jobs?  That enrichment ratio is
the quantitative version of the paper's claim that anomalies "are commonly
the precursors of job failures" (§4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anomaly.detect import AnomalousJob
from repro.ingest.warehouse import Warehouse
from repro.syslogr.catalog import MessageKind

__all__ = ["AnomalyFailureLink", "link_anomalies_to_failures"]

_FAILURE_KINDS = frozenset(k.value for k in MessageKind if k.is_failure)


@dataclass(frozen=True)
class AnomalyFailureLink:
    """The linkage result for one system."""

    #: jobid -> (anomaly flags, failure-event kinds observed)
    linked: dict[str, tuple[tuple[AnomalousJob, ...], tuple[str, ...]]]
    anomalous_with_failures: int
    anomalous_total: int
    normal_with_failures: int
    normal_total: int

    @property
    def anomalous_failure_rate(self) -> float:
        if self.anomalous_total == 0:
            return float("nan")
        return self.anomalous_with_failures / self.anomalous_total

    @property
    def normal_failure_rate(self) -> float:
        if self.normal_total == 0:
            return float("nan")
        return self.normal_with_failures / self.normal_total

    @property
    def enrichment(self) -> float:
        """How much likelier an anomalous job is to draw failure events."""
        base = self.normal_failure_rate
        if not base:
            return float("inf") if self.anomalous_failure_rate else 1.0
        return self.anomalous_failure_rate / base


def link_anomalies_to_failures(
    warehouse: Warehouse,
    system: str,
    anomalies: list[AnomalousJob],
) -> AnomalyFailureLink:
    """Join anomaly flags with per-job failure events."""
    # jobid -> failure kinds from syslog.
    failures: dict[str, list[str]] = {}
    for t, host, jobid, kind, severity in warehouse.syslog_events(system):
        if jobid is None or kind not in _FAILURE_KINDS:
            continue
        failures.setdefault(jobid, []).append(kind)

    by_job: dict[str, list[AnomalousJob]] = {}
    for a in anomalies:
        by_job.setdefault(a.jobid, []).append(a)

    linked = {
        jid: (tuple(flags), tuple(failures.get(jid, ())))
        for jid, flags in by_job.items()
    }

    all_jobids = set(warehouse.job_table(system, metrics=())["jobid"])
    anomalous_ids = set(by_job)
    normal_ids = all_jobids - anomalous_ids
    return AnomalyFailureLink(
        linked=linked,
        anomalous_with_failures=sum(
            1 for j in anomalous_ids if failures.get(j)
        ),
        anomalous_total=len(anomalous_ids),
        normal_with_failures=sum(1 for j in normal_ids if failures.get(j)),
        normal_total=len(normal_ids),
    )
