"""Anomaly detection and failure linkage (the ANCOR direction, paper §4.3.4
and reference [26]).

Two pieces: robust per-metric outlier detection on job summaries (jobs
anomalous *for their application*), and the linkage of those anomalies to
rationalized-syslog failure events — "anomalous resource use patterns ...
are commonly the precursors of job failures" (§4.3.1).
"""

from repro.anomaly.ancor import AncorAnalysis, Association, Diagnosis
from repro.anomaly.detect import AnomalousJob, AnomalyDetector
from repro.anomaly.link import AnomalyFailureLink, link_anomalies_to_failures

__all__ = [
    "AnomalousJob",
    "AnomalyDetector",
    "AnomalyFailureLink",
    "link_anomalies_to_failures",
    "AncorAnalysis",
    "Association",
    "Diagnosis",
]
