"""Live streaming mode: continuous sampling, micro-batch ingest, and
between-query rate views.

The batch pipeline turns a finished study period into a warehouse; this
package turns the same machinery into something an operator *watches*:

* :class:`~repro.live.runner.LiveReplay` drives the per-node daemons
  incrementally, emitting samples into rolling archive segments
  (sub-day ``rotate_seconds`` cadence) instead of one offline pass.
* :class:`~repro.live.runner.LiveSession` micro-batches each completed
  segment through the ordinary watermark ledger
  (``ingest(mode="append")``), refreshes the rolling snapshot in
  place, and publishes per-job cumulative counters for rate views.
* :class:`~repro.live.rates.RateEngine` computes per-job rates
  *between successive queries* from those monotonic counters
  (wrap-safe deltas, glljobstat-style), with top-N ranking and
  user/app/metric filters — consumed by ``repro-top`` and the
  ``/api/v1/live/*`` service endpoints.

See ``docs/OBSERVABILITY.md`` ("Live monitoring") for the
architecture and cadence knobs.
"""

from repro.live.rates import (
    COUNTER_WRAP_BITS,
    JobRates,
    RateEngine,
    top_jobs,
    total_rates,
)
from repro.live.runner import (
    LIVE_COUNTER_METRICS,
    LiveBatchReport,
    LiveReplay,
    LiveSession,
)

__all__ = [
    "COUNTER_WRAP_BITS",
    "JobRates",
    "RateEngine",
    "top_jobs",
    "total_rates",
    "LIVE_COUNTER_METRICS",
    "LiveBatchReport",
    "LiveReplay",
    "LiveSession",
]
