"""The streaming runner and micro-batcher behind live mode.

:class:`LiveReplay` is the incremental counterpart of the offline
per-node daemon replay in :mod:`repro.facility`: the same daemons, the
same per-node RNG streams, the same same-instant event ordering
(end < periodic tick < begin) — but driven by :meth:`LiveReplay.advance`
calls instead of one pass over the whole horizon.  Because each node's
event sequence is processed in the identical order, the archive bytes
are identical to an offline replay at the same rotation period; that is
what makes live micro-batch ingest byte-identical to a one-shot append
(property-tested in ``tests/live``).

:class:`LiveSession` wraps the replay in the operator loop: advance to
the next segment boundary, flush completed segments to disk, push them
through the ordinary watermark ledger (``ingest(mode="append")``),
publish per-job cumulative counters for the rate views, and refresh the
rolling warehouse snapshot in place.  Telemetry lands under ``live.*``
(batches, rows appended, counter rows, refresh latency histogram).
"""

from __future__ import annotations

import io
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.config import FacilityConfig
from repro.facility import Facility, _build_behavior, _noise_stream_factory
from repro.ingest.pipeline import DeltaSummary, IngestPipeline
from repro.ingest.summarize import summarize_job_from_rates
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.live.rates import COUNTER_WRAP_BITS
from repro.scheduler.accounting import AccountingWriter
from repro.scheduler.job import JobRecord
from repro.syslogr.generator import SyslogGenerator
from repro.syslogr.rationalizer import Rationalizer
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.tacc_stats.synth import NodeSynth
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import span
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR, aligned_samples
from repro.workload.applications import RATE_INDEX
from repro.xdmod.snapshot import WarehouseSnapshot

__all__ = ["LIVE_COUNTER_METRICS", "LIVE_REFRESH_BUCKETS",
           "LiveBatchReport", "LiveReplay", "LiveSession"]

#: Rate fields published as cumulative live counters, in row order.
#: Each accumulates its per-second rate over wall time × nodes, so the
#: rate engine's delta/dt recovers the facility-wide per-job rate.
LIVE_COUNTER_METRICS: tuple[str, ...] = (
    "flops_gf",
    "cpu_user_frac",
    "io_scratch_write_mb",
    "net_mpi_mb",
)

#: Snapshot-refresh latency buckets: a rolling refresh is O(delta), so
#: resolution concentrates well below a second.
LIVE_REFRESH_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 5.0,
)


class LiveReplay:
    """Drive every node's daemon incrementally into a shared archive.

    Construction precomputes exactly what the offline replay would:
    per-node event lists (periodic ticks plus job begin/end, sorted
    with the same same-instant ordering) and per-job behaviours.
    :meth:`advance` then processes each node's events up to and
    including a time bound, so successive calls replay the horizon in
    monotonic slices.
    """

    def __init__(self, cfg: FacilityConfig, seed: int, users: dict,
                 util_scale: float, phase_calibration: dict | None,
                 regressions: tuple, records: list[JobRecord],
                 archive: HostArchive, synthesis: str = "fast"):
        from repro.cluster.node import Node

        if synthesis not in ("fast", "scalar"):
            raise ValueError(
                f"synthesis must be 'fast' or 'scalar', got {synthesis!r}")
        rng_factory = RngFactory(seed)
        prefix = cfg.stream_prefix
        self.archive = archive
        self.synthesis = synthesis
        per_node: dict[int, list[tuple[float, float, JobRecord, int]]] = {}
        for record in records:
            for slot, ni in enumerate(record.node_indices):
                per_node.setdefault(ni, []).append(
                    (record.start_time, record.end_time, record, slot)
                )
        #: jobid -> behaviour, shared with the session's counter source.
        self.behaviors = {
            r.jobid: _build_behavior(cfg, users, util_scale,
                                     phase_calibration, regressions, r)
            for r in records
        }

        ticks = aligned_samples(0.0, cfg.horizon, cfg.sample_interval)
        lustre = tuple(
            fs.name for fs in cfg.filesystems if fs.kind == "lustre"
        ) or ("scratch",)
        nfs = tuple(fs.name for fs in cfg.filesystems if fs.kind == "nfs")
        #: [daemon, sorted events, next-event index] per node.
        self._nodes: list[list] = []
        for ni in range(cfg.num_nodes):
            node = Node(
                index=ni,
                hostname=f"c{ni // 100:03d}-{ni % 100:03d}.{cfg.name}",
                hardware=cfg.node)
            noise = _noise_stream_factory(rng_factory, prefix, ni)
            if synthesis == "fast":
                daemon = NodeSynth(node, noise, archive,
                                   lustre_mounts=lustre, nfs_mounts=nfs)
            else:
                daemon = TaccStatsDaemon(
                    node,
                    noise,
                    writer=lambda t, h=node.hostname: archive.writer(h, t),
                    lustre_mounts=lustre,
                    nfs_mounts=nfs,
                )
            events: list[tuple[float, int, object]] = [
                (t, 1, None) for t in ticks
            ]
            for start, end, record, slot in per_node.get(ni, []):
                if end > start:
                    events.append((start, 2, ("begin", record, slot)))
                    events.append((end, 0, ("end", record)))
                else:
                    # Zero-duration allocation (a job truncated at the
                    # horizon): its end would sort *before* its begin
                    # under the same-instant rule, so fire both back to
                    # back.
                    events.append((start, 2, ("beginend", record, slot)))
            events.sort(key=lambda e: (e[0], e[1]))
            self._nodes.append([daemon, events, 0])
        self.clock = 0.0

    def advance(self, until: float) -> int:
        """Process every node's events with ``t <= until``; returns how
        many events fired.  *until* must not move backwards."""
        if until < self.clock:
            raise ValueError(
                f"cannot advance backwards ({until} < {self.clock})")
        fired = 0
        for state in self._nodes:
            daemon, events, ptr = state
            while ptr < len(events) and events[ptr][0] <= until:
                t, kind, payload = events[ptr]
                if kind == 1:
                    daemon.sample(t)
                elif kind == 2:
                    tag, record, slot = payload
                    daemon.begin_job(record.jobid, t,
                                     self.behaviors[record.jobid], slot)
                    if tag == "beginend":
                        daemon.end_job(record.jobid, t)
                else:
                    _tag, record = payload
                    daemon.end_job(record.jobid, t)
                ptr += 1
                fired += 1
            state[2] = ptr
            if self.synthesis == "fast":
                # Materialize the batch before the caller closes segment
                # files — the synthesis engine buffers queued samples
                # until a job-begin boundary or an explicit flush.
                daemon.flush()
        self.clock = until
        return fired


@dataclass
class LiveBatchReport:
    """What one micro-batch accomplished.

    ``snapshot_rows`` is the rolling snapshot's job-row count after the
    in-place refresh — the number CI asserts grows monotonically.
    """

    batch: int
    t_start: float
    t_end: float
    segments: int
    jobs_loaded: int
    jobs_total: int
    syslog_loaded: int
    counter_rows: int
    snapshot_rows: int
    refresh_seconds: float
    delta: DeltaSummary | None = None

    def to_dict(self) -> dict:
        out = asdict(self)
        out["delta"] = self.delta.to_dict() if self.delta else None
        return out

    def __str__(self) -> str:
        return (
            f"[live] batch={self.batch} t={self.t_start:.0f}"
            f"->{self.t_end:.0f} segments={self.segments} "
            f"jobs+={self.jobs_loaded} jobs={self.jobs_total} "
            f"snapshot_rows={self.snapshot_rows} "
            f"refresh_ms={self.refresh_seconds * 1e3:.1f}"
        )


class LiveSession:
    """The live micro-batch loop over one facility.

    Each :meth:`run_batch` call advances the replay by
    ``batch_segments`` rotation segments, closes the completed segment
    files, appends them through the watermark ledger, upserts the
    per-job cumulative counters, and refreshes the rolling snapshot.
    The accounting/Lariat/syslog side logs are produced once up front
    (exactly as the offline path would have) — the ledger's watermarks
    and job deferral are what window them per batch.
    """

    def __init__(self, facility: Facility, archive_dir: str,
                 warehouse: Warehouse | None = None,
                 segment_seconds: int = HOUR, batch_segments: int = 1,
                 compress: bool = True, synthesis: str = "fast"):
        seg = int(segment_seconds)
        if seg <= 0 or seg != segment_seconds:
            raise ValueError(f"segment_seconds must be a positive whole "
                             f"number, got {segment_seconds!r}")
        if batch_segments < 1:
            raise ValueError(
                f"batch_segments must be >= 1, got {batch_segments}")
        cfg = facility.config
        self.config = cfg
        self.segment_seconds = seg
        self.batch_segments = batch_segments
        self.warehouse = warehouse or Warehouse()
        workload, sim, outages, cluster = facility._simulate()
        self.sim = sim
        self.archive = HostArchive(archive_dir, compress=compress,
                                   rotate_seconds=seg)
        self.replay = LiveReplay(
            cfg, facility.seed, workload.users, workload.util_scale,
            facility.phase_calibration, facility.regressions,
            sim.records, self.archive, synthesis=synthesis)

        acct_buf = io.StringIO()
        AccountingWriter(acct_buf, cfg.node.cores,
                         cfg.name).write_all(sim.records)
        self.accounting_text = acct_buf.getvalue()
        self.lariat = [lariat_record_for(r, cfg.node.cores)
                       for r in sim.records]

        # Same recipe (and RNG stream order) as the offline slow path,
        # so a live session and Facility.run_with_files agree bytewise.
        syslog_gen = SyslogGenerator(facility._stream("syslog"), cfg.name)
        raw = []
        for record in sim.records:
            behavior = self.replay.behaviors[record.jobid]
            m = max(1, int(np.ceil(
                record.wall_seconds / cfg.sample_interval)))
            rates = behavior.rates_matrix(m)
            summary = summarize_job_from_rates(record, rates)
            raw.extend(syslog_gen.generate_for_job(
                record,
                mem_frac_max=summary.get("mem_used_max")
                / cfg.node.memory_gb,
                scratch_write_mb=summary.get("io_scratch_write"),
                cpu_idle_frac=summary.get("cpu_idle"),
            ))
        rationalizer = Rationalizer()
        for record in sim.records:
            for ni in record.node_indices:
                rationalizer.add_occupancy(
                    cluster.nodes[ni].hostname, record.start_time,
                    record.end_time, record.jobid)
        rationalizer.finalize()
        self.syslog, _ = rationalizer.rationalize_stream(raw)

        self.pipeline = IngestPipeline(self.warehouse)
        self.n_segments = int(cfg.horizon // seg) + 1
        self.snapshot: WarehouseSnapshot | None = None
        self._next_seg = 0
        self._batch = 0
        self._final_recorded: set[str] = set()
        self._wrap = 1 << COUNTER_WRAP_BITS
        self._cum_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def done(self) -> bool:
        return self._next_seg >= self.n_segments

    def _counters_at(self, record: JobRecord, t: float) -> list[int]:
        """The job's cumulative counters at facility time *t*.

        Integrates the behaviour's per-bin rates (× nodes) over the
        elapsed wall time and floors to integers — nondecreasing in
        *t*, wrapped at the rate engine's counter width.
        """
        interval = self.config.sample_interval
        cached = self._cum_cache.get(record.jobid)
        if cached is None:
            behavior = self.replay.behaviors[record.jobid]
            m = max(1, int(np.ceil(record.wall_seconds / interval)))
            idx = [RATE_INDEX[name] for name in LIVE_COUNTER_METRICS]
            per_bin = (behavior.rates_matrix(m)[:, idx]
                       * record.request.nodes)
            cum = np.vstack([np.zeros(len(idx)),
                             np.cumsum(per_bin, axis=0)]) * interval
            cached = (cum, per_bin)
            self._cum_cache[record.jobid] = cached
        cum, per_bin = cached
        elapsed = max(0.0, min(t, record.end_time) - record.start_time)
        full = min(int(elapsed // interval), per_bin.shape[0])
        vals = cum[full]
        frac = elapsed - full * interval
        if frac > 0 and full < per_bin.shape[0]:
            vals = vals + per_bin[full] * frac
        return [int(v) % self._wrap for v in vals]

    def _publish_counters(self, t1: float) -> int:
        """Upsert every started job's counters as of *t1*; a job's
        final (end-time) counters are published exactly once."""
        rows: list[tuple] = []
        for record in self.sim.records:
            jobid = record.jobid
            if jobid in self._final_recorded:
                continue
            if record.start_time >= t1:
                continue  # hasn't started yet
            t_sample = min(t1, record.end_time)
            ended = record.end_time <= t1
            req = record.request
            rows.extend(
                (jobid, req.user, req.app, t_sample, int(ended),
                 metric, value)
                for metric, value in zip(LIVE_COUNTER_METRICS,
                                         self._counters_at(record,
                                                           t_sample))
            )
            if ended:
                self._final_recorded.add(jobid)
        if rows:
            self.warehouse.record_live_counters(self.config.name, rows)
            self.warehouse.commit()
        return len(rows)

    def run_batch(self) -> LiveBatchReport | None:
        """Advance one micro-batch; ``None`` once the horizon is done."""
        if self.done:
            return None
        cfg = self.config
        hi = min(self._next_seg + self.batch_segments, self.n_segments)
        final = hi >= self.n_segments
        t_start = float(self._next_seg * self.segment_seconds)
        t_end = float(cfg.horizon) if final \
            else float(hi * self.segment_seconds)
        registry = get_registry()
        with span("live.batch", batch=self._batch, t_end=t_end):
            self.replay.advance(t_end)
            if final:
                self.archive.close()
            else:
                self.archive.flush_before(t_end)
            report = self.pipeline.ingest(
                cfg,
                accounting_text=self.accounting_text,
                archive=self.archive,
                lariat_records=self.lariat,
                syslog=self.syslog,
                mode="append",
            )
            counter_rows = self._publish_counters(t_end)
            start = time.perf_counter()
            self.snapshot = WarehouseSnapshot.for_warehouse(
                self.warehouse)
            refresh_seconds = time.perf_counter() - start
            snapshot_rows = self.snapshot.frame(cfg.name).n_rows
            registry.counter("live.batches").inc()
            registry.counter("live.rows_appended").inc(
                report.jobs_loaded + report.syslog_events_loaded)
            registry.counter("live.counter_rows").inc(counter_rows)
            registry.histogram("live.refresh.seconds",
                               LIVE_REFRESH_BUCKETS).observe(
                refresh_seconds)
        out = LiveBatchReport(
            batch=self._batch, t_start=t_start, t_end=t_end,
            segments=hi - self._next_seg,
            jobs_loaded=report.jobs_loaded,
            jobs_total=self.warehouse.job_count(cfg.name),
            syslog_loaded=report.syslog_events_loaded,
            counter_rows=counter_rows,
            snapshot_rows=snapshot_rows,
            refresh_seconds=refresh_seconds,
            delta=report.delta,
        )
        self._next_seg = hi
        self._batch += 1
        return out

    def run(self, max_batches: int | None = None) -> list[LiveBatchReport]:
        """Run micro-batches until the horizon (or *max_batches*)."""
        reports: list[LiveBatchReport] = []
        while max_batches is None or len(reports) < max_batches:
            report = self.run_batch()
            if report is None:
                break
            reports.append(report)
        return reports
