"""Between-query rate computation over monotonic job counters.

The model is glljobstat's: the data source exposes *cumulative*
counters per job (operations, bytes, FLOPs...), and a client polling
at its own cadence derives rates by differencing the two most recent
observations — ``rate = (cur - prev) mod 2^width / (t_cur - t_prev)``.
The modulo makes the delta wrap-safe: a counter that rolled over
between polls still yields the true (small, positive) increment, never
a huge negative one.

Rates therefore need **two** observations: the first poll of a job
only establishes its baseline.  A job whose sample time stops
advancing (it ended; its final counters were published once) produces
no further rates and simply ages out of the view.  A job that ends
*mid-window* still yields one final rate over the partial window
``prev.t .. end`` when its final counters are first observed.

Each client owns its own :class:`RateEngine` — the windows are defined
by *that client's* poll times, so engine state is never shared.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

__all__ = ["COUNTER_WRAP_BITS", "JobRates", "RateEngine", "top_jobs",
           "total_rates"]

#: Counter register width: 48 bits, like the Intel PMCs the real
#: tacc_stats reads — wide enough that wraps are rare, narrow enough
#: that the wrapped value always fits SQLite's signed 64-bit integers.
COUNTER_WRAP_BITS = 48


@dataclass(frozen=True)
class JobRates:
    """One job's rates over one client-observed window.

    ``t`` is the newer sample's facility time, ``dt`` the window width
    in facility seconds, and ``rates`` maps metric name to units per
    second (units are whatever the counter accumulates: GF for
    ``flops_gf``, MB for the I/O counters, CPU-seconds for
    ``cpu_user_frac``).
    """

    jobid: str
    user: str
    app: str
    t: float
    dt: float
    ended: bool
    rates: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "jobid": self.jobid, "user": self.user, "app": self.app,
            "t": self.t, "dt": self.dt, "ended": self.ended,
            "rates": dict(self.rates),
        }


class RateEngine:
    """Stateful between-query differencing of job counter samples.

    Feed it the full current counter table on every poll
    (:meth:`observe`); it returns a :class:`JobRates` per job whose
    sample time advanced since the previous poll.  New jobs are
    baselined silently, vanished jobs are forgotten.
    """

    def __init__(self, wrap_bits: int = COUNTER_WRAP_BITS):
        if wrap_bits < 1:
            raise ValueError(f"wrap_bits must be >= 1, got {wrap_bits}")
        self.wrap = 1 << wrap_bits
        self._prev: dict[str, Mapping] = {}

    def observe(self, samples: Iterable[Mapping]) -> list[JobRates]:
        """Difference *samples* against the previous poll.

        Each sample is a mapping with ``jobid``, ``user``, ``app``,
        ``t``, ``ended`` and ``counters`` (metric -> cumulative int) —
        the shape :meth:`repro.ingest.warehouse.Warehouse.live_counters`
        returns.  Returns rates sorted by jobid, one entry per job with
        a previous observation whose ``t`` advanced.
        """
        out: list[JobRates] = []
        seen: dict[str, Mapping] = {}
        for sample in samples:
            jobid = sample["jobid"]
            seen[jobid] = sample
            prev = self._prev.get(jobid)
            if prev is None or sample["t"] <= prev["t"]:
                continue
            dt = float(sample["t"] - prev["t"])
            prev_counters = prev["counters"]
            rates = {
                metric: ((cur - prev_counters[metric]) % self.wrap) / dt
                for metric, cur in sorted(sample["counters"].items())
                if metric in prev_counters
            }
            out.append(JobRates(
                jobid=jobid, user=sample["user"], app=sample["app"],
                t=float(sample["t"]), dt=dt,
                ended=bool(sample.get("ended", False)), rates=rates,
            ))
        self._prev = seen
        out.sort(key=lambda r: r.jobid)
        return out


def top_jobs(rows: Iterable[JobRates], n: int = 5,
             order_by: str = "flops_gf", user: str | None = None,
             app: str | None = None) -> list[JobRates]:
    """The top-*n* rate rows by *order_by*, optionally filtered.

    Ties break toward the lexicographically smaller jobid so the view
    is stable across refreshes.  Jobs missing the ordering metric rank
    as zero (they still show under a filter — an operator asking for
    one user's jobs wants all of them, active or not).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    kept = [
        r for r in rows
        if (user is None or r.user == user)
        and (app is None or r.app == app)
    ]
    kept.sort(key=lambda r: (-r.rates.get(order_by, 0.0), r.jobid))
    return kept[:n]


def total_rates(rows: Iterable[JobRates]) -> dict[str, float]:
    """Facility-wide sum of every metric's rate across *rows* (the
    glljobstat ``--total`` line)."""
    out: dict[str, float] = {}
    for r in rows:
        for metric, value in r.rates.items():
            out[metric] = out.get(metric, 0.0) + value
    return {m: out[m] for m in sorted(out)}
