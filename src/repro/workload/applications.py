"""Application archetypes and the canonical per-node rate vector.

Every job's behaviour is summarized as a vector of per-node *rates* sampled
on the TACC_Stats grid.  ``RATE_FIELDS`` is the canonical ordering used by
the phase model, the collectors, and the fast synthesis path — change it in
one place only.

The catalog's numbers are calibrated to the paper's qualitative findings:

* NAMD and GROMACS are efficient (low cpu_idle, high FLOPS); AMBER idles
  more and produces fewer FLOPS (Figure 3), and AMBER/GROMACS differ across
  the AMD/Intel systems while NAMD looks the same on both.
* Whole-system FLOPS average out to a few percent of peak (Figures 9/10:
  Ranger < 20 TF of 579 TF peak).
* Memory per node averages well under half of capacity on Ranger and ~60 %
  on Lonestar4 (Figures 11/12).
* A tail of serial/undersubscribed and I/O-bound workloads generates the
  high-idle outliers of Figures 4/5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RATE_FIELDS", "RATE_INDEX", "AppSignature", "APP_CATALOG", "get_app"]

#: Canonical per-node rate fields (fractions, GF/s, GB gauges, MB/s rates).
RATE_FIELDS: tuple[str, ...] = (
    "cpu_user_frac",
    "cpu_sys_frac",
    "cpu_iowait_frac",
    "flops_gf",
    "mem_used_gb",
    "mem_cache_gb",
    "io_scratch_write_mb",
    "io_scratch_read_mb",
    "io_work_write_mb",
    "io_work_read_mb",
    "io_share_write_mb",
    "io_share_read_mb",
    "net_mpi_mb",
    "net_eth_mb",
    "swap_mb",
    "block_mb",
)

RATE_INDEX: dict[str, int] = {name: i for i, name in enumerate(RATE_FIELDS)}


@dataclass(frozen=True)
class AppSignature:
    """Resource-use archetype of one application.

    Rates are *per node* for a typical run on Ranger-class hardware; the
    behaviour model scales FLOPS by node peak and memory by node capacity.

    Attributes
    ----------
    name, display:
        Short tag (Lariat's app tag) and human name.
    category:
        Workload class (``"md"``, ``"materials"``, ``"climate"``, ...).
    science_fields:
        Parent sciences whose users run this code.
    weight:
        Relative share of submitted jobs.
    nodes_log2_mean, nodes_log2_sigma, nodes_min, nodes_max:
        Job size: ``2 ** Normal(mean, sigma)`` rounded, clipped.
    runtime_mean_min, runtime_sigma:
        Lognormal runtime in minutes (sigma in log space).
    cpu_user, cpu_sys, cpu_iowait:
        Mean core-time fractions while running (idle is the remainder).
    flops_frac:
        Achieved fraction of node peak FLOP/s.
    mem_frac_mean, mem_frac_sigma:
        Used memory as a fraction of node capacity (lognormal sigma).
    cache_frac:
        Portion of used memory that is page cache.
    io rates:
        MB/s per node to each Lustre mount (write/read).
    net_mpi_mb:
        MPI traffic per node, MB/s, over InfiniBand.
    net_eth_mb, swap_mb, block_mb:
        Ethernet/swap/local-disk rates (small on these systems).
    fail_rate, timeout_rate:
        Probability a job aborts / exceeds its requested walltime.
    job_sigma:
        Job-to-job lognormal spread applied to every rate group.
    tuning:
        How much of a user's CPU-inefficiency the application's tuned
        launch machinery absorbs (0 = none: home-grown codes expose the
        full persona; 0.75 = community packages whose ship-with scripts
        pin processes and size runs sensibly).  Keeps the Figure 3
        application comparison about applications, with waste
        concentrating in custom/serial codes (Figures 4/5).
    arch_flops, arch_util:
        Per-architecture multipliers (``{"amd64": .., "intel": ..}``) on
        FLOPS fraction and CPU utilization — how Figure 3's cross-machine
        differences arise.
    """

    name: str
    display: str
    category: str
    science_fields: tuple[str, ...]
    weight: float
    nodes_log2_mean: float
    nodes_log2_sigma: float
    nodes_min: int
    nodes_max: int
    runtime_mean_min: float
    runtime_sigma: float
    cpu_user: float
    cpu_sys: float
    cpu_iowait: float
    flops_frac: float
    mem_frac_mean: float
    mem_frac_sigma: float
    cache_frac: float
    io_scratch_write_mb: float
    io_scratch_read_mb: float
    io_work_write_mb: float
    io_work_read_mb: float
    io_share_write_mb: float = 0.02
    io_share_read_mb: float = 0.02
    net_mpi_mb: float = 10.0
    net_eth_mb: float = 0.05
    swap_mb: float = 0.0
    block_mb: float = 0.1
    fail_rate: float = 0.04
    timeout_rate: float = 0.03
    job_sigma: float = 0.35
    tuning: float = 0.0
    arch_flops: dict = field(default_factory=dict)
    arch_util: dict = field(default_factory=dict)
    libraries: tuple[str, ...] = ()

    def __post_init__(self):
        if not 0 < self.cpu_user + self.cpu_sys + self.cpu_iowait <= 1.0:
            raise ValueError(f"{self.name}: CPU fractions must sum to (0, 1]")
        if not 0 <= self.flops_frac <= 1:
            raise ValueError(f"{self.name}: flops_frac out of range")
        if not 0 < self.mem_frac_mean < 1:
            raise ValueError(f"{self.name}: mem_frac_mean out of range")
        if self.nodes_min < 1 or self.nodes_max < self.nodes_min:
            raise ValueError(f"{self.name}: bad node bounds")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be positive")
        if not 0 <= self.tuning <= 1:
            raise ValueError(f"{self.name}: tuning out of [0, 1]")

    @property
    def cpu_idle(self) -> float:
        """Mean idle fraction while running (before user persona scaling)."""
        return 1.0 - self.cpu_user - self.cpu_sys - self.cpu_iowait

    def flops_multiplier(self, arch: str) -> float:
        return self.arch_flops.get(arch, 1.0)

    def util_multiplier(self, arch: str) -> float:
        return self.arch_util.get(arch, 1.0)

    def sample_nodes(self, rng: np.random.Generator, scale: float,
                     system_max: int) -> int:
        """Draw a node count, compressed by *scale* for shrunken systems."""
        raw = 2.0 ** rng.normal(self.nodes_log2_mean, self.nodes_log2_sigma)
        raw *= max(scale, 1e-9)
        hi = min(self.nodes_max, system_max)
        return int(np.clip(round(raw), 1, max(1, hi)))

    def sample_runtime(self, rng: np.random.Generator) -> float:
        """Draw an intrinsic runtime in seconds (lognormal, mean-preserving)."""
        mu = np.log(self.runtime_mean_min * 60.0) - 0.5 * self.runtime_sigma**2
        return float(np.exp(rng.normal(mu, self.runtime_sigma)))

    def base_rates(self, node_peak_gf: float, node_mem_gb: float,
                   arch: str) -> np.ndarray:
        """Mean per-node rate vector on the given hardware."""
        r = np.zeros(len(RATE_FIELDS))
        util_m = self.util_multiplier(arch)
        r[RATE_INDEX["cpu_user_frac"]] = min(self.cpu_user * util_m, 0.97)
        r[RATE_INDEX["cpu_sys_frac"]] = self.cpu_sys
        r[RATE_INDEX["cpu_iowait_frac"]] = self.cpu_iowait
        r[RATE_INDEX["flops_gf"]] = (
            self.flops_frac * self.flops_multiplier(arch) * node_peak_gf
        )
        mem = self.mem_frac_mean * node_mem_gb
        r[RATE_INDEX["mem_used_gb"]] = mem
        r[RATE_INDEX["mem_cache_gb"]] = self.cache_frac * mem
        r[RATE_INDEX["io_scratch_write_mb"]] = self.io_scratch_write_mb
        r[RATE_INDEX["io_scratch_read_mb"]] = self.io_scratch_read_mb
        r[RATE_INDEX["io_work_write_mb"]] = self.io_work_write_mb
        r[RATE_INDEX["io_work_read_mb"]] = self.io_work_read_mb
        r[RATE_INDEX["io_share_write_mb"]] = self.io_share_write_mb
        r[RATE_INDEX["io_share_read_mb"]] = self.io_share_read_mb
        r[RATE_INDEX["net_mpi_mb"]] = self.net_mpi_mb
        r[RATE_INDEX["net_eth_mb"]] = self.net_eth_mb
        r[RATE_INDEX["swap_mb"]] = self.swap_mb
        r[RATE_INDEX["block_mb"]] = self.block_mb
        return r


def _app(**kw) -> AppSignature:
    return AppSignature(**kw)


#: The application catalog.  Weights are relative job shares; see module
#: docstring for the calibration targets.
APP_CATALOG: dict[str, AppSignature] = {
    a.name: a
    for a in [
        _app(
            name="namd", display="NAMD", category="md",
            science_fields=("Molecular Biosciences",),
            weight=0.10, nodes_log2_mean=4.0, nodes_log2_sigma=1.2,
            tuning=0.75,
            nodes_min=1, nodes_max=1024,
            runtime_mean_min=320, runtime_sigma=0.9,
            cpu_user=0.92, cpu_sys=0.03, cpu_iowait=0.01,
            flops_frac=0.100, mem_frac_mean=0.16, mem_frac_sigma=0.30,
            cache_frac=0.20,
            io_scratch_write_mb=0.6, io_scratch_read_mb=0.3,
            io_work_write_mb=0.06, io_work_read_mb=0.05,
            net_mpi_mb=32.0, libraries=("libfftw3", "libcharm", "libmpi"),
        ),
        _app(
            name="amber", display="AMBER", category="md",
            science_fields=("Molecular Biosciences", "Chemistry"),
            weight=0.07, nodes_log2_mean=2.6, nodes_log2_sigma=1.1,
            tuning=0.7,
            nodes_min=1, nodes_max=256,
            runtime_mean_min=380, runtime_sigma=0.9,
            cpu_user=0.74, cpu_sys=0.04, cpu_iowait=0.02,
            flops_frac=0.045, mem_frac_mean=0.13, mem_frac_sigma=0.30,
            cache_frac=0.25,
            io_scratch_write_mb=0.9, io_scratch_read_mb=0.4,
            io_work_write_mb=0.09, io_work_read_mb=0.05,
            net_mpi_mb=18.0, fail_rate=0.05,
            # AMBER vectorizes better on Westmere: big FLOPS gain, small
            # utilization gain (it stays the least efficient MD code on
            # both systems, as in Figure 3).
            arch_flops={"intel": 1.55}, arch_util={"intel": 1.04},
            libraries=("libnetcdf", "libmpi"),
        ),
        _app(
            name="gromacs", display="GROMACS", category="md",
            science_fields=("Molecular Biosciences",),
            weight=0.07, nodes_log2_mean=2.0, nodes_log2_sigma=1.1,
            tuning=0.75,
            nodes_min=1, nodes_max=128,
            runtime_mean_min=260, runtime_sigma=0.9,
            cpu_user=0.93, cpu_sys=0.02, cpu_iowait=0.01,
            flops_frac=0.110, mem_frac_mean=0.075, mem_frac_sigma=0.30,
            cache_frac=0.15,
            io_scratch_write_mb=0.4, io_scratch_read_mb=0.2,
            io_work_write_mb=0.05, io_work_read_mb=0.03,
            net_mpi_mb=12.0,
            arch_flops={"intel": 0.80}, arch_util={"intel": 0.95},
            libraries=("libfftw3", "libxml2", "libmpi"),
        ),
        _app(
            name="charmm", display="CHARMM", category="md",
            science_fields=("Molecular Biosciences", "Chemistry"),
            weight=0.03, nodes_log2_mean=2.0, nodes_log2_sigma=1.0,
            tuning=0.6,
            nodes_min=1, nodes_max=64,
            runtime_mean_min=290, runtime_sigma=0.9,
            cpu_user=0.85, cpu_sys=0.03, cpu_iowait=0.01,
            flops_frac=0.060, mem_frac_mean=0.10, mem_frac_sigma=0.30,
            cache_frac=0.20,
            io_scratch_write_mb=0.5, io_scratch_read_mb=0.2,
            io_work_write_mb=0.05, io_work_read_mb=0.03,
            net_mpi_mb=10.0, libraries=("libmpi",),
        ),
        _app(
            name="lammps", display="LAMMPS", category="materials",
            science_fields=("Materials Research", "Physics"),
            weight=0.06, nodes_log2_mean=3.0, nodes_log2_sigma=1.2,
            tuning=0.65,
            nodes_min=1, nodes_max=512,
            runtime_mean_min=330, runtime_sigma=0.9,
            cpu_user=0.90, cpu_sys=0.03, cpu_iowait=0.01,
            flops_frac=0.085, mem_frac_mean=0.11, mem_frac_sigma=0.30,
            cache_frac=0.20,
            io_scratch_write_mb=0.7, io_scratch_read_mb=0.3,
            io_work_write_mb=0.06, io_work_read_mb=0.04,
            net_mpi_mb=22.0, libraries=("libfftw3", "libmpi"),
        ),
        _app(
            name="vasp", display="VASP", category="materials",
            science_fields=("Materials Research", "Chemistry", "Physics"),
            weight=0.09, nodes_log2_mean=2.4, nodes_log2_sigma=1.0,
            tuning=0.65,
            nodes_min=1, nodes_max=256,
            runtime_mean_min=430, runtime_sigma=0.9,
            cpu_user=0.88, cpu_sys=0.04, cpu_iowait=0.01,
            flops_frac=0.120, mem_frac_mean=0.36, mem_frac_sigma=0.25,
            cache_frac=0.12,
            io_scratch_write_mb=1.3, io_scratch_read_mb=0.8,
            io_work_write_mb=0.10, io_work_read_mb=0.06,
            net_mpi_mb=36.0, fail_rate=0.05, timeout_rate=0.04,
            libraries=("libscalapack", "libfftw3", "libmpi"),
        ),
        _app(
            name="espresso", display="Quantum ESPRESSO", category="materials",
            science_fields=("Materials Research", "Chemistry"),
            weight=0.05, nodes_log2_mean=2.4, nodes_log2_sigma=1.0,
            tuning=0.6,
            nodes_min=1, nodes_max=256,
            runtime_mean_min=390, runtime_sigma=0.9,
            cpu_user=0.86, cpu_sys=0.04, cpu_iowait=0.01,
            flops_frac=0.095, mem_frac_mean=0.38, mem_frac_sigma=0.25,
            cache_frac=0.12,
            io_scratch_write_mb=1.1, io_scratch_read_mb=0.7,
            io_work_write_mb=0.08, io_work_read_mb=0.05,
            net_mpi_mb=28.0, libraries=("libscalapack", "libfftw3", "libmpi"),
        ),
        _app(
            name="wrf", display="WRF", category="climate",
            science_fields=("Atmospheric Sciences", "Earth Sciences"),
            weight=0.06, nodes_log2_mean=4.0, nodes_log2_sigma=1.0,
            tuning=0.5,
            nodes_min=2, nodes_max=512,
            runtime_mean_min=410, runtime_sigma=0.8,
            cpu_user=0.80, cpu_sys=0.05, cpu_iowait=0.05,
            flops_frac=0.070, mem_frac_mean=0.30, mem_frac_sigma=0.25,
            cache_frac=0.30,
            io_scratch_write_mb=6.5, io_scratch_read_mb=2.0,
            io_work_write_mb=0.30, io_work_read_mb=0.10,
            net_mpi_mb=24.0, libraries=("libnetcdf", "libhdf5", "libmpi"),
        ),
        _app(
            name="milc", display="MILC", category="lattice-qcd",
            science_fields=("Physics",),
            weight=0.04, nodes_log2_mean=5.0, nodes_log2_sigma=1.0,
            tuning=0.7,
            nodes_min=4, nodes_max=2048,
            runtime_mean_min=620, runtime_sigma=0.8,
            cpu_user=0.91, cpu_sys=0.03, cpu_iowait=0.01,
            flops_frac=0.130, mem_frac_mean=0.20, mem_frac_sigma=0.25,
            cache_frac=0.15,
            io_scratch_write_mb=1.0, io_scratch_read_mb=0.4,
            io_work_write_mb=0.05, io_work_read_mb=0.03,
            net_mpi_mb=55.0, libraries=("libqmp", "libmpi"),
        ),
        _app(
            name="cactus", display="Cactus", category="astro",
            science_fields=("Physics", "Astronomical Sciences"),
            weight=0.03, nodes_log2_mean=4.5, nodes_log2_sigma=0.9,
            tuning=0.5,
            nodes_min=2, nodes_max=1024,
            runtime_mean_min=520, runtime_sigma=0.8,
            cpu_user=0.87, cpu_sys=0.04, cpu_iowait=0.02,
            flops_frac=0.090, mem_frac_mean=0.35, mem_frac_sigma=0.25,
            cache_frac=0.20,
            io_scratch_write_mb=2.5, io_scratch_read_mb=0.8,
            io_work_write_mb=0.10, io_work_read_mb=0.05,
            net_mpi_mb=40.0, libraries=("libhdf5", "libmpi"),
        ),
        _app(
            name="enzo", display="Enzo", category="astro",
            science_fields=("Astronomical Sciences",),
            weight=0.03, nodes_log2_mean=4.0, nodes_log2_sigma=1.0,
            tuning=0.5,
            nodes_min=2, nodes_max=512,
            runtime_mean_min=470, runtime_sigma=0.8,
            cpu_user=0.84, cpu_sys=0.05, cpu_iowait=0.03,
            flops_frac=0.080, mem_frac_mean=0.42, mem_frac_sigma=0.22,
            cache_frac=0.18,
            io_scratch_write_mb=4.0, io_scratch_read_mb=1.5,
            io_work_write_mb=0.15, io_work_read_mb=0.08,
            net_mpi_mb=30.0, libraries=("libhdf5", "libmpi"),
        ),
        _app(
            name="gadget", display="GADGET", category="astro",
            science_fields=("Astronomical Sciences", "Physics"),
            weight=0.03, nodes_log2_mean=4.0, nodes_log2_sigma=1.0,
            tuning=0.55,
            nodes_min=2, nodes_max=512,
            runtime_mean_min=510, runtime_sigma=0.8,
            cpu_user=0.88, cpu_sys=0.03, cpu_iowait=0.02,
            flops_frac=0.085, mem_frac_mean=0.26, mem_frac_sigma=0.25,
            cache_frac=0.18,
            io_scratch_write_mb=2.0, io_scratch_read_mb=0.7,
            io_work_write_mb=0.08, io_work_read_mb=0.05,
            net_mpi_mb=30.0, libraries=("libfftw3", "libgsl", "libmpi"),
        ),
        _app(
            name="openfoam", display="OpenFOAM", category="cfd",
            science_fields=("Engineering",),
            weight=0.04, nodes_log2_mean=3.0, nodes_log2_sigma=1.0,
            tuning=0.45,
            nodes_min=1, nodes_max=256,
            runtime_mean_min=360, runtime_sigma=0.9,
            cpu_user=0.85, cpu_sys=0.05, cpu_iowait=0.02,
            flops_frac=0.060, mem_frac_mean=0.25, mem_frac_sigma=0.28,
            cache_frac=0.25,
            io_scratch_write_mb=2.2, io_scratch_read_mb=0.6,
            io_work_write_mb=0.10, io_work_read_mb=0.05,
            net_mpi_mb=20.0, libraries=("libscotch", "libmpi"),
        ),
        _app(
            name="abaqus", display="Abaqus", category="engineering",
            science_fields=("Engineering",),
            weight=0.02, nodes_log2_mean=0.8, nodes_log2_sigma=0.7,
            tuning=0.5,
            nodes_min=1, nodes_max=16,
            runtime_mean_min=310, runtime_sigma=0.9,
            cpu_user=0.80, cpu_sys=0.04, cpu_iowait=0.04,
            flops_frac=0.050, mem_frac_mean=0.44, mem_frac_sigma=0.22,
            cache_frac=0.15,
            io_scratch_write_mb=1.5, io_scratch_read_mb=0.8,
            io_work_write_mb=0.15, io_work_read_mb=0.10,
            net_mpi_mb=4.0, libraries=("libmkl",),
        ),
        _app(
            name="nwchem", display="NWChem", category="qchem",
            science_fields=("Chemistry",),
            weight=0.03, nodes_log2_mean=3.0, nodes_log2_sigma=1.0,
            tuning=0.55,
            nodes_min=1, nodes_max=256,
            runtime_mean_min=410, runtime_sigma=0.9,
            cpu_user=0.86, cpu_sys=0.05, cpu_iowait=0.01,
            flops_frac=0.090, mem_frac_mean=0.40, mem_frac_sigma=0.22,
            cache_frac=0.12,
            io_scratch_write_mb=1.8, io_scratch_read_mb=1.0,
            io_work_write_mb=0.12, io_work_read_mb=0.08,
            net_mpi_mb=30.0, libraries=("libga", "libscalapack", "libmpi"),
        ),
        _app(
            name="blast", display="BLAST pipelines", category="bioinformatics",
            science_fields=("Biological Sciences", "Molecular Biosciences"),
            weight=0.02, nodes_log2_mean=0.5, nodes_log2_sigma=0.5,
            tuning=0.3,
            nodes_min=1, nodes_max=8,
            runtime_mean_min=220, runtime_sigma=1.0,
            cpu_user=0.68, cpu_sys=0.05, cpu_iowait=0.10,
            flops_frac=0.004, mem_frac_mean=0.48, mem_frac_sigma=0.20,
            cache_frac=0.55,
            io_scratch_write_mb=3.0, io_scratch_read_mb=9.0,
            io_work_write_mb=0.30, io_work_read_mb=0.60,
            net_mpi_mb=0.5, net_eth_mb=0.3, libraries=("libz", "libbz2"),
        ),
        _app(
            name="custom_mpi", display="custom MPI codes", category="generic",
            science_fields=(
                "Physics", "Engineering", "Mathematical Sciences",
                "Computer Science", "Earth Sciences",
            ),
            weight=0.13, nodes_log2_mean=2.0, nodes_log2_sigma=1.4,
            nodes_min=1, nodes_max=512,
            runtime_mean_min=300, runtime_sigma=1.1,
            cpu_user=0.79, cpu_sys=0.04, cpu_iowait=0.02,
            flops_frac=0.050, mem_frac_mean=0.20, mem_frac_sigma=0.45,
            cache_frac=0.25,
            io_scratch_write_mb=1.2, io_scratch_read_mb=0.5,
            io_work_write_mb=0.10, io_work_read_mb=0.06,
            net_mpi_mb=15.0, fail_rate=0.07, timeout_rate=0.05,
            job_sigma=0.50, libraries=("libmpi",),
        ),
        _app(
            name="serial_farm", display="serial task farms", category="serial",
            science_fields=(
                "Mathematical Sciences", "Computer Science",
                "Social Sciences", "Biological Sciences",
            ),
            weight=0.05, nodes_log2_mean=0.0, nodes_log2_sigma=0.4,
            nodes_min=1, nodes_max=4,
            runtime_mean_min=420, runtime_sigma=1.0,
            cpu_user=0.30, cpu_sys=0.02, cpu_iowait=0.02,
            flops_frac=0.008, mem_frac_mean=0.09, mem_frac_sigma=0.40,
            cache_frac=0.30,
            io_scratch_write_mb=0.3, io_scratch_read_mb=0.2,
            io_work_write_mb=0.05, io_work_read_mb=0.03,
            net_mpi_mb=0.3, job_sigma=0.50, libraries=(),
        ),
        _app(
            name="io_pipeline", display="data pipelines", category="io",
            science_fields=("Earth Sciences", "Biological Sciences",
                            "Atmospheric Sciences"),
            weight=0.03, nodes_log2_mean=1.0, nodes_log2_sigma=0.8,
            nodes_min=1, nodes_max=32,
            runtime_mean_min=260, runtime_sigma=0.9,
            cpu_user=0.33, cpu_sys=0.08, cpu_iowait=0.24,
            flops_frac=0.006, mem_frac_mean=0.30, mem_frac_sigma=0.30,
            cache_frac=0.60,
            io_scratch_write_mb=22.0, io_scratch_read_mb=16.0,
            io_work_write_mb=0.8, io_work_read_mb=0.4,
            net_mpi_mb=2.0, net_eth_mb=0.5, block_mb=0.5,
            fail_rate=0.06, libraries=("libhdf5", "libnetcdf"),
        ),
        _app(
            name="matlab", display="MATLAB (single core)", category="serial",
            science_fields=("Mathematical Sciences", "Social Sciences",
                            "Engineering"),
            weight=0.02, nodes_log2_mean=0.0, nodes_log2_sigma=0.2,
            nodes_min=1, nodes_max=2,
            runtime_mean_min=190, runtime_sigma=0.9,
            cpu_user=0.11, cpu_sys=0.02, cpu_iowait=0.01,
            flops_frac=0.004, mem_frac_mean=0.11, mem_frac_sigma=0.35,
            cache_frac=0.25,
            io_scratch_write_mb=0.15, io_scratch_read_mb=0.10,
            io_work_write_mb=0.05, io_work_read_mb=0.03,
            net_mpi_mb=0.05, net_eth_mb=0.2, libraries=("libmkl", "libjvm"),
        ),
    ]
}


def get_app(name: str) -> AppSignature:
    """Look up an application archetype by tag."""
    try:
        return APP_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APP_CATALOG)}"
        ) from None
