"""User population with heavy-tailed activity and efficiency personas.

Figure 4's scatter only makes sense with a realistic population: node-hours
per user span four orders of magnitude (Pareto activity weights), most users
run reasonably efficient codes, and a few *heavy* users burn 50-90 % of
their node-hours in CPU idle.  The paper circles one such user per system
(87 % and 89 % idle); we plant at least one deterministic "pathological"
persona among the top consumers so every seed reproduces that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.applications import APP_CATALOG, AppSignature
from repro.workload.fields import field_weights

__all__ = ["UserProfile", "PERSONAS", "generate_users"]

#: persona name -> (CPU utilization multiplier, sampling probability).
#: util 1.0 = runs the app as written; 0.12 = the Figure 4/5 pathological
#: case (≈ 88 % idle on an app that would otherwise be busy).
PERSONAS: dict[str, tuple[float, float]] = {
    "efficient": (1.00, 0.62),
    "moderate": (0.85, 0.22),
    "sloppy": (0.55, 0.10),
    "wasteful": (0.30, 0.04),
    "pathological": (0.13, 0.02),
}


@dataclass(frozen=True)
class UserProfile:
    """One account holder.

    Attributes
    ----------
    username, uid, account:
        Identity (account is the allocation/charge number).
    science_field:
        Parent science of the user's allocation.
    apps:
        Application tags this user runs (first is most frequent).
    activity:
        Relative submission weight (heavy-tailed across the population).
    persona:
        Efficiency persona name (see :data:`PERSONAS`).
    util_factor:
        CPU utilization multiplier applied to every job.
    mem_factor, io_factor, net_factor:
        Mild per-user multipliers on the other resource groups — users of
        the same code run different problem sizes.
    """

    username: str
    uid: int
    account: str
    science_field: str
    apps: tuple[str, ...]
    activity: float
    persona: str
    util_factor: float
    mem_factor: float
    io_factor: float
    net_factor: float

    def __post_init__(self):
        if not self.apps:
            raise ValueError(f"{self.username}: needs at least one app")
        if self.activity <= 0:
            raise ValueError(f"{self.username}: activity must be positive")
        if not 0 < self.util_factor <= 1.5:
            raise ValueError(f"{self.username}: util_factor out of range")

    def pick_app(self, rng: np.random.Generator) -> AppSignature:
        """Choose an application for the next job (first app favoured)."""
        weights = np.array([2.0**-i for i in range(len(self.apps))])
        weights /= weights.sum()
        name = self.apps[int(rng.choice(len(self.apps), p=weights))]
        return APP_CATALOG[name]


def _apps_for_field(science_field: str) -> list[tuple[str, float]]:
    """(app, weight) choices for a user in the given field."""
    choices = [
        (a.name, a.weight)
        for a in APP_CATALOG.values()
        if science_field in a.science_fields
    ]
    if not choices:
        # Fields with no dedicated code run generic MPI / serial workloads.
        choices = [
            (APP_CATALOG["custom_mpi"].name, APP_CATALOG["custom_mpi"].weight),
            (APP_CATALOG["serial_farm"].name, APP_CATALOG["serial_farm"].weight),
        ]
    return choices


def generate_users(
    n_users: int,
    rng: np.random.Generator,
    pareto_shape: float = 1.15,
    plant_pathological_rank: int | None = 5,
) -> list[UserProfile]:
    """Draw the population.

    Parameters
    ----------
    n_users:
        Population size.
    rng:
        Source of randomness (one named stream per system).
    pareto_shape:
        Tail index of the activity distribution; ~1.1-1.2 reproduces the
        "top 5 users consume a large share of node-hours" regime of Fig. 2.
    plant_pathological_rank:
        If not None, force the user at this activity rank (1-based) to the
        pathological persona so Figures 4/5 always have their circled user.
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    field_names, fw = field_weights()
    persona_names = list(PERSONAS)
    persona_p = np.array([PERSONAS[p][1] for p in persona_names])
    persona_p = persona_p / persona_p.sum()

    activities = rng.pareto(pareto_shape, size=n_users) + 0.05
    # Heavy users skew efficient: large XSEDE allocations were
    # peer-reviewed and supported, so the top of the consumption
    # distribution rarely draws the wasteful personas.  (This also keeps
    # the facility-level efficiency calibration stable at small
    # population sizes — one wasteful whale would otherwise set the
    # facility's idle floor by itself.)  Figures 4/5 still get their
    # circled offender via the planted user below.
    heavy_cut = np.quantile(activities, 0.8)
    heavy_p = persona_p.copy()
    for k, name in enumerate(persona_names):
        if name not in ("efficient", "moderate"):
            heavy_p[k] *= 0.25
    heavy_p /= heavy_p.sum()

    users: list[UserProfile] = []
    for i in range(n_users):
        science_field = field_names[int(rng.choice(len(field_names), p=fw))]
        choices = _apps_for_field(science_field)
        names = [c[0] for c in choices]
        weights = np.array([c[1] for c in choices])
        weights /= weights.sum()
        k = int(min(len(names), 1 + rng.integers(0, 3)))
        picked = rng.choice(len(names), size=k, replace=False, p=weights)
        p_use = heavy_p if activities[i] >= heavy_cut else persona_p
        persona = persona_names[int(rng.choice(len(persona_names), p=p_use))]
        base_util, _ = PERSONAS[persona]
        apps = tuple(names[j] for j in picked)
        if persona in ("sloppy", "wasteful", "pathological"):
            # Inefficient users predominantly run home-grown or serial
            # codes — the community packages (NAMD, VASP, ...) ship tuned
            # launch scripts that largely preclude the worst waste.  This
            # keeps the Figure 3 application comparison about the
            # *applications* rather than about which app drew the
            # unluckiest users.
            lead = "serial_farm" if rng.random() < 0.4 else "custom_mpi"
            apps = (lead,) + tuple(a for a in apps if a != lead)
        users.append(
            UserProfile(
                username=f"user{i + 1:04d}",
                uid=10000 + i,
                account=f"TG-{science_field[:3].upper()}{100000 + i}",
                science_field=science_field,
                apps=apps,
                activity=float(activities[i]),
                persona=persona,
                util_factor=float(
                    np.clip(base_util * rng.lognormal(0.0, 0.10), 0.05, 1.2)
                ),
                mem_factor=float(rng.lognormal(0.0, 0.25)),
                io_factor=float(rng.lognormal(0.0, 0.40)),
                net_factor=float(rng.lognormal(0.0, 0.25)),
            )
        )

    if plant_pathological_rank is not None and n_users >= plant_pathological_rank:
        order = sorted(range(n_users), key=lambda j: -users[j].activity)
        j = order[plant_pathological_rank - 1]
        u = users[j]
        users[j] = UserProfile(
            username=u.username,
            uid=u.uid,
            account=u.account,
            science_field=u.science_field,
            # The worst real offenders ran home-grown/undersubscribed
            # codes, not the community MD packages; keeping the planted
            # user off NAMD/AMBER also stops one person's pathology from
            # polluting the Figure 3 application comparison at small
            # simulation scales.
            apps=("custom_mpi", "serial_farm"),
            activity=u.activity,
            persona="pathological",
            util_factor=0.125,
            # Paper's Figure 5: other metrics "normal to light".
            mem_factor=min(u.mem_factor, 0.8),
            io_factor=min(u.io_factor, 0.7),
            net_factor=min(u.net_factor, 0.7),
        )
    return users
