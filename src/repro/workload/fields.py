"""Parent science field taxonomy.

XSEDE accounting attributes every allocation to an NSF "parent science";
Figure 7a breaks memory use down by these.  Weights approximate the Ranger
job mix (molecular biosciences and physics dominate node-hours at TACC in
this era).
"""

from __future__ import annotations

__all__ = ["SCIENCE_FIELDS", "field_weights"]

#: (field name, share of allocations).  Shares sum to 1.
SCIENCE_FIELDS: tuple[tuple[str, float], ...] = (
    ("Molecular Biosciences", 0.22),
    ("Physics", 0.16),
    ("Chemistry", 0.13),
    ("Materials Research", 0.11),
    ("Astronomical Sciences", 0.09),
    ("Atmospheric Sciences", 0.08),
    ("Earth Sciences", 0.06),
    ("Engineering", 0.06),
    ("Mathematical Sciences", 0.03),
    ("Computer Science", 0.03),
    ("Biological Sciences", 0.02),
    ("Social Sciences", 0.01),
)


def field_weights() -> tuple[list[str], list[float]]:
    """(names, normalized weights) for sampling."""
    names = [f for f, _ in SCIENCE_FIELDS]
    raw = [w for _, w in SCIENCE_FIELDS]
    total = sum(raw)
    return names, [w / total for w in raw]
