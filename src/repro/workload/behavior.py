"""Per-job metric behaviour: the single source of truth for what a job's
nodes report.

Both measurement paths consume this class:

* the **slow path** — per-node TACC_Stats daemons integrate these rates
  into cumulative counters and serialize the real text format;
* the **fast path** — the vectorized synthesizer turns the same series
  directly into job summaries and system time series.

Because both paths are driven by the same ``(behavior_seed → PhaseModel)``
pipeline, they agree sample-for-sample, which the integration tests assert.

CPU modelling note: utilization is handled through the **idle gap**.  The
application/persona/calibration pipeline sets a base idle fraction; the
within-job "cpu" phase modulates that gap multiplicatively (mean one), and
user time absorbs the remainder.  Modulating idle rather than busy keeps
the *mean* efficiency exactly at its calibrated value (a mean-one
multiplier on a quantity clipped near 1.0 would bias it down) while giving
``cpu_idle`` the strong relative fluctuation the persistence analysis of
Table 1 requires.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.hardware import NodeHardware
from repro.util.rng import RngFactory
from repro.workload.applications import (
    RATE_INDEX,
    AppSignature,
)
from repro.workload.phases import FIELD_GROUP, GROUPS, PhaseModel
from repro.workload.users import UserProfile

__all__ = ["JobBehavior", "DerivedRates"]

_IDX = RATE_INDEX
_I_USER = _IDX["cpu_user_frac"]
_I_SYS = _IDX["cpu_sys_frac"]
_I_WAIT = _IDX["cpu_iowait_frac"]
_I_FLOPS = _IDX["flops_gf"]
_I_MEM = _IDX["mem_used_gb"]
_I_CACHE = _IDX["mem_cache_gb"]

#: job-to-job lognormal sigma per group, scaled by the app's job_sigma.
_JOB_SIGMA_SCALE = {"cpu": 0.6, "flops": 0.5, "mem": 0.7, "io": 1.3, "net": 1.0}

#: per-user factors applied per group.
_USER_FACTOR_GROUP = {"mem": "mem_factor", "io": "io_factor", "net": "net_factor"}

#: Indices of fields that take plain multiplicative modulation (everything
#: except the CPU fractions and FLOPS, which are derived from the idle gap).
_PLAIN_FIELDS = [
    i for name, i in _IDX.items()
    if i not in (_I_USER, _I_SYS, _I_WAIT, _I_FLOPS)
]


class JobBehavior:
    """Metric-rate process of one job across its lifetime.

    Parameters
    ----------
    app, user:
        Archetype and submitting user.
    node_hw:
        Hardware of the allocated nodes.
    n_nodes:
        Allocation size.
    duration:
        Seconds the job will run.
    sample_interval:
        Collector cadence (sets the phase-model grid).
    behavior_seed:
        Integer seed carried on the :class:`repro.scheduler.JobRequest`.
    util_scale:
        Facility-level calibration multiplier on CPU utilization (set by
        the workload generator to hit the configured mean efficiency).
    calibration:
        Phase-model override for ablations.
    """

    #: Share of the idle gap attributed to fast synchronization stalls,
    #: plus an absolute floor every parallel job pays (see _build_matrix).
    SYNC_IDLE_FRACTION = 0.6
    SYNC_IDLE_FLOOR = 0.04

    def __init__(
        self,
        app: AppSignature,
        user: UserProfile,
        node_hw: NodeHardware,
        n_nodes: int,
        duration: float,
        sample_interval: float,
        behavior_seed: int,
        util_scale: float = 1.0,
        calibration: dict | None = None,
        flops_scale: float = 1.0,
        variability_scale: float = 1.0,
    ):
        """*variability_scale* multiplies every stochastic sigma (job-level
        multipliers, within-job modulation, node spread).  1.0 is a normal
        production job; application kernels use ~0.1 — a fixed benchmark
        input rerun on a quiet system varies by a few percent, which is
        precisely what makes its control chart sensitive."""
        if duration <= 0 or sample_interval <= 0:
            raise ValueError("duration and sample_interval must be positive")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if variability_scale < 0:
            raise ValueError("variability_scale must be >= 0")
        vs = variability_scale
        self.app = app
        self.user = user
        self.node_hw = node_hw
        self.n_nodes = n_nodes
        self.duration = float(duration)
        self.sample_interval = float(sample_interval)

        rf = RngFactory(behavior_seed)
        draw = rf.stream("job-level")
        arch = node_hw.processor.arch

        base = app.base_rates(node_hw.peak_gflops, node_hw.memory_gb, arch)

        # Job-level multipliers: one lognormal draw per group.  (Drawn for
        # every group, in a fixed order, so the stream stays aligned even
        # for groups consumed differently below.)
        group_mult = {}
        for g in GROUPS:
            sigma = app.job_sigma * _JOB_SIGMA_SCALE[g] * vs
            m = float(draw.lognormal(0.0, sigma))
            attr = _USER_FACTOR_GROUP.get(g)
            if attr is not None:
                m *= getattr(user, attr)
            group_mult[g] = m
        for name, idx in _IDX.items():
            if idx in (_I_USER, _I_SYS, _I_WAIT, _I_FLOPS):
                continue
            base[idx] *= group_mult[FIELD_GROUP[name]]

        # CPU: persona and facility calibration scale the busy fraction;
        # tuned community applications absorb part of a user's
        # inefficiency (app.tuning); the job-level "cpu" multiplier then
        # perturbs the *idle gap*.
        util = float(np.clip(user.util_factor * util_scale, 0.02, 1.25))
        if util < 1.0:
            util = util + (1.0 - util) * app.tuning
        self._util = util
        user_base = min(base[_I_USER] * util, 0.97)
        sys_base = base[_I_SYS]
        wait_base = base[_I_WAIT]
        idle_base = 1.0 - user_base - sys_base - wait_base
        idle_base = float(np.clip(idle_base * group_mult["cpu"], 0.005, 0.95))
        user_base = max(1.0 - idle_base - sys_base - wait_base, 0.01)
        base[_I_USER] = user_base
        self._idle_base = idle_base

        # FLOPS ride on realized utilization; flops_scale carries
        # environment-level effects (e.g. an injected software-stack
        # regression — see repro.xdmod.appkernels.PerfRegression).
        if flops_scale <= 0:
            raise ValueError("flops_scale must be positive")
        base[_I_FLOPS] *= (
            group_mult["flops"] * util * flops_scale
            * float(draw.lognormal(0.0, 0.10 * vs))
        )
        # Memory cannot exceed the node.
        cap = 0.97 * node_hw.memory_gb
        if base[_I_MEM] > cap:
            scale = cap / base[_I_MEM]
            base[_I_MEM] *= scale
            base[_I_CACHE] *= scale
        self.base = base

        # Within-job modulation on the aligned grid covering the job.
        n_steps = int(np.ceil(self.duration / self.sample_interval)) + 2
        if vs != 1.0:
            from repro.workload.phases import (
                PHASE_CALIBRATION,
                _normalize_calibration,
            )
            cal = _normalize_calibration(calibration or PHASE_CALIBRATION)
            calibration = {
                g: tuple((rho, sigma * vs) for rho, sigma in comps)
                for g, comps in cal.items()
            }
        phase = PhaseModel(
            rf.stream("phases"),
            calibration=calibration,
            step_scale=self.sample_interval / 600.0,
        )
        mod = phase.field_matrix(n_steps)

        # Memory ramps up over the first part of the run, then plateaus.
        ramp_steps = max(1.0, min(3.0, n_steps / 10.0))
        k = np.arange(n_steps)
        mem_ramp = 1.0 - np.exp(-(k + 1.0) / ramp_steps)

        # Mild static per-node spread; node 0 (the MPI rank-0 host) holds
        # extra buffers, a real and visible effect in TACC_Stats data.
        spread = draw.lognormal(0.0, 0.08 * vs, size=n_nodes)
        spread[0] *= 1.25
        self._node_mem_spread = spread
        self._node_rate_spread = draw.lognormal(0.0, 0.05 * vs, size=n_nodes)

        self._rates = self._build_matrix(mod, mem_ramp)

    # -- rate-matrix construction ---------------------------------------------

    def _build_matrix(self, mod: np.ndarray, mem_ramp: np.ndarray) -> np.ndarray:
        """Apply modulation, the idle-gap CPU model, and physical clips."""
        n = mod.shape[0]
        r = np.tile(self.base, (n, 1))
        for i in _PLAIN_FIELDS:
            r[:, i] = self.base[i] * mod[:, i]
        r[:, _I_MEM] *= mem_ramp
        r[:, _I_CACHE] *= mem_ramp
        cap = 0.99 * self.node_hw.memory_gb
        np.minimum(r[:, _I_MEM], cap, out=r[:, _I_MEM])
        np.minimum(r[:, _I_CACHE], r[:, _I_MEM], out=r[:, _I_CACHE])

        # CPU fractions from the modulated idle gap.  Idle has two
        # components: the slow persona/efficiency gap (cpu group) and fast
        # synchronization stalls — MPI ranks spinning on I/O or
        # communication imbalance — which ride the bursty io-group series.
        # The split keeps the mean at idle_base (both modulations are
        # mean-one) while giving system-level cpu_idle the fast
        # decorrelation the paper measures (Table 1: idle decorrelates
        # like net, much faster than mem/flops).
        sys_f = np.full(n, self.base[_I_SYS])
        wait = np.clip(self.base[_I_WAIT] * mod[:, _I_WAIT], 0.0, 0.5)
        if self._idle_base <= 0.5:
            # Busy job: modulate the (small) idle gap — slow efficiency
            # wander plus fast synchronization stalls.
            sync_base = min(self.SYNC_IDLE_FRACTION * self._idle_base
                            + self.SYNC_IDLE_FLOOR, self._idle_base)
            slow_base = self._idle_base - sync_base
            # Idle spikes are bounded by whatever system/iowait leave
            # over (minus a floor of user time), so user can never go
            # negative no matter how the modulations align.
            idle_cap = np.maximum(1.0 - sys_f - wait - 0.002, 0.002)
            idle = np.clip(
                slow_base * mod[:, _I_USER] + sync_base * mod[:, _I_WAIT],
                0.002, idle_cap,
            )
            user = np.maximum(1.0 - idle - sys_f - wait, 0.002)
        else:
            # Mostly-idle job (the Figure 4/5 pathology): the small *busy*
            # side is what fluctuates — a 1-rank-on-16-cores job has a
            # steady trickle of user time and persistently high idle.
            # Modulating idle multiplicatively here would be clipped at
            # 1.0 so hard its mean collapses.
            user = np.clip(self.base[_I_USER] * mod[:, _I_USER],
                           0.002, 0.97)
            over = user + sys_f + wait > 0.995
            if over.any():
                wait[over] = np.maximum(
                    0.995 - user[over] - sys_f[over], 0.0
                )
                # A burst can still overflow via user+sys alone (user is
                # capped independently of sys); trim user last.
                user = np.minimum(user, np.maximum(0.995 - sys_f - wait,
                                                   0.002))
        r[:, _I_USER] = user
        r[:, _I_SYS] = sys_f
        r[:, _I_WAIT] = wait

        # FLOPS follow compute intensity; realized utilization couples in
        # only weakly (a stalled rank stops flopping, but the coupling is
        # bounded so FLOPS keep their own slow correlation structure).
        user_base = self.base[_I_USER]
        coupling = np.clip(user / user_base, 0.9, 1.08)
        r[:, _I_FLOPS] = self.base[_I_FLOPS] * mod[:, _I_FLOPS] * coupling
        return r

    # -- sampling ----------------------------------------------------------

    @property
    def n_steps(self) -> int:
        return self._rates.shape[0]

    def _step_of(self, elapsed: float) -> int:
        i = int(elapsed / self.sample_interval)
        return min(max(i, 0), self.n_steps - 1)

    def rates_at_step(self, step: int) -> np.ndarray:
        """Node-average rate vector at a grid step (fast path)."""
        if not 0 <= step < self.n_steps:
            raise IndexError(f"step {step} out of range")
        return self._rates[step].copy()

    def rates_matrix(self, n_steps: int) -> np.ndarray:
        """(n_steps, n_fields) node-average rates — vectorized fast path."""
        n = min(n_steps, self.n_steps)
        return self._rates[:n].copy()

    def node_rates_at(self, elapsed: float, node_slot: int) -> np.ndarray:
        """Rate vector for one node (slot in the allocation) — slow path."""
        if not 0 <= node_slot < self.n_nodes:
            raise IndexError(f"node slot {node_slot} out of range")
        step = self._step_of(elapsed)
        r = self._rates[step].copy()
        f = self._node_rate_spread[node_slot]
        # Per-node spread on the rate-like fields; CPU fractions stay put
        # (they are already fractions of this node's cores), memory takes
        # its own spread.
        for i in _PLAIN_FIELDS:
            r[i] *= f
        mem_f = self._node_mem_spread[node_slot]
        r[_I_MEM] = min(
            self._rates[step][_I_MEM] * mem_f, 0.99 * self.node_hw.memory_gb
        )
        r[_I_CACHE] = min(self._rates[step][_I_CACHE] * mem_f, r[_I_MEM])
        r[_I_FLOPS] = self._rates[step][_I_FLOPS] * float(
            np.clip(f, 0.85, 1.15)
        )
        return r

    def steps_of(self, elapsed: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_step_of`: grid step per elapsed second."""
        steps = (np.asarray(elapsed, dtype=float)
                 / self.sample_interval).astype(np.int64)
        return np.clip(steps, 0, self.n_steps - 1)

    def node_rates_block(self, steps: np.ndarray,
                         node_slot: int) -> np.ndarray:
        """Vectorized :meth:`node_rates_at`: ``(len(steps), n_fields)``.

        Bit-identical per row to calling :meth:`node_rates_at` with the
        elapsed time that maps to each step — every operation here is
        the elementwise counterpart of the scalar path, so the
        vectorized synthesis engine and the per-sample daemon integrate
        exactly the same rates.
        """
        if not 0 <= node_slot < self.n_nodes:
            raise IndexError(f"node slot {node_slot} out of range")
        base = self._rates[steps]
        r = base.copy()
        f = self._node_rate_spread[node_slot]
        r[:, _PLAIN_FIELDS] *= f
        mem_f = self._node_mem_spread[node_slot]
        r[:, _I_MEM] = np.minimum(base[:, _I_MEM] * mem_f,
                                  0.99 * self.node_hw.memory_gb)
        r[:, _I_CACHE] = np.minimum(base[:, _I_CACHE] * mem_f,
                                    r[:, _I_MEM])
        r[:, _I_FLOPS] = base[:, _I_FLOPS] * float(np.clip(f, 0.85, 1.15))
        return r


class DerivedRates:
    """Quantities computed from the canonical rate vector.

    These mirror what the analytics derive from collected counters:
    ``cpu_idle`` is the complement of the busy fractions; Lustre network
    (lnet) traffic is the sum of Lustre file traffic plus RPC overhead; the
    InfiniBand port counters see MPI plus lnet (Lustre rides the fabric on
    both systems).
    """

    LNET_OVERHEAD = 1.05  #: RPC/protocol overhead on Lustre data moves.
    LNET_FLOOR_MB = 0.05  #: keep-alive / metadata chatter floor, MB/s.

    _W = [RATE_INDEX[k] for k in
          ("io_scratch_write_mb", "io_work_write_mb", "io_share_write_mb")]
    _R = [RATE_INDEX[k] for k in
          ("io_scratch_read_mb", "io_work_read_mb", "io_share_read_mb")]

    @staticmethod
    def cpu_idle(rates: np.ndarray) -> np.ndarray:
        """Idle fraction; *rates* is (..., n_fields)."""
        busy = (
            rates[..., _I_USER] + rates[..., _I_SYS] + rates[..., _I_WAIT]
        )
        return np.clip(1.0 - busy, 0.0, 1.0)

    @classmethod
    def lnet_tx_mb(cls, rates: np.ndarray) -> np.ndarray:
        """Client lnet transmit ≈ data written to Lustre plus overhead."""
        w = rates[..., cls._W].sum(axis=-1)
        return cls.LNET_OVERHEAD * w + cls.LNET_FLOOR_MB

    @classmethod
    def lnet_rx_mb(cls, rates: np.ndarray) -> np.ndarray:
        """Client lnet receive ≈ data read from Lustre plus overhead."""
        r = rates[..., cls._R].sum(axis=-1)
        return cls.LNET_OVERHEAD * r + cls.LNET_FLOOR_MB

    @classmethod
    def ib_tx_mb(cls, rates: np.ndarray) -> np.ndarray:
        """IB port transmit: MPI traffic + Lustre writes on the wire."""
        return rates[..., RATE_INDEX["net_mpi_mb"]] + cls.lnet_tx_mb(rates)

    @classmethod
    def ib_rx_mb(cls, rates: np.ndarray) -> np.ndarray:
        """IB port receive: MPI traffic + Lustre reads on the wire."""
        return rates[..., RATE_INDEX["net_mpi_mb"]] + cls.lnet_rx_mb(rates)
