"""Workload generator: turn a facility config into a job-request stream.

Calibration contract (all empirical, asserted by tests):

* **utilization** — total requested node-seconds ≈ ``target_utilization ×
  num_nodes × horizon``;
* **job length** — node-hour-weighted mean runtime ≈ ``avg_job_minutes``
  (549 min on Ranger, 446 min on Lonestar4 — the time scale the paper ties
  the persistence model to);
* **efficiency** — node-second-weighted expected CPU busy fraction ≈
  ``target_efficiency`` (0.90 / 0.85 — Figure 4's red lines), achieved by a
  single global ``util_scale`` multiplier applied to every job's persona.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FacilityConfig
from repro.scheduler.job import JobRequest
from repro.util.rng import RngFactory, stable_hash64
from repro.util.timeutil import HOUR
from repro.workload.applications import AppSignature
from repro.workload.arrivals import arrival_times
from repro.workload.users import UserProfile, generate_users

__all__ = ["GeneratedWorkload", "WorkloadGenerator"]


@dataclass(frozen=True)
class GeneratedWorkload:
    """The generator's output: requests in submit order, plus context the
    downstream pipeline needs to rebuild each job's behaviour."""

    requests: list[JobRequest]
    users: dict[str, UserProfile]
    util_scale: float

    @property
    def total_node_seconds(self) -> float:
        return sum(r.nodes * r.effective_runtime for r in self.requests)


class WorkloadGenerator:
    """Draws a calibrated synthetic workload for one system."""

    #: Largest job as a fraction of the machine (keeps scaled systems from
    #: deadlocking on a job bigger than the free pool ever gets).
    MAX_JOB_FRACTION = 0.6
    #: Guard against pathological configs that can never fill their target.
    MAX_DRAWS = int(5e6)

    def __init__(self, config: FacilityConfig, rng_factory: RngFactory):
        self.config = config
        self._rf = rng_factory

    def _stream(self, name: str) -> np.random.Generator:
        return self._rf.stream(f"{self.config.stream_prefix}/{name}")

    def generate(self) -> GeneratedWorkload:
        """Produce the full request stream for the configured horizon."""
        cfg = self.config
        rng = self._stream("workload")
        users = generate_users(cfg.n_users, self._stream("users"))
        activity = np.array([u.activity for u in users])
        activity_p = activity / activity.sum()

        max_nodes = max(1, int(cfg.num_nodes * self.MAX_JOB_FRACTION))
        target_node_seconds = cfg.target_utilization * cfg.num_nodes * cfg.horizon
        # Job sizes compress sub-linearly when the machine shrinks: a
        # 16-node Ranger job should stay multi-node on a 128-node replica,
        # not collapse to 1 node (sqrt keeps the small/large mix).
        node_scale = float(np.sqrt(cfg.workload_scale))

        def draw_one() -> tuple[UserProfile, AppSignature, int, float]:
            user = users[int(rng.choice(len(users), p=activity_p))]
            app = user.pick_app(rng)
            nodes = app.sample_nodes(rng, node_scale, max_nodes)
            runtime = app.sample_runtime(rng)
            return (user, app, nodes, runtime)

        # Phase 1: pilot draw large enough to estimate the runtime-scale
        # factor that hits the configured node-hour-weighted mean length.
        drawn: list[tuple[UserProfile, AppSignature, int, float]] = []
        acc = 0.0
        while acc < target_node_seconds and len(drawn) < self.MAX_DRAWS:
            d = draw_one()
            drawn.append(d)
            acc += d[2] * d[3]
        if not drawn:
            raise RuntimeError("workload generator drew no jobs")

        def weighted_mean_min(nodes_arr, runtime_arr) -> float:
            w = nodes_arr * runtime_arr
            return float(np.sum(w * runtime_arr) / np.sum(w)) / 60.0

        nodes_arr = np.array([d[2] for d in drawn], dtype=float)
        runtime_arr = np.array([d[3] for d in drawn])
        factor = cfg.avg_job_minutes / weighted_mean_min(nodes_arr, runtime_arr)

        # Phase 2: apply the factor and top up until the node-second
        # target is covered (a factor < 1 shrinks the pilot's total).
        runtime_arr = runtime_arr * factor
        acc = float(np.sum(nodes_arr * runtime_arr))
        extra_nodes: list[float] = []
        extra_runtimes: list[float] = []
        while acc < target_node_seconds and len(drawn) < self.MAX_DRAWS:
            d = draw_one()
            drawn.append(d)
            extra_nodes.append(d[2])
            extra_runtimes.append(d[3] * factor)
            acc += extra_nodes[-1] * extra_runtimes[-1]
        if extra_nodes:
            nodes_arr = np.concatenate([nodes_arr, extra_nodes])
            runtime_arr = np.concatenate([runtime_arr, extra_runtimes])

        # Phase 3: one small corrective rescale on the final set, then
        # trim to the target with the corrected runtimes.
        correction = cfg.avg_job_minutes / weighted_mean_min(nodes_arr,
                                                             runtime_arr)
        runtime_arr = np.clip(runtime_arr * correction, 120.0,
                              14 * 24 * 3600.0)
        node_seconds = nodes_arr * runtime_arr
        cum = np.cumsum(node_seconds)
        n_jobs = int(np.searchsorted(cum, target_node_seconds) + 1)
        n_jobs = min(n_jobs, len(drawn))
        drawn = drawn[:n_jobs]
        runtime_arr = runtime_arr[:n_jobs]
        node_seconds = node_seconds[:n_jobs]

        # Phase 4: efficiency calibration -> one global util_scale.
        util_scale = self._calibrate_util(drawn, node_seconds)

        # Phase 5: arrivals, walltimes, failures -> JobRequests.
        submits = arrival_times(n_jobs, cfg.horizon, self._stream("arrivals"))
        requests: list[JobRequest] = []
        for i, ((user, app, nodes, _), runtime, submit) in enumerate(
            zip(drawn, runtime_arr, submits)
        ):
            jobid = str(2_000_000 + i)
            if rng.random() < app.timeout_rate:
                walltime = runtime * rng.uniform(0.45, 0.90)
            else:
                walltime = runtime * float(rng.lognormal(0.45, 0.30))
            walltime = float(np.clip(walltime, 600.0, 48 * 3600.0))
            fail_after = None
            if rng.random() < app.fail_rate:
                fail_after = float(runtime * rng.uniform(0.05, 0.95))
            if nodes <= 2 and walltime <= 2 * HOUR:
                queue = "development"
            elif nodes >= max(4, cfg.num_nodes // 4):
                queue = "large"
            else:
                queue = "normal"
            requests.append(
                JobRequest(
                    jobid=jobid,
                    user=user.username,
                    account=user.account,
                    science_field=user.science_field,
                    app=app.name,
                    queue=queue,
                    submit_time=float(submit),
                    nodes=int(nodes),
                    walltime_req=walltime,
                    runtime=float(runtime),
                    fail_after=fail_after,
                    behavior_seed=stable_hash64(
                        f"{self._rf.seed}/{cfg.stream_prefix}/behavior/{jobid}"
                    )
                    % (1 << 62),
                )
            )
        # arrival_times returns sorted instants, so requests are in submit
        # order already; guard the invariant cheaply.
        assert all(
            a.submit_time <= b.submit_time for a, b in zip(requests, requests[1:])
        )
        return GeneratedWorkload(
            requests=requests,
            users={u.username: u for u in users},
            util_scale=util_scale,
        )

    def _calibrate_util(
        self,
        drawn: list[tuple[UserProfile, AppSignature, int, float]],
        node_seconds: np.ndarray,
    ) -> float:
        """Global multiplier on per-job CPU utilization so the
        node-second-weighted busy fraction hits ``target_efficiency``.

        The behaviour model clips per-job utilization (persona × scale at
        1.25, realized user fraction at 0.97), so the mapping from the
        multiplier to the mean busy fraction is piecewise linear and
        saturating — solved by bisection on the exact clipped expression
        rather than the naive linear inverse.
        """
        arch = self.config.node.processor.arch
        w = node_seconds / node_seconds.sum()
        app_u = np.array([
            a.cpu_user * a.util_multiplier(arch) for _, a, _, _ in drawn
        ])
        other = np.array([a.cpu_sys + a.cpu_iowait for _, a, _, _ in drawn])
        tuning = np.array([a.tuning for _, a, _, _ in drawn])
        uf = np.array([u.util_factor for u, _, _, _ in drawn])

        def mean_busy(g: float) -> float:
            util = np.clip(uf * g, 0.02, 1.25)
            # Tuned applications absorb part of sub-unity inefficiency
            # (mirror of JobBehavior's construction).
            util = np.where(util < 1.0, util + (1.0 - util) * tuning, util)
            user = np.minimum(app_u * util, 0.97)
            return float(np.sum(w * np.minimum(user + other, 0.995)))

        target = self.config.target_efficiency
        lo, hi = 0.4, 2.5
        if mean_busy(hi) < target:
            return hi  # saturated: best achievable
        if mean_busy(lo) > target:
            return lo
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if mean_busy(mid) < target:
                lo = mid
            else:
                hi = mid
        return float(0.5 * (lo + hi))
