"""Within-job phase model: AR(1) log-modulation per metric group.

Applications do not use resources at a constant rate: compute phases
alternate with checkpoint I/O bursts, communication epochs, and memory
growth.  We model each metric group's rate as its job-level base rate times
a mean-one lognormal modulation whose *log* is a sum of AR(1) components —
a fast one for bursts and (for I/O and network) a slow one for regime
shifts between phases of the run.  Mixing two timescales is what makes the
offset-σ persistence curves grow near-linearly in log(offset) (Table 1's
logarithmic model) instead of with a single AR(1)'s concave
``sqrt(1−ρ^k)``.

The per-group component lists in :data:`PHASE_CALIBRATION` are the single
knob that sets the within-job correlation structure, which — combined with
job-mix turnover — sets the system-level persistence of Table 1 / Figure 6.
The ordering is built in: I/O is burstiest (fastest decorrelation), network
and CPU idle are intermediate, FLOPS and memory are steady — matching the
paper's predictability ranking
``io_scratch_write < net_ib_tx ≈ cpu_idle < mem_used ≈ cpu_flops``.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from repro.workload.applications import RATE_FIELDS, RATE_INDEX

__all__ = ["PHASE_CALIBRATION", "FIELD_GROUP", "GROUPS", "PhaseModel"]

#: group -> tuple of (AR(1) rho per 10-minute step, innovation sigma in
#: log space) components; the log-modulations add.  A component's
#: stationary log-variance is sigma^2 / (1 - rho^2).
PHASE_CALIBRATION: dict[str, tuple[tuple[float, float], ...]] = {
    "cpu": ((0.82, 0.55),),                  # efficiency-gap wander
    "flops": ((0.99, 0.02),),                # compute intensity: steady
    "mem": ((0.992, 0.02),),                 # working set: steadier
    "io": ((0.50, 0.55), (0.97, 0.20)),      # checkpoint bursts + phases
    "net": ((0.90, 0.30), (0.98, 0.14)),     # comm epochs + phases
}

#: rate field -> modulation group.
FIELD_GROUP: dict[str, str] = {
    "cpu_user_frac": "cpu",
    "cpu_sys_frac": "cpu",
    "cpu_iowait_frac": "io",
    "flops_gf": "flops",
    "mem_used_gb": "mem",
    "mem_cache_gb": "mem",
    "io_scratch_write_mb": "io",
    "io_scratch_read_mb": "io",
    "io_work_write_mb": "io",
    "io_work_read_mb": "io",
    "io_share_write_mb": "io",
    "io_share_read_mb": "io",
    "net_mpi_mb": "net",
    "net_eth_mb": "net",
    "swap_mb": "io",
    "block_mb": "io",
}

GROUPS: tuple[str, ...] = tuple(PHASE_CALIBRATION)

_missing = set(RATE_FIELDS) - set(FIELD_GROUP)
if _missing:  # pragma: no cover - import-time schema guard
    raise RuntimeError(f"rate fields without a phase group: {_missing}")


def _normalize_calibration(
    calibration: dict | None,
) -> dict[str, tuple[tuple[float, float], ...]]:
    """Accept either component tuples or a bare (rho, sigma) per group."""
    cal = dict(calibration or PHASE_CALIBRATION)
    out: dict[str, tuple[tuple[float, float], ...]] = {}
    for g, spec in cal.items():
        if (
            isinstance(spec, tuple)
            and len(spec) == 2
            and all(isinstance(x, (int, float)) for x in spec)
        ):
            components: tuple[tuple[float, float], ...] = (spec,)  # type: ignore[assignment]
        else:
            components = tuple(tuple(c) for c in spec)  # type: ignore[assignment]
        for rho, sigma in components:
            if not 0 <= rho < 1:
                raise ValueError(f"group {g}: rho must be in [0, 1)")
            if sigma < 0:
                raise ValueError(f"group {g}: sigma must be >= 0")
        out[g] = components
    return out


class PhaseModel:
    """Generates mean-one lognormal modulation series per group.

    Parameters
    ----------
    rng:
        Generator owned by one job (seeded from the job's behavior seed so
        the slow text-format path and the fast synthesis path agree).
    calibration:
        Override of :data:`PHASE_CALIBRATION` (ablation benches use this);
        each group maps to one ``(rho, sigma)`` pair or a tuple of them.
    step_scale:
        Ratio of the actual sampling step to the 10-minute reference step;
        each rho is re-expressed as ``rho ** step_scale`` so changing the
        collector cadence does not change the process' physical correlation
        time (the sampling-interval ablation relies on this).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        calibration: dict | None = None,
        step_scale: float = 1.0,
    ):
        if step_scale <= 0:
            raise ValueError("step_scale must be positive")
        self._rng = rng
        self._cal = _normalize_calibration(calibration)
        self._step_scale = step_scale

    def _component(self, rho_ref: float, sigma_ref: float, n: int) -> np.ndarray:
        """One stationary AR(1) log-series of length *n*."""
        rho = rho_ref**self._step_scale
        # Keep the *stationary* variance at its reference value regardless
        # of step size: var = sigma^2/(1-rho^2) must be invariant.
        stat_var = (
            sigma_ref**2 / (1 - rho_ref**2) if rho_ref < 1 else sigma_ref**2
        )
        sigma = float(np.sqrt(stat_var * (1 - rho**2)))
        eps = self._rng.normal(0.0, sigma, size=n)
        x0 = self._rng.normal(0.0, np.sqrt(stat_var))
        return lfilter([1.0], [1.0, -rho], eps, zi=np.array([rho * x0]))[0]

    def group_stationary_logvar(self, group: str) -> float:
        """Total stationary log-variance of a group's modulation."""
        return float(sum(
            s**2 / (1 - r**2) if r < 1 else s**2
            for r, s in self._cal[group]
        ))

    def group_series(self, group: str, n: int) -> np.ndarray:
        """Mean-one multiplicative modulation for one group, length *n*."""
        if n <= 0:
            raise ValueError("n must be positive")
        log_mod = np.zeros(n)
        for rho, sigma in self._cal[group]:
            log_mod += self._component(rho, sigma, n)
        # exp(x - var/2) has mean one when x ~ N(0, var).
        return np.exp(log_mod - self.group_stationary_logvar(group) / 2.0)

    def field_matrix(self, n: int) -> np.ndarray:
        """(n, n_fields) modulation matrix: each field follows its group."""
        per_group = {g: self.group_series(g, n) for g in self._cal}
        out = np.empty((n, len(RATE_FIELDS)))
        for name, idx in RATE_INDEX.items():
            out[:, idx] = per_group[FIELD_GROUP[name]]
        return out

    @staticmethod
    def correlation_time_steps(group: str,
                               calibration: dict | None = None) -> float:
        """Variance-weighted e-folding time of a group's autocorrelation,
        in sampling steps (used by tests to assert the built-in ordering)."""
        cal = _normalize_calibration(calibration)
        num = 0.0
        den = 0.0
        for rho, sigma in cal[group]:
            var = sigma**2 / (1 - rho**2) if rho < 1 else sigma**2
            tau = -1.0 / float(np.log(rho)) if rho > 0 else 0.0
            num += var * tau
            den += var
        if den == 0:
            return 0.0
        return num / den
