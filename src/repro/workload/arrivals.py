"""Job arrival process: Poisson counts with diurnal/weekly intensity.

Exactly *n* arrivals are placed on the horizon by sampling from the
normalized intensity function (hour-resolution bins, then uniform within a
bin).  This is equivalent to conditioning a non-homogeneous Poisson process
on its total count, and guarantees the workload generator hits its
node-hour target independent of the cycle amplitudes.
"""

from __future__ import annotations

import numpy as np

from repro.util.timeutil import HOUR, diurnal_factor

__all__ = ["arrival_times"]


def arrival_times(
    n: int,
    horizon: float,
    rng: np.random.Generator,
    day_amplitude: float = 0.35,
    week_amplitude: float = 0.15,
) -> np.ndarray:
    """*n* sorted arrival instants in ``[0, horizon)``.

    Parameters
    ----------
    n:
        Number of arrivals.
    horizon:
        Length of the window in seconds.
    rng:
        Randomness source.
    day_amplitude, week_amplitude:
        Passed to :func:`repro.util.timeutil.diurnal_factor`; zero for a
        homogeneous process.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if n == 0:
        return np.empty(0)

    n_bins = max(1, int(np.ceil(horizon / HOUR)))
    edges = np.linspace(0.0, horizon, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    intensity = np.array(
        [diurnal_factor(t, day_amplitude, week_amplitude) for t in centers]
    )
    intensity *= np.diff(edges)  # weight by (possibly uneven) bin width
    p = intensity / intensity.sum()

    counts = rng.multinomial(n, p)
    times = np.empty(n)
    pos = 0
    for b in np.nonzero(counts)[0]:
        k = counts[b]
        times[pos:pos + k] = rng.uniform(edges[b], edges[b + 1], size=k)
        pos += k
    times.sort()
    return times
