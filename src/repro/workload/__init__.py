"""Synthetic workload: who submits what, and how it behaves while running.

This package replaces the paper's 20 months of production XSEDE jobs with a
statistically calibrated synthetic population: science fields, application
archetypes with per-metric resource signatures, a heavy-tailed user
population (including the pathological high-idle users of Figures 4/5),
Poisson-with-diurnal-cycle arrivals, and a within-job AR(1) phase model
whose per-metric correlation times drive the persistence results of
Table 1 / Figure 6.
"""

from repro.workload.applications import (
    APP_CATALOG,
    RATE_FIELDS,
    RATE_INDEX,
    AppSignature,
)
from repro.workload.arrivals import arrival_times
from repro.workload.behavior import DerivedRates, JobBehavior
from repro.workload.fields import SCIENCE_FIELDS, field_weights
from repro.workload.generator import WorkloadGenerator
from repro.workload.phases import PHASE_CALIBRATION, PhaseModel
from repro.workload.users import UserProfile, generate_users

__all__ = [
    "SCIENCE_FIELDS",
    "field_weights",
    "APP_CATALOG",
    "AppSignature",
    "RATE_FIELDS",
    "RATE_INDEX",
    "UserProfile",
    "generate_users",
    "arrival_times",
    "PHASE_CALIBRATION",
    "PhaseModel",
    "JobBehavior",
    "DerivedRates",
    "WorkloadGenerator",
]
