"""Command-line tools.

The paper's tool chain is operated from cron jobs and admin shells; this
package provides the equivalent operational surface:

* ``repro-simulate`` — run a simulated facility and persist the warehouse
  (optionally the full text-format archive);
* ``repro-report`` — render any stakeholder report from a warehouse;
* ``repro-stats-cat`` — inspect a TACC_Stats archive file (header,
  schemas, blocks, job windows);
* ``repro-persistence`` — print Table 1 / the Figure 6 fit for a system;
* ``repro-diagnose`` — ANCOR-style failure diagnosis and the mined
  anomaly→failure association table;
* ``repro-export`` — dump any aggregate/profile/series/density as CSV or
  chart JSON;
* ``repro-serve`` — serve reports/queries/timeseries over HTTP/JSON
  (the dashboard back end; see docs/SERVICE.md).

All entry points accept ``--help`` and return a nonzero exit status on
error, so they compose in shell pipelines.
"""

from repro.cli.diagnose import main as diagnose_main
from repro.cli.export import main as export_main
from repro.cli.persistence import main as persistence_main
from repro.cli.report import main as report_main
from repro.cli.serve import main as serve_main
from repro.cli.simulate import main as simulate_main
from repro.cli.stats_cat import main as stats_cat_main

__all__ = [
    "simulate_main",
    "report_main",
    "stats_cat_main",
    "persistence_main",
    "diagnose_main",
    "export_main",
    "serve_main",
]
