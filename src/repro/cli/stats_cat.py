"""``repro-stats-cat``: inspect TACC_Stats archive files.

Examples::

    repro-stats-cat /archive/c000-001.ranger/2011-06-01.gz
    repro-stats-cat --jobs /archive/c000-001.ranger/*.gz
    repro-stats-cat --series cpu:0:user file.gz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cli.common import die
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.parser import ParseError, parse_host_text
from repro.util.tables import render_kv, render_table
from repro.util.textchart import sparkline


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-stats-cat`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-stats-cat",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="+", help="archive files (.gz ok)")
    parser.add_argument("--jobs", action="store_true",
                        help="list job windows seen in the files")
    parser.add_argument("--series", default=None, metavar="TYPE:DEV:KEY",
                        help="print one counter series, e.g. cpu:0:user")
    parser.add_argument("--timeline", default=None, metavar="JOBID",
                        help="render the per-job drill-down timeline "
                             "(pass all of the job's host files)")
    parser.add_argument("--allow-truncated", action="store_true",
                        help="tolerate a crash-truncated final line")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    # Rotated files of the same host merge; distinct hosts stay separate
    # (the flat views below are single-host; --timeline is multi-host).
    per_host: dict[str, object] = {}
    for name in args.files:
        path = Path(name)
        if not path.exists():
            return die(f"no such file: {name}")
        try:
            host = parse_host_text(
                HostArchive.read_file(path),
                allow_truncated=args.allow_truncated,
            )
        except ParseError as e:
            return die(f"{name}: {e}", code=1)
        if host.hostname in per_host:
            try:
                per_host[host.hostname].merge_from(host)
            except ValueError as e:
                return die(f"{name}: {e}", code=1)
        else:
            per_host[host.hostname] = host

    if args.timeline:
        from repro.xdmod.jobview import job_timeline
        try:
            tl = job_timeline(args.timeline, list(per_host.values()))
        except ValueError as e:
            return die(str(e), code=1)
        print(tl.render())
        straggler, dev = tl.straggler()
        print(f"\nmost deviant host: {straggler} ({dev:+.0%} vs job mean)")
        return 0

    if len(per_host) > 1:
        return die("multiple hosts given; the header/series views are "
                   "single-host (use --timeline JOBID for a job view)")
    merged = next(iter(per_host.values()))

    print(render_kv(
        {
            "hostname": merged.hostname or "(none)",
            "blocks": len(merged.blocks),
            "marks": len(merged.marks),
            "types": ", ".join(sorted(merged.schemas)),
            **{f"${k}": v for k, v in merged.properties.items()
               if k not in ("hostname",)},
        },
        title="TACC_Stats stream",
    ))

    if args.jobs:
        seen: dict[str, tuple[float | None, float | None]] = {}
        for m in merged.marks:
            b, e = seen.get(m.jobid, (None, None))
            if m.kind == "begin" and b is None:
                b = m.time
            elif m.kind == "end":
                e = m.time
            seen[m.jobid] = (b, e)
        rows = [
            {"jobid": jid,
             "begin": f"{b:.0f}" if b is not None else "-",
             "end": f"{e:.0f}" if e is not None else "-",
             "samples": len(merged.blocks_for_job(jid))}
            for jid, (b, e) in sorted(seen.items())
        ]
        print()
        print(render_table(rows, ["jobid", "begin", "end", "samples"],
                           title="Job windows"))

    if args.series:
        try:
            type_name, device, key = args.series.split(":")
        except ValueError:
            return die("--series wants TYPE:DEV:KEY")
        try:
            t, v = merged.series(type_name, device, key)
        except KeyError as e:
            return die(str(e), code=1)
        if t.size == 0:
            return die(f"no samples for {args.series}", code=1)
        print(f"\n{args.series}: {t.size} samples "
              f"[{int(v.min())} .. {int(v.max())}]")
        print(sparkline(v.astype(float)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
