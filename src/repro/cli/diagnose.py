"""``repro-diagnose``: ANCOR-style failure diagnosis from a warehouse.

Examples::

    repro-diagnose --warehouse ranger.sqlite --system ranger
    repro-diagnose --warehouse ranger.sqlite --system ranger --job 2000123
    repro-diagnose --warehouse ranger.sqlite --system ranger --associations
    repro-diagnose --warehouse ranger.sqlite --system ranger --ingest-health
    repro-diagnose --warehouse ranger.sqlite --system ranger --ledger
    repro-diagnose --telemetry manifest.json

``--telemetry`` inspects a run manifest written by ``repro-simulate
--telemetry-out`` (stage span tree, slowest hosts, counter totals) and
needs no warehouse.

Federation mode walks every member shard (docs/FEDERATION.md)::

    repro-diagnose --federation fed/ --ledger
    repro-diagnose --federation fed/ --cluster ranger --ingest-health

Without ``--cluster`` the ledger/ingest-health views print one section
per shard; ANCOR diagnosis needs a single cluster, so ``--cluster`` is
required there.
"""

from __future__ import annotations

import argparse
import sys

from repro.anomaly.ancor import AncorAnalysis
from repro.cli.common import die
from repro.ingest.warehouse import Warehouse
from repro.telemetry.manifest import RunManifest
from repro.telemetry.trace import render_span_tree
from repro.util.tables import render_kv, render_table


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-diagnose`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-diagnose",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--warehouse", default=None,
                        help="SQLite warehouse to diagnose from (required "
                             "for everything except --telemetry)")
    parser.add_argument("--system", default=None,
                        help="system name inside the warehouse (required "
                             "for everything except --telemetry)")
    parser.add_argument("--federation", default=None, metavar="DIR",
                        help="federation directory of warehouse shards "
                             "(alternative to --warehouse/--system)")
    parser.add_argument("--cluster", default=None,
                        help="with --federation: restrict to one member "
                             "cluster (required for ANCOR diagnosis)")
    parser.add_argument("--job", default=None,
                        help="diagnose one job id (default: all failures)")
    parser.add_argument("--associations", action="store_true",
                        help="print the mined anomaly->failure table")
    parser.add_argument("--limit", type=int, default=10,
                        help="max failures to print (default 10)")
    parser.add_argument("--ingest-health", action="store_true",
                        help="print the stored ingest-health accounting "
                             "(hosts ok/degraded/dropped, quarantined "
                             "records, retries) for the system")
    parser.add_argument("--ledger", action="store_true",
                        help="print the ingest ledger (consumed archive "
                             "host-days with fingerprints and status) "
                             "and the recorded ingest runs with their "
                             "appended row ranges")
    parser.add_argument("--telemetry", default=None, metavar="MANIFEST",
                        help="inspect a telemetry manifest JSON (from "
                             "repro-simulate --telemetry-out): span tree, "
                             "slowest hosts, counter totals")
    parser.add_argument("--min-ms", type=float, default=0.0,
                        help="with --telemetry, hide spans faster than "
                             "this many milliseconds")
    return parser


def _print_telemetry(manifest: RunManifest, min_ms: float) -> None:
    """Render one run manifest: spans, slowest hosts, counters, health."""
    print(render_kv({
        "run": manifest.run_id,
        "systems": ", ".join(manifest.systems) or "(none)",
        "effective ingest workers": manifest.effective_workers,
    }, title="Run telemetry"))
    if manifest.stages:
        print("\nstage timings:")
        print(render_span_tree(manifest.stages, min_ms=min_ms))
    else:
        # An explicit line beats silence: an empty tree usually means
        # the run was traced with a reset registry or the producer
        # never entered a span, and the operator should know which.
        print("\nstage timings: no spans recorded")
    if manifest.slowest_hosts:
        print("\nslowest hosts (scan wall time):")
        for host, seconds in manifest.slowest_hosts:
            print(f"  {host:<32} {seconds * 1000.0:>10.1f} ms")
    counters = manifest.metrics.counters
    if counters:
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name:<36} {counters[name]:>14,.0f}")
    if manifest.ingest_health is not None:
        _print_ingest_health(manifest.ingest_health,
                             ", ".join(manifest.systems) or "run")


def _print_ingest_health(payload: dict, system: str) -> None:
    """Render the warehouse's stored ingest-health accounting."""
    from repro.errors import IngestHealth

    health = IngestHealth.from_dict(payload)
    print(render_kv({
        "policy": health.policy,
        "hosts ok": len(health.hosts_ok),
        "hosts degraded": len(health.hosts_degraded) or "(none)",
        "hosts dropped": ", ".join(health.hosts_dropped) or "(none)",
        "records quarantined": health.records_quarantined,
        "retries": health.total_retries,
    }, title=f"Ingest health — {system}"))
    for rec in health.quarantined[:20]:
        where = rec.path if rec.lineno is None else f"{rec.path}:{rec.lineno}"
        print(f"  {rec.hostname}: [{rec.kind}] {where} — {rec.error}")
    if health.records_quarantined > 20:
        print(f"  ... and {health.records_quarantined - 20} more "
              f"(see the archive's quarantine/ sidecar)")


def _print_ledger(warehouse: Warehouse, system: str) -> None:
    """Render the ingest ledger and the recorded ingest runs."""
    ledger = warehouse.ledger_map(system)
    if not ledger:
        print(f"no ingest ledger for {system!r} (the warehouse was "
              f"filled by the fast path or predates the ledger)")
        return
    days = sorted({day for _h, day in ledger})
    by_status: dict[str, int] = {}
    for entry in ledger.values():
        by_status[entry.status] = by_status.get(entry.status, 0) + 1
    print(render_kv({
        "host-days consumed": len(ledger),
        "days": f"{days[0]} .. {days[-1]} ({len(days)})",
        "status": ", ".join(f"{k}={v}"
                            for k, v in sorted(by_status.items())),
    }, title=f"Ingest ledger — {system}"))
    rows = [
        {"host": host, "day": day,
         "size": f"{entry.size:,}",
         "sha256": entry.sha256[:12],
         "status": entry.status,
         "run": entry.run_id}
        for (host, day), entry in sorted(ledger.items())
    ]
    print(render_table(
        rows, ["host", "day", "size", "sha256", "status", "run"],
        title="Consumed host-days",
    ))
    runs = warehouse.ingest_runs(system)
    if runs:
        print(render_table([
            {"run": r["run_id"], "mode": r["mode"],
             **{t: f"{lo}..{hi}" if hi > lo else "-"
                for t, (lo, hi) in sorted(r["row_ranges"].items())}}
            for r in runs
        ], ["run", "mode", "jobs", "job_metrics", "system_series",
            "syslog_events"],
            title="Ingest runs (appended rowid ranges, half-open)"))


def _print_diagnosis(d) -> None:
    print(render_kv({
        "job": d.jobid,
        "user": d.user,
        "app": d.app,
        "exit": d.exit_status,
        "failure events": ", ".join(d.failure_events) or "(none)",
        "anomalies": ", ".join(
            f"{a.metric}({a.robust_z:+.1f})" for a in d.anomalies
        ) or "(none)",
        "lead time": f"{d.lead_time_s / 60:.0f} min"
        if d.lead_time_s is not None else "-",
    }, title=f"Diagnosis — job {d.jobid}"))
    for hypothesis, score in d.hypotheses[:3]:
        print(f"  -> {hypothesis} (score {score:.1f})")
    print()


def _main_federation(args) -> int:
    """Federation mode: per-shard ledgers, health, or routed diagnosis."""
    from repro.federation import FederatedWarehouse

    if args.warehouse or args.system:
        return die("--warehouse/--system and --federation are different "
                   "modes; pick one")
    try:
        federated = FederatedWarehouse.open(args.federation)
    except (FileNotFoundError, ValueError) as e:
        return die(str(e))
    try:
        clusters = federated.clusters
        if args.cluster:
            if args.cluster not in clusters:
                return die(f"cluster {args.cluster!r} not in federation; "
                           f"has: {clusters}")
            clusters = [args.cluster]

        if args.ledger or args.ingest_health:
            for i, cluster in enumerate(clusters):
                if i:
                    print()
                shard = federated.shard(cluster)
                for system in shard.systems():
                    if args.ledger:
                        _print_ledger(shard, system)
                    else:
                        payload = shard.ingest_health(system)
                        if payload is None:
                            print(f"no ingest-health record for "
                                  f"{system!r} (the ingest ran with the "
                                  f"strict policy)")
                        else:
                            _print_ingest_health(payload, system)
            return 0

        # ANCOR diagnosis is per-system: route through one shard.
        if not args.cluster:
            return die(f"ANCOR diagnosis needs --cluster "
                       f"(federation has: {federated.clusters})")
        shard = federated.shard(args.cluster)
        systems = shard.systems()
        if len(systems) != 1:
            return die(f"cluster {args.cluster!r} holds {systems}; "
                       f"use --warehouse on the shard file directly")
        return _diagnose_one(args, shard, systems[0])
    finally:
        federated.close()


def _diagnose_one(args, warehouse: Warehouse, system: str) -> int:
    """The ANCOR diagnosis flows against one (warehouse, system)."""
    ancor = AncorAnalysis(warehouse, system)

    if args.associations:
        rows = [
            {"metric": a.metric, "failure": a.kind,
             "lift": f"{a.lift:.1f}",
             "confidence": f"{a.confidence:.1%}",
             "support": a.support}
            for a in ancor.association_table()
        ]
        if not rows:
            print("no associations with sufficient support")
            return 0
        print(render_table(
            rows, ["metric", "failure", "lift", "confidence",
                   "support"],
            title=f"Anomaly -> failure associations — {system}",
        ))
        return 0

    if args.job:
        try:
            _print_diagnosis(ancor.diagnose(args.job))
        except KeyError as e:
            return die(str(e), code=1)
        return 0

    diagnoses = ancor.diagnose_failures()
    if not diagnoses:
        print("no diagnosable failures")
        return 0
    lead = ancor.mean_lead_time()
    print(f"{len(diagnoses)} diagnosable failures"
          + (f"; mean warning window {lead / 60:.0f} min"
             if lead is not None else "") + "\n")
    for d in diagnoses[: args.limit]:
        _print_diagnosis(d)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)

    if args.telemetry:
        try:
            manifest = RunManifest.read(args.telemetry)
        except (OSError, ValueError) as e:
            return die(f"cannot read telemetry manifest: {e}")
        _print_telemetry(manifest, args.min_ms)
        return 0

    if args.federation:
        return _main_federation(args)

    if not args.warehouse or not args.system:
        return die("--warehouse and --system are required "
                   "(unless using --telemetry or --federation)")
    warehouse = Warehouse(args.warehouse)
    try:
        if args.system not in warehouse.systems():
            return die(f"system {args.system!r} not in {args.warehouse}")

        if args.ledger:
            _print_ledger(warehouse, args.system)
            return 0

        if args.ingest_health:
            payload = warehouse.ingest_health(args.system)
            if payload is None:
                print(f"no ingest-health record for {args.system!r} "
                      f"(the ingest ran with the strict policy)")
                return 0
            _print_ingest_health(payload, args.system)
            return 0

        return _diagnose_one(args, warehouse, args.system)
    finally:
        warehouse.close()


if __name__ == "__main__":
    sys.exit(main())
