"""Shared CLI plumbing."""

from __future__ import annotations

import argparse
import sys

from repro.config import LONESTAR4, RANGER, STAMPEDE, FacilityConfig

__all__ = ["SYSTEMS", "add_system_args", "config_from_args", "die"]

SYSTEMS: dict[str, FacilityConfig] = {
    "ranger": RANGER,
    "lonestar4": LONESTAR4,
    "stampede": STAMPEDE,
}


def add_system_args(parser: argparse.ArgumentParser) -> None:
    """The scaling knobs every simulation-facing command shares."""
    parser.add_argument("--system", choices=sorted(SYSTEMS),
                        default="ranger",
                        help="which published system to replicate")
    parser.add_argument("--nodes", type=int, default=32,
                        help="scaled node count (default 32)")
    parser.add_argument("--days", type=float, default=14,
                        help="simulated horizon in days (default 14)")
    parser.add_argument("--users", type=int, default=80,
                        help="user population size (default 80)")
    parser.add_argument("--seed", type=int, default=42,
                        help="master seed (default 42)")


def config_from_args(args: argparse.Namespace) -> FacilityConfig:
    """Build the scaled FacilityConfig the parsed args describe."""
    base = SYSTEMS[args.system]
    return base.scaled(num_nodes=args.nodes, horizon_days=args.days,
                       n_users=args.users)


def die(message: str, code: int = 2) -> "int":
    """Print an error to stderr; returns the exit code to propagate."""
    print(f"error: {message}", file=sys.stderr)
    return code
