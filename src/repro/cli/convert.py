"""``repro-convert``: convert a stats archive between text and v2.

Examples::

    repro-convert --archive /tmp/ls4-stats --to v2
    repro-convert --archive /tmp/ls4-stats --to text --out /tmp/ls4-text

Conversion is lossless and ledger-preserving: text -> v2 stores the text
path's fingerprint in the v2 header and is verified to round-trip back
to the exact source bytes before the source is replaced; v2 -> text
regenerates the original stored bytes (same gzip parameters), so an
``ingest --append`` over a converted archive consumes zero files.
Files that cannot be converted losslessly (corrupt or non-canonical)
are passed through untouched and listed on stderr — a later ingest
quarantines them exactly as it would have before conversion.  See
docs/FORMAT.md ("Archive v2 columnar layout").
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import die
from repro.tacc_stats.convert import convert_archive


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-convert`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-convert",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--archive", required=True,
                        help="archive root directory to convert")
    parser.add_argument("--to", required=True, choices=("text", "v2"),
                        help="target on-disk format")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write the converted tree here instead of "
                             "replacing files in place (source archive "
                             "is left untouched)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the text->v2 round-trip proof "
                             "(faster; conversion is still refused for "
                             "unparseable files)")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    from pathlib import Path

    if not Path(args.archive).is_dir():
        return die(f"no such archive directory: {args.archive}")
    report = convert_archive(args.archive, to=args.to,
                             out_root=args.out,
                             verify=not args.no_verify)
    for path in report.passthrough:
        print(f"passthrough (not convertible): {path}", file=sys.stderr)
    for path in report.drifted:
        print(f"fingerprint drift (will re-parse on append): {path}",
              file=sys.stderr)
    if not args.quiet:
        dest = args.out or args.archive
        print(f"{dest}: {report} "
              f"({report.bytes_in / 1e6:.1f} MB -> "
              f"{report.bytes_out / 1e6:.1f} MB)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
