"""``repro-report``: render a stakeholder report from a warehouse.

Examples::

    repro-report --warehouse ranger.sqlite --system ranger support
    repro-report --warehouse ranger.sqlite --system ranger user user0042
    repro-report --warehouse ranger.sqlite --system ranger developer namd

Reports share one columnar warehouse snapshot and memoize rendered
output on it; ``--no-report-cache`` disables the memoization (the
snapshot is still shared) for debugging or timing the cold path.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import die
from repro.ingest.warehouse import Warehouse
from repro.telemetry.metrics import get_registry
from repro.xdmod.reports import (
    AdminReport,
    DeveloperReport,
    FundingAgencyReport,
    ResourceManagerReport,
    SupportStaffReport,
    UserReport,
)
from repro.xdmod.snapshot import WarehouseSnapshot, set_cache_enabled

_NEEDS_TARGET = {"user": "a username", "developer": "an application tag"}

_REPORTS = {
    "user": UserReport,
    "developer": DeveloperReport,
    "support": SupportStaffReport,
    "admin": AdminReport,
    "manager": ResourceManagerReport,
    "funding": FundingAgencyReport,
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-report`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--warehouse", required=True)
    parser.add_argument("--system", required=True)
    parser.add_argument("--report-cache", dest="report_cache",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="memoize query/report results on the shared "
                             "warehouse snapshot (default: enabled)")
    parser.add_argument("--cache-stats", action="store_true",
                        help="after rendering, print the snapshot's "
                             "memo-cache hit/miss counts and the "
                             "process-wide cache counters")
    parser.add_argument("kind", choices=sorted(_REPORTS),
                        help="which stakeholder's report")
    parser.add_argument("target", nargs="?", default=None,
                        help="username (user) or app tag (developer)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    # Resolve knobs before touching the warehouse, mirroring the
    # --ingest-workers up-front validation in repro-simulate.
    set_cache_enabled(args.report_cache)
    warehouse = Warehouse(args.warehouse)
    try:
        if args.system not in warehouse.systems():
            return die(f"system {args.system!r} not in {args.warehouse}; "
                       f"has: {warehouse.systems()}")
        report = _REPORTS[args.kind](warehouse, args.system)
        if args.kind in _NEEDS_TARGET:
            if not args.target:
                return die(f"report {args.kind!r} needs {args.kind} "
                           f"target: {_NEEDS_TARGET[args.kind]}")
            try:
                print(report.render(args.target))
            except ValueError as e:
                return die(str(e))
        else:
            if args.target:
                return die(f"report {args.kind!r} takes no target")
            print(report.render())
        if args.cache_stats:
            snap = WarehouseSnapshot.for_warehouse(warehouse)
            registry = get_registry()
            print(f"\ncache: {snap.cache_stats['hits']} hits, "
                  f"{snap.cache_stats['misses']} misses, "
                  f"{snap.cache_stats['entries']} entries "
                  f"(process counters: "
                  f"hits={registry.counter('analytics.cache_hits').value:.0f} "
                  f"misses="
                  f"{registry.counter('analytics.cache_misses').value:.0f})")
        return 0
    finally:
        warehouse.close()


if __name__ == "__main__":
    sys.exit(main())
