"""``repro-report``: render a stakeholder report from a warehouse.

Examples::

    repro-report --warehouse ranger.sqlite --system ranger support
    repro-report --warehouse ranger.sqlite --system ranger user user0042
    repro-report --warehouse ranger.sqlite --system ranger developer namd

Reports share one columnar warehouse snapshot and memoize rendered
output on it; ``--no-report-cache`` disables the memoization (the
snapshot is still shared) for debugging or timing the cold path.

Federation mode (docs/FEDERATION.md) reads warehouse shards instead::

    repro-report --federation fed/ --cluster ranger support
    repro-report --federation fed/ federation

``--cluster`` routes a per-system report to the owning shard — output
is byte-identical to running against that shard file directly — and
the ``federation`` kind renders the cross-cluster scatter-gather
rollup (per-cluster rows plus the merged TOTAL).
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import die
from repro.ingest.warehouse import Warehouse
from repro.telemetry.metrics import get_registry
from repro.xdmod.reports import (
    AdminReport,
    DeveloperReport,
    FundingAgencyReport,
    ResourceManagerReport,
    SupportStaffReport,
    UserReport,
)
from repro.xdmod.snapshot import WarehouseSnapshot, set_cache_enabled

_NEEDS_TARGET = {"user": "a username", "developer": "an application tag"}

_REPORTS = {
    "user": UserReport,
    "developer": DeveloperReport,
    "support": SupportStaffReport,
    "admin": AdminReport,
    "manager": ResourceManagerReport,
    "funding": FundingAgencyReport,
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-report`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--warehouse", default=None,
                        help="SQLite warehouse (classic mode)")
    parser.add_argument("--system", default=None,
                        help="system inside --warehouse (classic mode)")
    parser.add_argument("--federation", default=None, metavar="DIR",
                        help="federation directory of warehouse shards "
                             "(alternative to --warehouse)")
    parser.add_argument("--cluster", default=None,
                        help="with --federation: which member cluster a "
                             "per-system report targets")
    parser.add_argument("--report-cache", dest="report_cache",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="memoize query/report results on the shared "
                             "warehouse snapshot (default: enabled)")
    parser.add_argument("--cache-stats", action="store_true",
                        help="after rendering, print the snapshot's "
                             "memo-cache hit/miss counts and the "
                             "process-wide cache counters")
    parser.add_argument("kind", choices=sorted(_REPORTS) + ["federation"],
                        help="which stakeholder's report; 'federation' "
                             "renders the cross-cluster rollup "
                             "(--federation mode only)")
    parser.add_argument("target", nargs="?", default=None,
                        help="username (user) or app tag (developer)")
    return parser


def _main_federation(args) -> int:
    """Federation mode: route to a shard or render the rollup."""
    from repro.federation import FederatedWarehouse

    try:
        federated = FederatedWarehouse.open(args.federation)
    except (FileNotFoundError, ValueError) as e:
        return die(str(e))
    try:
        if args.kind == "federation":
            if args.target:
                return die("report 'federation' takes no target")
            print(federated.render_overview())
            return 0
        if not args.cluster:
            return die(f"report {args.kind!r} needs --cluster "
                       f"(federation has: {federated.clusters})")
        if args.cluster not in federated.clusters:
            return die(f"cluster {args.cluster!r} not in federation; "
                       f"has: {federated.clusters}")
        shard = federated.shard(args.cluster)
        systems = shard.systems()
        system = args.system or (systems[0] if len(systems) == 1 else None)
        if system is None or system not in systems:
            return die(f"--system must be one of {systems} for cluster "
                       f"{args.cluster!r}")
        # Identical call path to classic mode on the shard file, so the
        # rendered text is byte-identical to --warehouse output.
        report = _REPORTS[args.kind](shard, system)
        if args.kind in _NEEDS_TARGET:
            if not args.target:
                return die(f"report {args.kind!r} needs {args.kind} "
                           f"target: {_NEEDS_TARGET[args.kind]}")
            try:
                print(report.render(args.target))
            except ValueError as e:
                return die(str(e))
        else:
            if args.target:
                return die(f"report {args.kind!r} takes no target")
            print(report.render())
        return 0
    finally:
        federated.close()


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    # Resolve knobs before touching the warehouse, mirroring the
    # --ingest-workers up-front validation in repro-simulate.
    set_cache_enabled(args.report_cache)
    if args.federation and args.warehouse:
        return die("--warehouse and --federation are different modes; "
                   "pick one")
    if args.federation:
        return _main_federation(args)
    if args.kind == "federation":
        return die("report 'federation' needs --federation DIR")
    if not args.warehouse or not args.system:
        return die("--warehouse and --system are required "
                   "(or --federation DIR for federation mode)")
    warehouse = Warehouse(args.warehouse)
    try:
        if args.system not in warehouse.systems():
            return die(f"system {args.system!r} not in {args.warehouse}; "
                       f"has: {warehouse.systems()}")
        report = _REPORTS[args.kind](warehouse, args.system)
        if args.kind in _NEEDS_TARGET:
            if not args.target:
                return die(f"report {args.kind!r} needs {args.kind} "
                           f"target: {_NEEDS_TARGET[args.kind]}")
            try:
                print(report.render(args.target))
            except ValueError as e:
                return die(str(e))
        else:
            if args.target:
                return die(f"report {args.kind!r} takes no target")
            print(report.render())
        if args.cache_stats:
            snap = WarehouseSnapshot.for_warehouse(warehouse)
            registry = get_registry()
            print(f"\ncache: {snap.cache_stats['hits']} hits, "
                  f"{snap.cache_stats['misses']} misses, "
                  f"{snap.cache_stats['entries']} entries "
                  f"(process counters: "
                  f"hits={registry.counter('analytics.cache_hits').value:.0f} "
                  f"misses="
                  f"{registry.counter('analytics.cache_misses').value:.0f})")
        return 0
    finally:
        warehouse.close()


if __name__ == "__main__":
    sys.exit(main())
