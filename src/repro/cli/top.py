"""``repro-top``: a terminal top-N view of live per-job rates.

Examples::

    repro-top --warehouse ranger.sqlite --system ranger
    repro-top --url http://127.0.0.1:8810 --system ranger -i 5 -r 0
    repro-top --warehouse ranger.sqlite --system ranger --user u007
    repro-top --warehouse ranger.sqlite --system ranger --json -r 3

Rates are computed *between successive polls* of the warehouse's live
job-counter table (glljobstat-style monotonic-counter deltas, wrap-safe
at 2^48): the first poll only establishes a baseline, every later poll
prints units-per-second over the elapsed window.  ``--warehouse`` polls
a SQLite file directly (rereading the on-disk generation, so an
external ``repro-simulate --live`` feeding the same file is picked up);
``--url`` polls a running ``repro-serve`` instead, whose per-client
rate engine keys off ``--client``.

The TREND column is a sparkline of each job's ordering-metric rate
across this invocation's windows.  ``--json`` emits one JSON document
per poll for scripting; see docs/OBSERVABILITY.md ("Live monitoring").
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request

from repro.cli.common import die
from repro.live.rates import RateEngine, top_jobs, total_rates
from repro.live.runner import LIVE_COUNTER_METRICS
from repro.util.textchart import sparkline

#: Column headers for the four live counter metrics, in metric order.
_HEADERS = {
    "flops_gf": "GFLOP/S",
    "cpu_user_frac": "CPU-S/S",
    "io_scratch_write_mb": "IO-MB/S",
    "net_mpi_mb": "NET-MB/S",
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-top`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--warehouse", default=None,
                        help="SQLite warehouse file to poll directly")
    source.add_argument("--url", default=None,
                        help="base URL of a running repro-serve "
                             "(e.g. http://127.0.0.1:8810)")
    parser.add_argument("--system", required=True,
                        help="system name to watch")
    parser.add_argument("-n", "--count", type=int, default=10,
                        help="jobs shown per refresh (default 10)")
    parser.add_argument("-i", "--interval", type=float, default=2.0,
                        help="seconds between polls (default 2.0)")
    parser.add_argument("-r", "--repeat", type=int, default=2,
                        help="total polls, including the baseline; "
                             "0 polls until interrupted (default 2)")
    parser.add_argument("--metric", default="flops_gf",
                        choices=sorted(LIVE_COUNTER_METRICS),
                        help="rate metric to rank by "
                             "(default flops_gf)")
    parser.add_argument("--user", default=None,
                        help="only this user's jobs")
    parser.add_argument("--app", default=None,
                        help="only this application's jobs")
    parser.add_argument("--client", default="repro-top",
                        help="rate-engine client name for --url mode "
                             "(default repro-top)")
    parser.add_argument("--json", action="store_true",
                        help="one JSON document per poll instead of "
                             "tables")
    return parser


def _poll_warehouse(warehouse, engine: RateEngine, system: str,
                    args: argparse.Namespace) -> dict:
    """One direct-SQL poll shaped like ``GET /api/v1/live/top``."""
    warehouse.reread_generation()
    samples = warehouse.live_counters(system)
    rates = engine.observe(samples)
    top = top_jobs(rates, n=args.count, order_by=args.metric,
                   user=args.user, app=args.app)
    return {
        "system": system,
        "order_by": args.metric,
        "n": args.count,
        "t": max((s["t"] for s in samples), default=0.0),
        "jobs_observed": len(samples),
        "baseline": bool(samples) and not rates,
        "total": total_rates(rates),
        "jobs": [r.to_dict() for r in top],
    }


def _poll_url(base: str, system: str, args: argparse.Namespace) -> dict:
    """One poll against a running ``repro-serve``."""
    params = {"system": system, "n": str(args.count),
              "metric": args.metric, "client": args.client}
    if args.user:
        params["user"] = args.user
    if args.app:
        params["app"] = args.app
    url = (base.rstrip("/") + "/api/v1/live/top?"
           + urllib.parse.urlencode(params))
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read().decode())


def render_table(poll: dict, trend: dict[str, list[float]],
                 order_by: str) -> str:
    """The human refresh: header line, per-job rows, TOTAL row."""
    lines = [
        f"repro-top — system {poll['system']}  t={poll['t']:.0f}  "
        f"jobs={poll['jobs_observed']}  order={order_by}"
    ]
    if poll["baseline"]:
        lines.append(f"  baseline established "
                     f"({poll['jobs_observed']} jobs); rates follow "
                     f"the next poll")
        return "\n".join(lines)
    if not poll["jobs"]:
        lines.append("  no active jobs in window")
        return "\n".join(lines)
    cols = [m for m in LIVE_COUNTER_METRICS]
    header = (f"  {'JOBID':<10} {'USER':<8} {'APP':<12} "
              + " ".join(f"{_HEADERS[m]:>9}" for m in cols)
              + f" {'DT':>6}  TREND")
    lines.append(header)
    for job in poll["jobs"]:
        history = trend.setdefault(job["jobid"], [])
        history.append(job["rates"].get(order_by, 0.0))
        tag = "*" if job.get("ended") else " "
        lines.append(
            f"  {job['jobid']:<10} {job['user']:<8} {job['app']:<12} "
            + " ".join(f"{job['rates'].get(m, 0.0):>9.2f}"
                       for m in cols)
            + f" {job['dt']:>6.0f}{tag} {sparkline(history)}"
        )
    total = poll["total"]
    lines.append(
        f"  {'TOTAL':<10} {'':<8} {'':<12} "
        + " ".join(f"{total.get(m, 0.0):>9.2f}" for m in cols))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point: poll, difference, render, repeat."""
    args = build_parser().parse_args(argv)
    if args.count < 1:
        return die("--count must be >= 1")
    if args.interval < 0:
        return die("--interval must be >= 0")
    if args.repeat < 0:
        return die("--repeat must be >= 0 (0 = until interrupted)")

    warehouse = None
    engine = None
    if args.warehouse is not None:
        from repro.ingest.warehouse import Warehouse
        try:
            warehouse = Warehouse(args.warehouse)
        except Exception as e:
            return die(f"cannot open warehouse {args.warehouse!r}: {e}")
        if args.system not in warehouse.systems():
            known = ", ".join(warehouse.systems()) or "none"
            warehouse.close()
            return die(f"unknown system {args.system!r} "
                       f"(warehouse holds: {known})")
        engine = RateEngine()

    trend: dict[str, list[float]] = {}
    polls = 0
    try:
        while args.repeat == 0 or polls < args.repeat:
            if polls:
                time.sleep(args.interval)
            try:
                if warehouse is not None:
                    poll = _poll_warehouse(warehouse, engine,
                                           args.system, args)
                else:
                    poll = _poll_url(args.url, args.system, args)
            except urllib.error.HTTPError as e:
                body = e.read().decode(errors="replace")
                try:
                    code = json.loads(body)["error"]["code"]
                except (ValueError, KeyError):
                    code = f"http {e.code}"
                return die(f"service error: {code}")
            except urllib.error.URLError as e:
                return die(f"cannot reach {args.url!r}: {e.reason}")
            polls += 1
            if args.json:
                print(json.dumps(poll), flush=True)
            else:
                print(render_table(poll, trend, args.metric),
                      flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        if warehouse is not None:
            warehouse.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
