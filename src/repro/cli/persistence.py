"""``repro-persistence``: Table 1 / Figure 6 from a warehouse.

Example::

    repro-persistence --warehouse ranger.sqlite --system ranger
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import die
from repro.ingest.warehouse import Warehouse
from repro.util.tables import render_table
from repro.xdmod.persistence import PersistenceAnalysis


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-persistence`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-persistence",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--warehouse", required=True)
    parser.add_argument("--system", required=True)
    parser.add_argument("--offsets", default="10,30,100,500,1000",
                        help="comma-separated offsets in minutes")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    try:
        offsets = tuple(int(x) for x in args.offsets.split(","))
        if not offsets or any(o <= 0 for o in offsets):
            raise ValueError
    except ValueError:
        return die("--offsets wants positive comma-separated minutes")

    warehouse = Warehouse(args.warehouse)
    try:
        if args.system not in warehouse.systems():
            return die(f"system {args.system!r} not in {args.warehouse}")
        try:
            analysis = PersistenceAnalysis(warehouse, args.system,
                                           offsets_min=offsets)
            table = analysis.table()
        except (KeyError, ValueError) as e:
            return die(f"cannot compute persistence: {e}", code=1)
        rows = []
        for off in table[0].offsets_min:
            row = {"offset(min)": off}
            for r in table:
                k = (r.offsets_min.index(off)
                     if off in r.offsets_min else None)
                row[r.metric] = (f"{r.ratios[k]:.3f}"
                                 if k is not None else "-")
            rows.append(row)
        rows.append({"offset(min)": "fit R^2",
                     **{r.metric: f"{r.fit_r_squared:.3f}" for r in table}})
        print(render_table(rows,
                           ["offset(min)"] + [r.metric for r in table],
                           title=f"Persistence — {args.system}"))
        print(f"\ncombined fit: {analysis.combined_fit().summary()}")
        print("least predictable first: "
              + " < ".join(analysis.predictability_order()))
        return 0
    finally:
        warehouse.close()


if __name__ == "__main__":
    sys.exit(main())
