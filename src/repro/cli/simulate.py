"""``repro-simulate``: run one simulated study period.

Examples::

    repro-simulate --system ranger --nodes 64 --days 30 \
        --warehouse ranger.sqlite
    repro-simulate --system lonestar4 --nodes 16 --days 2 \
        --warehouse ls4.sqlite --archive /tmp/ls4-stats
    repro-simulate --system lonestar4 --nodes 16 --days 4 \
        --warehouse ls4.sqlite --archive /tmp/ls4-stats --append

With ``--archive`` the run goes through the full text-format tool chain
(slower; intended for small configs); otherwise the fast synthesis path
is used.  Multiple systems can share one warehouse file — run the
command once per system.  ``--ingest-days N`` consumes only the first N
facility days of the archive; a later ``--append`` run diffs the
archive against the warehouse's ingest ledger and parses only what is
new (see docs/PERFORMANCE.md).

Federation mode (docs/FEDERATION.md) simulates several clusters at
once, one warehouse shard each::

    repro-simulate --clusters ranger,lonestar4,stampede \
        --federation fed/ --nodes 8 --days 2
    repro-simulate --federation fed/ --with-archives --append

``--clusters`` takes archetype names (optionally aliased,
``ranger-a=ranger``); every shard gets the same scaling knobs.
``--with-archives`` runs each cluster through the slow text-format
path into ``fed/archives/<cluster>/`` so later ``--append`` runs use
the per-shard ingest ledgers; ``--shard-workers`` fans whole shards
over a process pool.  A later run against an existing federation reads
the member list back from ``fed/federation.json``.

Live mode (docs/OBSERVABILITY.md, "Live monitoring") streams the same
study period as rolling micro-batches instead of one offline pass::

    repro-simulate --system ranger --nodes 8 --days 1 \
        --warehouse live.sqlite --archive /tmp/live-stats --live

Each batch advances the replay by ``--live-segment-seconds`` of
facility time, rotates the completed archive segment, appends it
through the watermark ledger, and refreshes the warehouse snapshot in
place — watch it with ``repro-top`` or ``repro-serve`` against the
same warehouse file while it runs (``--live-sleep`` paces batches in
wall-clock time for that).  The final warehouse is byte-identical to
a one-shot run at the same rotation period.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import add_system_args, config_from_args, die
from repro.facility import Facility
from repro.ingest.warehouse import Warehouse
from repro.telemetry.log import run_scope
from repro.telemetry.manifest import build_manifest
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import get_tracer, span


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-simulate`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_system_args(parser)
    parser.add_argument("--warehouse", default=None,
                        help="SQLite file to create/extend (required "
                             "unless running in federation mode)")
    parser.add_argument("--clusters", default=None, metavar="A,B,...",
                        help="federation mode: comma-separated member "
                             "clusters (archetype names, optionally "
                             "aliased as name=archetype); each gets its "
                             "own warehouse shard under --federation")
    parser.add_argument("--federation", default=None, metavar="DIR",
                        help="federation directory (shards + manifest); "
                             "required with --clusters, sufficient alone "
                             "for --append runs against an existing "
                             "federation")
    parser.add_argument("--with-archives", action="store_true",
                        help="federation mode: run each cluster through "
                             "the slow archive path into "
                             "DIR/archives/<cluster>/ (enables later "
                             "--append runs via the per-shard ledgers)")
    parser.add_argument("--shard-workers", type=int, default=1,
                        help="federation mode: process-parallel shard "
                             "fan-out (each shard is an independent "
                             "file set; output is identical for any "
                             "worker count)")
    parser.add_argument("--archive", default=None,
                        help="directory for a full stats archive "
                             "(enables the slow path)")
    parser.add_argument("--archive-format", choices=("text", "v2"),
                        default="text",
                        help="on-disk format the daemons write: the "
                             "paper-faithful self-describing text "
                             "(default) or the binary columnar v2 "
                             "(docs/FORMAT.md); ingest autodetects per "
                             "file and both produce byte-identical "
                             "warehouses")
    parser.add_argument("--synthesis", choices=("fast", "scalar"),
                        default="fast",
                        help="replay engine for --archive runs: the "
                             "vectorized per-node synthesis (batched "
                             "collector kernels, direct-to-v2 column "
                             "writes; default) or the per-sample scalar "
                             "daemon loop kept as the oracle — both "
                             "produce byte-identical archives and "
                             "warehouses")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-parallel node replay for --archive "
                             "runs (output is byte-identical)")
    parser.add_argument("--ingest-workers", type=int, default=1,
                        help="process-parallel host parsing when reading "
                             "the archive back (warehouse is "
                             "byte-identical for any worker count)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="jobs per warehouse transaction during "
                             "ingest")
    parser.add_argument("--error-policy",
                        choices=("strict", "quarantine", "repair"),
                        default="strict",
                        help="what malformed archive data does during "
                             "ingest: strict fails loudly (default), "
                             "quarantine drops affected hosts with full "
                             "provenance, repair salvages parseable "
                             "lines (see docs/ROBUSTNESS.md)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per host for transient worker "
                             "failures during parallel ingest")
    parser.add_argument("--append", action="store_true",
                        help="incremental ingest into an existing system: "
                             "diff the archive against the warehouse's "
                             "ingest ledger and parse only new host-day "
                             "files (requires --archive; see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--ingest-days", type=int, default=None,
                        metavar="N",
                        help="consume only the first N facility days of "
                             "the archive (requires --archive); a later "
                             "--append run folds in the remainder")
    parser.add_argument("--fast-writes", action="store_true",
                        help="open the warehouse with WAL journaling and "
                             "synchronous=NORMAL (faster ingest; query "
                             "results are identical)")
    parser.add_argument("--no-syslog", action="store_true",
                        help="skip syslog generation (fast path only)")
    parser.add_argument("--policy", choices=("easy", "fcfs", "aware"),
                        default="easy",
                        help="scheduling policy: EASY backfill (default), "
                             "plain FCFS, or the §5 complement-aware "
                             "backfill")
    parser.add_argument("--appkernels", action="store_true",
                        help="submit the standard application-kernel "
                             "battery on its cadence")
    parser.add_argument("--live", action="store_true",
                        help="stream the study period as rolling "
                             "micro-batches through the append ledger "
                             "(requires --archive; watch with repro-top "
                             "or repro-serve on the same warehouse)")
    parser.add_argument("--live-segment-seconds", type=int, default=3600,
                        metavar="S",
                        help="live mode: archive rotation period in "
                             "facility seconds (default 3600)")
    parser.add_argument("--live-batch-segments", type=int, default=1,
                        metavar="K",
                        help="live mode: completed segments folded in "
                             "per micro-batch (default 1)")
    parser.add_argument("--live-max-batches", type=int, default=None,
                        metavar="N",
                        help="live mode: stop after N micro-batches "
                             "(default: run the whole horizon)")
    parser.add_argument("--live-sleep", type=float, default=0.0,
                        metavar="SEC",
                        help="live mode: wall-clock pause between "
                             "micro-batches, so concurrent viewers see "
                             "rates evolve (default 0)")
    parser.add_argument("--telemetry-out", default=None, metavar="PATH",
                        help="write the run's telemetry manifest (stage "
                             "spans, metric totals, ingest health, "
                             "slowest hosts) as JSON to PATH")
    parser.add_argument("--quiet", action="store_true")
    return parser


def _parse_clusters(spec: str) -> list[tuple[str, str]]:
    """``"ranger,ls4-b=lonestar4"`` -> [(cluster, archetype), ...]."""
    out = []
    for entry in (e.strip() for e in spec.split(",")):
        if not entry:
            continue
        cluster, _, archetype = entry.partition("=")
        out.append((cluster, archetype or cluster))
    return out


def _federation_plans(args) -> tuple[str, "list", bool]:
    """Resolve the member plans: from the manifest of an existing
    federation, or from ``--clusters`` for a fresh one.

    Returns ``(root, plans, existed)``.
    """
    from pathlib import Path

    from repro.cli.common import SYSTEMS
    from repro.federation import ClusterPlan, FederationLayout

    root = args.federation
    manifest = Path(root) / "federation.json"
    if manifest.exists():
        layout = FederationLayout.open(root)
        if args.clusters:
            wanted = sorted(c for c, _a in _parse_clusters(args.clusters))
            if wanted != layout.clusters:
                raise ValueError(
                    f"--clusters {wanted} does not match the existing "
                    f"federation {layout.clusters}; omit --clusters to "
                    f"reuse the manifest")
        plans = []
        for spec in layout.shards.values():
            base = SYSTEMS.get(spec.system)
            if base is None:
                raise ValueError(f"manifest names unknown archetype "
                                 f"{spec.system!r}")
            config = base.scaled(num_nodes=spec.nodes,
                                 horizon_days=spec.days,
                                 n_users=spec.users)
            plans.append(ClusterPlan(spec.cluster, config, spec.seed))
        return root, plans, True
    if not args.clusters:
        raise ValueError(f"no federation at {root} — pass --clusters to "
                         f"create one")
    plans = []
    for cluster, archetype in _parse_clusters(args.clusters):
        base = SYSTEMS.get(archetype)
        if base is None:
            raise ValueError(f"unknown archetype {archetype!r} "
                             f"(have: {sorted(SYSTEMS)})")
        config = base.scaled(num_nodes=args.nodes, horizon_days=args.days,
                             n_users=args.users)
        plans.append(ClusterPlan(cluster, config, args.seed))
    return root, plans, False


def _run_federation(args) -> int:
    """Federation mode: one shard per cluster under ``--federation``."""
    from repro.federation import (
        FederatedFacility,
        FederatedWarehouse,
        FederationLayout,
    )

    if args.warehouse:
        return die("--warehouse and --federation are different modes; "
                   "pick one")
    if args.archive:
        return die("federation mode manages archive paths itself; use "
                   "--with-archives instead of --archive")
    if args.shard_workers < 1:
        return die("--shard-workers must be >= 1")
    if args.append and not args.with_archives:
        return die("--append requires --with-archives in federation mode "
                   "(the per-shard ledgers live with the archives)")
    if args.ingest_days is not None and not args.with_archives:
        return die("--ingest-days requires --with-archives")
    if args.archive_format != "text" and not args.with_archives:
        return die("--archive-format requires --with-archives")
    if args.synthesis != "fast" and not args.with_archives:
        return die("--synthesis requires --with-archives")
    try:
        root, plans, existed = _federation_plans(args)
    except ValueError as e:
        return die(str(e))
    if existed and not args.append:
        from pathlib import Path
        built = [p.cluster for p in plans
                 if Path(root, f"{p.cluster}.sqlite").exists()]
        if built:
            return die(f"federation at {root} already has shards "
                       f"{built}; use --append to extend them")
    federated = (FederatedFacility(FederationLayout.open(root), plans)
                 if existed else FederatedFacility.plan(root, plans))

    get_registry().reset()
    get_tracer().reset()
    with run_scope() as run_id:
        with span("federation.simulate", clusters=len(plans)) as root_span:
            try:
                results = federated.run(
                    archive=args.with_archives,
                    shard_workers=args.shard_workers,
                    workers=args.workers,
                    ingest_workers=args.ingest_workers,
                    batch_size=args.batch_size,
                    error_policy=args.error_policy,
                    max_retries=args.max_retries,
                    append=args.append,
                    through_day=args.ingest_days,
                    archive_format=args.archive_format,
                    synthesis=args.synthesis,
                    fast_writes=args.fast_writes,
                    with_syslog=not args.no_syslog,
                )
            except ValueError as e:
                return die(str(e))
        elapsed = root_span.duration

        if args.telemetry_out:
            manifest = build_manifest(
                systems=[p.cluster for p in plans],
                extra={
                    "federation": root,
                    "jobs_simulated": sum(r["jobs"]
                                          for r in results.values()),
                    "shard_workers": args.shard_workers,
                },
            )
            path = manifest.write(args.telemetry_out)
            if not args.quiet:
                print(f"telemetry manifest: {path} (run {run_id})")

    if not args.quiet:
        for cluster, r in sorted(results.items()):
            line = (f"[{cluster}] {r['jobs']} jobs simulated, "
                    f"{r['summarized']} with full summaries, "
                    f"{r['node_hours']:,.0f} node-hours, "
                    f"efficiency {r['efficiency']:.1%}")
            if r["delta"]:
                line += f" — ingest delta ({r['mode']}): {r['delta']}"
            print(line)
        fw = FederatedWarehouse.open(root)
        try:
            print(fw.render_overview())
        finally:
            fw.close()
        print(f"federation: {root} ({elapsed:.1f}s)")
    return 0


def _run_live(args, cfg, facility, warehouse) -> int:
    """Live mode: stream the horizon as micro-batches (see
    docs/OBSERVABILITY.md, "Live monitoring")."""
    import time as _time

    from repro.live.runner import LiveSession

    try:
        session = LiveSession(
            facility, args.archive, warehouse=warehouse,
            segment_seconds=args.live_segment_seconds,
            batch_segments=args.live_batch_segments,
            synthesis=args.synthesis)
    except ValueError as e:
        return die(str(e))

    get_registry().reset()
    get_tracer().reset()
    reports = []
    with run_scope() as run_id:
        with span("live.session", system=cfg.name,
                  segment_seconds=args.live_segment_seconds) as root:
            while not session.done:
                if (args.live_max_batches is not None
                        and len(reports) >= args.live_max_batches):
                    break
                report = session.run_batch()
                if report is None:
                    break
                reports.append(report)
                if not args.quiet:
                    print(report, flush=True)
                if args.live_sleep and not session.done:
                    _time.sleep(args.live_sleep)
        elapsed = root.duration

        if args.telemetry_out:
            manifest = build_manifest(
                systems=[cfg.name],
                extra={
                    "live": {
                        "segment_seconds": args.live_segment_seconds,
                        "batch_segments": args.live_batch_segments,
                        "batches": len(reports),
                        "complete": session.done,
                        "snapshot_rows": [r.snapshot_rows
                                          for r in reports],
                        "jobs_loaded": sum(r.jobs_loaded
                                           for r in reports),
                        "counter_rows": sum(r.counter_rows
                                            for r in reports),
                    },
                },
            )
            path = manifest.write(args.telemetry_out)
            if not args.quiet:
                print(f"telemetry manifest: {path} (run {run_id})")

    if not args.quiet:
        jobs = warehouse.job_count(cfg.name)
        rows = reports[-1].snapshot_rows if reports else 0
        state = "complete" if session.done else "stopped"
        print(f"[{cfg.name}] live {state}: {len(reports)} batches, "
              f"{jobs} jobs in warehouse, {rows} snapshot rows "
              f"({elapsed:.1f}s)")
        print(f"warehouse: {args.warehouse}")
    warehouse.close()
    return 0


def _policy(name: str):
    if name == "fcfs":
        from repro.scheduler.policies import FCFSPolicy
        return FCFSPolicy()
    if name == "aware":
        from repro.scheduler.resource_aware import (
            ResourceAwareBackfillPolicy,
        )
        return ResourceAwareBackfillPolicy()
    from repro.scheduler.policies import EasyBackfillPolicy
    return EasyBackfillPolicy()


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.workers < 1 or args.ingest_workers < 1:
        return die("--workers and --ingest-workers must be >= 1")
    if args.batch_size < 1:
        return die("--batch-size must be >= 1")
    if args.max_retries < 0:
        return die("--max-retries must be >= 0")
    if args.clusters and not args.federation:
        return die("--clusters requires --federation DIR")
    if args.live:
        if args.federation:
            return die("--live streams a single system; federation "
                       "mode is batch-only")
        if not args.archive:
            return die("--live requires --archive (the rolling "
                       "segments live there)")
        if args.append or args.ingest_days is not None:
            return die("--live manages its own incremental ingest; "
                       "drop --append/--ingest-days")
        if args.archive_format != "text":
            return die("--live writes the text archive format")
        if args.workers != 1 or args.ingest_workers != 1:
            return die("--live replays in-process; drop --workers/"
                       "--ingest-workers")
        if args.no_syslog:
            return die("--live always generates the syslog stream")
        if args.live_segment_seconds < 1:
            return die("--live-segment-seconds must be >= 1")
        if args.live_batch_segments < 1:
            return die("--live-batch-segments must be >= 1")
        if (args.live_max_batches is not None
                and args.live_max_batches < 1):
            return die("--live-max-batches must be >= 1")
        if args.live_sleep < 0:
            return die("--live-sleep must be >= 0")
    if args.federation:
        return _run_federation(args)
    if args.with_archives or args.shard_workers != 1:
        return die("--with-archives/--shard-workers are federation-mode "
                   "flags (pass --federation DIR)")
    if not args.warehouse:
        return die("--warehouse is required (or --federation DIR for "
                   "federation mode)")
    if args.append and not args.archive:
        return die("--append requires --archive (the ingest ledger "
                   "tracks archive files)")
    if args.archive_format != "text" and not args.archive:
        return die("--archive-format requires --archive (the fast path "
                   "writes no files)")
    if args.synthesis != "fast" and not args.archive:
        return die("--synthesis requires --archive (without an archive "
                   "no replay runs at all)")
    if args.ingest_days is not None:
        if not args.archive:
            return die("--ingest-days requires --archive")
        if args.append:
            return die("--ingest-days only windows a full ingest; "
                       "--append derives its window from the ledger")
        if args.ingest_days < 1:
            return die("--ingest-days must be >= 1")
    cfg = config_from_args(args)
    warehouse = Warehouse(args.warehouse, fast_writes=args.fast_writes)
    if cfg.name in warehouse.systems() and not args.append:
        return die(f"system {cfg.name!r} already present in "
                   f"{args.warehouse}; use a fresh file, another system, "
                   f"or --append to ingest incrementally")
    kernels = None
    if args.appkernels:
        from repro.xdmod.appkernels import DEFAULT_KERNELS
        kernels = DEFAULT_KERNELS
    facility = Facility(cfg, seed=args.seed, policy=_policy(args.policy),
                        appkernels=kernels)
    if args.live:
        return _run_live(args, cfg, facility, warehouse)

    # One timing mechanism: the run is bracketed by the root telemetry
    # span (its duration is what the summary line prints) instead of
    # ad-hoc time.time() arithmetic.  Registry and tracer start clean so
    # the manifest describes exactly this invocation.
    get_registry().reset()
    get_tracer().reset()
    with run_scope() as run_id:
        with span("simulate", system=cfg.name,
                  path="archive" if args.archive else "fast") as root:
            if args.archive:
                run = facility.run_with_files(
                    args.archive, warehouse=warehouse,
                    workers=args.workers,
                    ingest_workers=args.ingest_workers,
                    batch_size=args.batch_size,
                    error_policy=args.error_policy,
                    max_retries=args.max_retries,
                    ingest_mode="append" if args.append else "full",
                    ingest_through_day=args.ingest_days,
                    archive_format=args.archive_format,
                    synthesis=args.synthesis)
            else:
                run = facility.run(warehouse=warehouse,
                                   with_syslog=not args.no_syslog)
        elapsed = root.duration

        if args.telemetry_out:
            report = run.ingest_report
            extra = {"jobs_simulated": len(run.records)}
            if report is not None:
                extra["ingest_mode"] = report.mode
                if report.delta is not None:
                    extra["ingest_delta"] = report.delta.to_dict()
            manifest = build_manifest(
                systems=[cfg.name],
                ingest_health=(report.health.to_dict()
                               if report is not None
                               and report.health is not None else None),
                effective_workers=(report.effective_workers
                                   if report is not None else 1),
                extra=extra,
            )
            path = manifest.write(args.telemetry_out)
            if not args.quiet:
                print(f"telemetry manifest: {path} (run {run_id})")

    if not args.quiet:
        q = run.query()
        print(f"[{cfg.name}] {len(run.records)} jobs simulated, "
              f"{len(q)} with full summaries, "
              f"{q.node_hours:,.0f} node-hours, "
              f"efficiency {1 - q.weighted_mean('cpu_idle'):.1%} "
              f"({elapsed:.1f}s)")
        if run.archive_stats is not None:
            s = run.archive_stats
            print(f"archive: {s.file_count} files, "
                  f"{s.raw_bytes / 1e6:.1f} MB raw, "
                  f"{s.compression_ratio:.1f}x gzip")
        report = run.ingest_report
        if report is not None and report.delta is not None:
            print(f"ingest delta ({report.mode}): {report.delta}")
        if report is not None and report.health is not None:
            print(f"ingest health: {report.health}")
        print(f"warehouse: {args.warehouse}")
    warehouse.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
