"""``repro-export``: dump analytics data as CSV or chart JSON.

Examples::

    repro-export --warehouse wh.sqlite --system ranger \
        groups science_field --metric mem_used --format csv
    repro-export --warehouse wh.sqlite --system ranger \
        profile user user0042 --format json
    repro-export --warehouse wh.sqlite --system ranger series flops_tf
    repro-export --warehouse wh.sqlite --system ranger \
        density mem_used --format json -o mem.json
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import die
from repro.ingest.warehouse import Warehouse
from repro.xdmod.density import metric_density
from repro.xdmod.export import (
    density_chart,
    dump_json,
    groups_chart,
    groups_to_csv,
    profile_chart,
    series_chart,
    to_csv,
)
from repro.xdmod.profiles import UsageProfiler
from repro.xdmod.query import JobQuery
from repro.xdmod.timeseries import SystemTimeseries


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-export`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-export",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--warehouse", required=True)
    parser.add_argument("--system", required=True)
    parser.add_argument("--format", choices=("csv", "json"),
                        default="json")
    parser.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    sub = parser.add_subparsers(dest="what", required=True)

    p_groups = sub.add_parser("groups", help="group-by aggregates")
    p_groups.add_argument("dimension")
    p_groups.add_argument("--metric", default=None)

    p_profile = sub.add_parser("profile", help="normalized usage profile")
    p_profile.add_argument("dimension")
    p_profile.add_argument("value")

    p_series = sub.add_parser("series", help="system time series")
    p_series.add_argument("name")

    p_density = sub.add_parser("density", help="per-job metric KDE")
    p_density.add_argument("metric")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    warehouse = Warehouse(args.warehouse)
    try:
        if args.system not in warehouse.systems():
            return die(f"system {args.system!r} not in {args.warehouse}")
        query = JobQuery(warehouse, args.system)
        try:
            if args.what == "groups":
                metrics = (args.metric,) if args.metric else ()
                groups = query.group_by(args.dimension, metrics=metrics)
                if args.format == "csv":
                    text = groups_to_csv(groups, metrics=metrics)
                else:
                    text = dump_json(groups_chart(
                        groups, args.metric,
                        f"{args.dimension} by "
                        f"{args.metric or 'node_hours'}",
                    ))
            elif args.what == "profile":
                profile = UsageProfiler(query).profile(args.dimension,
                                                       args.value)
                if args.format == "csv":
                    text = to_csv([
                        {"metric": m, "ratio": v, "raw": profile.raw[m]}
                        for m, v in profile.values.items()
                    ])
                else:
                    text = dump_json(profile_chart(profile))
            elif args.what == "series":
                ts = SystemTimeseries(warehouse, args.system)
                series = ts._get(args.name)
                if args.format == "csv":
                    text = to_csv([
                        {"t": float(t), "value": float(v)}
                        for t, v in zip(series.times, series.values)
                    ])
                else:
                    text = dump_json(series_chart(series))
            else:  # density
                curve = metric_density(query, args.metric)
                if args.format == "csv":
                    text = to_csv([
                        {"x": float(x), "density": float(y)}
                        for x, y in zip(curve.grid, curve.density)
                    ])
                else:
                    text = dump_json(density_chart(curve))
        except (KeyError, ValueError) as e:
            return die(str(e), code=1)

        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text if text.endswith("\n") else text + "\n")
        else:
            print(text)
        return 0
    finally:
        warehouse.close()


if __name__ == "__main__":
    sys.exit(main())
