"""``repro-serve``: serve a warehouse over HTTP/JSON.

Examples::

    repro-serve --warehouse ranger.sqlite
    repro-serve --warehouse ranger.sqlite --host 0.0.0.0 --port 8810
    repro-serve --warehouse ranger.sqlite --telemetry-out serve.json
    repro-serve --federation fed/

``--federation DIR`` serves a directory of warehouse shards (created
by ``repro-simulate --federation``; docs/FEDERATION.md): per-system
requests route to the owning shard unchanged, ``system=all`` answers
cross-cluster scatter-gather queries, and two extra endpoints appear
(``GET /api/v1/clusters``, ``GET /api/v1/federation/overview``).

The server is read-only and stateless: every request resolves the
current shared :class:`~repro.xdmod.snapshot.WarehouseSnapshot`, so
restarting it loses nothing but warm caches.  Concurrent ingest into
the same file is adopted with ``POST /api/v1/refresh`` (an O(delta)
snapshot swap).  See docs/SERVICE.md for the protocol; scrape
Prometheus metrics at ``/metrics``.  On shutdown (SIGINT/SIGTERM) a
telemetry manifest is written when ``--telemetry-out`` is given —
inspect it with ``repro-diagnose --telemetry``.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.cli.common import die
from repro.service.server import RequestHandler, make_server
from repro.service.state import ServiceState
from repro.telemetry.log import run_scope
from repro.telemetry.manifest import build_manifest
from repro.xdmod.snapshot import set_cache_enabled


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-serve`` (docstring = usage text)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--warehouse", default=None,
                        help="SQLite warehouse file to serve")
    parser.add_argument("--federation", default=None, metavar="DIR",
                        help="federation directory of warehouse shards "
                             "to serve (alternative to --warehouse)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8810,
                        help="bind port; 0 picks a free one "
                             "(default 8810)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="per-tenant L1 report-cache capacity "
                             "(default 256)")
    parser.add_argument("--max-tenants", type=int, default=64,
                        help="most tenant LRUs kept live; the least-"
                             "recently-used whole tenant is evicted "
                             "beyond this (default 64)")
    parser.add_argument("--report-cache", dest="report_cache",
                        action=argparse.BooleanOptionalAction,
                        default=True,
                        help="serve repeated queries from the L1/memo "
                             "caches (default: enabled); --no-report-cache "
                             "recomputes every request (benchmarking)")
    parser.add_argument("--log-requests", action="store_true",
                        help="log one stderr line per request")
    parser.add_argument("--telemetry-out", default=None, metavar="PATH",
                        help="on shutdown, write the serving period's "
                             "telemetry manifest (request counts, cache "
                             "hits, latency histogram) as JSON to PATH")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; serves until SIGINT/SIGTERM."""
    args = build_parser().parse_args(argv)
    if args.cache_size < 1:
        return die("--cache-size must be >= 1")
    if args.max_tenants < 1:
        return die("--max-tenants must be >= 1")
    set_cache_enabled(args.report_cache)
    if (args.warehouse is None) == (args.federation is None):
        return die("pass exactly one of --warehouse / --federation")
    source = args.federation or args.warehouse
    try:
        state = ServiceState(warehouse_path=args.warehouse,
                             cache_capacity=args.cache_size,
                             report_cache=args.report_cache,
                             max_tenants=args.max_tenants,
                             federation_root=args.federation)
    except Exception as e:
        what = "federation" if args.federation else "warehouse"
        return die(f"cannot open {what} {source!r}: {e}")
    systems = (state.federation.all_systems() if state.federation
               else state.warehouse.systems())
    if not systems:
        state.close()
        return die(f"{source!r} holds no systems")

    RequestHandler.log_requests = args.log_requests
    server = make_server(state, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    if not args.quiet:
        what = (f"federation {source} "
                f"[{', '.join(state.federation.clusters)}]"
                if state.federation else source)
        print(f"serving {what} ({', '.join(systems)}) "
              f"on http://{host}:{port} — Ctrl-C stops", flush=True)

    # CI and process managers stop us with SIGTERM; turn it into the
    # same clean unwind KeyboardInterrupt gives Ctrl-C.
    signal.signal(signal.SIGTERM,
                  lambda *_: (_ for _ in ()).throw(SystemExit(0)))
    with run_scope() as run_id:
        try:
            server.serve_forever()
        except (KeyboardInterrupt, SystemExit):
            pass
        finally:
            # Handler threads are daemons, so server_close does not
            # join them; drain the dispatched requests first so none
            # dies on the closed warehouse connection below (late
            # arrivals on open keep-alive connections get a 503).
            server.drain()
            server.server_close()
            state.close()
            if args.telemetry_out:
                manifest = build_manifest(
                    systems=systems,
                    extra={"warehouse": source,
                           "bind": f"{host}:{port}"},
                )
                path = manifest.write(args.telemetry_out)
                if not args.quiet:
                    print(f"telemetry manifest: {path} (run {run_id})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
