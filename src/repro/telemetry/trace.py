"""Nested tracing spans: the pipeline's per-run wall-time breakdown.

One :class:`Tracer` per run holds a tree of :class:`Span` records; the
``span("ingest.parse", host=...)`` context manager opens a child of the
current span, times its body with ``perf_counter``, and closes it even
when the body raises (the span is then marked ``error`` and the
exception propagates untouched).  This is the repo's *single* timing
mechanism — ad-hoc ``time.time()`` bracketing in the CLIs and benches
was replaced by spans so every measurement lands in the same tree.

Every closed span also feeds a ``span.<name>.seconds`` histogram on the
active :mod:`~repro.telemetry.metrics` registry, so stage-latency
distributions aggregate across workers and runs without walking trees.

Like the metrics registry, the active tracer is process-local state
swapped with :func:`use_tracer`; spans recorded in pool workers stay in
the worker (their *metrics* ship back via snapshots — trees are a
per-process view).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.telemetry.metrics import get_registry, telemetry_enabled

__all__ = ["Span", "Tracer", "get_tracer", "use_tracer", "span",
           "render_span_tree"]


@dataclass
class Span:
    """One timed operation in the run's trace tree."""

    name: str
    attrs: dict = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    status: str = "ok"
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization (manifest embedding)."""
        out: dict = {"name": self.name, "duration_s": self.duration,
                     "status": self.status}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=d["name"],
            attrs=dict(d.get("attrs", {})),
            duration=float(d.get("duration_s", 0.0)),
            status=d.get("status", "ok"),
            children=[cls.from_dict(c) for c in d.get("children", [])],
        )


class Tracer:
    """Collects one process's span tree for the current run."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a new root).

        The span closes on scope exit no matter how the body ends; an
        exception marks it ``error`` and propagates.  Attributes are
        arbitrary JSON-able key/values (``host=...``, ``system=...``).
        """
        s = Span(name=name, attrs=attrs, start=time.perf_counter())
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.roots).append(s)
        self._stack.append(s)
        try:
            yield s
        except BaseException:
            s.status = "error"
            raise
        finally:
            s.duration = time.perf_counter() - s.start
            self._stack.pop()
            if telemetry_enabled():
                get_registry().histogram(
                    f"span.{name}.seconds").observe(s.duration)

    def reset(self) -> None:
        """Drop all recorded spans (a fresh run starts with an empty tree)."""
        self.roots.clear()
        self._stack.clear()


#: The process-wide active tracer; swapped by :func:`use_tracer`.
_active = Tracer()


def get_tracer() -> Tracer:
    """The currently active tracer for this process."""
    return _active


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make *tracer* the active one for the scope of the ``with``."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous


@contextmanager
def span(name: str, **attrs) -> Iterator[Span]:
    """``with span("ingest.parse", host=...):`` on the active tracer."""
    with _active.span(name, **attrs) as s:
        yield s


def render_span_tree(roots: list[Span], min_ms: float = 0.0) -> str:
    """A human-readable indented rendering of a span tree.

    Spans faster than *min_ms* are elided (their time still shows in
    the parent).  This is what ``repro-diagnose --telemetry`` prints.
    """
    lines: list[str] = []

    def walk(s: Span, depth: int) -> None:
        if s.duration * 1000.0 < min_ms and depth > 0:
            return
        attrs = "".join(
            f" {k}={v}" for k, v in s.attrs.items()
        )
        flag = "" if s.status == "ok" else f" [{s.status}]"
        lines.append(f"{'  ' * depth}{s.name:<32} "
                     f"{s.duration * 1000.0:>10.1f} ms{flag}{attrs}")
        for c in s.children:
            walk(c, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
