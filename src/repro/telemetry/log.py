"""Structured logging: one ``get_logger()`` for the whole pipeline.

TACC_Stats' record format is self-describing; the pipeline's own logs
should be too.  Every record is a single ``key=value`` line carrying
the run id and the emitting stage, machine-parseable without a regex
zoo::

    ts=2013-06-24T12:00:05 level=info run=a1b2c3 stage=ingest.parallel \
        event=host_retry host=c001-002 attempt=2

Built on stdlib :mod:`logging` (handlers, levels, and redirection all
work as usual) under the ``repro`` logger namespace; the default
handler writes to stderr only at WARNING and above, so library code can
log liberally without polluting CLI stdout.  ``run=`` is taken from the
ambient run id (:func:`set_run_id` / :func:`current_run_id`), which the
CLIs and :class:`~repro.ingest.pipeline.IngestPipeline` establish per
run.
"""

from __future__ import annotations

import logging
import uuid
from contextlib import contextmanager
from typing import Iterator

__all__ = ["get_logger", "new_run_id", "current_run_id", "set_run_id",
           "run_scope", "StructuredLogger"]

_run_id: str | None = None


def new_run_id() -> str:
    """A fresh short run id (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def current_run_id() -> str | None:
    """The ambient run id, or ``None`` outside any run scope."""
    return _run_id


def set_run_id(run_id: str | None) -> None:
    """Set (or clear, with ``None``) the ambient run id."""
    global _run_id
    _run_id = run_id


@contextmanager
def run_scope(run_id: str | None = None) -> Iterator[str]:
    """Establish a run id for a scope; yields the id in effect.

    Nested scopes restore the outer id on exit.  Passing ``None`` mints
    a fresh id.
    """
    global _run_id
    previous = _run_id
    _run_id = run_id or new_run_id()
    try:
        yield _run_id
    finally:
        _run_id = previous


def _format_value(value: object) -> str:
    """One value in key=value form: quote only when it contains spaces."""
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return '"' + text.replace('"', "'") + '"'
    return text


class StructuredLogger:
    """A thin key=value front end over one stdlib logger.

    ``stage`` names the pipeline stage (``ingest.parallel``,
    ``analytics.snapshot``); every record carries it plus the ambient
    run id.  The positional *event* is the record's identity — grep
    ``event=host_retry`` to find every retry across every run.
    """

    def __init__(self, stage: str):
        self.stage = stage
        self._logger = logging.getLogger(f"repro.{stage}")

    def _emit(self, level: int, event: str, fields: dict) -> None:
        if not self._logger.isEnabledFor(level):
            return
        parts = [f"run={_run_id or '-'}", f"stage={self.stage}",
                 f"event={event}"]
        parts.extend(f"{k}={_format_value(v)}" for k, v in fields.items())
        self._logger.log(level, " ".join(parts))

    def debug(self, event: str, **fields) -> None:
        """Emit a DEBUG record."""
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        """Emit an INFO record."""
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        """Emit a WARNING record."""
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        """Emit an ERROR record."""
        self._emit(logging.ERROR, event, fields)


def get_logger(stage: str) -> StructuredLogger:
    """The structured logger for one pipeline stage."""
    return StructuredLogger(stage)
