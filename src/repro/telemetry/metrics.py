"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The paper's collector is sold on its ~0.1 % overhead budget; this module
applies the same discipline to the pipeline that reproduces it.  All
instruments are plain Python objects mutated with one attribute update
(no locks, no label cardinality explosions, no allocation on the hot
path), so leaving them on by default costs well under the 1 % ingest
budget guarded by ``benchmarks/bench_telemetry_overhead.py``.

Since the analytics service layer landed, instruments are also
*thread-safe*: each carries a private lock so concurrent writers (the
query server's handler threads, the snapshot memo) never lose an
update — a bare ``+=`` is a read-modify-write the GIL is free to
interleave.  The lock is uncontended on single-threaded ingest, so the
cost stays inside the same overhead budget (re-measured by the bench).

Three pieces:

* :class:`MetricsRegistry` — the mutable, process-local home of every
  instrument, keyed by dotted metric name (``ingest.parse.bytes``).
  One *active* registry exists per process (:func:`get_registry`);
  :func:`use_registry` swaps it for a scope, which is how parallel
  ingest workers collect into a private registry whose snapshot ships
  back over the process boundary.
* :class:`MetricsSnapshot` — the immutable, picklable, JSON-able image
  of a registry.  Snapshots merge map/reduce-style (:meth:`MetricsSnapshot.merge`
  is associative: counters and histogram buckets add, gauges are
  last-write-wins), which is what makes a fan-out ingest report totals
  identical to a serial run.
* :func:`set_enabled` — the global kill switch: a disabled registry's
  instruments become no-ops, which is how the overhead bench measures
  the cost of the instrumentation itself.

Naming convention: metrics whose name ends in ``.seconds`` are *timing*
metrics; :meth:`MetricsSnapshot.without_timing` drops them, giving the
deterministic subset that serial and parallel runs of the same facility
must agree on exactly.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "get_registry",
    "use_registry",
    "set_enabled",
    "telemetry_enabled",
    "DEFAULT_SECONDS_BUCKETS",
]

#: Default histogram bounds for timing metrics, in seconds.  Geometric
#: spacing from 1 ms to ~2 min covers everything from one ``group_by``
#: kernel to a full archive ingest; the implicit last bucket is +inf.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 30.0, 120.0,
)

_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable all instrument mutations.

    Registries and snapshots keep working (reads are unaffected);
    ``inc``/``set``/``observe`` become no-ops.  This exists for the
    overhead bench and for callers that want a hard zero-cost mode.
    """
    global _ENABLED
    _ENABLED = bool(enabled)


def telemetry_enabled() -> bool:
    """Whether instrument mutations currently take effect."""
    return _ENABLED


class Counter:
    """A monotonically increasing count (events, bytes, rows).

    Increments are serialized by a per-instrument lock: concurrent
    service handler threads hammering the same counter must not lose a
    single update (the hammer test in ``tests/telemetry`` proves they
    don't).
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (effective workers, queue depth).

    ``set`` is a single attribute store — atomic under the GIL — so a
    gauge needs no lock: last write wins, which is already its merge
    semantics.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        if not _ENABLED:
            return
        self.value = float(value)


@dataclass(frozen=True)
class HistogramData:
    """The picklable image of one histogram: bounds + counts + moments.

    ``counts`` has ``len(bounds) + 1`` entries; the last is the overflow
    bucket (observations above every bound).
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    total: float
    count: int

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 < q < 1) from the buckets.

        Linear interpolation inside the bucket holding the target rank;
        the overflow bucket reports its lower bound (the estimate is a
        floor there — fixed buckets cannot see beyond their last edge).
        Returns 0.0 when the histogram is empty.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile {q} outside (0, 1)")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if seen + n >= rank and n:
                lo = self.bounds[i - 1] if i else 0.0
                if i >= len(self.bounds):
                    return lo
                hi = self.bounds[i]
                return lo + (hi - lo) * (rank - seen) / n
            seen += n
        return self.bounds[-1]

    def merge(self, other: "HistogramData") -> "HistogramData":
        """Bucket-wise sum; both histograms must share their bounds."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with bounds {self.bounds} "
                f"and {other.bounds}"
            )
        return HistogramData(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
        )

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "total": self.total, "count": self.count}

    @classmethod
    def from_dict(cls, d: dict) -> "HistogramData":
        """Rebuild from :meth:`to_dict` output."""
        return cls(bounds=tuple(d["bounds"]), counts=tuple(d["counts"]),
                   total=float(d["total"]), count=int(d["count"]))


class Histogram:
    """Fixed-bucket distribution (stage latencies, per-host scan times).

    Buckets are fixed at construction so worker histograms merge by
    bucket-wise addition; there is no dynamic rebinning.  ``observe``
    updates three fields together, so a per-instrument lock keeps
    bucket counts, total, and count mutually consistent under
    concurrent observers (and :meth:`data` reads under the same lock).
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "_lock")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS):
        if tuple(bounds) != tuple(sorted(bounds)):
            raise ValueError(f"histogram {name}: bounds must be sorted")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not _ENABLED:
            return
        bucket = bisect_right(self.bounds, value)
        with self._lock:
            self.counts[bucket] += 1
            self.total += value
            self.count += 1

    def data(self) -> HistogramData:
        """The immutable image of the current state."""
        with self._lock:
            return HistogramData(bounds=self.bounds,
                                 counts=tuple(self.counts),
                                 total=self.total, count=self.count)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, picklable image of a registry at one instant.

    Snapshots are what crosses process boundaries (each parallel ingest
    worker ships one back alongside its :class:`HostJobPartial` map) and
    what the :class:`~repro.telemetry.manifest.RunManifest` embeds.
    :meth:`merge` is associative and has :meth:`empty` as identity, so
    any reduction tree over worker snapshots yields the same totals.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramData] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The merge identity."""
        return cls()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters and histogram buckets add,
        gauges are last-write-wins (*other* overrides)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = {**self.gauges, **other.gauges}
        histograms = dict(self.histograms)
        for name, data in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = data if mine is None else mine.merge(data)
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    def without_timing(self) -> "MetricsSnapshot":
        """The deterministic subset: every metric whose name ends in
        ``.seconds`` is dropped.  Serial and parallel ingests of the
        same facility agree exactly on this subset (asserted by tests
        and the CI telemetry smoke)."""
        return MetricsSnapshot(
            counters={k: v for k, v in self.counters.items()
                      if not k.endswith(".seconds")},
            gauges={k: v for k, v in self.gauges.items()
                    if not k.endswith(".seconds")},
            histograms={k: v for k, v in self.histograms.items()
                        if not k.endswith(".seconds")},
        )

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization (sorted keys)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {k: v.to_dict()
                           for k, v in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsSnapshot":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            counters=dict(d.get("counters", {})),
            gauges=dict(d.get("gauges", {})),
            histograms={k: HistogramData.from_dict(v)
                        for k, v in d.get("histograms", {}).items()},
        )


class MetricsRegistry:
    """The mutable home of a process's (or worker's) instruments.

    Instruments are created on first use and keyed by dotted name;
    asking for an existing name returns the same object, so call sites
    can re-resolve cheaply or cache the instrument in a local.
    Creation uses ``dict.setdefault`` (atomic under the GIL), so two
    threads racing to create the same instrument converge on one
    object and neither loses its updates.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
                  ) -> Histogram:
        """The histogram under *name*; *bounds* applies on first use only."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms.setdefault(name, Histogram(name, bounds))
        return h

    def snapshot(self) -> MetricsSnapshot:
        """The immutable image of everything recorded so far.

        Instruments that never recorded anything (zero counters, empty
        histograms) are included — an exported zero is information.
        The instrument dicts are copied atomically (``list()`` of the
        items runs without a bytecode boundary) so a snapshot taken
        while handler threads create new instruments never raises
        mid-iteration.
        """
        return MetricsSnapshot(
            counters={n: c.value for n, c in list(self._counters.items())},
            gauges={n: g.value for n, g in list(self._gauges.items())},
            histograms={n: h.data()
                        for n, h in list(self._histograms.items())},
        )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into this registry in place."""
        for name, value in snap.counters.items():
            c = self.counter(name)
            with c._lock:
                c.value += value
        for name, value in snap.gauges.items():
            self.gauge(name).value = value
        for name, data in snap.histograms.items():
            h = self.histogram(name, data.bounds)
            if h.bounds != data.bounds:
                raise ValueError(
                    f"histogram {name}: bounds mismatch on merge"
                )
            with h._lock:
                for i, n in enumerate(data.counts):
                    h.counts[i] += n
                h.total += data.total
                h.count += data.count

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide active registry; swapped by :func:`use_registry`.
_active = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The currently active registry for this process."""
    return _active


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make *registry* the active one for the scope of the ``with``.

    Parallel ingest workers use this to collect into a private registry
    whose snapshot ships back to the coordinator; tests use it for
    isolation.
    """
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
