"""First-class telemetry for the pipeline that measures the facility.

The paper demands ~0.1 % overhead and self-describing records from its
collector; this package holds the pipeline that reproduces it to the
same standard.  Four cooperating layers, all process-local and
dependency-free:

* :mod:`repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms in a swappable :class:`MetricsRegistry`, with picklable
  :class:`MetricsSnapshot` images that merge associatively (the
  map/reduce contract parallel ingest workers rely on);
* :mod:`repro.telemetry.trace` — nested ``span()`` context managers
  building a per-run trace tree, feeding per-stage latency histograms;
* :mod:`repro.telemetry.log` — ``get_logger(stage)`` structured
  key=value logging tagged with the ambient run id;
* :mod:`repro.telemetry.manifest` / :mod:`repro.telemetry.export` —
  the :class:`RunManifest` JSON artifact written next to the warehouse
  and the Prometheus text exporter.

Metric catalogue, manifest schema, and CLI usage: ``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.export import to_prometheus
from repro.telemetry.log import (
    current_run_id,
    get_logger,
    new_run_id,
    run_scope,
)
from repro.telemetry.manifest import (
    RunManifest,
    build_manifest,
    slowest_hosts,
    validate_manifest,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    set_enabled,
    telemetry_enabled,
    use_registry,
)
from repro.telemetry.trace import (
    Span,
    Tracer,
    get_tracer,
    render_span_tree,
    span,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunManifest",
    "Span",
    "Tracer",
    "build_manifest",
    "current_run_id",
    "get_logger",
    "get_registry",
    "get_tracer",
    "new_run_id",
    "render_span_tree",
    "run_scope",
    "set_enabled",
    "slowest_hosts",
    "span",
    "telemetry_enabled",
    "to_prometheus",
    "use_registry",
    "use_tracer",
    "validate_manifest",
]
