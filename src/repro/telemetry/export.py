"""Prometheus text exposition of a metrics snapshot.

The paper's monitoring contemporaries (the LIKWID Monitoring Stack, the
MPCDF system) all converge on a pull-based metrics endpoint; this module
provides the serialization half — the standard Prometheus text format
(version 0.0.4) — so a snapshot can be scraped from a file or served by
any HTTP front end without new dependencies.

Dotted metric names become underscore names (``ingest.parse.bytes`` →
``repro_ingest_parse_bytes``); histograms expand to the conventional
``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` labels.
"""

from __future__ import annotations

import re

from repro.telemetry.metrics import MetricsSnapshot

__all__ = ["to_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    """A valid Prometheus metric name for one dotted repro name."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def _fmt(value: float) -> str:
    """Numbers without trailing noise: ints stay ints."""
    return str(int(value)) if float(value).is_integer() else repr(value)


def to_prometheus(snapshot: MetricsSnapshot, prefix: str = "repro") -> str:
    """Serialize *snapshot* in the Prometheus text format.

    Counters become ``counter`` families, gauges ``gauge``, histograms
    the standard cumulative-bucket expansion.  Output is sorted by
    metric name, so two equal snapshots serialize byte-identically.
    """
    lines: list[str] = []
    for name in sorted(snapshot.counters):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        data = snapshot.histograms[name]
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(data.bounds, data.counts):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += data.counts[-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {repr(float(data.total))}")
        lines.append(f"{prom}_count {data.count}")
    return "\n".join(lines) + "\n"
