"""Run manifests: one self-describing JSON artifact per pipeline run.

Mirrors the paper's unified-record philosophy at the meta level: every
run of the pipeline can leave behind a single JSON document recording
what ran, how long each stage took, and what the counters said — next
to the warehouse it produced, so a regression hunt starts from the
artifact instead of a re-run.

Contents (see ``docs/OBSERVABILITY.md`` for the full schema):

* identity — ``run_id``, ``schema_version``, the systems ingested;
* ``stages`` — the span tree from the run's tracer;
* ``metrics`` — the merged :class:`~repro.telemetry.metrics.MetricsSnapshot`
  (ingest byte/record counters, analytics cache hits/misses, per-stage
  latency histograms);
* ``ingest_health`` — the PR 3 fault-tolerance summary when the run
  read an archive (quarantine/retry counts match ``IngestHealth``);
* ``effective_workers`` and ``slowest_hosts`` — the fan-out shape and
  the top-N hosts by scan wall time.

:func:`validate_manifest` is a dependency-free structural check (the
container has no jsonschema); CI validates the smoke run's manifest
with it before uploading the artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.log import current_run_id, new_run_id
from repro.telemetry.metrics import MetricsSnapshot, get_registry
from repro.telemetry.trace import Span, get_tracer

__all__ = ["RunManifest", "build_manifest", "slowest_hosts",
           "validate_manifest", "MANIFEST_SCHEMA_VERSION"]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


@dataclass
class RunManifest:
    """Everything one pipeline run wants to say about itself."""

    run_id: str
    systems: list[str] = field(default_factory=list)
    stages: list[Span] = field(default_factory=list)
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    ingest_health: dict | None = None
    effective_workers: int = 1
    slowest_hosts: list[tuple[str, float]] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON-ready form (what :meth:`write` serializes)."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": self.run_id,
            "systems": list(self.systems),
            "stages": [s.to_dict() for s in self.stages],
            "metrics": self.metrics.to_dict(),
            "ingest_health": self.ingest_health,
            "effective_workers": self.effective_workers,
            "slowest_hosts": [
                {"host": h, "seconds": s} for h, s in self.slowest_hosts
            ],
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Raises :class:`ValueError` when the document fails
        :func:`validate_manifest` — a manifest that half-loads is worse
        than one that fails loudly.
        """
        problems = validate_manifest(d)
        if problems:
            raise ValueError(
                "invalid run manifest: " + "; ".join(problems)
            )
        return cls(
            run_id=d["run_id"],
            systems=list(d.get("systems", [])),
            stages=[Span.from_dict(s) for s in d.get("stages", [])],
            metrics=MetricsSnapshot.from_dict(d.get("metrics", {})),
            ingest_health=d.get("ingest_health"),
            effective_workers=int(d.get("effective_workers", 1)),
            slowest_hosts=[
                (e["host"], float(e["seconds"]))
                for e in d.get("slowest_hosts", [])
            ],
            extra=dict(d.get("extra", {})),
        )

    def write(self, path: str | Path) -> Path:
        """Write the manifest JSON to *path* and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def read(cls, path: str | Path) -> "RunManifest":
        """Load and validate a manifest written by :meth:`write`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


#: Gauge-name shape for per-host scan wall time (see
#: ``repro.ingest.parallel``): ``ingest.host_scan.<hostname>.seconds``.
_HOST_GAUGE_PREFIX = "ingest.host_scan."
_HOST_GAUGE_SUFFIX = ".seconds"


def slowest_hosts(metrics: MetricsSnapshot,
                  top: int = 5) -> list[tuple[str, float]]:
    """The *top* hosts by scan wall time, slowest first.

    Extracted from the ``ingest.host_scan.<host>.seconds`` gauges each
    host scan records; ties break on hostname so the listing is stable.
    """
    timed = [
        (name[len(_HOST_GAUGE_PREFIX):-len(_HOST_GAUGE_SUFFIX)], value)
        for name, value in metrics.gauges.items()
        if name.startswith(_HOST_GAUGE_PREFIX)
        and name.endswith(_HOST_GAUGE_SUFFIX)
    ]
    timed.sort(key=lambda hv: (-hv[1], hv[0]))
    return timed[:top]


def build_manifest(systems: list[str] | None = None,
                   ingest_health: dict | None = None,
                   effective_workers: int = 1,
                   top_hosts: int = 5,
                   extra: dict | None = None) -> RunManifest:
    """Assemble a :class:`RunManifest` from the ambient telemetry state.

    Snapshots the active registry, adopts the active tracer's root spans
    as the stage tree, and derives ``slowest_hosts`` from the per-host
    scan gauges.  The run id is the ambient one when a run scope is
    open, else freshly minted.
    """
    metrics = get_registry().snapshot()
    return RunManifest(
        run_id=current_run_id() or new_run_id(),
        systems=list(systems or []),
        stages=list(get_tracer().roots),
        metrics=metrics,
        ingest_health=ingest_health,
        effective_workers=effective_workers,
        slowest_hosts=slowest_hosts(metrics, top_hosts),
        extra=dict(extra or {}),
    )


def _check(problems: list[str], ok: bool, message: str) -> None:
    if not ok:
        problems.append(message)


def validate_manifest(d: object) -> list[str]:
    """Structural validation; returns human-readable problems (empty =
    valid).

    Checks the required keys, their types, the histogram invariants
    (``len(counts) == len(bounds) + 1``), and the span-tree shape.
    Deliberately dependency-free — the container has no jsonschema, and
    the schema is small enough to state directly.
    """
    problems: list[str] = []
    if not isinstance(d, dict):
        return ["manifest must be a JSON object"]
    _check(problems, d.get("schema_version") == MANIFEST_SCHEMA_VERSION,
           f"schema_version must be {MANIFEST_SCHEMA_VERSION}, "
           f"got {d.get('schema_version')!r}")
    _check(problems, isinstance(d.get("run_id"), str) and d.get("run_id"),
           "run_id must be a non-empty string")
    _check(problems, isinstance(d.get("systems"), list),
           "systems must be a list")

    def walk_span(s: object, where: str) -> None:
        if not isinstance(s, dict) or not isinstance(s.get("name"), str):
            problems.append(f"{where}: span needs a string name")
            return
        if not isinstance(s.get("duration_s"), (int, float)):
            problems.append(f"{where}: span {s['name']} needs duration_s")
        if s.get("status") not in ("ok", "error"):
            problems.append(f"{where}: span {s['name']} has bad status")
        for i, c in enumerate(s.get("children", [])):
            walk_span(c, f"{where}.{s['name']}[{i}]")

    stages = d.get("stages")
    if not isinstance(stages, list):
        problems.append("stages must be a list of spans")
    else:
        for i, s in enumerate(stages):
            walk_span(s, f"stages[{i}]")

    metrics = d.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for key in ("counters", "gauges", "histograms"):
            section = metrics.get(key, {})
            if not isinstance(section, dict):
                problems.append(f"metrics.{key} must be an object")
                continue
            if key == "histograms":
                for name, h in section.items():
                    if not isinstance(h, dict):
                        problems.append(f"histogram {name} must be an object")
                        continue
                    bounds, counts = h.get("bounds"), h.get("counts")
                    if (not isinstance(bounds, list)
                            or not isinstance(counts, list)
                            or len(counts) != len(bounds) + 1):
                        problems.append(
                            f"histogram {name}: counts must have "
                            f"len(bounds)+1 entries"
                        )
            else:
                for name, v in section.items():
                    if not isinstance(v, (int, float)):
                        problems.append(f"metrics.{key}.{name} must be "
                                        f"numeric")

    health = d.get("ingest_health")
    _check(problems, health is None or isinstance(health, dict),
           "ingest_health must be an object or null")
    _check(problems, isinstance(d.get("effective_workers"), int)
           and d.get("effective_workers", 0) >= 1,
           "effective_workers must be an int >= 1")
    hosts = d.get("slowest_hosts")
    if not isinstance(hosts, list):
        problems.append("slowest_hosts must be a list")
    else:
        for i, entry in enumerate(hosts):
            if (not isinstance(entry, dict)
                    or not isinstance(entry.get("host"), str)
                    or not isinstance(entry.get("seconds"), (int, float))):
                problems.append(
                    f"slowest_hosts[{i}] needs host (str) and seconds "
                    f"(number)"
                )
    return problems
