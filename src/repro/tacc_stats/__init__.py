"""TACC_Stats reproduction: job-aware, per-node resource measurement.

The collector suite mirrors the original tool (paper §3): one "binary"
(:class:`TaccStatsDaemon`) runs on every node at job begin, every ten
minutes, and at job end; it samples per-core CPU, per-socket memory and
NUMA, VM activity, network/block devices, InfiniBand, Lustre (per mount),
Lustre networking, process stats, SysV IPC, IRQs, ram-backed filesystems,
dentry/file/inode caches, and architecture-specific hardware performance
counters, and serializes everything in a unified, self-describing
plain-text format tagged with batch job ids.
"""

from repro.tacc_stats.archive import ArchiveStats, HostArchive
from repro.tacc_stats.daemon import SampleContext, TaccStatsDaemon
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import ParseError, parse_host_text
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.tacc_stats.types import HostData, Mark, TimestampBlock

__all__ = [
    "SchemaEntry",
    "TypeSchema",
    "HostData",
    "TimestampBlock",
    "Mark",
    "StatsWriter",
    "parse_host_text",
    "ParseError",
    "TaccStatsDaemon",
    "SampleContext",
    "HostArchive",
    "ArchiveStats",
]
