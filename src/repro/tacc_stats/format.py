"""Writer for the unified, self-describing TACC_Stats text format.

File layout (one file per host per rotation period)::

    $tacc_stats 1.0.2          <- format/version property lines
    $hostname c001-001.ranger
    $uname Linux x86_64 2.6.18-194.el5
    $uptime 86400
    !cpu user,E,U=cs nice,E,U=cs ...     <- one schema line per type
    !mem MemTotal,U=KB MemUsed,U=KB ...
    1372088405 2683088         <- timestamp + comma-joined job ids ('-' if idle)
    %begin 2683088             <- job markers appear inside their block
    cpu 0 1234 0 567 89012 3 0 1
    cpu 1 ...
    mem 0 33554432 1048576 ...
    1372089005 2683088
    cpu 0 ...

All values are non-negative integers (counters in native units, gauges
scaled per their schema unit).  The writer enforces schema conformance so a
malformed stream can never be produced; the parser independently enforces
it on the way back in.
"""

from __future__ import annotations

from typing import TextIO

import numpy as np

from repro.tacc_stats.schema import TypeSchema
from repro.telemetry.metrics import get_registry

__all__ = ["StatsWriter", "FORMAT_VERSION"]

FORMAT_VERSION = "1.0.2"


class StatsWriter:
    """Serializes one host's stats stream.

    Usage: construct with header properties, register schemas, then for
    each collector invocation call :meth:`begin_block` followed by
    :meth:`write_row` per type/device (plus :meth:`write_mark` for job
    begin/end events).
    """

    def __init__(self, sink: TextIO, hostname: str,
                 properties: dict[str, str] | None = None):
        if not hostname or " " in hostname:
            raise ValueError(f"bad hostname {hostname!r}")
        self._sink = sink
        self._schemas: dict[str, TypeSchema] = {}
        self._header_flushed = False
        self._in_block = False
        self._block_types_seen: set[tuple[str, str]] = set()
        self._last_time: float | None = None
        self.hostname = hostname
        self.properties = {"tacc_stats": FORMAT_VERSION, "hostname": hostname}
        for k, v in (properties or {}).items():
            if "\n" in str(v):
                raise ValueError(f"property {k} contains newline")
            self.properties[k] = str(v)
        self.bytes_written = 0

    def register_schema(self, schema: TypeSchema) -> None:
        """Declare a record type; must happen before the first block."""
        if self._header_flushed:
            raise RuntimeError("cannot register schemas after data started")
        if schema.type_name in self._schemas:
            raise ValueError(f"type {schema.type_name} already registered")
        self._schemas[schema.type_name] = schema

    def _write(self, text: str) -> None:
        self._sink.write(text)
        self.bytes_written += len(text)

    def _flush_header(self) -> None:
        if self._header_flushed:
            return
        for k, v in self.properties.items():
            self._write(f"${k} {v}\n")
        for schema in self._schemas.values():
            self._write(schema.header_line() + "\n")
        self._header_flushed = True
        # One stream == one flushed header; counted here (not per row)
        # so writing stays off the telemetry hot path.
        get_registry().counter("format.streams_started").inc()

    def begin_block(self, time: float, jobids: tuple[str, ...] = ()) -> None:
        """Start the record block for one collector invocation."""
        self._flush_header()
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"non-monotonic block time {time} after {self._last_time}"
            )
        self._last_time = time
        self._in_block = True
        self._block_types_seen = set()
        tag = ",".join(jobids) if jobids else "-"
        self._write(f"{int(time)} {tag}\n")

    def write_mark(self, kind: str, jobid: str) -> None:
        """Emit a ``%begin``/``%end`` job marker inside the current block."""
        if kind not in ("begin", "end"):
            raise ValueError(f"bad mark kind {kind!r}")
        if not self._in_block:
            raise RuntimeError("mark outside a block")
        self._write(f"%{kind} {jobid}\n")

    def write_row(self, type_name: str, device: str, values) -> None:
        """Emit one ``type device v1 v2 ...`` data row."""
        if not self._in_block:
            raise RuntimeError("row outside a block")
        schema = self._schemas.get(type_name)
        if schema is None:
            raise ValueError(f"unregistered type {type_name!r}")
        key = (type_name, device)
        if key in self._block_types_seen:
            raise ValueError(f"duplicate row {type_name}/{device} in block")
        vals = np.asarray(values)
        if vals.shape != (schema.n_values,):
            raise ValueError(
                f"{type_name}: {vals.shape[0] if vals.ndim else 0} values, "
                f"schema has {schema.n_values}"
            )
        if np.any(vals < 0):
            raise ValueError(f"{type_name}/{device}: negative value")
        # Mark seen only after validation so a rejected write does not
        # poison the block for the corrected retry.
        self._block_types_seen.add(key)
        ints = " ".join(str(int(v)) for v in vals)
        self._write(f"{type_name} {device} {ints}\n")

    def append_rendered(self, first_time: float, last_time: float,
                        text: str) -> None:
        """Append pre-rendered block text (the vectorized synthesis path).

        *text* must be complete, already-validated block output — one or
        more ``begin_block``-equivalent sections whose first block starts
        at *first_time* and whose last starts at *last_time*.  The header
        is flushed and monotonicity enforced exactly as :meth:`begin_block`
        would; per-row validation is the caller's responsibility (the
        synthesis engine renders from schema-conformant uint64 arrays).
        """
        self._flush_header()
        if self._last_time is not None and first_time < self._last_time:
            raise ValueError(
                f"non-monotonic block time {first_time} after "
                f"{self._last_time}"
            )
        self._last_time = last_time
        self._in_block = False
        self._write(text)

    @property
    def schemas(self) -> dict[str, TypeSchema]:
        return dict(self._schemas)
