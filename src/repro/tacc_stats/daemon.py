"""The per-node TACC_Stats daemon.

Mirrors the original tool's invocation discipline (paper §3):

* at **job begin** — reprogram the performance counters, then record a
  baseline sample tagged ``%begin jobid``;
* **periodically** (cron, every 10 minutes, aligned across the cluster) —
  read all collectors without reprogramming anything;
* at **job end** — record a final sample tagged ``%end jobid``.

Counter increments over an interval are driven by the node state that
prevailed *during* that interval, so a sample taken at job begin still
accounts the preceding idle time correctly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.node import Node
from repro.tacc_stats.collectors import (
    Collector,
    SampleContext,
    build_collectors,
)
from repro.tacc_stats.format import StatsWriter
from repro.util.timeutil import format_epoch
from repro.workload.behavior import JobBehavior

__all__ = ["TaccStatsDaemon", "SampleContext"]


class TaccStatsDaemon:
    """One node's collector suite plus serialization and job tracking.

    Parameters
    ----------
    node:
        The node being measured.
    rng:
        Measurement-noise source for this node: a shared generator, or a
        stream factory ``name -> Generator`` giving every collector its
        own stream keyed by ``(seed, node, collector)`` (what the
        replay paths pass, and what the vectorized synthesis engine
        requires for byte-identity with this scalar path).
    writer:
        Either a fixed :class:`StatsWriter` or a factory ``(time) ->
        StatsWriter`` (the archive's rotating provider).  A new writer from
        the factory gets this daemon's schemas registered automatically.
    lustre_mounts:
        Mount names the llite collector reports.
    """

    def __init__(
        self,
        node: Node,
        rng: np.random.Generator | Callable[[str], np.random.Generator],
        writer: StatsWriter | Callable[[float], StatsWriter],
        lustre_mounts: tuple[str, ...] = ("scratch", "work", "share"),
        nfs_mounts: tuple[str, ...] = (),
    ):
        self.node = node
        self.collectors: list[Collector] = build_collectors(
            node, rng, lustre_mounts, nfs_mounts
        )
        self._writer_arg = writer
        self._last_time: float | None = None
        # (jobid, behavior, node_slot, job_start) of the current job.
        self._job: tuple[str, JobBehavior, int, float] | None = None
        self.samples_taken = 0

    # -- writer plumbing ----------------------------------------------------

    def _writer_at(self, t: float) -> StatsWriter:
        w = self._writer_arg(t) if callable(self._writer_arg) else self._writer_arg
        # Identity tracking (id()) is unsafe here: a rotated-away writer
        # can be garbage collected and its address reused by the next
        # day's writer.  The writer's own schema registry is the truth.
        if self.collectors[0].schema.type_name not in w.schemas:
            for c in self.collectors:
                w.register_schema(c.schema)
        return w

    # -- job lifecycle --------------------------------------------------------

    def begin_job(self, jobid: str, t: float, behavior: JobBehavior,
                  node_slot: int) -> None:
        """Job launches on this node: reprogram PMCs, record baseline."""
        if self._job is not None:
            raise RuntimeError(
                f"{self.node.hostname}: job {self._job[0]} still active"
            )
        for c in self.collectors:
            c.on_job_begin(jobid, t)
        # The baseline sample accounts the preceding (idle) interval, and
        # is tagged with the new job so downstream matching sees a sample
        # at the exact start time.
        self._emit(t, jobids=(jobid,), mark=("begin", jobid))
        self._job = (jobid, behavior, node_slot, t)

    def end_job(self, jobid: str, t: float) -> None:
        """Job leaves this node: record final sample tagged ``%end``."""
        if self._job is None or self._job[0] != jobid:
            raise RuntimeError(
                f"{self.node.hostname}: end_job({jobid}) but current is "
                f"{self._job[0] if self._job else None}"
            )
        self._emit(t, jobids=(jobid,), mark=("end", jobid))
        for c in self.collectors:
            c.on_job_end(jobid, t)
        self._job = None

    def sample(self, t: float) -> None:
        """Periodic (cron) invocation."""
        jobids = (self._job[0],) if self._job else ()
        self._emit(t, jobids=jobids, mark=None)

    # -- internals -------------------------------------------------------------

    def _interval_rates(self, t: float):
        """Rates prevailing over [last_time, t] (None = idle interval)."""
        if self._job is None:
            return None
        jobid, behavior, slot, start = self._job
        ref = self._last_time if self._last_time is not None else t
        elapsed = max(ref - start, 0.0)
        return behavior.node_rates_at(elapsed, slot)

    def _emit(self, t: float, jobids: tuple[str, ...],
              mark: tuple[str, str] | None) -> None:
        if self._last_time is not None and t < self._last_time:
            raise ValueError(
                f"{self.node.hostname}: sample time moved backwards "
                f"({t} < {self._last_time})"
            )
        dt = 0.0 if self._last_time is None else t - self._last_time
        # A begin-mark sample accounts the *previous* interval, which was
        # idle (or a different job that already emitted its end sample).
        rates = self._interval_rates(t)
        ctx = SampleContext(time=t, dt=dt, rates=rates, jobids=jobids)
        writer = self._writer_at(t)
        writer.begin_block(t, jobids)
        if mark is not None:
            writer.write_mark(*mark)
        for c in self.collectors:
            for device, values in c.sample(ctx):
                writer.write_row(c.type_name, device, values)
        self._last_time = t
        self.samples_taken += 1

    @property
    def current_jobid(self) -> str | None:
        return self._job[0] if self._job else None

    def header_properties(self, boot_time: float = 0.0) -> dict[str, str]:
        """Standard ``$``-property block for this node's files."""
        hw = self.node.hardware
        return {
            "uname": f"Linux x86_64 2.6.18-194 {hw.processor.model.replace(' ', '_')}",
            "uptime": str(int(max(0.0, (self._last_time or 0.0) - boot_time))),
            "cores": str(hw.cores),
            "booted": format_epoch(boot_time),
        }
