"""Parser for the TACC_Stats text format.

Strict by design: production pipelines that silently skip malformed lines
corrupt job summaries, so every violation raises :class:`ParseError` with
the line number.  The only tolerated irregularities are the ones real
deployments produce: empty files (node down all day), a trailing truncated
line (node crashed mid-write, opt-in via ``allow_truncated``), and files
that begin mid-stream after rotation (headers repeat per file, so this is
detected and rejected instead of being misread).
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.schema import TypeSchema
from repro.tacc_stats.types import HostData, Mark, TimestampBlock

__all__ = ["ParseError", "parse_host_text"]


class ParseError(Exception):
    """Malformed TACC_Stats input; message carries the line number."""


def parse_host_text(text: str, allow_truncated: bool = False) -> HostData:
    """Parse one host file's contents.

    Parameters
    ----------
    text:
        The full file contents.
    allow_truncated:
        If True, a final line without a newline terminator that fails to
        parse is dropped (crash-consistent read); any *earlier* bad line
        still raises.
    """
    lines = text.split("\n")
    # Trailing '' from terminal newline is normal; a non-empty last element
    # means the file was truncated mid-line.
    truncated_tail = None
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        truncated_tail = len(lines)  # index+1 of the suspect line

    host = HostData(hostname="")
    block: TimestampBlock | None = None
    header_done = False

    for lineno, line in enumerate(lines, 1):
        try:
            if not line:
                raise ParseError(f"line {lineno}: blank line")
            c = line[0]
            if c == "$":
                if header_done:
                    raise ParseError(
                        f"line {lineno}: property line after data began"
                    )
                sp = line.find(" ")
                if sp <= 1:
                    raise ParseError(f"line {lineno}: malformed property")
                key, value = line[1:sp], line[sp + 1:]
                host.properties[key] = value
                if key == "hostname":
                    host.hostname = value
            elif c == "!":
                if header_done:
                    raise ParseError(
                        f"line {lineno}: schema line after data began"
                    )
                try:
                    schema = TypeSchema.parse_header_line(line)
                except ValueError as e:
                    raise ParseError(f"line {lineno}: {e}") from e
                if schema.type_name in host.schemas:
                    raise ParseError(
                        f"line {lineno}: duplicate schema {schema.type_name}"
                    )
                host.schemas[schema.type_name] = schema
            elif c == "%":
                if block is None:
                    raise ParseError(f"line {lineno}: mark before any block")
                parts = line[1:].split()
                if len(parts) != 2 or parts[0] not in ("begin", "end"):
                    raise ParseError(f"line {lineno}: malformed mark {line!r}")
                host.marks.append(Mark(time=block.time, kind=parts[0],
                                       jobid=parts[1]))
            elif c.isdigit():
                parts = line.split()
                if len(parts) != 2:
                    raise ParseError(
                        f"line {lineno}: timestamp line needs 2 tokens"
                    )
                if not host.hostname:
                    raise ParseError(
                        f"line {lineno}: data before $hostname header"
                    )
                header_done = True
                try:
                    t = float(parts[0])
                except ValueError as e:
                    raise ParseError(f"line {lineno}: bad timestamp") from e
                if block is not None and t < block.time:
                    raise ParseError(
                        f"line {lineno}: non-monotonic timestamp {t}"
                    )
                jobids = () if parts[1] == "-" else tuple(parts[1].split(","))
                block = TimestampBlock(time=t, jobids=jobids)
                host.blocks.append(block)
            else:
                # Data row: "type device v1 v2 ...".
                if block is None:
                    raise ParseError(f"line {lineno}: data row before block")
                parts = line.split()
                if len(parts) < 3:
                    raise ParseError(f"line {lineno}: short data row")
                type_name, device = parts[0], parts[1]
                schema = host.schemas.get(type_name)
                if schema is None:
                    raise ParseError(
                        f"line {lineno}: row for undeclared type {type_name!r}"
                    )
                if len(parts) - 2 != schema.n_values:
                    raise ParseError(
                        f"line {lineno}: {type_name} row has "
                        f"{len(parts) - 2} values, schema {schema.n_values}"
                    )
                try:
                    values = np.array([int(v) for v in parts[2:]],
                                      dtype=np.uint64)
                except (ValueError, OverflowError) as e:
                    raise ParseError(
                        f"line {lineno}: non-integer value in row"
                    ) from e
                try:
                    block.add_row(type_name, device, values)
                except ValueError as e:
                    raise ParseError(f"line {lineno}: {e}") from e
        except ParseError:
            if allow_truncated and truncated_tail == lineno:
                break
            raise

    # A block whose tail was dropped is still usable; summaries handle
    # missing rows per device.
    if not host.hostname and (host.blocks or host.schemas):
        raise ParseError("stream has data but no $hostname header")
    return host


def event_delta(first: int, last: int, width: int) -> int:
    """Counter delta with single-rollover correction.

    Counters are monotonic modulo ``2**width``; a smaller ``last`` means
    the register wrapped exactly once between the two reads (the 10-minute
    cadence makes multiple wraps of a >=32-bit counter impossible at
    realistic rates, which the collectors' tests enforce).
    """
    first, last = int(first), int(last)
    mod = 1 << width
    if not (0 <= first < mod and 0 <= last < mod):
        raise ValueError(f"counter value out of range for width {width}")
    if last >= first:
        return last - first
    return last + mod - first
