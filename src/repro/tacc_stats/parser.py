"""Parser for the TACC_Stats text format.

Strict by design: production pipelines that silently skip malformed lines
corrupt job summaries, so every violation raises :class:`ParseError` with
the line number.  The only tolerated irregularities are the ones real
deployments produce: empty files (node down all day), a trailing truncated
line (node crashed mid-write, opt-in via ``allow_truncated``), and files
that begin mid-stream after rotation (headers repeat per file, so this is
detected and rejected instead of being misread).

Performance: data rows are >95 % of every file, so they take a fast path —
the line is split only around type and device, arity is checked with one
C-level ``str.count``, and the integer conversion plus value validation is
batched per record type into a single numpy ``str -> uint64`` cast at end
of file (~5x fewer Python-level operations per row than converting each
row eagerly).  Structural errors (unknown type, wrong arity, duplicate
device) are still detected inline at their line; a malformed *value* is
attributed to its line during the batch cast, which runs before the parse
returns, so nothing malformed ever escapes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.tacc_stats.schema import TypeSchema
from repro.tacc_stats.types import HostData, Mark, TimestampBlock
from repro.telemetry.metrics import get_registry

__all__ = ["ParseError", "ParseFault", "parse_host_text"]

#: Longest offending-line excerpt kept in a :class:`ParseFault`.
_FAULT_EXCERPT = 200

_LINENO_RE = re.compile(r"line (\d+):")


class ParseError(Exception):
    """Malformed TACC_Stats input; message carries the line number."""

    @property
    def lineno(self) -> int | None:
        """The 1-based line number from the message, if it carries one."""
        m = _LINENO_RE.match(str(self))
        return int(m.group(1)) if m else None


@dataclass(frozen=True)
class ParseFault:
    """One malformed line skipped by a repair-mode parse.

    The parser knows nothing about hosts or files; callers attach that
    provenance when they promote faults to quarantine records.
    """

    lineno: int
    error: str
    text: str

    @classmethod
    def from_error(cls, lineno: int, exc: Exception, line: str) -> "ParseFault":
        """Build a fault from the exception raised at *line*."""
        return cls(lineno=lineno, error=str(exc),
                   text=line[:_FAULT_EXCERPT])


class _PendingRows:
    """Per-type accumulator for the batched value conversion.

    Each data row contributes its raw value substring plus enough context
    (its device slot in the block and its line number) to place the
    converted vector and to attribute conversion failures to their line.
    """

    def __init__(self, type_name: str, n_values: int):
        self.type_name = type_name
        self.n_values = n_values
        self.rests: list[str] = []
        self.targets: list[tuple[dict, str, int]] = []

    def flush(self, faults: list[ParseFault] | None = None) -> None:
        """Convert all accumulated rows and install them in their blocks.

        With a *faults* sink (repair mode), a failed batch cast falls
        back to row-by-row conversion: bad rows are recorded and their
        placeholders removed instead of raising.
        """
        if not self.rests:
            return
        flat = " ".join(self.rests).split(" ")
        try:
            arr = np.array(flat, dtype=np.uint64)
        except (ValueError, OverflowError):
            if faults is None:
                self._raise_offender()
            self._flush_rowwise(faults)
            return
        matrix = arr.reshape(len(self.rests), self.n_values)
        for (by_dev, device, _lineno), row in zip(self.targets, matrix):
            by_dev[device] = row
        self.rests.clear()
        self.targets.clear()

    def _flush_rowwise(self, faults: list[ParseFault]) -> None:
        """Repair-mode fallback: convert each row, quarantining bad ones."""
        for rest, (by_dev, device, lineno) in zip(self.rests, self.targets):
            try:
                by_dev[device] = np.array(rest.split(" "), dtype=np.uint64)
            except (ValueError, OverflowError):
                del by_dev[device]  # remove the placeholder
                faults.append(ParseFault(
                    lineno=lineno,
                    error=f"line {lineno}: non-integer value in row",
                    text=f"{self.type_name} ... {rest[:_FAULT_EXCERPT]}",
                ))
        self.rests.clear()
        self.targets.clear()

    def _raise_offender(self) -> None:
        """Batch cast failed: rescan row by row for the exact line."""
        for rest, (_by_dev, _device, lineno) in zip(self.rests, self.targets):
            try:
                np.array(rest.split(" "), dtype=np.uint64)
            except (ValueError, OverflowError):
                raise ParseError(
                    f"line {lineno}: non-integer value in row"
                ) from None
        raise ParseError(  # pragma: no cover - flush only fails per-row
            f"non-integer value in a {self.type_name} row"
        )


def _bad_row_error(lineno: int, type_name: str, rest: str,
                   n_values: int) -> ParseError:
    """Diagnose a data row whose value region failed the arity check."""
    tokens = rest.split()
    if len(tokens) != n_values:
        return ParseError(
            f"line {lineno}: {type_name} row has "
            f"{len(tokens)} values, schema {n_values}"
        )
    return ParseError(f"line {lineno}: malformed spacing in row")


def parse_host_text(text: str, allow_truncated: bool = False,
                    faults: list[ParseFault] | None = None) -> HostData:
    """Parse one host file's contents.

    Parameters
    ----------
    text:
        The full file contents.
    allow_truncated:
        If True, a final line without a newline terminator that fails to
        parse is dropped (crash-consistent read); any *earlier* bad line
        still raises.
    faults:
        When a list is supplied, the parser runs in *repair* mode: each
        malformed line is skipped and recorded as a :class:`ParseFault`
        instead of raising.  A skipped timestamp line poisons its block —
        the rows that belonged to it are quarantined rather than being
        misattributed to the previous timestamp.  Streams that cannot be
        salvaged at all (no ``$hostname`` header) still raise.
    """
    faults_before = len(faults) if faults is not None else 0
    lines = text.split("\n")
    # Trailing '' from terminal newline is normal; a non-empty last element
    # means the file was truncated mid-line.
    truncated_tail = None
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        truncated_tail = len(lines)  # index+1 of the suspect line

    host = HostData(hostname="")
    block: TimestampBlock | None = None
    header_done = False
    pending: dict[str, _PendingRows] = {}
    #: type -> (n_values, rests.append, targets.append): the per-row fast
    #: path touches only bound methods, no attribute lookups.
    row_sinks: dict[str, tuple[int, object, object]] = {}

    for lineno, line in enumerate(lines, 1):
        try:
            if not line:
                raise ParseError(f"line {lineno}: blank line")
            c = line[0]
            if c.isdigit():
                parts = line.split()
                if len(parts) != 2:
                    raise ParseError(
                        f"line {lineno}: timestamp line needs 2 tokens"
                    )
                if not host.hostname:
                    raise ParseError(
                        f"line {lineno}: data before $hostname header"
                    )
                header_done = True
                try:
                    t = float(parts[0])
                except ValueError as e:
                    raise ParseError(f"line {lineno}: bad timestamp") from e
                if block is not None and t < block.time:
                    raise ParseError(
                        f"line {lineno}: non-monotonic timestamp {t}"
                    )
                jobids = () if parts[1] == "-" else tuple(parts[1].split(","))
                block = TimestampBlock(time=t, jobids=jobids)
                host.blocks.append(block)
            elif c == "$":
                if header_done:
                    raise ParseError(
                        f"line {lineno}: property line after data began"
                    )
                sp = line.find(" ")
                if sp <= 1:
                    raise ParseError(f"line {lineno}: malformed property")
                key, value = line[1:sp], line[sp + 1:]
                host.properties[key] = value
                if key == "hostname":
                    host.hostname = value
            elif c == "!":
                if header_done:
                    raise ParseError(
                        f"line {lineno}: schema line after data began"
                    )
                try:
                    schema = TypeSchema.parse_header_line(line)
                except ValueError as e:
                    raise ParseError(f"line {lineno}: {e}") from e
                if schema.type_name in host.schemas:
                    raise ParseError(
                        f"line {lineno}: duplicate schema {schema.type_name}"
                    )
                host.schemas[schema.type_name] = schema
                rows = _PendingRows(schema.type_name, schema.n_values)
                pending[schema.type_name] = rows
                row_sinks[schema.type_name] = (
                    schema.n_values, rows.rests.append, rows.targets.append
                )
            elif c == "%":
                if block is None:
                    raise ParseError(f"line {lineno}: mark before any block")
                parts = line[1:].split()
                if len(parts) != 2 or parts[0] not in ("begin", "end"):
                    raise ParseError(f"line {lineno}: malformed mark {line!r}")
                host.marks.append(Mark(time=block.time, kind=parts[0],
                                       jobid=parts[1]))
            else:
                # Data row: "type device v1 v2 ..." — the fast path.
                if block is None:
                    raise ParseError(f"line {lineno}: data row before block")
                head = line.split(" ", 2)
                if len(head) != 3 or not head[2]:
                    raise ParseError(f"line {lineno}: short data row")
                type_name, device, rest = head
                sink = row_sinks.get(type_name)
                if sink is None:
                    raise ParseError(
                        f"line {lineno}: row for undeclared type {type_name!r}"
                    )
                n_values, append_rest, append_target = sink
                if rest.count(" ") + 1 != n_values:
                    raise _bad_row_error(lineno, type_name, rest, n_values)
                by_dev = block.rows.get(type_name)
                if by_dev is None:
                    by_dev = block.rows[type_name] = {}
                elif device in by_dev:
                    raise ParseError(
                        f"line {lineno}: duplicate row {type_name}/{device} "
                        f"at t={block.time}"
                    )
                if lineno != truncated_tail:
                    by_dev[device] = None  # placeholder until the batch cast
                    append_rest(rest)
                    append_target((by_dev, device, lineno))
                else:
                    # The unterminated final line cannot join the batch
                    # cast: its conversion failure must be attributable
                    # here so allow_truncated can drop exactly this line.
                    try:
                        by_dev[device] = np.array(rest.split(" "),
                                                  dtype=np.uint64)
                    except (ValueError, OverflowError):
                        raise ParseError(
                            f"line {lineno}: non-integer value in row"
                        ) from None
        except ParseError as exc:
            if allow_truncated and truncated_tail == lineno:
                # Crash-consistent read: drop exactly the unterminated
                # final line, in every mode.
                break
            if faults is None:
                raise
            faults.append(ParseFault.from_error(lineno, exc, line))
            if line[:1].isdigit() or line.count(" ") < 2:
                # The faulted line may be a mangled timestamp line
                # (digit-leading, or two-token like every timestamp
                # line): poison the block so its rows fault instead of
                # silently attaching to the previous timestamp.
                block = None

    for rows in pending.values():
        rows.flush(faults)

    # A block whose tail was dropped is still usable; summaries handle
    # missing rows per device.
    if not host.hostname and (host.blocks or host.schemas):
        raise ParseError("stream has data but no $hostname header")

    # Bulk telemetry at end of parse — never per line, so the counters
    # stay off the row fast path entirely.
    registry = get_registry()
    registry.counter("parse.files").inc()
    registry.counter("parse.bytes").inc(len(text))
    registry.counter("parse.lines").inc(len(lines))
    registry.counter("parse.blocks").inc(len(host.blocks))
    if faults is not None:
        registry.counter("parse.faults").inc(len(faults) - faults_before)
    return host


def event_delta(first: int, last: int, width: int) -> int:
    """Counter delta with single-rollover correction.

    Counters are monotonic modulo ``2**width``; a smaller ``last`` means
    the register wrapped exactly once between the two reads (the 10-minute
    cadence makes multiple wraps of a >=32-bit counter impossible at
    realistic rates, which the collectors' tests enforce).
    """
    first, last = int(first), int(last)
    mod = 1 << width
    if not (0 <= first < mod and 0 <= last < mod):
        raise ValueError(f"counter value out of range for width {width}")
    if last >= first:
        return last - first
    return last + mod - first
