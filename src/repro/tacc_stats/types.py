"""Parsed representations of TACC_Stats host data.

A host file parses into one :class:`HostData`: header properties, the
schema dictionary, an ordered list of :class:`TimestampBlock` (one per
collector invocation) and the job begin/end :class:`Mark` lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tacc_stats.schema import TypeSchema

__all__ = ["Mark", "TimestampBlock", "HostData"]


@dataclass(frozen=True)
class Mark:
    """A ``%begin jobid`` / ``%end jobid`` marker."""

    time: float
    kind: str  # "begin" | "end"
    jobid: str

    def __post_init__(self):
        if self.kind not in ("begin", "end"):
            raise ValueError(f"bad mark kind {self.kind!r}")


@dataclass
class TimestampBlock:
    """All records emitted at one collector invocation on one host.

    ``rows`` maps record type -> device -> integer value vector (in schema
    column order).
    """

    time: float
    jobids: tuple[str, ...]
    rows: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    def add_row(self, type_name: str, device: str, values: np.ndarray) -> None:
        by_dev = self.rows.setdefault(type_name, {})
        if device in by_dev:
            raise ValueError(
                f"duplicate row {type_name}/{device} at t={self.time}"
            )
        by_dev[device] = values

    def get(self, type_name: str, device: str) -> np.ndarray:
        return self.rows[type_name][device]


@dataclass
class HostData:
    """One host's parsed stats stream."""

    hostname: str
    properties: dict[str, str] = field(default_factory=dict)
    schemas: dict[str, TypeSchema] = field(default_factory=dict)
    blocks: list[TimestampBlock] = field(default_factory=list)
    marks: list[Mark] = field(default_factory=list)

    def blocks_for_job(self, jobid: str) -> list[TimestampBlock]:
        """Blocks tagged with *jobid*, in time order."""
        return [b for b in self.blocks if jobid in b.jobids]

    def job_window(self, jobid: str) -> tuple[float, float] | None:
        """(begin, end) times from the job marks, or None if unmatched."""
        begin = end = None
        for m in self.marks:
            if m.jobid != jobid:
                continue
            if m.kind == "begin" and begin is None:
                begin = m.time
            elif m.kind == "end":
                end = m.time
        if begin is None or end is None:
            return None
        return (begin, end)

    def series(self, type_name: str, device: str, key: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) of one column across all blocks that carry it."""
        schema = self.schemas[type_name]
        col = schema.index_of(key)
        times, vals = [], []
        for b in self.blocks:
            dev = b.rows.get(type_name, {})
            if device in dev:
                times.append(b.time)
                vals.append(dev[device][col])
        return np.asarray(times, dtype=float), np.asarray(vals, dtype=np.uint64)

    def merge_from(self, other: "HostData") -> None:
        """Append another chunk of the same host (file rotation)."""
        if other.hostname != self.hostname:
            raise ValueError(
                f"cannot merge {other.hostname} into {self.hostname}"
            )
        for name, schema in other.schemas.items():
            if name in self.schemas and self.schemas[name] != schema:
                raise ValueError(f"schema drift for type {name} on {self.hostname}")
            self.schemas.setdefault(name, schema)
        self.blocks.extend(other.blocks)
        self.marks.extend(other.marks)
        self.blocks.sort(key=lambda b: b.time)
        self.marks.sort(key=lambda m: m.time)
