"""Vectorized per-node synthesis engine (the daemon's fast path).

:class:`NodeSynth` replaces :class:`~repro.tacc_stats.daemon.TaccStatsDaemon`
for replay: instead of emitting one text block per invocation, it queues
the invocation metadata (time, dt, prevailing rates source, job tags,
marks) and, at each job-begin boundary — the only point where collector
state is reprogrammed — materializes the whole pending run as one
:class:`~repro.tacc_stats.collectors.base.BlockContext` and calls every
collector's batched ``sample_block`` kernel once.  The resulting
``[T, devices, values]`` uint64 arrays are rendered to text in bulk and,
for v2 archives, handed to
:func:`~repro.tacc_stats.columnar.encode_host_blocks` directly so the
archive never re-parses text it just rendered.

Byte-identity with the scalar daemon is a hard contract, not an
approximation: collectors draw from per-collector RNG streams keyed by
``(seed, node, collector)``, every kernel consumes its stream in scalar
draw order and preserves the scalar float association, and the rendered
text / v2 bytes are covered by property tests that diff the two paths'
archives end to end.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.node import Node
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.collectors import Collector, build_collectors
from repro.tacc_stats.collectors.base import BlockContext
from repro.tacc_stats.columnar import encode_host_blocks
from repro.tacc_stats.format import StatsWriter
from repro.telemetry.metrics import get_registry
from repro.workload.applications import RATE_FIELDS
from repro.workload.behavior import JobBehavior

__all__ = ["NodeSynth"]


class _Pending:
    """One queued collector invocation awaiting its block flush."""

    __slots__ = ("t", "dt", "jobids", "mark", "rate_src")

    def __init__(self, t: float, dt: float, jobids: tuple[str, ...],
                 mark: tuple[str, str] | None,
                 rate_src: tuple[JobBehavior, int, float] | None):
        self.t = t
        self.dt = dt
        self.jobids = jobids
        self.mark = mark
        #: (behavior, node_slot, elapsed) the interval's rates come
        #: from, or None for an idle interval.
        self.rate_src = rate_src


class _V2Accum:
    """Per-open-file accumulation of synthesized v2 columns."""

    __slots__ = ("writer", "times", "tags", "marks", "values")

    def __init__(self, writer: StatsWriter, n_collectors: int):
        self.writer = writer
        self.times: list[float] = []
        self.tags: list[str] = []
        self.marks: list[tuple[int, str, str]] = []
        self.values: list[list[np.ndarray]] = [
            [] for _ in range(n_collectors)
        ]


class NodeSynth:
    """One node's batched collector suite, API-compatible with the
    daemon's job lifecycle (``begin_job`` / ``end_job`` / ``sample``)
    plus an explicit :meth:`flush` the driver calls once its event
    stream (or micro-batch) is exhausted.

    Writes go straight to a :class:`HostArchive` — rotation, schema
    re-registration on fresh files, and (for v2 archives) direct column
    encoding are all handled here.
    """

    def __init__(
        self,
        node: Node,
        rng: np.random.Generator | Callable[[str], np.random.Generator],
        archive: HostArchive,
        lustre_mounts: tuple[str, ...] = ("scratch", "work", "share"),
        nfs_mounts: tuple[str, ...] = (),
    ):
        self.node = node
        self.collectors: list[Collector] = build_collectors(
            node, rng, lustre_mounts, nfs_mounts
        )
        self.archive = archive
        self._last_time: float | None = None
        # (jobid, behavior, node_slot, job_start) of the current job.
        self._job: tuple[str, JobBehavior, int, float] | None = None
        self.samples_taken = 0
        self._pending: list[_Pending] = []
        self._v2 = archive.archive_format == "v2"
        #: id(writer) -> accumulated columns; the accum holds a strong
        #: reference to its writer (checked with ``is``) so a recycled
        #: id can never alias a rotated-away file.
        self._accums: dict[int, _V2Accum] = {}
        if self._v2:
            archive.set_v2_encoder(node.hostname, self._encode_v2)
        get_registry().counter("synth.nodes").inc()

    # -- job lifecycle (daemon-compatible) ----------------------------------

    def begin_job(self, jobid: str, t: float, behavior: JobBehavior,
                  node_slot: int) -> None:
        """Job launches: flush the pending block, reprogram PMCs, queue
        the baseline sample."""
        if self._job is not None:
            raise RuntimeError(
                f"{self.node.hostname}: job {self._job[0]} still active"
            )
        # PMC reprogramming changes collector state, so the samples
        # queued so far must be materialized first — this is the block
        # boundary the kernels' "constant within a block" contract
        # relies on.
        self.flush()
        for c in self.collectors:
            c.on_job_begin(jobid, t)
        self._queue(t, jobids=(jobid,), mark=("begin", jobid))
        self._job = (jobid, behavior, node_slot, t)

    def end_job(self, jobid: str, t: float) -> None:
        """Job leaves this node: queue the final ``%end`` sample."""
        if self._job is None or self._job[0] != jobid:
            raise RuntimeError(
                f"{self.node.hostname}: end_job({jobid}) but current is "
                f"{self._job[0] if self._job else None}"
            )
        self._queue(t, jobids=(jobid,), mark=("end", jobid))
        for c in self.collectors:
            c.on_job_end(jobid, t)
        self._job = None

    def sample(self, t: float) -> None:
        """Periodic (cron) invocation."""
        jobids = (self._job[0],) if self._job else ()
        self._queue(t, jobids=jobids, mark=None)

    @property
    def current_jobid(self) -> str | None:
        return self._job[0] if self._job else None

    # -- queueing -----------------------------------------------------------

    def _queue(self, t: float, jobids: tuple[str, ...],
               mark: tuple[str, str] | None) -> None:
        if self._last_time is not None and t < self._last_time:
            raise ValueError(
                f"{self.node.hostname}: sample time moved backwards "
                f"({t} < {self._last_time})"
            )
        dt = 0.0 if self._last_time is None else t - self._last_time
        # A begin-mark sample accounts the *previous* interval (idle, or
        # a job that already emitted its end sample) — same rule as the
        # daemon's _interval_rates.
        if self._job is None:
            src = None
        else:
            _jobid, behavior, slot, start = self._job
            ref = self._last_time if self._last_time is not None else t
            src = (behavior, slot, max(ref - start, 0.0))
        self._pending.append(_Pending(t, dt, jobids, mark, src))
        self._last_time = t
        self.samples_taken += 1

    # -- block materialization ----------------------------------------------

    def flush(self) -> None:
        """Materialize every queued invocation through the batched
        kernels and write the rendered blocks to the archive."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        n = len(pending)

        times = np.array([p.t for p in pending], dtype=np.float64)
        dts = np.array([p.dt for p in pending], dtype=np.float64)
        idle = np.array([p.rate_src is None for p in pending], dtype=bool)
        rates = np.zeros((n, len(RATE_FIELDS)), dtype=np.float64)
        # Group job rows by their (behavior, slot) source — at most one
        # group per flush in practice (blocks are cut at job begins),
        # but grouping keeps this correct regardless.
        groups: dict[tuple[int, int], list[int]] = {}
        for i, p in enumerate(pending):
            if p.rate_src is not None:
                behavior, slot, _ = p.rate_src
                groups.setdefault((id(behavior), slot), []).append(i)
        for rows in groups.values():
            behavior, slot, _ = pending[rows[0]].rate_src
            elapsed = np.array([pending[i].rate_src[2] for i in rows])
            steps = behavior.steps_of(elapsed)
            rates[rows] = behavior.node_rates_block(steps, slot)

        block = BlockContext(
            times=times, dts=dts, rates=rates, idle=idle,
            jobids=tuple(p.jobids for p in pending),
        )
        vals_by_collector = [c.sample_block(block) for c in self.collectors]

        # Render every (collector, device) row stream to text lines in
        # bulk: uint64 .tolist() yields Python ints whose str() matches
        # the scalar writer's str(int(v)) exactly.
        line_lists: list[list[str]] = []
        n_rows = 0
        for c, vals in zip(self.collectors, vals_by_collector):
            for d, dev in enumerate(c.devices):
                prefix = f"{c.type_name} {dev} "
                line_lists.append([
                    prefix + " ".join(map(str, row)) + "\n"
                    for row in vals[:, d, :].tolist()
                ])
            n_rows += n * len(c.devices)

        self._write_runs(pending, line_lists, vals_by_collector)

        registry = get_registry()
        registry.counter("synth.chunks").inc()
        registry.counter("synth.samples").inc(n)
        registry.counter("synth.rows").inc(n_rows)

    def _write_runs(self, pending: list[_Pending],
                    line_lists: list[list[str]],
                    vals_by_collector: list[np.ndarray]) -> None:
        """Write the flushed block to the archive, splitting the run at
        rotation-segment boundaries (each segment is its own file)."""
        rot = self.archive.rotate_seconds
        hostname = self.node.hostname
        n = len(pending)
        i0 = 0
        while i0 < n:
            seg = int(pending[i0].t // rot)
            i1 = i0 + 1
            while i1 < n and int(pending[i1].t // rot) == seg:
                i1 += 1
            w = self.archive.writer(hostname, pending[i0].t)
            # Rotation starts a fresh file with its own header — same
            # re-registration rule as the daemon's _writer_at.
            if self.collectors[0].schema.type_name not in w.schemas:
                for c in self.collectors:
                    w.register_schema(c.schema)
            parts: list[str] = []
            tags: list[str] = []
            for i in range(i0, i1):
                p = pending[i]
                tag = ",".join(p.jobids) if p.jobids else "-"
                tags.append(tag)
                parts.append(f"{int(p.t)} {tag}\n")
                if p.mark is not None:
                    parts.append(f"%{p.mark[0]} {p.mark[1]}\n")
                for lines in line_lists:
                    parts.append(lines[i])
            w.append_rendered(pending[i0].t, pending[i1 - 1].t,
                              "".join(parts))
            if self._v2:
                self._accumulate_v2(w, pending, tags, i0, i1,
                                    vals_by_collector)
            i0 = i1

    # -- direct v2 encoding --------------------------------------------------

    def _accumulate_v2(self, w: StatsWriter, pending: list[_Pending],
                       tags: list[str], i0: int, i1: int,
                       vals_by_collector: list[np.ndarray]) -> None:
        accum = self._accums.get(id(w))
        if accum is None or accum.writer is not w:
            accum = self._accums[id(w)] = _V2Accum(
                w, len(self.collectors))
        base = len(accum.times)
        for off, i in enumerate(range(i0, i1)):
            p = pending[i]
            # begin_block serializes int(t), so the re-parsed text path
            # would store float(int(t)) — match it exactly.
            accum.times.append(float(int(p.t)))
            accum.tags.append(tags[off])
            if p.mark is not None:
                accum.marks.append((base + off, p.mark[0], p.mark[1]))
        for ci, vals in enumerate(vals_by_collector):
            accum.values[ci].append(vals[i0:i1])

    def _encode_v2(self, writer: StatsWriter, text: str,
                   source_sha256: str, source_kind: str) -> bytes | None:
        """Archive close callback: encode this file's accumulated
        columns; None (fall back to text re-parse) when the file was
        not produced by this engine."""
        accum = self._accums.pop(id(writer), None)
        if accum is None or accum.writer is not writer or not accum.times:
            return None
        values = [
            chunks[0] if len(chunks) == 1
            else np.concatenate(chunks, axis=0)
            for chunks in accum.values
        ]
        return encode_host_blocks(
            text,
            hostname=writer.hostname,
            properties=writer.properties,
            schemas=[c.schema for c in self.collectors],
            devices_by_type=[c.devices for c in self.collectors],
            times=np.array(accum.times, dtype=np.float64),
            tags=accum.tags,
            marks=accum.marks,
            values_by_type=values,
            source_sha256=source_sha256,
            source_kind=source_kind,
        )
