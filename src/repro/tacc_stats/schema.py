"""Self-describing schemas for TACC_Stats record types.

Each record type (``cpu``, ``mem``, ``ib``, ...) declares its keys once in
the file header as a ``!type`` line, e.g.::

    !cpu user,E,U=cs nice,E,U=cs system,E,U=cs idle,E,U=cs iowait,E,U=cs

Flags follow the original tool's convention: ``E`` marks an *event*
(cumulative counter that only increases, modulo register rollover), ``W=n``
gives the counter width in bits (rollover modulus ``2**n``), and ``U=x``
records the unit.  Keys without ``E`` are gauges.  The parser rebuilds the
schema purely from these lines — the format is self-describing, so readers
never hard-code layouts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SchemaEntry", "TypeSchema"]


@dataclass(frozen=True)
class SchemaEntry:
    """One column of a record type."""

    key: str
    is_event: bool = False
    unit: str | None = None
    width: int = 64

    def __post_init__(self):
        if not self.key or any(c in self.key for c in " ,!%$"):
            raise ValueError(f"bad schema key {self.key!r}")
        if not 1 <= self.width <= 64:
            raise ValueError(f"bad counter width {self.width}")

    @property
    def modulus(self) -> int:
        """Rollover modulus of the underlying register."""
        return 1 << self.width

    def spec(self) -> str:
        """Render as a ``key[,E][,W=n][,U=x]`` token."""
        parts = [self.key]
        if self.is_event:
            parts.append("E")
        if self.width != 64:
            parts.append(f"W={self.width}")
        if self.unit:
            parts.append(f"U={self.unit}")
        return ",".join(parts)

    @classmethod
    def parse(cls, token: str) -> "SchemaEntry":
        """Inverse of :meth:`spec`; raises ValueError on malformed tokens."""
        parts = token.split(",")
        if not parts or not parts[0]:
            raise ValueError(f"empty schema token {token!r}")
        key = parts[0]
        is_event = False
        unit: str | None = None
        width = 64
        for p in parts[1:]:
            if p == "E":
                is_event = True
            elif p.startswith("W="):
                width = int(p[2:])
            elif p.startswith("U="):
                unit = p[2:]
            else:
                raise ValueError(f"unknown schema flag {p!r} in {token!r}")
        return cls(key=key, is_event=is_event, unit=unit, width=width)


@dataclass(frozen=True)
class TypeSchema:
    """Schema of one record type: a name plus ordered entries.

    Column lookups (:meth:`index_of`, :meth:`column`) are O(1): the key
    index is built once at construction.  The memo is deliberately not a
    dataclass field so equality/hashing still compare only the declared
    schema (``type_name`` + ``entries``).
    """

    type_name: str
    entries: tuple[SchemaEntry, ...]

    def __post_init__(self):
        if not self.type_name or not self.type_name.isidentifier():
            raise ValueError(f"bad type name {self.type_name!r}")
        if not self.entries:
            raise ValueError(f"type {self.type_name}: no entries")
        keys = [e.key for e in self.entries]
        if len(set(keys)) != len(keys):
            raise ValueError(f"type {self.type_name}: duplicate keys")
        object.__setattr__(
            self, "_index", {e.key: i for i, e in enumerate(self.entries)}
        )

    @property
    def n_values(self) -> int:
        return len(self.entries)

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(e.key for e in self.entries)

    def index_of(self, key: str) -> int:
        """Column position of *key*; raises KeyError for unknown keys."""
        try:
            return self._index[key]
        except KeyError:
            raise KeyError(
                f"type {self.type_name} has no key {key!r}"
            ) from None

    def column(self, key: str) -> tuple[int, int]:
        """(column position, counter width) of *key* in one lookup."""
        col = self.index_of(key)
        return col, self.entries[col].width

    def header_line(self) -> str:
        """The ``!type spec spec ...`` header line."""
        return f"!{self.type_name} " + " ".join(e.spec() for e in self.entries)

    @classmethod
    def parse_header_line(cls, line: str) -> "TypeSchema":
        """Parse a ``!type ...`` line (leading ``!`` required)."""
        if not line.startswith("!"):
            raise ValueError(f"schema line must start with '!': {line!r}")
        parts = line[1:].split()
        if len(parts) < 2:
            raise ValueError(f"schema line needs a type and >=1 key: {line!r}")
        return cls(
            type_name=parts[0],
            entries=tuple(SchemaEntry.parse(t) for t in parts[1:]),
        )

    def event_mask(self) -> tuple[bool, ...]:
        """Per-column booleans: True where the column is a counter."""
        return tuple(e.is_event for e in self.entries)
