"""``ps`` collector: scheduler/process statistics (as from
``/proc/loadavg`` and ``/proc/stat``): load averages (scaled ×100 to stay
integral), runnable/thread counts, and the cumulative fork counter."""

from __future__ import annotations

from repro.tacc_stats.collectors.base import Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["PsCollector"]


class PsCollector(Collector):
    """load_1/load_5/load_15 (x100), nr_running, nr_threads, processes."""

    def __init__(self, node, rng):
        super().__init__(node, rng)
        self._load5 = 0.0
        self._load15 = 0.0

    @property
    def type_name(self) -> str:
        return "ps"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "ps",
            (
                SchemaEntry("load_1", unit="x100"),
                SchemaEntry("load_5", unit="x100"),
                SchemaEntry("load_15", unit="x100"),
                SchemaEntry("nr_running"),
                SchemaEntry("nr_threads"),
                SchemaEntry("processes", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        cores = self.node.hardware.cores
        busy = ctx.rate("cpu_user_frac") + ctx.rate("cpu_sys_frac", 0.002)
        load1 = busy * cores * float(self.rng.lognormal(0.0, 0.05))
        # Exponential smoothing stands in for the kernel's 5/15-min decay.
        alpha5 = min(1.0, ctx.dt / 300.0) if ctx.dt > 0 else 1.0
        alpha15 = min(1.0, ctx.dt / 900.0) if ctx.dt > 0 else 1.0
        self._load5 += alpha5 * (load1 - self._load5)
        self._load15 += alpha15 * (load1 - self._load15)
        running = max(1.0, round(busy * cores))
        self.set_gauge("-", "load_1", load1 * 100)
        self.set_gauge("-", "load_5", self._load5 * 100)
        self.set_gauge("-", "load_15", self._load15 * 100)
        self.set_gauge("-", "nr_running", running)
        self.set_gauge("-", "nr_threads", 120 + running * 2)
        self.bump("-", "processes", 0.05 * max(ctx.dt, 0.0))
