"""``ps`` collector: scheduler/process statistics (as from
``/proc/loadavg`` and ``/proc/stat``): load averages (scaled ×100 to stay
integral), runnable/thread counts, and the cumulative fork counter."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["PsCollector"]


class PsCollector(Collector):
    """load_1/load_5/load_15 (x100), nr_running, nr_threads, processes."""

    def __init__(self, node, rng):
        super().__init__(node, rng)
        self._load5 = 0.0
        self._load15 = 0.0

    @property
    def type_name(self) -> str:
        return "ps"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "ps",
            (
                SchemaEntry("load_1", unit="x100"),
                SchemaEntry("load_5", unit="x100"),
                SchemaEntry("load_15", unit="x100"),
                SchemaEntry("nr_running"),
                SchemaEntry("nr_threads"),
                SchemaEntry("processes", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        cores = self.node.hardware.cores
        busy = ctx.rate("cpu_user_frac") + ctx.rate("cpu_sys_frac", 0.002)
        load1 = busy * cores * float(self.rng.lognormal(0.0, 0.05))
        # Exponential smoothing stands in for the kernel's 5/15-min decay.
        alpha5 = min(1.0, ctx.dt / 300.0) if ctx.dt > 0 else 1.0
        alpha15 = min(1.0, ctx.dt / 900.0) if ctx.dt > 0 else 1.0
        self._load5 += alpha5 * (load1 - self._load5)
        self._load15 += alpha15 * (load1 - self._load15)
        running = max(1.0, round(busy * cores))
        self.set_gauge("-", "load_1", load1 * 100)
        self.set_gauge("-", "load_5", self._load5 * 100)
        self.set_gauge("-", "load_15", self._load15 * 100)
        self.set_gauge("-", "nr_running", running)
        self.set_gauge("-", "nr_threads", 120 + running * 2)
        self.bump("-", "processes", 0.05 * max(ctx.dt, 0.0))

    def sample_block(self, block: BlockContext) -> np.ndarray:
        cores = self.node.hardware.cores
        dt = np.asarray(block.dts, dtype=np.float64)
        busy = block.rate("cpu_user_frac") + block.rate("cpu_sys_frac", 0.002)
        # One unconditional jitter draw per sample, like the scalar path.
        load1 = busy * cores * self.rng.lognormal(0.0, 0.05, size=block.n)
        a5 = np.where(dt > 0, np.minimum(1.0, dt / 300.0), 1.0)
        a15 = np.where(dt > 0, np.minimum(1.0, dt / 900.0), 1.0)
        # The smoothing recurrence is inherently sequential; T is small
        # (samples per chunk), so a scalar loop costs nothing next to the
        # kernels above.
        l5 = np.empty(block.n)
        l15 = np.empty(block.n)
        x5, x15 = self._load5, self._load15
        for i in range(block.n):
            x5 += float(a5[i]) * (float(load1[i]) - x5)
            x15 += float(a15[i]) * (float(load1[i]) - x15)
            l5[i] = x5
            l15[i] = x15
        self._load5, self._load15 = x5, x15
        running = np.maximum(1.0, np.round(busy * cores))
        vals = np.empty((block.n, 1, self._schema.n_values))
        vals[:, 0, 0] = np.maximum(load1 * 100, 0.0)
        vals[:, 0, 1] = np.maximum(l5 * 100, 0.0)
        vals[:, 0, 2] = np.maximum(l15 * 100, 0.0)
        vals[:, 0, 3] = running
        vals[:, 0, 4] = 120 + running * 2
        proc_carry = float(self._acc["-"][5])
        vals[:, 0, 5] = np.cumsum(
            np.concatenate([[proc_carry], 0.05 * np.maximum(dt, 0.0)]))[1:]
        if block.n:
            self._store_carry(vals[-1])
        return self.wrap_block(vals)
