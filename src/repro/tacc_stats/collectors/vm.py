"""``vm`` collector: virtual-memory activity (as from ``/proc/vmstat``),
cumulative event counts for the whole node."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["VmCollector"]

_PAGE_KB = 4.0


class VmCollector(Collector):
    """pgpgin/pgpgout (KB paged), pswpin/pswpout (pages swapped),
    pgfault/pgmajfault."""

    @property
    def type_name(self) -> str:
        return "vm"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "vm",
            (
                SchemaEntry("pgpgin", is_event=True, unit="KB"),
                SchemaEntry("pgpgout", is_event=True, unit="KB"),
                SchemaEntry("pswpin", is_event=True),
                SchemaEntry("pswpout", is_event=True),
                SchemaEntry("pgfault", is_event=True),
                SchemaEntry("pgmajfault", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        read_mb = (
            ctx.rate("io_scratch_read_mb") + ctx.rate("io_work_read_mb")
            + ctx.rate("io_share_read_mb") + ctx.rate("block_mb") * 0.5
        )
        write_mb = (
            ctx.rate("io_scratch_write_mb") + ctx.rate("io_work_write_mb")
            + ctx.rate("io_share_write_mb") + ctx.rate("block_mb") * 0.5
        )
        swap_mb = ctx.rate("swap_mb")
        # Fault rate tracks memory churn; a floor keeps idle nodes alive.
        fault_rate = 50.0 + 2000.0 * ctx.rate("cpu_user_frac", 0.0)
        self.bump("-", "pgpgin", self.noisy(read_mb * 1024.0 * dt))
        self.bump("-", "pgpgout", self.noisy(write_mb * 1024.0 * dt))
        self.bump("-", "pswpin", self.noisy(swap_mb * 1024.0 / _PAGE_KB * dt * 0.4))
        self.bump("-", "pswpout", self.noisy(swap_mb * 1024.0 / _PAGE_KB * dt * 0.6))
        self.bump("-", "pgfault", self.noisy(fault_rate * dt))
        self.bump("-", "pgmajfault", self.noisy(0.002 * fault_rate * dt))

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        read_mb = (
            block.rate("io_scratch_read_mb") + block.rate("io_work_read_mb")
            + block.rate("io_share_read_mb") + block.rate("block_mb") * 0.5
        )
        write_mb = (
            block.rate("io_scratch_write_mb") + block.rate("io_work_write_mb")
            + block.rate("io_share_write_mb") + block.rate("block_mb") * 0.5
        )
        swap_mb = block.rate("swap_mb")
        fault_rate = 50.0 + 2000.0 * block.rate("cpu_user_frac", 0.0)
        # Same per-sample draw order as the scalar loop; dt <= 0 rows
        # produce zero amounts, hence no draws.
        amounts = np.stack([
            read_mb * 1024.0 * dt,
            write_mb * 1024.0 * dt,
            swap_mb * 1024.0 / _PAGE_KB * dt * 0.4,
            swap_mb * 1024.0 / _PAGE_KB * dt * 0.6,
            fault_rate * dt,
            0.002 * fault_rate * dt,
        ], axis=-1)
        inc = self.noisy_block(amounts)[:, None, :]
        return self.wrap_block(self.accumulate_block(inc))
