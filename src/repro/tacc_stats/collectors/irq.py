"""``irq`` collector: hardware/software interrupt counts (as from
``/proc/interrupts`` aggregated per source)."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.workload.behavior import DerivedRates

__all__ = ["IrqCollector"]

_TIMER_HZ = 250.0  # CONFIG_HZ on the RHEL5-era kernels these systems ran
_IB_MTU = 2048.0
_ETH_MTU = 1500.0


class IrqCollector(Collector):
    """timer / eth / ib / block interrupt counters for the whole node."""

    @property
    def type_name(self) -> str:
        return "irq"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "irq",
            tuple(
                SchemaEntry(k, is_event=True)
                for k in ("timer", "eth", "ib", "block")
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        cores = self.node.hardware.cores
        self.bump("-", "timer", _TIMER_HZ * cores * dt)
        eth_mb = ctx.rate("net_eth_mb", 0.002)
        self.bump("-", "eth", self.noisy(eth_mb * 1e6 / _ETH_MTU * dt))
        if ctx.rates is None:
            ib_mb = 0.01
        else:
            ib_mb = float(
                DerivedRates.ib_tx_mb(ctx.rates) + DerivedRates.ib_rx_mb(ctx.rates)
            )
        # IB completions are coalesced ~8:1.
        self.bump("-", "ib", self.noisy(ib_mb * 1e6 / _IB_MTU / 8.0 * dt))
        block_mb = ctx.rate("block_mb", 0.005)
        self.bump("-", "block", self.noisy(block_mb * 1e6 / (64 * 1024) * dt))

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        cores = self.node.hardware.cores
        eth_mb = block.rate("net_eth_mb", 0.002)
        ib_mb = np.where(
            block.idle, 0.01,
            DerivedRates.ib_tx_mb(block.rates) + DerivedRates.ib_rx_mb(block.rates))
        block_mb = block.rate("block_mb", 0.005)
        # Per sample: eth, ib, block draws (timer is deterministic).
        amounts = np.stack([
            eth_mb * 1e6 / _ETH_MTU * dt,
            ib_mb * 1e6 / _IB_MTU / 8.0 * dt,
            block_mb * 1e6 / (64 * 1024) * dt,
        ], axis=-1)
        drawn = self.noisy_block(amounts)
        inc = np.empty((block.n, 1, self._schema.n_values))
        inc[:, 0, 0] = _TIMER_HZ * cores * dt
        inc[:, 0, 1:] = drawn
        return self.wrap_block(self.accumulate_block(inc))
