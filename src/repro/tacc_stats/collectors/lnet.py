"""``lnet`` collector: Lustre networking counters (as from
``/proc/sys/lnet/stats``).

The ``net_lnet_tx`` key metric comes from here.  lnet traffic is the
Lustre file traffic as seen on the wire (bulk RPCs plus protocol
overhead); it rides the InfiniBand fabric on both of the paper's systems.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.workload.behavior import DerivedRates

__all__ = ["LnetCollector"]

_MSG_BYTES = 1 << 20


class LnetCollector(Collector):
    """tx_bytes / rx_bytes / tx_msgs / rx_msgs for the node's lnet NI."""

    @property
    def type_name(self) -> str:
        return "lnet"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "lnet",
            (
                SchemaEntry("tx_bytes", is_event=True, unit="B"),
                SchemaEntry("rx_bytes", is_event=True, unit="B"),
                SchemaEntry("tx_msgs", is_event=True),
                SchemaEntry("rx_msgs", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        if ctx.rates is None:
            tx_mb = rx_mb = DerivedRates.LNET_FLOOR_MB
        else:
            tx_mb = float(DerivedRates.lnet_tx_mb(ctx.rates))
            rx_mb = float(DerivedRates.lnet_rx_mb(ctx.rates))
        tx_b = self.noisy(tx_mb * 1e6 * dt)
        rx_b = self.noisy(rx_mb * 1e6 * dt)
        self.bump("-", "tx_bytes", tx_b)
        self.bump("-", "rx_bytes", rx_b)
        self.bump("-", "tx_msgs", tx_b / _MSG_BYTES + 0.01 * dt)
        self.bump("-", "rx_msgs", rx_b / _MSG_BYTES + 0.01 * dt)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        floor = DerivedRates.LNET_FLOOR_MB
        tx_mb = np.where(block.idle, floor, DerivedRates.lnet_tx_mb(block.rates))
        rx_mb = np.where(block.idle, floor, DerivedRates.lnet_rx_mb(block.rates))
        # Per sample: tx then rx draws.
        amounts = np.stack([tx_mb * 1e6 * dt, rx_mb * 1e6 * dt], axis=-1)
        b = self.noisy_block(amounts)
        tx_b, rx_b = b[:, 0], b[:, 1]
        inc = np.empty((block.n, 1, self._schema.n_values))
        inc[:, 0, 0] = tx_b
        inc[:, 0, 1] = rx_b
        inc[:, 0, 2] = tx_b / _MSG_BYTES + 0.01 * dt
        inc[:, 0, 3] = rx_b / _MSG_BYTES + 0.01 * dt
        return self.wrap_block(self.accumulate_block(inc))
