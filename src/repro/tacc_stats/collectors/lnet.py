"""``lnet`` collector: Lustre networking counters (as from
``/proc/sys/lnet/stats``).

The ``net_lnet_tx`` key metric comes from here.  lnet traffic is the
Lustre file traffic as seen on the wire (bulk RPCs plus protocol
overhead); it rides the InfiniBand fabric on both of the paper's systems.
"""

from __future__ import annotations

from repro.tacc_stats.collectors.base import Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.workload.behavior import DerivedRates

__all__ = ["LnetCollector"]

_MSG_BYTES = 1 << 20


class LnetCollector(Collector):
    """tx_bytes / rx_bytes / tx_msgs / rx_msgs for the node's lnet NI."""

    @property
    def type_name(self) -> str:
        return "lnet"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "lnet",
            (
                SchemaEntry("tx_bytes", is_event=True, unit="B"),
                SchemaEntry("rx_bytes", is_event=True, unit="B"),
                SchemaEntry("tx_msgs", is_event=True),
                SchemaEntry("rx_msgs", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        if ctx.rates is None:
            tx_mb = rx_mb = DerivedRates.LNET_FLOOR_MB
        else:
            tx_mb = float(DerivedRates.lnet_tx_mb(ctx.rates))
            rx_mb = float(DerivedRates.lnet_rx_mb(ctx.rates))
        tx_b = self.noisy(tx_mb * 1e6 * dt)
        rx_b = self.noisy(rx_mb * 1e6 * dt)
        self.bump("-", "tx_bytes", tx_b)
        self.bump("-", "rx_bytes", rx_b)
        self.bump("-", "tx_msgs", tx_b / _MSG_BYTES + 0.01 * dt)
        self.bump("-", "rx_msgs", rx_b / _MSG_BYTES + 0.01 * dt)
