"""``vfs`` collector: dentry/file/inode cache usage (as from
``/proc/sys/fs/dentry-state``, ``file-nr``, ``inode-state``)."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["VfsCollector"]


class VfsCollector(Collector):
    """dentry_use / file_use / inode_use gauges."""

    @property
    def type_name(self) -> str:
        return "vfs"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "vfs",
            (
                SchemaEntry("dentry_use"),
                SchemaEntry("file_use"),
                SchemaEntry("inode_use"),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        base_dentry, base_file, base_inode = 25_000.0, 1_200.0, 20_000.0
        if ctx.rates is not None:
            # Metadata-heavy I/O grows the caches.
            io_mb = (
                ctx.rate("io_scratch_write_mb") + ctx.rate("io_scratch_read_mb")
                + ctx.rate("io_work_write_mb") + ctx.rate("io_work_read_mb")
            )
            cache_gb = ctx.rate("mem_cache_gb")
            base_dentry += 2_000.0 * io_mb + 5_000.0 * cache_gb
            base_file += 40.0 * io_mb + 16 * self.node.hardware.cores
            base_inode += 1_500.0 * io_mb + 4_000.0 * cache_gb
        jitter = float(self.rng.lognormal(0.0, 0.03))
        self.set_gauge("-", "dentry_use", base_dentry * jitter)
        self.set_gauge("-", "file_use", base_file * jitter)
        self.set_gauge("-", "inode_use", base_inode * jitter)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        io_mb = (
            block.rate("io_scratch_write_mb") + block.rate("io_scratch_read_mb")
            + block.rate("io_work_write_mb") + block.rate("io_work_read_mb")
        )
        cache_gb = block.rate("mem_cache_gb")
        cores = self.node.hardware.cores
        dentry = np.where(
            block.idle, 25_000.0,
            25_000.0 + (2_000.0 * io_mb + 5_000.0 * cache_gb))
        file = np.where(
            block.idle, 1_200.0,
            1_200.0 + (40.0 * io_mb + 16 * cores))
        inode = np.where(
            block.idle, 20_000.0,
            20_000.0 + (1_500.0 * io_mb + 4_000.0 * cache_gb))
        # One unconditional jitter draw per sample, like the scalar path.
        jitter = self.rng.lognormal(0.0, 0.03, size=block.n)
        vals = np.empty((block.n, 1, self._schema.n_values))
        vals[:, 0, 0] = dentry * jitter
        vals[:, 0, 1] = file * jitter
        vals[:, 0, 2] = inode * jitter
        if block.n:
            self._store_carry(vals[-1])
        return self.wrap_block(vals)
