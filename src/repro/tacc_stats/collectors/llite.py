"""``llite`` collector: Lustre client statistics per mount (as from
``/proc/fs/lustre/llite/*/stats``).

One device per Lustre filesystem (``scratch``, ``work``, ``share``); the
paper's ``io_scratch_write`` and ``io_work_write`` key metrics come from
the ``write_bytes`` column here.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["LliteCollector"]

_RPC_BYTES = 1 << 20  # typical 1 MB bulk RPC


class LliteCollector(Collector):
    """read_bytes / write_bytes / open / close / getattr per mount."""

    def __init__(self, node, rng, mounts: tuple[str, ...] = ("scratch", "work", "share")):
        if not mounts:
            raise ValueError("llite needs at least one mount")
        self._mounts = tuple(mounts)
        super().__init__(node, rng)

    @property
    def type_name(self) -> str:
        return "llite"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "llite",
            (
                SchemaEntry("read_bytes", is_event=True, unit="B"),
                SchemaEntry("write_bytes", is_event=True, unit="B"),
                SchemaEntry("open", is_event=True),
                SchemaEntry("close", is_event=True),
                SchemaEntry("getattr", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return self._mounts

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        for mount in self.devices:
            w = self.rate(ctx, f"io_{mount}_write_mb")
            r = self.rate(ctx, f"io_{mount}_read_mb")
            wb = self.noisy(w * 1e6 * dt)
            rb = self.noisy(r * 1e6 * dt)
            opens = (wb + rb) / (_RPC_BYTES * 64) + 0.002 * dt
            self.bump(mount, "write_bytes", wb)
            self.bump(mount, "read_bytes", rb)
            self.bump(mount, "open", opens)
            self.bump(mount, "close", opens)
            self.bump(mount, "getattr", opens * 5.0)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        n_m = len(self.devices)
        amounts = np.empty((block.n, n_m, 2))
        for m, mount in enumerate(self.devices):
            amounts[:, m, 0] = self.rate_block(block, f"io_{mount}_write_mb") * 1e6 * dt
            amounts[:, m, 1] = self.rate_block(block, f"io_{mount}_read_mb") * 1e6 * dt
        # Per sample, per mount: write then read draws.
        b = self.noisy_block(amounts)
        wb, rb = b[..., 0], b[..., 1]
        opens = (wb + rb) / (_RPC_BYTES * 64) + (0.002 * dt)[:, None]
        inc = np.empty((block.n, n_m, self._schema.n_values))
        inc[..., 0] = rb
        inc[..., 1] = wb
        inc[..., 2] = opens
        inc[..., 3] = opens
        inc[..., 4] = opens * 5.0
        return self.wrap_block(self.accumulate_block(inc))

    @staticmethod
    def rate(ctx: SampleContext, name: str) -> float:
        """Rate lookup tolerating mounts absent from the canonical vector
        (e.g. a site-specific Lustre mount with no workload signature)."""
        if ctx.rates is None:
            return 0.0
        try:
            return ctx.rate(name)
        except KeyError:
            return 0.0

    @staticmethod
    def rate_block(block: BlockContext, name: str) -> np.ndarray:
        """Block analogue of :meth:`rate` (zeros for unknown mounts)."""
        try:
            return block.rate(name, 0.0)
        except KeyError:
            return np.zeros(block.n)
