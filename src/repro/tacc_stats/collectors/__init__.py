"""TACC_Stats collectors, one module per record type (as in the original
tool's ``st_*.c`` sources).

:func:`build_collectors` assembles the per-architecture suite: all common
collectors plus ``amd64_pmc`` (Opteron) or ``intel_pmc`` (Nehalem/Westmere)
for the hardware performance counters.

Noise streams are keyed per collector: passing a *stream factory*
(``name -> Generator``) gives every collector its own named RNG stream,
which is what lets the vectorized ``sample_block`` kernels batch a whole
job segment's draws per collector without perturbing any other
collector's sequence.  Passing a plain :class:`numpy.random.Generator`
shares one cursor across the suite (the legacy behaviour, still used by
unit tests that drive a single collector directly).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.node import Node
from repro.tacc_stats.collectors.amd64_pmc import Amd64PmcCollector
from repro.tacc_stats.collectors.base import Collector, SampleContext
from repro.tacc_stats.collectors.block import BlockCollector
from repro.tacc_stats.collectors.cpu import CpuCollector
from repro.tacc_stats.collectors.ib import IbCollector
from repro.tacc_stats.collectors.intel_pmc import IntelPmcCollector
from repro.tacc_stats.collectors.irq import IrqCollector
from repro.tacc_stats.collectors.llite import LliteCollector
from repro.tacc_stats.collectors.lnet import LnetCollector
from repro.tacc_stats.collectors.mem import MemCollector
from repro.tacc_stats.collectors.net import NetCollector
from repro.tacc_stats.collectors.nfs import NfsCollector
from repro.tacc_stats.collectors.numa import NumaCollector
from repro.tacc_stats.collectors.ps import PsCollector
from repro.tacc_stats.collectors.sysv_shm import SysvShmCollector
from repro.tacc_stats.collectors.tmpfs import TmpfsCollector
from repro.tacc_stats.collectors.vfs import VfsCollector
from repro.tacc_stats.collectors.vm import VmCollector

__all__ = [
    "Collector",
    "SampleContext",
    "build_collectors",
    "CpuCollector",
    "MemCollector",
    "NumaCollector",
    "VmCollector",
    "TmpfsCollector",
    "NetCollector",
    "IbCollector",
    "LliteCollector",
    "LnetCollector",
    "NfsCollector",
    "BlockCollector",
    "PsCollector",
    "SysvShmCollector",
    "IrqCollector",
    "VfsCollector",
    "Amd64PmcCollector",
    "IntelPmcCollector",
]

_COMMON = (
    ("cpu", CpuCollector),
    ("mem", MemCollector),
    ("numa", NumaCollector),
    ("vm", VmCollector),
    ("tmpfs", TmpfsCollector),
    ("net", NetCollector),
    ("ib", IbCollector),
    ("llite", LliteCollector),
    ("lnet", LnetCollector),
    ("block", BlockCollector),
    ("ps", PsCollector),
    ("sysv_shm", SysvShmCollector),
    ("irq", IrqCollector),
    ("vfs", VfsCollector),
)

def build_collectors(
    node: Node,
    rng: np.random.Generator | Callable[[str], np.random.Generator],
    lustre_mounts: tuple[str, ...] = ("scratch", "work", "share"),
    nfs_mounts: tuple[str, ...] = (),
) -> list[Collector]:
    """The full collector suite for one node: the common set, an ``nfs``
    collector when the system has NFS mounts (Lonestar4's home), and the
    PMC collector chosen by architecture.

    *rng* is either a shared :class:`numpy.random.Generator` or a stream
    factory ``name -> Generator``; the factory form keys every
    collector's noise stream by its type name, making each collector's
    draw sequence independent of its siblings (the determinism contract
    the vectorized kernels rely on).
    """
    stream: Callable[[str], np.random.Generator]
    if callable(rng):
        stream = rng
    else:
        def stream(_name: str, _gen=rng) -> np.random.Generator:
            return _gen
    collectors: list[Collector] = [
        cls(node, stream(name), lustre_mounts) if cls is LliteCollector
        else cls(node, stream(name))
        for name, cls in _COMMON
    ]
    if nfs_mounts:
        collectors.append(NfsCollector(node, stream("nfs"), nfs_mounts))
    arch = node.hardware.processor.arch
    if arch == "amd64":
        collectors.append(Amd64PmcCollector(node, stream("amd64_pmc")))
    elif arch == "intel":
        collectors.append(IntelPmcCollector(node, stream("intel_pmc")))
    else:  # pragma: no cover - ProcessorSpec already validates
        raise ValueError(f"no PMC collector for arch {arch!r}")
    return collectors
