"""TACC_Stats collectors, one module per record type (as in the original
tool's ``st_*.c`` sources).

:func:`build_collectors` assembles the per-architecture suite: all common
collectors plus ``amd64_pmc`` (Opteron) or ``intel_pmc`` (Nehalem/Westmere)
for the hardware performance counters.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import Node
from repro.tacc_stats.collectors.amd64_pmc import Amd64PmcCollector
from repro.tacc_stats.collectors.base import Collector, SampleContext
from repro.tacc_stats.collectors.block import BlockCollector
from repro.tacc_stats.collectors.cpu import CpuCollector
from repro.tacc_stats.collectors.ib import IbCollector
from repro.tacc_stats.collectors.intel_pmc import IntelPmcCollector
from repro.tacc_stats.collectors.irq import IrqCollector
from repro.tacc_stats.collectors.llite import LliteCollector
from repro.tacc_stats.collectors.lnet import LnetCollector
from repro.tacc_stats.collectors.mem import MemCollector
from repro.tacc_stats.collectors.net import NetCollector
from repro.tacc_stats.collectors.nfs import NfsCollector
from repro.tacc_stats.collectors.numa import NumaCollector
from repro.tacc_stats.collectors.ps import PsCollector
from repro.tacc_stats.collectors.sysv_shm import SysvShmCollector
from repro.tacc_stats.collectors.tmpfs import TmpfsCollector
from repro.tacc_stats.collectors.vfs import VfsCollector
from repro.tacc_stats.collectors.vm import VmCollector

__all__ = [
    "Collector",
    "SampleContext",
    "build_collectors",
    "CpuCollector",
    "MemCollector",
    "NumaCollector",
    "VmCollector",
    "TmpfsCollector",
    "NetCollector",
    "IbCollector",
    "LliteCollector",
    "LnetCollector",
    "NfsCollector",
    "BlockCollector",
    "PsCollector",
    "SysvShmCollector",
    "IrqCollector",
    "VfsCollector",
    "Amd64PmcCollector",
    "IntelPmcCollector",
]

_COMMON = (
    CpuCollector,
    MemCollector,
    NumaCollector,
    VmCollector,
    TmpfsCollector,
    NetCollector,
    IbCollector,
    LliteCollector,
    LnetCollector,
    BlockCollector,
    PsCollector,
    SysvShmCollector,
    IrqCollector,
    VfsCollector,
)


def build_collectors(
    node: Node,
    rng: np.random.Generator,
    lustre_mounts: tuple[str, ...] = ("scratch", "work", "share"),
    nfs_mounts: tuple[str, ...] = (),
) -> list[Collector]:
    """The full collector suite for one node: the common set, an ``nfs``
    collector when the system has NFS mounts (Lonestar4's home), and the
    PMC collector chosen by architecture."""
    collectors: list[Collector] = [
        cls(node, rng, lustre_mounts) if cls is LliteCollector else cls(node, rng)
        for cls in _COMMON
    ]
    if nfs_mounts:
        collectors.append(NfsCollector(node, rng, nfs_mounts))
    arch = node.hardware.processor.arch
    if arch == "amd64":
        collectors.append(Amd64PmcCollector(node, rng))
    elif arch == "intel":
        collectors.append(IntelPmcCollector(node, rng))
    else:  # pragma: no cover - ProcessorSpec already validates
        raise ValueError(f"no PMC collector for arch {arch!r}")
    return collectors
