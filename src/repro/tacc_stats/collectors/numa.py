"""``numa`` collector: per-socket NUMA allocation statistics (as from
``/sys/devices/system/node/node*/numastat``), cumulative page counts."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["NumaCollector"]

_PAGE_KB = 4.0
#: Fraction of memory traffic that misses the local node for a typical
#: first-touch-placed MPI code.
_MISS_FRAC = 0.06


class NumaCollector(Collector):
    """numa_hit / numa_miss / numa_foreign / local_node / other_node."""

    @property
    def type_name(self) -> str:
        return "numa"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "numa",
            tuple(
                SchemaEntry(k, is_event=True)
                for k in ("numa_hit", "numa_miss", "numa_foreign",
                          "local_node", "other_node")
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return tuple(str(i) for i in range(self.node.hardware.sockets))

    def advance(self, ctx: SampleContext) -> None:
        # Page allocation rate scales with memory churn: approximate from
        # cache turnover + I/O (every I/O byte passes the page cache).
        io_mb = (
            ctx.rate("io_scratch_write_mb") + ctx.rate("io_scratch_read_mb")
            + ctx.rate("io_work_write_mb") + ctx.rate("io_work_read_mb")
            + ctx.rate("block_mb")
        )
        churn_mb = io_mb + 0.05 * ctx.rate("mem_used_gb") * 1024 / 600.0 + 0.01
        pages_per_s = churn_mb * 1024.0 / _PAGE_KB
        sockets = self.node.hardware.sockets
        per_socket = self.noisy(pages_per_s * ctx.dt) / sockets
        for s in range(sockets):
            dev = str(s)
            miss = per_socket * _MISS_FRAC
            hit = per_socket - miss
            self.bump(dev, "numa_hit", hit)
            self.bump(dev, "numa_miss", miss)
            self.bump(dev, "numa_foreign", miss)
            self.bump(dev, "local_node", hit)
            self.bump(dev, "other_node", miss)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        io_mb = (
            block.rate("io_scratch_write_mb") + block.rate("io_scratch_read_mb")
            + block.rate("io_work_write_mb") + block.rate("io_work_read_mb")
            + block.rate("block_mb")
        )
        churn_mb = io_mb + 0.05 * block.rate("mem_used_gb") * 1024 / 600.0 + 0.01
        pages_per_s = churn_mb * 1024.0 / _PAGE_KB
        sockets = self.node.hardware.sockets
        # One draw per sample (shared by every socket), same as scalar.
        per_socket = self.noisy_block(pages_per_s * block.dts) / sockets
        miss = per_socket * _MISS_FRAC
        hit = per_socket - miss
        inc = np.empty((block.n, sockets, self._schema.n_values))
        inc[..., 0] = hit[:, None]
        inc[..., 1] = miss[:, None]
        inc[..., 2] = miss[:, None]
        inc[..., 3] = hit[:, None]
        inc[..., 4] = miss[:, None]
        return self.wrap_block(self.accumulate_block(inc))
