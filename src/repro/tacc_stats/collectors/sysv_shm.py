"""``sysv_shm`` collector: System V shared-memory segment usage (as from
``/proc/sysvipc/shm``).  MPI implementations of this era used SysV
segments for intra-node communication, so segment count tracks the number
of MPI ranks on the node."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.util.units import MB

__all__ = ["SysvShmCollector"]

_SEG_MB = 32.0  # typical per-rank shared segment


class SysvShmCollector(Collector):
    """used_count / used_bytes gauges for SysV shared memory."""

    @property
    def type_name(self) -> str:
        return "sysv_shm"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "sysv_shm",
            (
                SchemaEntry("used_count"),
                SchemaEntry("used_bytes", unit="B"),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("-",)

    def advance(self, ctx: SampleContext) -> None:
        if ctx.rates is None:
            self.set_gauge("-", "used_count", 0)
            self.set_gauge("-", "used_bytes", 0)
            return
        cores = self.node.hardware.cores
        # Ranks ~ busy cores; communication-heavy codes map more segments.
        ranks = max(1, round(ctx.rate("cpu_user_frac") * cores))
        net = ctx.rate("net_mpi_mb")
        segs = ranks if net > 0.5 else 1
        self.set_gauge("-", "used_count", segs)
        self.set_gauge("-", "used_bytes", segs * _SEG_MB * MB)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        cores = self.node.hardware.cores
        ranks = np.maximum(1.0, np.round(block.rate("cpu_user_frac") * cores))
        segs = np.where(block.rate("net_mpi_mb") > 0.5, ranks, 1.0)
        segs = np.where(block.idle, 0.0, segs)
        vals = np.empty((block.n, 1, self._schema.n_values))
        vals[:, 0, 0] = segs
        vals[:, 0, 1] = segs * _SEG_MB * MB
        if block.n:
            self._store_carry(vals[-1])
        return self.wrap_block(vals)
