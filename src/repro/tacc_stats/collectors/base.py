"""Collector base class and shared accumulation machinery.

A collector owns one record type.  It keeps cumulative per-device
accumulators (floats internally, rendered as integers modulo the schema's
counter width — exactly the rollover behaviour of the real registers) and
converts the node's current *rates* into counter increments over ``dt``.

When no job runs on the node, collectors see ``rates=None`` and account
only background OS activity, so idle-node samples look like real idle
nodes rather than flat zeros.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.cluster.node import Node
from repro.tacc_stats.schema import TypeSchema
from repro.workload.applications import RATE_INDEX

__all__ = ["SampleContext", "Collector", "core_fractions"]


@dataclass(frozen=True)
class SampleContext:
    """What a collector sees at one invocation.

    Attributes
    ----------
    time:
        Facility epoch seconds.
    dt:
        Seconds since the previous invocation on this node (0 at the
        first sample after daemon start).
    rates:
        Node-level rate vector (``repro.workload.RATE_FIELDS`` order), or
        None when the node is idle.
    jobids:
        Jobs currently on the node.
    """

    time: float
    dt: float
    rates: np.ndarray | None
    jobids: tuple[str, ...] = ()

    def rate(self, name: str, default: float = 0.0) -> float:
        """Look up one named rate, with a default for idle nodes."""
        if self.rates is None:
            return default
        return float(self.rates[RATE_INDEX[name]])


class Collector(ABC):
    """Base class: accumulate event counters, emit schema-conformant rows."""

    #: Relative per-sample measurement jitter applied to rate-driven
    #: increments (real counters are exact, but the *rates* we derive from
    #: them never are; keeping this small lets the fast path agree with the
    #: collected data within test tolerances).
    NOISE_SIGMA = 0.015

    def __init__(self, node: Node, rng: np.random.Generator):
        self.node = node
        self.rng = rng
        self._schema = self.build_schema()
        self._devices = self.build_devices()
        if not self._devices:
            raise ValueError(f"{self.type_name}: no devices")
        # accumulators[device] -> float vector in schema order.
        self._acc: dict[str, np.ndarray] = {
            d: np.zeros(self._schema.n_values) for d in self._devices
        }

    # -- to be provided by subclasses ---------------------------------------

    @property
    @abstractmethod
    def type_name(self) -> str:
        """Record type name (schema line / data row prefix)."""

    @abstractmethod
    def build_schema(self) -> TypeSchema:
        """Construct this collector's schema."""

    @abstractmethod
    def build_devices(self) -> tuple[str, ...]:
        """Enumerate device names on this node."""

    @abstractmethod
    def advance(self, ctx: SampleContext) -> None:
        """Update accumulators / gauge values for this invocation."""

    # -- common machinery ----------------------------------------------------

    @property
    def schema(self) -> TypeSchema:
        return self._schema

    @property
    def devices(self) -> tuple[str, ...]:
        return self._devices

    def on_job_begin(self, jobid: str, time: float) -> None:
        """Hook at job start (PMC collectors reprogram counters here)."""

    def on_job_end(self, jobid: str, time: float) -> None:
        """Hook at job end."""

    def sample(self, ctx: SampleContext):
        """Advance state and yield ``(device, uint64 values)`` rows."""
        if ctx.dt < 0:
            raise ValueError("negative dt")
        self.advance(ctx)
        widths = [e.modulus for e in self._schema.entries]
        for device in self._devices:
            acc = self._acc[device]
            out = np.empty(len(acc), dtype=np.uint64)
            for i, (v, mod) in enumerate(zip(acc, widths)):
                out[i] = int(v) % mod
            yield device, out

    def bump(self, device: str, key: str, amount: float) -> None:
        """Add to an event accumulator (must be non-negative)."""
        if amount < 0:
            raise ValueError(
                f"{self.type_name}/{device}/{key}: negative increment"
            )
        self._acc[device][self._schema.index_of(key)] += amount

    def set_gauge(self, device: str, key: str, value: float) -> None:
        """Set a gauge value (clamped at zero)."""
        self._acc[device][self._schema.index_of(key)] = max(value, 0.0)

    def noisy(self, amount: float) -> float:
        """Apply the per-sample measurement jitter to an increment."""
        if amount <= 0:
            return 0.0
        return amount * float(self.rng.lognormal(0.0, self.NOISE_SIGMA))


def core_fractions(node_fraction: float, n_cores: int) -> np.ndarray:
    """Distribute a node-level busy fraction across cores, fill-first.

    A job at 25 % node utilization on 16 cores shows up as 4 busy cores
    and 12 idle ones — which is what ``/proc/stat`` actually looks like for
    undersubscribed jobs, and what makes per-core resolution (the paper's
    key advance over sar) informative.
    """
    if not 0.0 <= node_fraction <= 1.0:
        node_fraction = float(np.clip(node_fraction, 0.0, 1.0))
    total = node_fraction * n_cores
    out = np.zeros(n_cores)
    full = int(total)
    out[:full] = 1.0
    if full < n_cores:
        out[full] = total - full
    return out
