"""Collector base class and shared accumulation machinery.

A collector owns one record type.  It keeps cumulative per-device
accumulators (floats internally, rendered as integers modulo the schema's
counter width — exactly the rollover behaviour of the real registers) and
converts the node's current *rates* into counter increments over ``dt``.

When no job runs on the node, collectors see ``rates=None`` and account
only background OS activity, so idle-node samples look like real idle
nodes rather than flat zeros.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.cluster.node import Node
from repro.tacc_stats.schema import TypeSchema
from repro.workload.applications import RATE_INDEX

__all__ = ["SampleContext", "BlockContext", "Collector", "core_fractions",
           "core_fractions_block"]


@dataclass(frozen=True)
class SampleContext:
    """What a collector sees at one invocation.

    Attributes
    ----------
    time:
        Facility epoch seconds.
    dt:
        Seconds since the previous invocation on this node (0 at the
        first sample after daemon start).
    rates:
        Node-level rate vector (``repro.workload.RATE_FIELDS`` order), or
        None when the node is idle.
    jobids:
        Jobs currently on the node.
    """

    time: float
    dt: float
    rates: np.ndarray | None
    jobids: tuple[str, ...] = ()

    def rate(self, name: str, default: float = 0.0) -> float:
        """Look up one named rate, with a default for idle nodes."""
        if self.rates is None:
            return default
        return float(self.rates[RATE_INDEX[name]])


@dataclass(frozen=True)
class BlockContext:
    """A whole batch of consecutive invocations, for vectorized kernels.

    One BlockContext covers samples that share collector state (no PMC
    reprogramming boundary inside it).  ``rates`` rows where ``idle`` is
    True are placeholders (zeros) — kernels must route idle samples
    through their defaults exactly as the scalar path does, which
    :meth:`rate` handles for the common case.

    Attributes
    ----------
    times:
        ``[T]`` facility epoch seconds, strictly ordered.
    dts:
        ``[T]`` seconds since the previous invocation (0 at daemon start).
    rates:
        ``[T, n_fields]`` node-level rate matrix (zero rows when idle).
    idle:
        ``[T]`` bool — True where the scalar path saw ``rates=None``.
    jobids:
        Per-sample job tags (serialization only; collectors ignore it).
    """

    times: np.ndarray
    dts: np.ndarray
    rates: np.ndarray
    idle: np.ndarray
    jobids: tuple[tuple[str, ...], ...] = ()

    @property
    def n(self) -> int:
        return self.times.shape[0]

    def rate(self, name: str, default: float = 0.0) -> np.ndarray:
        """``[T]`` named rate, with the idle-node default applied."""
        return np.where(self.idle, default, self.rates[:, RATE_INDEX[name]])

    def rates_row(self, i: int) -> np.ndarray | None:
        """The scalar-path ``rates`` argument for sample *i*."""
        return None if self.idle[i] else self.rates[i]


class Collector(ABC):
    """Base class: accumulate event counters, emit schema-conformant rows."""

    #: Relative per-sample measurement jitter applied to rate-driven
    #: increments (real counters are exact, but the *rates* we derive from
    #: them never are; keeping this small lets the fast path agree with the
    #: collected data within test tolerances).
    NOISE_SIGMA = 0.015

    def __init__(self, node: Node, rng: np.random.Generator):
        self.node = node
        self.rng = rng
        self._schema = self.build_schema()
        self._devices = self.build_devices()
        if not self._devices:
            raise ValueError(f"{self.type_name}: no devices")
        # accumulators[device] -> float vector in schema order.
        self._acc: dict[str, np.ndarray] = {
            d: np.zeros(self._schema.n_values) for d in self._devices
        }

    # -- to be provided by subclasses ---------------------------------------

    @property
    @abstractmethod
    def type_name(self) -> str:
        """Record type name (schema line / data row prefix)."""

    @abstractmethod
    def build_schema(self) -> TypeSchema:
        """Construct this collector's schema."""

    @abstractmethod
    def build_devices(self) -> tuple[str, ...]:
        """Enumerate device names on this node."""

    @abstractmethod
    def advance(self, ctx: SampleContext) -> None:
        """Update accumulators / gauge values for this invocation."""

    # -- common machinery ----------------------------------------------------

    @property
    def schema(self) -> TypeSchema:
        return self._schema

    @property
    def devices(self) -> tuple[str, ...]:
        return self._devices

    def on_job_begin(self, jobid: str, time: float) -> None:
        """Hook at job start (PMC collectors reprogram counters here)."""

    def on_job_end(self, jobid: str, time: float) -> None:
        """Hook at job end."""

    def sample(self, ctx: SampleContext):
        """Advance state and yield ``(device, uint64 values)`` rows."""
        if ctx.dt < 0:
            raise ValueError("negative dt")
        self.advance(ctx)
        widths = [e.modulus for e in self._schema.entries]
        for device in self._devices:
            acc = self._acc[device]
            out = np.empty(len(acc), dtype=np.uint64)
            for i, (v, mod) in enumerate(zip(acc, widths)):
                out[i] = int(v) % mod
            yield device, out

    def bump(self, device: str, key: str, amount: float) -> None:
        """Add to an event accumulator (must be non-negative)."""
        if amount < 0:
            raise ValueError(
                f"{self.type_name}/{device}/{key}: negative increment"
            )
        self._acc[device][self._schema.index_of(key)] += amount

    def set_gauge(self, device: str, key: str, value: float) -> None:
        """Set a gauge value (clamped at zero)."""
        self._acc[device][self._schema.index_of(key)] = max(value, 0.0)

    def noisy(self, amount: float) -> float:
        """Apply the per-sample measurement jitter to an increment."""
        if amount <= 0:
            return 0.0
        return amount * float(self.rng.lognormal(0.0, self.NOISE_SIGMA))

    # -- vectorized (block) machinery ----------------------------------------

    def sample_block(self, block: BlockContext) -> np.ndarray:
        """Advance through a whole block; return ``[T, D, K]`` uint64 rows.

        The base implementation falls back to the scalar path one sample
        at a time, so any collector without a batched kernel stays
        bit-identical automatically.  Kernel overrides must consume their
        RNG stream in exactly the scalar draw order (time-major, then the
        per-sample order of ``advance``) and leave ``self._acc`` at the
        end-of-block state so scalar and vectorized processing can be
        freely interleaved.
        """
        out = np.empty(
            (block.n, len(self._devices), self._schema.n_values),
            dtype=np.uint64)
        for i in range(block.n):
            ctx = SampleContext(
                time=float(block.times[i]), dt=float(block.dts[i]),
                rates=block.rates_row(i),
                jobids=block.jobids[i] if block.jobids else ())
            for d, (_device, values) in enumerate(self.sample(ctx)):
                out[i, d] = values
        return out

    def noisy_block(self, amounts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`noisy` over an array of increments.

        Draws one lognormal per strictly-positive amount, in C order —
        exactly the sequence the scalar path consumes when it visits the
        same amounts one at a time (``noisy`` skips the draw entirely
        for ``amount <= 0``).
        """
        amounts = np.ascontiguousarray(amounts, dtype=np.float64)
        out = np.zeros_like(amounts)
        flat = amounts.reshape(-1)
        mask = flat > 0
        n = int(mask.sum())
        if n:
            draws = self.rng.lognormal(0.0, self.NOISE_SIGMA, size=n)
            out.reshape(-1)[mask] = flat[mask] * draws
        return out

    def _carry(self) -> np.ndarray:
        """``[D, K]`` float accumulator state, in device order."""
        return np.stack([self._acc[d] for d in self._devices])

    def _store_carry(self, acc_last: np.ndarray) -> None:
        """Write the end-of-block ``[D, K]`` state back into ``_acc``."""
        for i, d in enumerate(self._devices):
            self._acc[d] = acc_last[i].astype(np.float64, copy=True)

    def accumulate_block(self, inc: np.ndarray) -> np.ndarray:
        """Integrate per-sample increments ``[T, D, K]`` from the carried
        accumulator state; returns the ``[T, D, K]`` float accumulator
        trajectory and stores the final state back in ``_acc``.

        ``np.cumsum`` over the carry-prefixed series reproduces the
        scalar path's sequential ``+=`` bit-for-bit (same left-to-right
        float addition order).
        """
        acc0 = self._carry()
        acc = np.cumsum(
            np.concatenate([acc0[None, :, :], inc], axis=0), axis=0)[1:]
        self._store_carry(acc[-1] if inc.shape[0] else acc0)
        return acc

    def wrap_block(self, acc: np.ndarray) -> np.ndarray:
        """Render float accumulators as the registers' uint64 values.

        ``int(v) % 2**w`` of the scalar path, vectorized: all schema
        widths are powers of two, so truncation plus a mask is exact for
        every magnitude the synthesizer produces (far below 2**63).
        """
        masks = np.array([e.modulus - 1 for e in self._schema.entries],
                         dtype=np.uint64)
        return acc.astype(np.int64).astype(np.uint64) & masks


def core_fractions(node_fraction: float, n_cores: int) -> np.ndarray:
    """Distribute a node-level busy fraction across cores, fill-first.

    A job at 25 % node utilization on 16 cores shows up as 4 busy cores
    and 12 idle ones — which is what ``/proc/stat`` actually looks like for
    undersubscribed jobs, and what makes per-core resolution (the paper's
    key advance over sar) informative.
    """
    if not 0.0 <= node_fraction <= 1.0:
        node_fraction = float(np.clip(node_fraction, 0.0, 1.0))
    total = node_fraction * n_cores
    out = np.zeros(n_cores)
    full = int(total)
    out[:full] = 1.0
    if full < n_cores:
        out[full] = total - full
    return out


def core_fractions_block(node_fraction: np.ndarray, n_cores: int) -> np.ndarray:
    """:func:`core_fractions` for a ``[T]`` vector → ``[T, n_cores]``.

    Matches the scalar function bit-for-bit: clip only affects
    out-of-range inputs, ``int()`` truncates toward zero (inputs are
    non-negative after the clip), and the fractional core gets the exact
    ``total - full`` remainder.
    """
    f = np.clip(np.asarray(node_fraction, dtype=np.float64), 0.0, 1.0)
    total = f * n_cores
    full = total.astype(np.int64)
    out = (np.arange(n_cores)[None, :] < full[:, None]).astype(np.float64)
    rows = np.flatnonzero(full < n_cores)
    out[rows, full[rows]] = total[rows] - full[rows]
    return out
