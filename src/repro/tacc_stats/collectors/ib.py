"""``ib`` collector: InfiniBand port counters (as from
``/sys/class/infiniband/*/ports/1/counters_ext``).

``port_xmit_data``/``port_rcv_data`` count 32-bit *words* (the IB spec's
PortCounters are in units of 4 bytes).  The legacy registers are 32 bits
wide and at tens of MB/s wrap inside one 10-minute interval — the mlx4
HCAs on both of the paper's systems therefore expose 64-bit
*ExtendedPortCounters*, which is what production TACC_Stats read and what
we model (the 32-bit rollover machinery is still exercised by the ``net``
collector's byte counters).  The fabric traffic here is MPI plus Lustre
(lnet rides IB on both systems); the ``net_ib_tx`` key metric derives
from these counters.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.workload.behavior import DerivedRates

__all__ = ["IbCollector"]

_WORD = 4.0  # bytes per IB counter word
_MTU = 2048.0


class IbCollector(Collector):
    """port_xmit_data / port_rcv_data (32-bit words) + packet counters."""

    @property
    def type_name(self) -> str:
        return "ib"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "ib",
            (
                SchemaEntry("port_xmit_data", is_event=True, unit="4B"),
                SchemaEntry("port_rcv_data", is_event=True, unit="4B"),
                SchemaEntry("port_xmit_pkts", is_event=True),
                SchemaEntry("port_rcv_pkts", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return self.node.hardware.ib_devices

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        if ctx.rates is None:
            tx_mb = rx_mb = 0.01  # subnet manager chatter
        else:
            tx_mb = float(DerivedRates.ib_tx_mb(ctx.rates))
            rx_mb = float(DerivedRates.ib_rx_mb(ctx.rates))
        for dev in self.devices:
            tx_b = self.noisy(tx_mb * 1e6 * dt)
            rx_b = self.noisy(rx_mb * 1e6 * dt)
            self.bump(dev, "port_xmit_data", tx_b / _WORD)
            self.bump(dev, "port_rcv_data", rx_b / _WORD)
            self.bump(dev, "port_xmit_pkts", tx_b / _MTU)
            self.bump(dev, "port_rcv_pkts", rx_b / _MTU)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        tx_mb = np.where(block.idle, 0.01, DerivedRates.ib_tx_mb(block.rates))
        rx_mb = np.where(block.idle, 0.01, DerivedRates.ib_rx_mb(block.rates))
        n_dev = len(self.devices)
        # Per sample, per device: tx then rx draws (amounts identical
        # across devices, draws independent).
        amounts = np.repeat(
            np.stack([tx_mb * 1e6 * dt, rx_mb * 1e6 * dt], axis=-1)[:, None, :],
            n_dev, axis=1)
        b = self.noisy_block(amounts)
        tx_b, rx_b = b[..., 0], b[..., 1]
        inc = np.empty((block.n, n_dev, self._schema.n_values))
        inc[..., 0] = tx_b / _WORD
        inc[..., 1] = rx_b / _WORD
        inc[..., 2] = tx_b / _MTU
        inc[..., 3] = rx_b / _MTU
        return self.wrap_block(self.accumulate_block(inc))
